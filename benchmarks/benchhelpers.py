"""Shared helpers for the figure benchmarks."""

from __future__ import annotations

from typing import Mapping

from repro.core.groups import GroupingResult
from repro.netsim.clock import DAY


def group_longevity_rows(
    grouping: GroupingResult,
    per_domain_seconds: Mapping[str, float],
    min_size: int = 2,
) -> list[tuple[str, int, float]]:
    """(label, size, median member longevity) rows for the treemaps."""
    rows = []
    for group in grouping.groups:
        if len(group) < min_size:
            continue
        values = sorted(
            per_domain_seconds[d] for d in group.domains if d in per_domain_seconds
        )
        if not values:
            continue
        median = values[len(values) // 2]
        rows.append((group.label or "?", len(group), median))
    return rows


def spans_to_seconds(spans) -> dict[str, float]:
    """domain -> max identifier span in seconds."""
    return {name: entry.max_span_days * DAY for name, entry in spans.items()}
