"""Benchmark fixtures: one full 9-week study, built once and cached.

The expensive part of every table/figure benchmark is the scan corpus;
it is identical across benchmarks, so it's built once per configuration
and persisted to ``.bench_cache/`` as JSONL.  The benchmarked code is
the *analysis* that turns scan records into each table/figure.

Configuration (environment variables):

* ``REPRO_BENCH_POPULATION`` — ranked-list size (default 900)
* ``REPRO_BENCH_DAYS``       — study length in days (default 63)
* ``REPRO_BENCH_SEED``       — ecosystem seed (default 2016)
* ``REPRO_BENCH_SHARDS``     — population shards (default 1; shard
  count changes the corpus bytes, so it is part of the cache key)
* ``REPRO_BENCH_WORKERS``    — worker processes building the corpus
  (default 1; never changes the corpus, so not in the cache key)

The default 900-domain/63-day corpus takes a few minutes to build the
first time; later runs load it from disk in seconds.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import pytest

# Make this directory and the shared test helpers importable from any
# benchmark module (pytest rootdir-relative imports don't cover either).
sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "tests"))

from repro.hosting import EcosystemConfig, build_ecosystem
from repro.scanner import StudyConfig, load_dataset, run_study, save_dataset

BENCH_POPULATION = int(os.environ.get("REPRO_BENCH_POPULATION", "900"))
BENCH_DAYS = int(os.environ.get("REPRO_BENCH_DAYS", "63"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2016"))
BENCH_SHARDS = int(os.environ.get("REPRO_BENCH_SHARDS", "1"))
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

_CACHE_ROOT = Path(__file__).parent.parent / ".bench_cache"
_OUTPUT_DIR = Path(__file__).parent / "output"


def _scaled_day(paper_day: int, taken: set) -> int:
    """Scale a paper schedule day into the configured study length."""
    day = max(1, min(BENCH_DAYS - 2, round(paper_day * BENCH_DAYS / 63)))
    while day in taken:
        day = max(1, day - 1)
    taken.add(day)
    return day


def bench_study_config() -> StudyConfig:
    taken: set = set()
    return StudyConfig(
        days=BENCH_DAYS,
        seed=404,
        probe_domain_count=BENCH_POPULATION,  # probe the whole list
        dhe_support_day=_scaled_day(43, taken),
        ecdhe_support_day=_scaled_day(44, taken),
        ticket_support_day=_scaled_day(46, taken),
        crossdomain_day=_scaled_day(50, taken),
        session_probe_day=_scaled_day(56, taken),
        ticket_probe_day=_scaled_day(58, taken),
        shards=BENCH_SHARDS,
        workers=BENCH_WORKERS,
    )


def _ground_truth(ecosystem) -> dict:
    """Snapshot the truth needed by ablation benchmarks."""
    cache_group_of = {}
    for gid, members in ecosystem.ground_truth_cache_groups().items():
        for name in members:
            cache_group_of[name] = gid
    return {
        "stek_group_sizes": sorted(
            (len(m) for m in ecosystem.ground_truth_stek_groups().values()),
            reverse=True,
        ),
        "cache_group_sizes": sorted(
            (len(m) for m in ecosystem.ground_truth_cache_groups().values()),
            reverse=True,
        ),
        "cache_group_of": {k: str(v) for k, v in cache_group_of.items()},
        "stek_rotation": {
            d.name: d.behavior.stek_rotation_seconds
            for d in ecosystem.domains
            if d.behavior.tickets and d.https
        },
    }


@pytest.fixture(scope="session")
def bench_data():
    """(dataset, ground_truth) for the configured benchmark corpus."""
    key = f"p{BENCH_POPULATION}_d{BENCH_DAYS}_s{BENCH_SEED}"
    if BENCH_SHARDS != 1:
        key += f"_sh{BENCH_SHARDS}"
    cache_dir = _CACHE_ROOT / key
    truth_path = cache_dir / "ground_truth.json"
    if truth_path.exists():
        dataset = load_dataset(str(cache_dir))
        ground_truth = json.loads(truth_path.read_text())
        return dataset, ground_truth

    started = time.time()
    ecosystem = build_ecosystem(
        EcosystemConfig(population=BENCH_POPULATION, seed=BENCH_SEED)
    )
    dataset = run_study(
        ecosystem,
        bench_study_config(),
        progress=lambda day, days: print(
            f"\r[bench corpus] day {day + 1}/{days} "
            f"({time.time() - started:.0f}s elapsed)",
            end="", flush=True,
        ),
    )
    print()
    ground_truth = _ground_truth(ecosystem)
    cache_dir.mkdir(parents=True, exist_ok=True)
    save_dataset(dataset, str(cache_dir))
    truth_path.write_text(json.dumps(ground_truth))
    return dataset, ground_truth


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    _OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return _OUTPUT_DIR


@pytest.fixture()
def save_artifact(artifact_dir):
    """Write a rendered table/figure next to the benchmarks."""

    def write(name: str, text: str) -> None:
        (artifact_dir / name).write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n")

    return write
