"""Ablation — sampled cross-domain probing vs. ground truth.

The paper's §5.1 probe tests only ≤5 same-AS and ≤5 same-IP peers per
domain and grows groups transitively, calling the result "a lower
bound".  With ground truth available we can quantify the bound: how
much of each true shared-cache group does the sampled probe recover?
"""

from repro.core import groups_from_edges


def compute(dataset):
    return groups_from_edges(
        dataset.cache_edges, dataset.crossdomain_targets,
        dataset.domain_asn, dataset.as_names,
    )


def test_ablation_group_sampling(bench_data, benchmark, save_artifact):
    dataset, truth = bench_data
    grouping = benchmark(compute, dataset)

    cache_group_of = truth["cache_group_of"]
    true_sizes: dict[str, int] = {}
    probed = set(dataset.crossdomain_targets)
    for domain, gid in cache_group_of.items():
        if domain in probed:
            true_sizes[gid] = true_sizes.get(gid, 0) + 1

    # For each measured multi-domain group: recall against its true group.
    recalls = []
    merged_errors = 0
    for group in grouping.groups:
        if len(group) < 2:
            continue
        gids = {cache_group_of.get(d) for d in group.domains}
        if len(gids) != 1:
            merged_errors += 1
            continue
        gid = gids.pop()
        recalls.append(len(group) / true_sizes[gid])

    mean_recall = sum(recalls) / len(recalls) if recalls else 0.0
    true_multi = sum(1 for size in true_sizes.values() if size >= 2)
    found_multi = sum(1 for g in grouping.groups if len(g) >= 2)

    text = "\n".join([
        "Ablation: sampled cross-domain probing (<=5 same-AS + <=5 same-IP)",
        "",
        f"true multi-domain cache groups (among probed): {true_multi}",
        f"measured multi-domain groups:                  {found_multi}",
        f"mean per-group recall:                         {mean_recall:.1%}",
        f"groups wrongly merged across true boundaries:  {merged_errors}",
        "",
        "Sampling + transitive growth recovers most of each shared cache",
        "and never invents sharing (a sound lower bound, as claimed).",
    ])
    save_artifact("ablation_group_sampling.txt", text)

    # Soundness: no measured group spans two true groups.
    assert merged_errors == 0
    # The estimator is a useful lower bound: it finds most big groups
    # and recovers a substantial fraction of each.
    assert recalls, "no multi-domain groups found"
    assert mean_recall > 0.5
