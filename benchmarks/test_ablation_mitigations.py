"""Ablation — §8.2 recommendations applied counterfactually.

The paper recommends rotating STEKs frequently, capping session-cache
lifetimes, and never reusing (EC)DHE values.  This ablation applies
each recommendation to the measured vulnerability windows and shows how
much of the 38%/22%/10% exposure tail each one removes — and that only
the combination collapses it.
"""

from repro.core import (
    combine_windows,
    kex_spans,
    session_lifetime_by_domain,
    stek_spans,
)
from repro.core.mitigations import (
    evaluate_mitigations,
    render_mitigation_report,
)


def compute(dataset):
    always = set(dataset.always_present)
    windows = combine_windows(
        stek_spans_by_domain=stek_spans(dataset.ticket_daily, always),
        session_lifetimes=session_lifetime_by_domain(dataset.session_probes),
        dhe_spans_by_domain=kex_spans(dataset.dhe_daily, always, kind="dhe"),
        ecdhe_spans_by_domain=kex_spans(dataset.ecdhe_daily, always, kind="ecdhe"),
    )
    return evaluate_mitigations(windows)


def test_ablation_mitigations(bench_data, benchmark, save_artifact):
    dataset, _ = bench_data
    report = benchmark(compute, dataset)
    save_artifact("ablation_mitigations.txt", render_mitigation_report(report))

    baseline = report.baseline
    assert baseline.over_24_hours > 0

    rotate = report.by_policy["rotate STEKs daily"]
    combined = report.by_policy["all §8.2 recommendations"]
    disable = report.by_policy["disable resumption and reuse entirely"]

    # STEK rotation is the single biggest lever (tickets dominate §6.1)…
    assert report.improvement_over_24h("rotate STEKs daily") > 0.3
    # …but alone it cannot fix DH reuse or long caches.
    assert rotate.over_24_hours > 0
    # The full recommendation set removes the multi-day tail entirely
    # (ticket windows capped at 24 h are not > 24 h).
    assert combined.over_7_days == 0
    assert combined.over_30_days == 0
    # And disabling resumption zeroes everything.
    assert disable.over_24_hours == 0
    # No policy ever makes things worse.
    for summary in report.by_policy.values():
        assert summary.over_24_hours <= baseline.over_24_hours
        assert summary.over_7_days <= baseline.over_7_days
