"""Ablation — daily vs. every-third-day scanning.

How much span accuracy does the daily cadence buy?  Re-running the span
estimator on a thinned corpus (keeping every third day) shows sparser
scanning truncates observed spans at both ends and misses short-lived
keys entirely — motivation for the paper's daily schedule.
"""

from repro.core import span_fractions, stek_spans

from conftest import BENCH_DAYS

THRESHOLD = 7 if BENCH_DAYS >= 40 else max(2, BENCH_DAYS // 3)


def compute(dataset):
    always = set(dataset.always_present)
    daily = stek_spans(dataset.ticket_daily, always)
    thinned_observations = [o for o in dataset.ticket_daily if o.day % 3 == 0]
    thinned = stek_spans(thinned_observations, always)
    return daily, thinned


def test_ablation_scan_frequency(bench_data, benchmark, save_artifact):
    dataset, _ = bench_data
    daily, thinned = benchmark(compute, dataset)

    daily_fracs = span_fractions(daily, (1, THRESHOLD))
    thinned_fracs = span_fractions(thinned, (1, THRESHOLD))

    # Mean absolute per-domain span shrinkage under thinning.
    common = set(daily) & set(thinned)
    shrinkage = [
        daily[d].max_span_days - thinned[d].max_span_days for d in common
    ]
    mean_shrinkage = sum(shrinkage) / len(shrinkage) if shrinkage else 0.0

    text = "\n".join([
        "Ablation: scan frequency (daily vs every 3rd day)",
        "",
        f"domains measured daily:   {len(daily)}",
        f"domains measured thinned: {len(thinned)}",
        f"                   >=1 day   >={THRESHOLD} days",
        f"daily scans:       {daily_fracs[1]:>7.1%}   {daily_fracs[THRESHOLD]:>7.1%}",
        f"every 3rd day:     {thinned_fracs[1]:>7.1%}   {thinned_fracs[THRESHOLD]:>7.1%}",
        f"mean span shrinkage: {mean_shrinkage:.2f} days",
        "",
        "Sparser scans truncate spans (later first-seen, earlier",
        "last-seen) and undercount sub-3-day keys entirely.",
    ])
    save_artifact("ablation_scan_frequency.txt", text)

    # Thinning can only lose sightings: spans never grow.
    for domain in common:
        assert thinned[domain].max_span_days <= daily[domain].max_span_days
    # And in aggregate it measurably shrinks them.
    assert mean_shrinkage >= 0.0
    assert thinned_fracs[1] <= daily_fracs[1] + 0.02
