"""Ablation — span estimator: first/last-seen vs. consecutive days.

The paper argues (§4.3) that a (STEK id, domain) span should be the gap
between first and last sighting, because scan jitter (A-record
rotation, unsynchronized load balancers, missed connections) interleaves
other identifiers within a key's true lifetime.  This ablation
quantifies the claim: the consecutive-day estimator systematically
undercounts long-lived keys, especially for jittered domains.
"""

from repro.core import consecutive_spans, span_fractions, stek_spans
from repro.core.spans import max_span_cdf

from conftest import BENCH_DAYS

THRESHOLD = 7 if BENCH_DAYS >= 40 else max(2, BENCH_DAYS // 3)


def compute(dataset):
    always = set(dataset.always_present)
    first_last = stek_spans(dataset.ticket_daily, always)
    consecutive = consecutive_spans(dataset.ticket_daily, domains=always)
    return first_last, consecutive


def test_ablation_span_estimator(bench_data, benchmark, save_artifact):
    dataset, truth = bench_data
    first_last, consecutive = benchmark(compute, dataset)

    fl_fracs = span_fractions(first_last, (1, THRESHOLD))
    co_fracs = span_fractions(consecutive, (1, THRESHOLD))

    # Ground truth: fraction of measured ticket domains whose configured
    # rotation interval exceeds the threshold (None = never rotates).
    rotations = truth["stek_rotation"]
    measured = [d for d in first_last if d in rotations]
    def truth_frac(days):
        qualifying = sum(
            1 for d in measured
            if rotations[d] is None or rotations[d] > days * 86400
        )
        return qualifying / len(measured)

    text = "\n".join([
        "Ablation: STEK span estimator",
        "",
        f"domains measured: {len(first_last)}",
        f"                       >=1 day   >={THRESHOLD} days",
        f"first/last-seen:       {fl_fracs[1]:>7.1%}   {fl_fracs[THRESHOLD]:>7.1%}",
        f"consecutive-days:      {co_fracs[1]:>7.1%}   {co_fracs[THRESHOLD]:>7.1%}",
        f"ground truth (config): {truth_frac(1):>7.1%}   {truth_frac(THRESHOLD):>7.1%}",
        "",
        "The consecutive-day estimator undercounts long-lived STEKs when",
        "scans miss a day or a load balancer flips between backends.",
    ])
    save_artifact("ablation_span_estimator.txt", text)

    # The first/last estimator dominates the consecutive one…
    assert fl_fracs[THRESHOLD] >= co_fracs[THRESHOLD]
    assert max_span_cdf(first_last).fraction_at_least(THRESHOLD) >= \
        max_span_cdf(consecutive).fraction_at_least(THRESHOLD)
    # …and is strictly better in the presence of jitter/failures.
    assert fl_fracs[THRESHOLD] > co_fracs[THRESHOLD]
    # And it tracks the configured truth within a few points.
    assert abs(fl_fracs[THRESHOLD] - truth_frac(THRESHOLD)) < 0.10
