"""Figure 1 — Session ID Lifetime.

Paper: 83% of trusted domains resumed after 1 s; of those, 61% honored
for <5 min, 82% for ≤1 h, a visible step at 10 h (IIS), and 0.8% ≥24 h
(mostly Google; Facebook's CDN too).
"""

from repro.core import honored_lifetime_cdf, lifetime_buckets, support_summary
from repro.core.report import render_lifetime_buckets
from repro.figures import ascii_cdf
from repro.netsim.clock import HOUR, MINUTE


def compute(dataset):
    probes = dataset.session_probes
    return (
        support_summary(probes, "session_id"),
        lifetime_buckets(probes),
        honored_lifetime_cdf(probes),
    )


def test_fig1_session_id_lifetime(bench_data, benchmark, save_artifact):
    dataset, _ = bench_data
    summary, buckets, cdf = benchmark(compute, dataset)

    text = "\n\n".join([
        ascii_cdf(cdf, "Figure 1: Session ID lifetime (CDF of honored delay)",
                  x_label="max successful resumption delay", min_x=1.0),
        render_lifetime_buckets(buckets, "Session ID"),
        f"probed={summary.probed} handshake_ok={summary.handshake_ok} "
        f"issued={summary.issued} resumed@1s={summary.resumed_at_1s}",
    ])
    save_artifact("fig1_session_id_lifetime.txt", text)
    from repro.figures import cdf_svg
    save_artifact("fig1_session_id_lifetime.svg", cdf_svg(
        {"session IDs": cdf}, title="Figure 1: Session ID lifetime",
        x_label="max successful resumption delay", x_min=1.0))

    # Support rates (paper: 97% issue, 83%/97% ≈ 86% of issuers resume).
    assert summary.issue_rate > 0.90
    assert 0.70 < summary.resume_rate < 0.95

    # Lifetime shape.  Small corpora are provider-heavy, so the long
    # tail is fatter than the paper's 0.8%, but the ordering holds.
    assert 0.35 < buckets.under_5_minutes < 0.75
    assert buckets.at_most_1_hour > buckets.under_5_minutes
    assert 0.60 < buckets.at_most_1_hour < 0.92
    # The 10 h IIS step exists.
    assert cdf.fraction_at_most(10 * HOUR + 60) > cdf.fraction_at_most(9 * HOUR) + 0.01
    # A nonempty ≥24 h tail (Google-style caches).
    assert 0.0 < buckets.at_least_24_hours < 0.25
