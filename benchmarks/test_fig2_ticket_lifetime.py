"""Figure 2 — Session Ticket Lifetime.

Paper: 79% issue tickets, 76% resume; 67% honor <5 min, 76% ≤1 h; a
cliff at 18 h (CloudFlare's 54,522 domains) and a cluster at 24 h+
(Google's 28-hour hint); 14,663 domains leave the hint unspecified.
"""

from repro.core import (
    hint_cdf,
    honored_lifetime_cdf,
    lifetime_buckets,
    support_summary,
    unspecified_hint_count,
)
from repro.core.report import render_lifetime_buckets
from repro.figures import ascii_cdf
from repro.netsim.clock import HOUR


def compute(dataset):
    probes = dataset.ticket_probes
    return (
        support_summary(probes, "ticket"),
        lifetime_buckets(probes),
        honored_lifetime_cdf(probes),
        hint_cdf(probes),
        unspecified_hint_count(probes),
    )


def test_fig2_ticket_lifetime(bench_data, benchmark, save_artifact):
    dataset, _ = bench_data
    summary, buckets, honored, hints, unspecified = benchmark(compute, dataset)

    text = "\n\n".join([
        ascii_cdf(honored, "Figure 2: Session ticket lifetime (honored)",
                  x_label="max successful resumption delay", min_x=1.0),
        ascii_cdf(hints, "Figure 2 overlay: advertised lifetime hints",
                  x_label="lifetime hint", min_x=1.0),
        render_lifetime_buckets(buckets, "Session ticket"),
        f"unspecified hints: {unspecified}",
    ])
    save_artifact("fig2_ticket_lifetime.txt", text)
    from repro.figures import cdf_svg
    save_artifact("fig2_ticket_lifetime.svg", cdf_svg(
        {"honored": honored, "hints": hints},
        title="Figure 2: Session ticket lifetime",
        x_label="max successful resumption delay", x_min=1.0))

    assert summary.issue_rate > 0.70
    assert summary.resume_rate > 0.65

    # Honored-lifetime shape (provider-heavy corpora depress <5 min).
    assert 0.30 < buckets.under_5_minutes < 0.75
    assert buckets.at_most_1_hour > buckets.under_5_minutes

    # The CloudFlare 18 h cliff: a jump between 17 h and 18.2 h.
    jump = honored.fraction_at_most(18.2 * HOUR) - honored.fraction_at_most(17 * HOUR)
    assert jump > 0.03

    # Google's 24 h+ cluster exists (right-censored at the probe cap).
    # Only tickets issued early in a 14 h STEK cycle survive to 24 h, so
    # the tail is thin but must be present.
    assert honored.fraction_at_least(24 * HOUR) > 0.003

    # Hints track honored lifetimes; some domains leave them unspecified.
    assert unspecified >= 0
    assert abs(hints.fraction_at_most(HOUR) - buckets.at_most_1_hour) < 0.25
