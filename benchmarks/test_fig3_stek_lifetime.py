"""Figure 3 — STEK Lifetime.

Paper: of ticket-issuing always-present domains, 64% used a fresh
issuing STEK each day; 36% reused ≥1 day, 22% >7 days, 10% >30 days
(the 30-day figure requires the full 63-day corpus).
"""

from repro.core import max_span_cdf, span_fractions, stek_spans
from repro.figures import ascii_cdf

from conftest import BENCH_DAYS


def compute(dataset):
    spans = stek_spans(dataset.ticket_daily, set(dataset.always_present))
    return spans, span_fractions(spans), max_span_cdf(spans)


def test_fig3_stek_lifetime(bench_data, benchmark, save_artifact):
    dataset, _ = bench_data
    spans, fractions, cdf = benchmark(compute, dataset)

    text = "\n\n".join([
        ascii_cdf(cdf, "Figure 3: STEK lifetime (max span per domain, days)",
                  x_label="max span of a STEK (days)",
                  x_formatter=lambda d: f"{d:.0f}d", min_x=0.5, log_x=False),
        f"domains issuing tickets: {len(spans)}",
        "reuse >= 1 day: {:.1%}   >= 7 days: {:.1%}   >= 30 days: {:.1%}".format(
            fractions[1], fractions[7], fractions[30]
        ),
    ])
    save_artifact("fig3_stek_lifetime.txt", text)
    from repro.figures import cdf_svg
    save_artifact("fig3_stek_lifetime.svg", cdf_svg(
        {"STEK max span": cdf}, title="Figure 3: STEK lifetime",
        x_label="max span of a STEK (days)", log_x=False,
        x_formatter=lambda d: f"{d:.0f}d", x_min=0.0 + 0.5))

    assert len(spans) > 100
    # Paper §6.1: ~36% of issuers reuse >= 1 day.
    assert 0.20 < fractions[1] < 0.55
    if BENCH_DAYS >= 10:
        # >= 7 days ≈ 22%.
        assert 0.10 < fractions[7] < 0.40
        assert fractions[7] < fractions[1]
    if BENCH_DAYS >= 40:
        # >= 30 days ≈ 10%.
        assert 0.04 < fractions[30] < 0.25
        assert fractions[30] < fractions[7]
