"""Figure 4 — STEK Lifetime by Alexa Rank.

Paper: 12 of the Alexa Top 100 persisted STEKs ≥30 days; tier CDFs are
broadly similar, showing long-lived STEKs are not a small-site problem.
"""

from repro.core import spans_by_tier, stek_spans, tier_counts, tiers_for_population
from repro.figures import multi_cdf_table

from conftest import BENCH_DAYS, BENCH_POPULATION


def compute(dataset):
    spans = stek_spans(dataset.ticket_daily, set(dataset.always_present))
    tiers = tiers_for_population(BENCH_POPULATION)
    return (
        spans_by_tier(spans, dataset.ranks, tiers),
        tier_counts(spans, dataset.ranks, tiers),
    )


def test_fig4_stek_by_rank(bench_data, benchmark, save_artifact):
    dataset, _ = bench_data
    per_tier, counts = benchmark(compute, dataset)

    thresholds = [1, 7, 30] if BENCH_DAYS >= 40 else [1, min(7, BENCH_DAYS - 2)]
    text = multi_cdf_table(
        per_tier, thresholds=thresholds, formatter=lambda d: f"{d}d",
        title="Figure 4: STEK max span by Alexa rank tier",
    ) + "\n\nticket-issuing domains per tier: " + str(counts)
    save_artifact("fig4_stek_by_rank.txt", text)

    # Tiers nest: each tier has at least as many domains as the last.
    sizes = [len(cdf) for cdf in per_tier.values()]
    assert sizes == sorted(sizes)
    assert sizes[-1] > 100

    # The paper's headline: long-lived STEKs exist even near the top of
    # the list (yahoo/qq/taobao/pinterest are pinned in the top ranks).
    # Use the smallest tier with a meaningful sample.
    populated = [cdf for cdf in per_tier.values() if len(cdf) >= 5]
    threshold = min(BENCH_DAYS - 2, 30)
    assert populated[0].fraction_at_least(threshold) > 0.0
    assert populated[-1].fraction_at_least(threshold) > 0.0
