"""Figure 5 — Ephemeral Exchange Value Reuse.

Paper: of always-present trusted domains, DHE values reused ≥1 day by
1.3%, ≥7 d by 1.2%, ≥30 d by 0.52%; ECDHE ≥1 d by 3.4%, ≥7 d by 3.0%,
≥30 d by 1.4%.  Most servers never repeat a value across days; the two
families' curves share a shape but ECDHE reuse is ~2.5x as common.
"""

from repro.core import kex_spans, max_span_cdf, span_fractions
from repro.figures import multi_cdf_table

from conftest import BENCH_DAYS


def compute(dataset):
    always = set(dataset.always_present)
    dhe = kex_spans(dataset.dhe_daily, always, kind="dhe")
    ecdhe = kex_spans(dataset.ecdhe_daily, always, kind="ecdhe")
    return dhe, ecdhe


def test_fig5_kex_reuse(bench_data, benchmark, save_artifact):
    dataset, _ = bench_data
    dhe, ecdhe = benchmark(compute, dataset)

    thresholds = [1, 7, 30] if BENCH_DAYS >= 40 else [1, min(7, BENCH_DAYS - 2)]
    text = multi_cdf_table(
        {"DHE": max_span_cdf(dhe), "ECDHE": max_span_cdf(ecdhe)},
        thresholds=thresholds, formatter=lambda d: f"{d}d",
        title="Figure 5: (EC)DHE server value reuse (max span per domain)",
    )
    dhe_fracs = span_fractions(dhe)
    ecdhe_fracs = span_fractions(ecdhe)
    text += (
        f"\n\nDHE   domains={len(dhe)}  >=1d {dhe_fracs[1]:.1%}  "
        f">=7d {dhe_fracs[7]:.1%}  >=30d {dhe_fracs[30]:.1%}"
        f"\nECDHE domains={len(ecdhe)}  >=1d {ecdhe_fracs[1]:.1%}  "
        f">=7d {ecdhe_fracs[7]:.1%}  >=30d {ecdhe_fracs[30]:.1%}"
    )
    save_artifact("fig5_kex_reuse.txt", text)
    from repro.figures import cdf_svg
    save_artifact("fig5_kex_reuse.svg", cdf_svg(
        {"DHE": max_span_cdf(dhe), "ECDHE": max_span_cdf(ecdhe)},
        title="Figure 5: (EC)DHE value reuse", log_x=False,
        x_formatter=lambda d: f"{d:.0f}d", x_min=0.5,
        x_label="max span of a server KEX value (days)"))

    # Most domains never repeat a value across days (CDF starts high).
    assert max_span_cdf(dhe).fraction_at_most(0) > 0.60
    assert max_span_cdf(ecdhe).fraction_at_most(0) > 0.70
    # More domains complete ECDHE than DHE (paper: 80% vs 57%).
    assert len(ecdhe) > len(dhe)
    # Reuse tails are small but real, and decline with the threshold.
    assert 0.0 < dhe_fracs[1] < 0.40
    assert 0.0 < ecdhe_fracs[1] < 0.35
    assert dhe_fracs[7] <= dhe_fracs[1]
    assert ecdhe_fracs[7] <= ecdhe_fracs[1]
    if BENCH_DAYS >= 40:
        assert ecdhe_fracs[30] <= ecdhe_fracs[7]
