"""Figure 6 — STEK Sharing and Longevity Visualization.

Paper: boxes sized by service-group domain count, colored by STEK
longevity.  The two biggest groups (CloudFlare, Google) rotate within
24 h (green); TMall and Fastly never rotated (solid red); Jack Henry's
79 bank domains shared one key for 59 days.
"""

from benchhelpers import group_longevity_rows, spans_to_seconds

from repro.core import groups_from_shared_identifiers, stek_spans
from repro.figures import layout_treemap, render_treemap, severity_histogram
from repro.netsim.clock import DAY

from conftest import BENCH_DAYS


def compute(dataset):
    grouping = groups_from_shared_identifiers(
        [dataset.ticket_support, dataset.ticket_30min], "stek",
        dataset.domain_asn, dataset.as_names,
    )
    spans = stek_spans(dataset.ticket_daily, set(dataset.always_present))
    rows = group_longevity_rows(grouping, spans_to_seconds(spans))
    return layout_treemap(rows), rows


def test_fig6_stek_treemap(bench_data, benchmark, save_artifact):
    dataset, _ = bench_data
    cells, rows = benchmark(compute, dataset)
    histogram = severity_histogram(cells)
    text = render_treemap(
        cells, title="Figure 6: STEK sharing x longevity (area = domains)"
    ) + f"\n\ndomains per severity: {histogram}\ngroups: {rows}"
    save_artifact("fig6_stek_treemap.txt", text)
    from repro.figures import treemap_svg
    save_artifact("fig6_stek_treemap.svg", treemap_svg(
        cells, title="Figure 6: STEK sharing x longevity"))

    by_label = {}
    for label, size, longevity in rows:
        by_label.setdefault(label, []).append((size, longevity))

    # The two biggest groups are CloudFlare and Google, both sub-daily.
    sizes = sorted(((size, label) for label, entries in by_label.items()
                    for size, _ in entries), reverse=True)
    assert sizes[0][1] == "cloudflare"
    assert sizes[1][1] == "google"
    assert max(l for s, l in by_label["cloudflare"]) < 2 * DAY
    assert max(l for s, l in by_label["google"]) < 2 * DAY

    if BENCH_DAYS >= 40:
        # TMall and Fastly: never rotated -> red (>= 30 days).
        assert by_label["tmall"][0][1] >= 30 * DAY
        assert by_label["fastly"][0][1] >= 30 * DAY
        assert histogram["red"] > 0
