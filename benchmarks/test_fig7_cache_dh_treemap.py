"""Figure 7 — Session Caches and Diffie-Hellman Reuse Visualization.

Paper: cache-group windows are minutes-to-24 h (Blogspot's five caches
ran 4.5 h-24 h); DH groups are fewer and smaller but include long-lived
red blocks (Affinity's 62-day value, Jimdo's 17/19-day values).
"""

from benchhelpers import group_longevity_rows, spans_to_seconds

from repro.core import (
    groups_from_edges,
    groups_from_shared_identifiers,
    kex_spans,
    session_lifetime_by_domain,
)
from repro.figures import layout_treemap, render_treemap, severity_histogram
from repro.netsim.clock import DAY, HOUR

from conftest import BENCH_DAYS


def compute(dataset):
    cache_grouping = groups_from_edges(
        dataset.cache_edges, dataset.crossdomain_targets,
        dataset.domain_asn, dataset.as_names,
    )
    cache_lifetimes = session_lifetime_by_domain(dataset.session_probes)
    cache_rows = group_longevity_rows(cache_grouping, cache_lifetimes)

    always = set(dataset.always_present)
    dh_grouping = groups_from_shared_identifiers(
        [dataset.dhe_support, dataset.dhe_30min,
         dataset.ecdhe_support, dataset.ecdhe_30min],
        "dh", dataset.domain_asn, dataset.as_names,
    )
    dh_seconds = {}
    for kind, observations in (("dhe", dataset.dhe_daily), ("ecdhe", dataset.ecdhe_daily)):
        for name, seconds in spans_to_seconds(
            kex_spans(observations, always, kind=kind)
        ).items():
            dh_seconds[name] = max(dh_seconds.get(name, 0.0), seconds)
    dh_rows = group_longevity_rows(dh_grouping, dh_seconds)
    return cache_rows, dh_rows


def test_fig7_cache_dh_treemap(bench_data, benchmark, save_artifact):
    dataset, _ = bench_data
    cache_rows, dh_rows = benchmark(compute, dataset)

    cache_cells = layout_treemap(cache_rows)
    dh_cells = layout_treemap(dh_rows)
    text = "\n\n".join([
        render_treemap(cache_cells, title="Figure 7 (left): session caches"),
        f"cache domains per severity: {severity_histogram(cache_cells)}",
        render_treemap(dh_cells, title="Figure 7 (right): Diffie-Hellman reuse"),
        f"DH domains per severity: {severity_histogram(dh_cells)}",
    ])
    save_artifact("fig7_cache_dh_treemap.txt", text)
    from repro.figures import treemap_svg
    save_artifact("fig7_caches_treemap.svg", treemap_svg(
        cache_cells, title="Figure 7 (left): session caches"))
    save_artifact("fig7_dh_treemap.svg", treemap_svg(
        dh_cells, title="Figure 7 (right): Diffie-Hellman reuse"))

    cache_by_label = {}
    for label, size, longevity in cache_rows:
        cache_by_label.setdefault(label, []).append(longevity)

    # CloudFlare's big caches run short windows; Google's run long.
    assert max(cache_by_label["cloudflare"]) <= 1 * HOUR
    assert max(cache_by_label["google"]) >= 4 * HOUR

    # DH sharing is smaller in total than cache sharing (paper §6.3)…
    assert sum(size for _, size, _ in dh_rows) < sum(size for _, size, _ in cache_rows)
    if BENCH_DAYS >= 40:
        # …but contains long-lived red blocks (Affinity never rotates).
        dh_by_label = dict((label, longevity) for label, _, longevity in dh_rows)
        assert dh_by_label.get("affinity", 0) >= 30 * DAY
