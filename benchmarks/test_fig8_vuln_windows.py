"""Figure 8 / §6.4 — Overall Vulnerability Windows.

Paper headline: of always-present trusted domains, 38% have a combined
window >24 hours, 22% >7 days, 10% >30 days — despite ~90% using
forward-secret key exchanges.
"""

from repro.core import (
    combine_windows,
    combined_window_cdf,
    kex_spans,
    session_lifetime_by_domain,
    stek_spans,
    summarize_exposure,
)
from repro.core.report import render_exposure_summary
from repro.figures import ascii_cdf

from conftest import BENCH_DAYS


def compute(dataset):
    always = set(dataset.always_present)
    windows = combine_windows(
        stek_spans_by_domain=stek_spans(dataset.ticket_daily, always),
        session_lifetimes=session_lifetime_by_domain(dataset.session_probes),
        dhe_spans_by_domain=kex_spans(dataset.dhe_daily, always, kind="dhe"),
        ecdhe_spans_by_domain=kex_spans(dataset.ecdhe_daily, always, kind="ecdhe"),
    )
    return windows, summarize_exposure(windows)


def test_fig8_vulnerability_windows(bench_data, benchmark, save_artifact):
    dataset, _ = bench_data
    windows, summary = benchmark(compute, dataset)

    text = "\n\n".join([
        ascii_cdf(
            combined_window_cdf(windows),
            "Figure 8: combined vulnerability windows (CDF)",
            x_label="maximum exposure window", min_x=60.0,
        ),
        render_exposure_summary(summary),
    ])
    save_artifact("fig8_vuln_windows.txt", text)
    from repro.figures import cdf_svg
    save_artifact("fig8_vuln_windows.svg", cdf_svg(
        {"combined window": combined_window_cdf(windows)},
        title="Figure 8: overall vulnerability windows",
        x_label="maximum exposure window", x_min=60.0))

    assert summary.domains > 300
    # Paper: 38% > 24 h.  Provider-heavy small corpora push this up a
    # bit; assert the headline band generously.
    assert 0.20 < summary.fraction_over_24_hours < 0.65
    if BENCH_DAYS >= 20:
        # Paper: 22% > 7 days.
        assert 0.08 < summary.fraction_over_7_days < 0.45
        assert summary.fraction_over_7_days < summary.fraction_over_24_hours
    if BENCH_DAYS >= 40:
        # Paper: 10% > 30 days.
        assert 0.03 < summary.fraction_over_30_days < 0.30
        assert summary.fraction_over_30_days < summary.fraction_over_7_days
