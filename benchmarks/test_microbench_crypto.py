"""Library micro-benchmarks (not a paper artifact).

Throughput of the primitives the simulated scans lean on — useful when
sizing larger corpora (`REPRO_BENCH_POPULATION`) and for catching
performance regressions in the pure-Python crypto.
"""

import pytest

from repro.crypto import ec, rsa
from repro.crypto.aes import AES
from repro.crypto.rng import DeterministicRandom
from repro.tls.ciphers import MODERN_BROWSER_OFFER

from helpers import make_rig  # importable via conftest's sys.path setup


RNG = DeterministicRandom(31415)


def test_bench_aes_block(benchmark):
    cipher = AES(RNG.random_bytes(16))
    block = RNG.random_bytes(16)
    out = benchmark(cipher.encrypt_block, block)
    assert cipher.decrypt_block(out) == block


def test_bench_ec_keygen_secp128r1(benchmark):
    keypair = benchmark(ec.generate_keypair, ec.SECP128R1, RNG)
    assert ec.is_on_curve(ec.SECP128R1, keypair.public)


def test_bench_ec_shared_secret_p256(benchmark):
    ours = ec.generate_keypair(ec.P256, RNG)

    def fresh_shared():
        # A fresh peer defeats the shared-secret memo, so this measures
        # a genuine scalar multiplication.
        peer = ec.generate_keypair(ec.P256, RNG)
        return ours.shared_secret(peer.public)

    benchmark(fresh_shared)


def test_bench_rsa_sign(benchmark):
    key = rsa.generate_keypair(512, RNG)
    signature = benchmark(key.sign, b"server key exchange params")
    assert key.public.verify(b"server key exchange params", signature)


def test_bench_full_handshake(benchmark):
    rig = make_rig(seed=2718)

    def handshake():
        result = rig.client.connect(rig.server, "example.com",
                                    offer=MODERN_BROWSER_OFFER)
        assert result.ok
        return result

    benchmark(handshake)


def test_bench_abbreviated_handshake(benchmark):
    rig = make_rig(seed=161, ticket_window=10**9)
    first = rig.client.connect(rig.server, "example.com")
    assert first.ok and first.new_ticket is not None

    def resume():
        result = rig.client.connect(
            rig.server, "example.com",
            ticket=first.new_ticket.ticket, saved_session=first.session,
        )
        assert result.resumed
        return result

    benchmark(resume)
