"""§6 extension — blast-radius ranking of shared secrets.

§6 argues the *interaction* of sharing and longevity "presents an
enticing target": a small theft buys months of traffic across many
domains.  This benchmark scores every service group's blast radius
(member domains × median secret window, in domain-days) and produces
the attacker's — or a defender's — priority list.
"""

from repro.core import (
    groups_from_shared_identifiers,
    rank_targets,
    render_target_ranking,
    spans_to_window_seconds,
    stek_spans,
)


def compute(dataset):
    grouping = groups_from_shared_identifiers(
        [dataset.ticket_support, dataset.ticket_30min], "stek",
        dataset.domain_asn, dataset.as_names,
    )
    windows = spans_to_window_seconds(
        stek_spans(dataset.ticket_daily, set(dataset.always_present))
    )
    return rank_targets(grouping, windows, min_members=2)


def test_sec6_target_value(bench_data, benchmark, save_artifact):
    dataset, _ = bench_data
    targets = benchmark(compute, dataset)
    save_artifact(
        "sec6_target_value.txt",
        render_target_ranking(
            targets, "Secret blast-radius ranking (domain-days per theft)"
        ),
    )

    assert targets
    by_label = {t.label: t for t in targets}

    # The never-rotating shared STEKs dominate despite modest size —
    # the paper's TMall/Fastly/Yandex finding.
    top_labels = [t.label for t in targets[:5]]
    assert {"tmall", "fastly", "yandex"} & set(top_labels)

    # CloudFlare is by far the *largest* group but rotates sub-daily, so
    # its domain-days sit below the static keys' — §6.1's contrast.
    if "cloudflare" in by_label and "tmall" in by_label:
        cloudflare = by_label["cloudflare"]
        tmall = by_label["tmall"]
        assert cloudflare.member_domains > tmall.member_domains
        assert cloudflare.blast_radius_domain_days < tmall.blast_radius_domain_days

    # Ranking is sorted by blast radius.
    radii = [t.blast_radius_domain_days for t in targets]
    assert radii == sorted(radii, reverse=True)
