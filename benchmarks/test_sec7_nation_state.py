"""§7.2 — Nation-State Target Analysis (Google / Yandex).

Paper: Google rotates its STEK every 14 h but accepts tickets for 28 h
(steal two 16-byte keys per 28 h for full coverage); one STEK spans all
Google services; 9.1% of Alexa domains MX through Google.  Yandex used
one STEK continuously for 8+ months — one theft decrypts everything.

This benchmark runs live probes, so it builds its own small ecosystem
rather than using the cached corpus.
"""

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.hosting import EcosystemConfig, build_ecosystem
from repro.nationstate import analyze_target, render_report
from repro.nationstate.google import measure_stek_rotation
from repro.netsim.clock import HOUR
from repro.scanner import ZGrabber


@pytest.fixture(scope="module")
def target_ecosystem():
    return build_ecosystem(
        EcosystemConfig(population=450, seed=77, failure_rate=0.0)
    )


def test_sec7_google_target_analysis(target_ecosystem, benchmark, save_artifact):
    report = benchmark.pedantic(
        analyze_target,
        args=(target_ecosystem,),
        kwargs={"target_domain": "google.com", "rotation_horizon": 48 * HOUR},
        rounds=1, iterations=1,
    )
    save_artifact("sec7_google_analysis.txt", render_report(report))

    # 14-hour rotation measured from outside.
    assert report.rotation_seconds is not None
    assert 13 * HOUR <= report.rotation_seconds <= 15 * HOUR
    # Acceptance up to 28 h -> roughly two keys per day needed.
    assert report.acceptance_seconds is not None
    assert report.acceptance_seconds >= 13 * HOUR
    assert 1.0 <= report.steks_per_day <= 2.1
    # One STEK spans the provider's whole estate.
    google_count = sum(
        1 for d in target_ecosystem.domains if d.provider == "google"
    )
    assert report.shared_stek_domains >= google_count - 3
    # MX concentration ≈ 9% plus the provider's own domains.
    assert 0.05 < report.mx_fraction < 0.35
    # Mail protocols terminate on the same STEK (§7.2: SMTPS/IMAPS/POP3S).
    assert report.mail_ports_sharing_stek == [465, 993, 995]
    # And the point of it all: recorded traffic decrypts.
    assert report.connections_decrypted == report.connections_captured > 0
    assert b"GET /inbox" in report.sample_plaintext


def test_sec7_yandex_never_rotates(target_ecosystem, benchmark, save_artifact):
    grabber = ZGrabber(target_ecosystem, DeterministicRandom(88))
    ids, rotation = benchmark.pedantic(
        measure_stek_rotation,
        args=(grabber, "yandex.ru"),
        kwargs={"horizon": 48 * HOUR},
        rounds=1, iterations=1,
    )
    save_artifact(
        "sec7_yandex_analysis.txt",
        f"yandex.ru observed STEK ids over 48 h: {sorted(set(ids))}\n"
        f"rotation observed: {rotation}\n"
        "(one stolen key decrypts the entire collection window)",
    )
    assert len(set(ids)) == 1
    assert rotation is None
