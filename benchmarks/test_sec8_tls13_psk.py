"""§8.1 extension — TLS 1.3 (draft-15) PSK exposure.

The paper warns that TLS 1.3's PSKs re-create the session-ticket
attack surface: draft-15 allows 7-day PSK lifetimes, 0-RTT data is
keyed by the PSK alone, and ``psk_ke`` resumption gives up forward
secrecy entirely.  This benchmark models a fleet of domains resuming
under each mode and measures what a PSK-key thief can decrypt.
"""

from repro.crypto import ec
from repro.crypto.rng import DeterministicRandom
from repro.netsim.clock import DAY
from repro.tls13 import (
    DRAFT15_MAX_PSK_LIFETIME,
    PskIssuer,
    PskMode,
    attacker_recover_keys,
    resume,
)

FLEET = 200


def simulate_fleet(seed=99):
    """Issue PSKs, resume under all modes, then steal the issuer key."""
    rng = DeterministicRandom(seed)
    issuer = PskIssuer(rng.fork("issuer"))
    records = []
    for index in range(FLEET):
        secret = rng.random_bytes(32)
        psk = issuer.issue(secret, now=index * 600.0, domain=f"d{index}.example")
        cr, sr = rng.random_bytes(32), rng.random_bytes(32)
        mode = PskMode.PSK_KE if index % 2 == 0 else PskMode.PSK_DHE_KE
        reused_dh = (index % 10 == 1)  # 10% of DHE resumptions reuse values
        server_kp = ec.generate_keypair(ec.SECP128R1, rng) if reused_dh else None
        keys, used_kp, client_pub = resume(
            psk, cr, sr, mode, rng, server_keypair=server_kp
        )
        records.append((psk, cr, sr, mode, keys, used_kp if reused_dh else None,
                        client_pub))

    # The theft: the issuer's long-lived encryption key.
    full, early_only, safe = 0, 0, 0
    for psk, cr, sr, mode, keys, leaked_kp, client_pub in records:
        stolen_secret = issuer.attacker_open_identity(psk.identity)
        assert stolen_secret == psk.secret
        recovered = attacker_recover_keys(
            stolen_secret, cr, sr, mode,
            observed_client_public=client_pub,
            stolen_server_keypair=leaked_kp,
        )
        if recovered.traffic_secret == keys.traffic_secret:
            full += 1
        elif recovered.early_data_secret == keys.early_data_secret:
            early_only += 1
        else:
            safe += 1
    return full, early_only, safe


def test_sec8_tls13_psk_exposure(benchmark, save_artifact):
    full, early_only, safe = benchmark(simulate_fleet)

    text = "\n".join([
        "TLS 1.3 (draft-15) PSK exposure under issuer-key theft",
        "",
        f"resumed connections simulated:      {FLEET}",
        f"fully decrypted (psk_ke / reused DH): {full}",
        f"0-RTT early data only (psk_dhe_ke):   {early_only}",
        f"fully protected:                      {safe}",
        "",
        f"draft-15 PSK lifetime ceiling: {DRAFT15_MAX_PSK_LIFETIME / DAY:.0f} days",
        "psk_ke re-creates the RFC 5077 exposure; psk_dhe_ke protects",
        "1-RTT data but 0-RTT early data always falls to PSK theft.",
    ])
    save_artifact("sec8_tls13_psk.txt", text)

    # All psk_ke connections (half) + the reused-DH psk_dhe_ke slice fall.
    assert full == FLEET // 2 + FLEET // 10
    # Every remaining psk_dhe_ke connection leaks exactly its 0-RTT data.
    assert early_only == FLEET - full
    assert safe == 0  # 0-RTT always falls — §8.1's sharpest point
