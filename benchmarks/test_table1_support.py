"""Table 1 — Support for Forward Secrecy and Resumption.

Paper: of ~955k Alexa domains, ~45% browser-trusted TLS; 59% of those
support DHE, 89% ECDHE, 82% issue tickets; nearly all ticket issuers
repeat a STEK within 10 connections; 7.2% of DHE and 15.5% of ECDHE
supporters repeat a key-exchange value.
"""

from repro.core import support_waterfall
from repro.core.report import render_waterfalls


def compute_sections(dataset):
    # The DHE-only and ECDHE-only scans cannot observe general trust
    # (servers without the offered family refuse outright), so — like
    # the paper, which pairs each restricted scan with full-scan trust
    # data — the trusted population comes from the modern-offer scan.
    trusted = {
        o.domain for o in dataset.ticket_support if o.success and o.cert_trusted
    }
    return [
        support_waterfall(dataset.dhe_support, "dhe",
                          *dataset.list_sizes["dhe"], trusted_domains=trusted),
        support_waterfall(dataset.ecdhe_support, "ecdhe",
                          *dataset.list_sizes["ecdhe"], trusted_domains=trusted),
        support_waterfall(dataset.ticket_support, "ticket",
                          *dataset.list_sizes["ticket"]),
    ]


def test_table1_support(bench_data, benchmark, save_artifact):
    dataset, _ = bench_data
    sections = benchmark(compute_sections, dataset)
    save_artifact("table1_support.txt", render_waterfalls(sections))

    dhe, ecdhe, ticket = sections
    trusted = ticket.browser_trusted
    assert trusted > 0

    # Waterfalls are monotone by construction of the population.
    for section in sections:
        counts = [count for _, count in section.rows()]
        assert counts == sorted(counts, reverse=True), section.label

    # Shape: DHE support ≈ 59% of trusted, ECDHE ≈ 89% (paper Table 1).
    assert 0.40 < dhe.supporting / dhe.browser_trusted < 0.80
    assert 0.80 < ecdhe.supporting / ecdhe.browser_trusted <= 1.0
    # Tickets issued by most trusted domains; nearly all issuers repeat
    # a STEK id within ten connections (paper: 353,124 of 354,697).
    assert 0.65 < ticket.supporting / ticket.browser_trusted < 0.95
    assert ticket.repeated_value / ticket.supporting > 0.95
    assert ticket.always_same_value / ticket.supporting > 0.60

    # KEX value repetition is the exception, not the rule (7.2% / 15.5%).
    assert dhe.repeated_value / dhe.supporting < 0.40
    assert ecdhe.repeated_value / ecdhe.supporting < 0.45
    # ...and ECDHE reuse is more common than DHE reuse in absolute terms.
    assert ecdhe.repeated_value > dhe.repeated_value
