"""Table 2 — Top Domains with Prolonged STEK Reuse.

Paper rows: yahoo.com (63 d), qq.com (56), taobao.com (63),
pinterest.com (63), yandex.ru (63), netflix.com (54), imgur.com (63),
tmall.com (63), fc2.com (18), pornhub.com (29).
"""

from repro.core import stek_spans, top_reuse_rows
from repro.core.report import render_top_reuse

from conftest import BENCH_DAYS

MIN_DAYS = 7 if BENCH_DAYS >= 40 else max(2, BENCH_DAYS // 3)


def compute(dataset):
    spans = stek_spans(dataset.ticket_daily, set(dataset.always_present))
    return top_reuse_rows(spans, dataset.ranks, min_days=MIN_DAYS, top_n=10)


def test_table2_top_stek_reuse(bench_data, benchmark, save_artifact):
    dataset, _ = bench_data
    rows = benchmark(compute, dataset)
    save_artifact(
        "table2_top_stek.txt",
        render_top_reuse(rows, "Table 2: top domains with prolonged STEK reuse "
                               f"(>= {MIN_DAYS} days)"),
    )

    assert len(rows) == 10
    assert [row.rank for row in rows] == sorted(row.rank for row in rows)

    named = {row.domain for row in rows}
    # The paper's most popular long-reusers dominate the table.
    expected = {"yahoo.com", "qq.com", "taobao.com", "pinterest.com",
                "netflix.com", "imgur.com", "yandex.ru"}
    assert len(named & expected) >= 5, named

    by_name = {row.domain: row for row in rows}
    if "yahoo.com" in by_name:
        # Never rotated: seen first and last day -> inclusive full span.
        assert by_name["yahoo.com"].days == BENCH_DAYS
    if "netflix.com" in by_name and BENCH_DAYS >= 56:
        assert by_name["netflix.com"].days == 54
    if "qq.com" in by_name and BENCH_DAYS >= 58:
        assert by_name["qq.com"].days == 56
