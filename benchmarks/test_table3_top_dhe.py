"""Table 3 — Top Domains with Prolonged DHE Reuse.

Paper rows: netflix.com (59 d), fc2.com (18), ebay.in (7), ebay.it (8),
bleacherreport.com (24), kayak.com (13), cbssports.com (60),
gamefaqs.com (12), overstock.com (17), cookpad.com (63).
"""

from repro.core import kex_spans, top_reuse_rows
from repro.core.report import render_top_reuse

from conftest import BENCH_DAYS

MIN_DAYS = 7 if BENCH_DAYS >= 40 else max(2, BENCH_DAYS // 3)


def compute(dataset):
    spans = kex_spans(dataset.dhe_daily, set(dataset.always_present), kind="dhe")
    return top_reuse_rows(spans, dataset.ranks, min_days=MIN_DAYS, top_n=10), spans


def test_table3_top_dhe_reuse(bench_data, benchmark, save_artifact):
    dataset, _ = bench_data
    rows, spans = benchmark(compute, dataset)
    save_artifact(
        "table3_top_dhe.txt",
        render_top_reuse(rows, "Table 3: top domains with prolonged DHE reuse "
                               f"(>= {MIN_DAYS} days)"),
    )

    assert rows
    assert [row.rank for row in rows] == sorted(row.rank for row in rows)
    named = {row.domain for row in rows}
    expected = {"netflix.com", "fc2.com", "cbssports.com", "cookpad.com",
                "bleacherreport.com", "kayak.com", "ebay.in", "ebay.it",
                "overstock.com", "gamefaqs.com"}
    assert len(named & expected) >= 4, named

    by_name = {row.domain: row for row in rows}
    if "cookpad.com" in by_name:
        assert by_name["cookpad.com"].days == BENCH_DAYS  # never regenerated
    if "fc2.com" in by_name and BENCH_DAYS >= 20:
        assert 16 <= by_name["fc2.com"].days <= 19
