"""Table 4 — Top Domains with Prolonged ECDHE Reuse.

Paper rows: netflix.com (59 d), whatsapp.com (62), vice.com (26),
9gag.com (31), liputan6.com (28), paytm.com (27), playstation.com (11),
woot.com (62), bleacherreport.com (24), leagueoflegends.com (27).
"""

from repro.core import kex_spans, top_reuse_rows
from repro.core.report import render_top_reuse

from conftest import BENCH_DAYS

MIN_DAYS = 7 if BENCH_DAYS >= 40 else max(2, BENCH_DAYS // 3)


def compute(dataset):
    spans = kex_spans(dataset.ecdhe_daily, set(dataset.always_present), kind="ecdhe")
    return (
        top_reuse_rows(spans, dataset.ranks, min_days=MIN_DAYS, top_n=10),
        top_reuse_rows(spans, dataset.ranks, min_days=MIN_DAYS, top_n=100),
    )


def test_table4_top_ecdhe_reuse(bench_data, benchmark, save_artifact):
    dataset, _ = bench_data
    rows, all_rows = benchmark(compute, dataset)
    save_artifact(
        "table4_top_ecdhe.txt",
        render_top_reuse(rows, "Table 4: top domains with prolonged ECDHE reuse "
                               f"(>= {MIN_DAYS} days)"),
    )

    assert rows
    named = {row.domain for row in rows}
    expected = {"netflix.com", "whatsapp.com", "vice.com", "9gag.com",
                "liputan6.com", "paytm.com", "playstation.com", "woot.com",
                "bleacherreport.com", "leagueoflegends.com"}
    # At scaled populations, anonymous long-reusing independents land
    # among the top ranks more densely than at 1M scale, so the top-10
    # mixes them with the paper's named rows…
    assert len(named & expected) >= 4, named
    # …but every paper row must appear in the full >=7-day list.
    all_named = {row.domain for row in all_rows}
    assert expected <= all_named, expected - all_named

    by_name = {row.domain: row for row in rows}
    if "whatsapp.com" in by_name and BENCH_DAYS >= 63:
        assert by_name["whatsapp.com"].days == 62
    if "netflix.com" in by_name and BENCH_DAYS >= 61:
        assert by_name["netflix.com"].days == 59
