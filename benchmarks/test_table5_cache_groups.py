"""Table 5 — Largest Session Cache Service Groups.

Paper: 212,491 groups, 86% singletons; the largest are CloudFlare #1
(30,163) and #2 (15,241), then Automattic x2, five Blogspot caches,
and Shopify.
"""

from repro.core import groups_from_edges
from repro.core.report import render_largest_groups


def compute(dataset):
    return groups_from_edges(
        dataset.cache_edges,
        dataset.crossdomain_targets,
        dataset.domain_asn,
        dataset.as_names,
    )


def test_table5_cache_groups(bench_data, benchmark, save_artifact):
    dataset, truth = bench_data
    grouping = benchmark(compute, dataset)
    save_artifact(
        "table5_cache_groups.txt",
        render_largest_groups(grouping, "Table 5: largest session cache service groups"),
    )

    # Most groups are singletons (paper: 86%).
    assert grouping.singleton_count / grouping.group_count > 0.55

    labels = [g.label for g in grouping.largest(10)]
    # CloudFlare's two caches are the two largest groups.
    assert labels[0] == "cloudflare"
    assert labels.count("cloudflare") >= 2
    # Google (Blogspot) caches appear among the largest.
    assert "google" in labels

    # Sampled transitive growth is sound: no measured group exceeds the
    # largest true shared cache.
    assert len(grouping.largest(1)[0]) <= max(truth["cache_group_sizes"])
