"""Table 6 — Largest STEK Service Groups.

Paper: 170,634 groups, 83% singletons; the largest are CloudFlare
(62,176), Google (8,973), Automattic, TMall, Shopify, GoDaddy, Amazon,
and three Tumblr groups.
"""

from repro.core import groups_from_shared_identifiers
from repro.core.report import render_largest_groups


def compute(dataset):
    return groups_from_shared_identifiers(
        [dataset.ticket_support, dataset.ticket_30min],
        "stek",
        dataset.domain_asn,
        dataset.as_names,
    )


def test_table6_stek_groups(bench_data, benchmark, save_artifact):
    dataset, truth = bench_data
    grouping = benchmark(compute, dataset)
    save_artifact(
        "table6_stek_groups.txt",
        render_largest_groups(grouping, "Table 6: largest STEK service groups"),
    )

    assert grouping.singleton_count / grouping.group_count > 0.55

    rows = [(g.label, len(g)) for g in grouping.largest(10)]
    labels = [label for label, _ in rows]
    # CloudFlare first, Google second — the paper's ordering.
    assert labels[0] == "cloudflare"
    assert labels[1] == "google"
    top = dict(rows)
    assert top["cloudflare"] > top["google"]
    # Tumblr's three separate STEK groups show up as separate entries
    # (they are small at scaled populations, so look beyond the top 10).
    wide_labels = [g.label for g in grouping.largest(40)]
    assert wide_labels.count("tumblr") >= 2

    # Identifier-based grouping never merges distinct true groups.
    assert len(grouping.largest(1)[0]) <= max(truth["stek_group_sizes"])
