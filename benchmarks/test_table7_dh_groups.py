"""Table 7 — Largest Diffie-Hellman Service Groups.

Paper: 421,492 groups, 99% singletons; largest are SquareSpace (1,627),
LiveJournal (1,330), two Jimdo groups, Distil, Atypon, Affinity,
Line Corp., Digital Insight, EdgeCast; Hostway's DHE value spanned
137 domains / 119 IPs.
"""

from repro.core import groups_from_shared_identifiers
from repro.core.report import render_largest_groups


def compute(dataset):
    return groups_from_shared_identifiers(
        [dataset.dhe_support, dataset.dhe_30min,
         dataset.ecdhe_support, dataset.ecdhe_30min],
        "dh",
        dataset.domain_asn,
        dataset.as_names,
    )


def test_table7_dh_groups(bench_data, benchmark, save_artifact):
    dataset, _ = bench_data
    grouping = benchmark(compute, dataset)
    save_artifact(
        "table7_dh_groups.txt",
        render_largest_groups(grouping, "Table 7: largest Diffie-Hellman service groups"),
    )

    # DH sharing is rarer than cache/STEK sharing: paper says 99% of
    # groups were singletons.
    assert grouping.singleton_count / grouping.group_count > 0.85

    labels = [g.label for g in grouping.largest(10) if len(g) > 1]
    sharing_operators = {"squarespace", "livejournal", "jimdo", "affinity",
                         "distil", "atypon", "linecorp", "digitalinsight",
                         "edgecast", "hostway"}
    assert labels, "expected at least one multi-domain DH group"
    assert set(labels) <= sharing_operators, labels
    # SquareSpace is the largest DH group, as in the paper.
    assert labels[0] == "squarespace"
