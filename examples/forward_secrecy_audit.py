#!/usr/bin/env python3
"""Forward-secrecy audit: run a compressed version of the paper's study
and report each domain's *vulnerability window* — how long after a
"forward secret" connection its traffic remains decryptable if the
server's stored secrets leak.

This is the paper's §6 analysis as an operator-facing tool.

Run:  python examples/forward_secrecy_audit.py  (takes ~2-3 minutes)
"""

from repro import EcosystemConfig, StudyConfig, build_ecosystem, core, run_study
from repro.figures import ascii_cdf
from repro.netsim.clock import DAY, format_duration

STUDY_DAYS = 10


def main() -> None:
    ecosystem = build_ecosystem(EcosystemConfig(population=460, seed=42))
    config = StudyConfig(
        days=STUDY_DAYS,
        probe_domain_count=200,
        dhe_support_day=2, ecdhe_support_day=3, ticket_support_day=4,
        crossdomain_day=5, session_probe_day=6, ticket_probe_day=8,
    )
    print(f"scanning {len(ecosystem.active_domains())} domains daily "
          f"for {STUDY_DAYS} days…")
    dataset = run_study(ecosystem, config)

    always = set(dataset.always_present)
    stek_spans = core.stek_spans(dataset.ticket_daily, always)
    dhe_spans = core.kex_spans(dataset.dhe_daily, always, kind="dhe")
    ecdhe_spans = core.kex_spans(dataset.ecdhe_daily, always, kind="ecdhe")
    session_lifetimes = core.session_lifetime_by_domain(dataset.session_probes)

    windows = core.combine_windows(
        stek_spans_by_domain=stek_spans,
        session_lifetimes=session_lifetimes,
        dhe_spans_by_domain=dhe_spans,
        ecdhe_spans_by_domain=ecdhe_spans,
    )
    summary = core.summarize_exposure(windows)
    print()
    print(core.render_exposure_summary(summary))

    print()
    print(ascii_cdf(
        core.combined_window_cdf(windows),
        "Figure 8-style CDF: combined vulnerability windows",
        x_label="window (log scale)",
        min_x=60.0,
    ))

    # Name and shame: the ten most exposed popular domains.
    worst = sorted(
        windows.values(),
        key=lambda w: (-w.combined, dataset.ranks.get(w.domain, 1 << 30)),
    )[:10]
    print("\nmost exposed domains (window, dominant mechanism):")
    for window in worst:
        rank = dataset.ranks.get(window.domain, 0)
        print(f"  #{rank:<6} {window.domain:<32} "
              f"{format_duration(window.combined):>8}  via {window.dominant_mechanism}")

    # What an operator should take away (§8).
    over_day = [w for w in windows.values() if w.combined > DAY]
    by_mechanism = {}
    for window in over_day:
        by_mechanism[window.dominant_mechanism] = (
            by_mechanism.get(window.dominant_mechanism, 0) + 1
        )
    print(f"\nof the {len(over_day)} domains exposed >24 h, the dominant "
          f"mechanism was: {by_mechanism}")
    print("recommendation: rotate STEKs daily, cap session caches, and "
          "never cache (EC)DHE values (paper §8.2).")


if __name__ == "__main__":
    main()
