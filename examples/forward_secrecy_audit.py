#!/usr/bin/env python3
"""Forward-secrecy audit: run a compressed version of the paper's study
and report each domain's *vulnerability window* — how long after a
"forward secret" connection its traffic remains decryptable if the
server's stored secrets leak.

This is the paper's §6 analysis as an operator-facing tool.  The study
streams its records to disk and the analysis runs through the
streaming engine (:mod:`repro.analysis`), so the dataset is never
resident in memory — the same path ``repro audit`` uses.

Run:  python examples/forward_secrecy_audit.py  (takes ~2-3 minutes;
set REPRO_EXAMPLE_QUICK=1 for a smaller ~30 s variant, as CI does)
"""

import os
import shutil
import tempfile

from repro import EcosystemConfig, StudyConfig, build_ecosystem, core
from repro.analysis import analyze, audit_inputs_from_analysis
from repro.figures import ascii_cdf
from repro.netsim.clock import DAY, format_duration
from repro.scanner import run_study

QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
STUDY_DAYS = 4 if QUICK else 10
POPULATION = 330 if QUICK else 460


def main() -> None:
    ecosystem = build_ecosystem(EcosystemConfig(population=POPULATION, seed=42))
    if QUICK:
        config = StudyConfig(
            days=STUDY_DAYS, probe_domain_count=60,
            dhe_support_day=1, ecdhe_support_day=1, ticket_support_day=2,
            crossdomain_day=2, session_probe_day=2, ticket_probe_day=3,
        )
    else:
        config = StudyConfig(
            days=STUDY_DAYS, probe_domain_count=200,
            dhe_support_day=2, ecdhe_support_day=3, ticket_support_day=4,
            crossdomain_day=5, session_probe_day=6, ticket_probe_day=8,
        )
    workdir = tempfile.mkdtemp(prefix="fs-audit-")
    try:
        print(f"scanning {len(ecosystem.active_domains())} domains daily "
              f"for {STUDY_DAYS} days (streaming to {workdir})…")
        run_study(ecosystem, config, stream_dir=workdir)

        # Fold the on-disk channels into mergeable partials; nothing is
        # loaded whole.  A second run would hit the .analysis/ cache.
        result = analyze(workdir, workers=2)
        print(f"analyzed {sum(result.channel_rows.values()):,} records in "
              f"{result.chunks} chunks ({result.elapsed_seconds:.1f}s)")
        inputs = audit_inputs_from_analysis(result)
        windows = inputs.windows

        summary = core.summarize_exposure(windows)
        print()
        print(core.render_exposure_summary(summary))

        print()
        print(ascii_cdf(
            core.combined_window_cdf(windows),
            "Figure 8-style CDF: combined vulnerability windows",
            x_label="window (log scale)",
            min_x=60.0,
        ))

        # Name and shame: the ten most exposed popular domains.
        worst = sorted(
            windows.values(),
            key=lambda w: (-w.combined, inputs.ranks.get(w.domain, 1 << 30)),
        )[:10]
        print("\nmost exposed domains (window, dominant mechanism):")
        for window in worst:
            rank = inputs.ranks.get(window.domain, 0)
            print(f"  #{rank:<6} {window.domain:<32} "
                  f"{format_duration(window.combined):>8}  "
                  f"via {window.dominant_mechanism}")

        # What an operator should take away (§8).
        over_day = [w for w in windows.values() if w.combined > DAY]
        by_mechanism = {}
        for window in over_day:
            by_mechanism[window.dominant_mechanism] = (
                by_mechanism.get(window.dominant_mechanism, 0) + 1
            )
        print(f"\nof the {len(over_day)} domains exposed >24 h, the dominant "
              f"mechanism was: {by_mechanism}")
        print("recommendation: rotate STEKs daily, cap session caches, and "
              "never cache (EC)DHE values (paper §8.2).")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
