#!/usr/bin/env python3
"""Heartbleed-to-decryption, end to end (paper §2.1's threat made real).

A passive observer records a "forward secret" HTTPS connection.  Later,
a Heartbleed-class memory over-read against the server yields its
session-ticket encryption key — and the recorded connection decrypts.

Run:  python examples/heartbleed_harvest.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tests"))
from helpers import make_rig  # the same compact rig the test suite uses

from repro.crypto.rng import DeterministicRandom
from repro.nationstate import NationStateAttacker, PassiveCollector
from repro.nationstate.leak import VulnerableServer, harvest_leaks


def main() -> None:
    rig = make_rig(seed=14)
    collector = PassiveCollector()

    # 1. A victim browses; an on-path observer records the wire bytes.
    connection = rig.client.connect(rig.server, "example.com", capture=True)
    assert connection.ok
    rig.client.exchange_data(
        connection, b"POST /login HTTP/1.1\r\n\r\nuser=alice&pass=hunter2"
    )
    recorded = collector.intercept("example.com", rig.clock.now(), connection.captured)
    print(f"recorded connection: cipher={connection.cipher_suite.name}")
    print(f"  forward-secret key exchange: {connection.forward_secret_kex}")
    print(f"  application records captured: {len(recorded.app_records)}")

    # 2. Days later: the server is vulnerable to a bounded over-read.
    rig.clock.advance(3 * 86400)
    vulnerable = VulnerableServer(rig.server, DeterministicRandom(99))
    harvest = harvest_leaks(vulnerable, attempts=16)
    print(f"\nheartbleed harvest after {harvest.leaks_used} probes:")
    print(f"  STEKs recovered:          {len(harvest.steks)}")
    print(f"  master secrets recovered: {len(harvest.master_secrets)}")
    print(f"  kex privates recovered:   {len(harvest.kex_privates)}")

    # 3. Retrospective decryption with the harvested key material.
    attacker = NationStateAttacker()
    attacker.steal_steks(harvest.steks)
    outcome = attacker.decrypt(recorded)
    print(f"\nretrospective decryption: success={outcome.success} "
          f"(method={outcome.method})")
    for plaintext in outcome.plaintexts:
        print(f"  recovered: {plaintext[:60]!r}")
    print("\nthe connection used ECDHE — 'forward secret' — but the ticket")
    print("rode the wire encrypted under a key that outlived it by days.")


if __name__ == "__main__":
    main()
