#!/usr/bin/env python3
"""The §7 threat, end to end: a passive collector records TLS traffic
to a Google-like provider; months of "forward secret" connections fall
to the theft of one 16-byte session-ticket encryption key.

Everything the attacker uses is either on the wire (recorded flights)
or stolen server state (the STEK) — no protocol backdoors.

Run:  python examples/nation_state_decryption.py
"""

from repro import EcosystemConfig, build_ecosystem
from repro.crypto.rng import DeterministicRandom
from repro.nationstate import NationStateAttacker, PassiveCollector, analyze_target, render_report
from repro.netsim.clock import HOUR
from repro.scanner import ZGrabber


def main() -> None:
    ecosystem = build_ecosystem(EcosystemConfig(population=450, seed=1789,
                                                failure_rate=0.0))
    grabber = ZGrabber(ecosystem, DeterministicRandom(7))

    # --- Phase 1: bulk passive collection (XKEYSCORE-style) -------------
    collector = PassiveCollector()
    victims = ["gmail.com", "drive.google.com", "docs.google.com", "youtube.com"]
    print("passively recording TLS connections:")
    for index, domain in enumerate(victims):
        result, _, _ = grabber.connect(domain, capture=True)
        assert result.ok, result.error
        grabber.client.exchange_data(
            result, f"GET /private/doc{index} HTTP/1.1\r\nHost: {domain}".encode()
        )
        recorded = collector.intercept(domain, ecosystem.clock.now(), result.captured)
        print(f"  {domain:<22} ciphertext records: {len(recorded.app_records)}  "
              f"cipher: {result.cipher_suite.name}")
        ecosystem.advance_to(ecosystem.clock.now() + 2 * HOUR)

    # The collector holds only wire bytes: no keys, no plaintext.
    attacker = NationStateAttacker()
    failures = attacker.decrypt_all(collector)
    print(f"\nwithout stolen keys: {sum(1 for o in failures if o.success)}"
          f"/{len(collector)} connections decryptable")

    # --- Phase 2: the theft ------------------------------------------------
    # One intrusion / subpoena / implant against the provider yields the
    # current and retained STEKs — 32 bytes of key names aside, two
    # 16-byte AES keys.
    store = ecosystem.domain("google.com").stek_store
    attacker.steal_steks(store.all_keys)
    print(f"\nstolen: {len(store.all_keys)} STEKs "
          f"({', '.join(s.key_name.hex()[:8] + '…' for s in store.all_keys)})")

    # --- Phase 3: retrospective decryption ---------------------------------
    outcomes = attacker.decrypt_all(collector)
    decrypted = [o for o in outcomes if o.success]
    print(f"with stolen STEKs: {len(decrypted)}/{len(collector)} "
          f"connections decrypted\n")
    for domain, outcome in zip(victims, outcomes):
        if outcome.success:
            request = outcome.plaintexts[0].decode(errors="replace")
            print(f"  {domain:<22} -> {request.splitlines()[0]}")

    # --- Phase 4: the full target analysis (§7.2) -------------------------
    print("\nrunning the full target analysis (rotation, acceptance, MX)…\n")
    report = analyze_target(ecosystem, "google.com", rotation_horizon=48 * HOUR)
    print(render_report(report))
    print("\ntakeaway: two 16-byte keys per 28 hours decrypt every "
          "ticket-bearing connection to every domain sharing this STEK.")


if __name__ == "__main__":
    main()
