#!/usr/bin/env python3
"""Quickstart: build a synthetic HTTPS ecosystem, scan one domain, and
inspect the TLS crypto shortcuts it exposes.

Run:  python examples/quickstart.py
"""

from repro import EcosystemConfig, build_ecosystem
from repro.crypto.rng import DeterministicRandom
from repro.netsim.clock import format_duration
from repro.scanner import ZGrabber


def main() -> None:
    # A small deterministic ecosystem: hosting providers, notable
    # domains pinned at their paper ranks, independent sites, DNS, ASes.
    ecosystem = build_ecosystem(EcosystemConfig(population=450, seed=2016))
    print(f"built ecosystem: {len(ecosystem.active_domains())} ranked domains, "
          f"{len(ecosystem.network)} HTTPS endpoints\n")

    grabber = ZGrabber(ecosystem, DeterministicRandom(1))

    # A zgrab-style connection to a famous never-rotating STEK domain.
    observation = grabber.grab("yahoo.com")
    print("zgrab yahoo.com:")
    print(f"  success:        {observation.success}")
    print(f"  cipher:         {observation.cipher}")
    print(f"  forward secret: {observation.forward_secret}")
    print(f"  cert trusted:   {observation.cert_trusted}")
    print(f"  session ID set: {observation.session_id_set}")
    print(f"  ticket issued:  {observation.ticket_issued}")
    print(f"  ticket hint:    {observation.ticket_hint}s")
    print(f"  STEK id:        {observation.stek_id}")

    # The STEK identifier is the paper's §4.3 signal: connect again
    # tomorrow and the same id means the encryption key never rotated.
    ecosystem.advance_days(1)
    tomorrow = grabber.grab("yahoo.com")
    print(f"\nnext day STEK id: {tomorrow.stek_id}")
    print(f"same key in use:  {tomorrow.stek_id == observation.stek_id}")

    # Compare with Google's 14-hour rotation.
    google_today = grabber.grab("google.com")
    ecosystem.advance_days(1)
    google_tomorrow = grabber.grab("google.com")
    print(f"\ngoogle.com rotates sub-daily: "
          f"{google_today.stek_id != google_tomorrow.stek_id}")

    # Resume a session — the client-side of the §4.1 measurement.
    result, _, _ = grabber.connect("yahoo.com")
    resumed, _, _ = grabber.connect(
        "yahoo.com", session_id=result.session_id, saved_session=result.session
    )
    print(f"\nsession-ID resumption 0 s later: resumed={resumed.resumed}")

    behavior = ecosystem.domain("yahoo.com").behavior
    print(f"(ground truth: cache lifetime "
          f"{format_duration(behavior.session_cache_lifetime)}, "
          f"ticket window {format_duration(behavior.ticket_window_seconds)})")


if __name__ == "__main__":
    main()
