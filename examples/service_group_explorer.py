#!/usr/bin/env python3
"""Service-group explorer: measure which domains share TLS secret state
(session caches, STEKs, Diffie-Hellman values) — the paper's §5 —
and render the Figure 6/7-style treemaps.

The support scans, 30-minute scans, and cross-domain probes all run as
one streamed study; the shared-state analysis then comes straight out
of the streaming engine's ``stek_groups``/``cache_groups`` aggregates
(union-find over shared identifiers and probe edges).

Run:  python examples/service_group_explorer.py  (takes ~1-2 minutes;
set REPRO_EXAMPLE_QUICK=1 for a smaller ~30 s variant, as CI does)
"""

import os
import shutil
import tempfile

from repro import EcosystemConfig, StudyConfig, build_ecosystem, core
from repro.analysis import analyze
from repro.figures import layout_treemap, render_treemap, severity_histogram
from repro.netsim.clock import DAY
from repro.scanner import run_study

QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
STUDY_DAYS = 4 if QUICK else 7
POPULATION = 330 if QUICK else 460


def main() -> None:
    ecosystem = build_ecosystem(EcosystemConfig(population=POPULATION, seed=5))
    config = StudyConfig(
        days=STUDY_DAYS, probe_domain_count=60,
        dhe_support_day=1, ecdhe_support_day=1, ticket_support_day=1,
        crossdomain_day=2, session_probe_day=2, ticket_probe_day=2,
    )
    workdir = tempfile.mkdtemp(prefix="group-explorer-")
    try:
        print(f"streaming a {STUDY_DAYS}-day study over "
              f"{len(ecosystem.active_domains())} domains "
              f"(10-connection STEK scans, cross-domain probes)…")
        run_study(ecosystem, config, stream_dir=workdir)
        result = analyze(workdir)

        stek_groups = result.outputs["stek_groups"]
        print()
        print(core.render_largest_groups(
            stek_groups, "Table 6-style: largest STEK service groups"))

        cache_groups = result.outputs["cache_groups"]
        print()
        print(core.render_largest_groups(
            cache_groups, "Table 5-style: largest session-cache groups"))

        # Figure 6-style treemap: group size × STEK longevity, with
        # longevity taken from the daily channel's identifier spans.
        spans = result.spans("stek_spans")
        group_rows = []
        for group in stek_groups.groups:
            if len(group) < 2:
                continue
            member_spans = [
                spans[d].max_span_days * DAY
                for d in group.domains if d in spans
            ]
            if not member_spans:
                continue
            member_spans.sort()
            median = member_spans[len(member_spans) // 2]
            group_rows.append((group.label or "?", len(group), median))
        cells = layout_treemap(group_rows)
        print()
        print(render_treemap(
            cells, title="Figure 6-style: STEK sharing x longevity"))
        print(f"\ndomains by severity: {severity_histogram(cells)}")
        print(f"(a {STUDY_DAYS}-day window under-detects the 30+ day red "
              "class; the benchmark harness runs the full 63 days)")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
