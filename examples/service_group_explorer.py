#!/usr/bin/env python3
"""Service-group explorer: measure which domains share TLS secret state
(session caches, STEKs, Diffie-Hellman values) — the paper's §5 —
and render the Figure 6/7-style treemaps.

Run:  python examples/service_group_explorer.py  (takes ~1 minute)
"""

from repro import EcosystemConfig, build_ecosystem, core
from repro.crypto.rng import DeterministicRandom
from repro.figures import layout_treemap, render_treemap, severity_histogram
from repro.netsim.clock import DAY
from repro.scanner import (
    CrossDomainConfig,
    ProbeTarget,
    SweepConfig,
    ZGrabber,
    cross_domain_cache_probe,
    sweep,
    thirty_minute_scan,
)


def main() -> None:
    ecosystem = build_ecosystem(EcosystemConfig(population=460, seed=5))
    grabber = ZGrabber(ecosystem, DeterministicRandom(55))
    today = ecosystem.alexa_list()

    print("10-connection STEK scan…")
    support = sweep(grabber, today, SweepConfig(connections_per_domain=10,
                                                window_seconds=6 * 3600))
    thirty = thirty_minute_scan(grabber, today)

    domain_asn, as_names = {}, {}
    for autonomous_system in ecosystem.as_registry.all_systems():
        as_names[autonomous_system.asn] = autonomous_system.name
    targets = []
    for rank, name in today:
        try:
            address = ecosystem.dns.resolve_all(name)[0]
        except KeyError:
            continue
        autonomous_system = ecosystem.as_registry.lookup(address)
        if autonomous_system:
            domain_asn[name] = autonomous_system.asn
        targets.append(ProbeTarget(name, str(address),
                                   autonomous_system.asn if autonomous_system else None))

    stek_groups = core.groups_from_shared_identifiers(
        [support, thirty], "stek", domain_asn, as_names
    )
    print()
    print(core.render_largest_groups(stek_groups, "Table 6-style: largest STEK service groups"))

    print("\ncross-domain session-cache probe (≤5 same-AS + ≤5 same-IP peers)…")
    edges = cross_domain_cache_probe(
        grabber, targets, DeterministicRandom(66), CrossDomainConfig()
    )
    cache_groups = core.groups_from_edges(
        edges, [t.domain for t in targets], domain_asn, as_names
    )
    print()
    print(core.render_largest_groups(cache_groups, "Table 5-style: largest session-cache groups"))

    # Figure 6-style treemap: group size × STEK longevity.  Longevity
    # here comes from a few more daily scans.
    print("\nrunning 6 more daily scans to estimate STEK longevity…")
    daily = list(support)
    for _ in range(6):
        ecosystem.advance_days(1)
        daily.extend(sweep(grabber, ecosystem.alexa_list(),
                           SweepConfig(window_seconds=3600)))
    spans = core.stek_spans(daily)
    group_rows = []
    for group in stek_groups.groups:
        if len(group) < 2:
            continue
        member_spans = [
            spans[d].max_span_days * DAY for d in group.domains if d in spans
        ]
        if not member_spans:
            continue
        member_spans.sort()
        median = member_spans[len(member_spans) // 2]
        group_rows.append((group.label or "?", len(group), median))
    cells = layout_treemap(group_rows)
    print()
    print(render_treemap(cells, title="Figure 6-style: STEK sharing x longevity"))
    print(f"\ndomains by severity: {severity_histogram(cells)}")
    print("(a 7-day window under-detects the 30+ day red class; the "
          "benchmark harness runs the full 63 days)")


if __name__ == "__main__":
    main()
