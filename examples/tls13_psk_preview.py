#!/usr/bin/env python3
"""TLS 1.3 preview (paper §2.4/§8.1): do PSKs fix the ticket problem?

Simulates resumptions under draft-15's two PSK modes and shows what a
stolen issuer key recovers in each: psk_ke re-creates the RFC 5077
exposure wholesale, psk_dhe_ke protects 1-RTT traffic — and 0-RTT
early data falls in every mode.

Run:  python examples/tls13_psk_preview.py
"""

from repro.crypto import ec
from repro.crypto.rng import DeterministicRandom
from repro.netsim.clock import DAY
from repro.tls13 import (
    DRAFT15_MAX_PSK_LIFETIME,
    PskIssuer,
    PskMode,
    attacker_recover_keys,
    resume,
)


def show(mode: PskMode, reused_dh: bool = False) -> None:
    rng = DeterministicRandom(hash((mode.value, reused_dh)) & 0xFFFF)
    issuer = PskIssuer(rng.fork("issuer"))
    psk = issuer.issue(rng.random_bytes(32), now=0.0, domain="mail.example")
    cr, sr = rng.random_bytes(32), rng.random_bytes(32)
    server_kp = ec.generate_keypair(ec.SECP128R1, rng) if reused_dh else None
    keys, used_kp, client_pub = resume(psk, cr, sr, mode, rng,
                                       server_keypair=server_kp)

    # The theft: the issuer's ticket-encryption key opens the identity.
    stolen_secret = issuer.attacker_open_identity(psk.identity)
    recovered = attacker_recover_keys(
        stolen_secret, cr, sr, mode,
        observed_client_public=client_pub,
        stolen_server_keypair=server_kp if reused_dh else None,
    )
    label = mode.value + (" + reused server DH value" if reused_dh else "")
    one_rtt = "DECRYPTED" if recovered.traffic_secret == keys.traffic_secret else "safe"
    zero_rtt = ("DECRYPTED" if recovered.early_data_secret == keys.early_data_secret
                else "safe")
    print(f"{label:<40} 1-RTT traffic: {one_rtt:<10} 0-RTT early data: {zero_rtt}")


def main() -> None:
    print("TLS 1.3 draft-15 resumption under issuer-key theft")
    print(f"(PSK lifetime ceiling: {DRAFT15_MAX_PSK_LIFETIME / DAY:.0f} days)\n")
    show(PskMode.PSK_KE)
    show(PskMode.PSK_DHE_KE)
    show(PskMode.PSK_DHE_KE, reused_dh=True)
    print("\ntakeaways (paper §8.1):")
    print(" * psk_ke is RFC 5077 all over again — one key, total recall")
    print(" * psk_dhe_ke helps, unless the server reuses its DHE value (§4.4)")
    print(" * 0-RTT early data is never forward secret against PSK theft")
    print(" * and the draft blesses 7-day PSK lifetimes without discussion")


if __name__ == "__main__":
    main()
