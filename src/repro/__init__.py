"""repro — a reproduction of "Measuring the Security Harm of TLS Crypto
Shortcuts" (Springall, Durumeric, Halderman; IMC 2016).

The package builds a synthetic HTTPS ecosystem, scans it with a
from-scratch TLS 1.2 toolchain, and reproduces the paper's analyses:
secret-state lifetimes, cross-domain sharing, vulnerability windows,
and the nation-state retrospective-decryption threat.

Layering (each layer only sees the ones below it):

    crypto → tls / x509 → netsim → hosting → scanner → core → figures
                                                     ↘ nationstate

Quick start::

    from repro import build_ecosystem, EcosystemConfig, run_study, StudyConfig
    from repro import core

    eco = build_ecosystem(EcosystemConfig(population=600, seed=1))
    config = StudyConfig(
        days=14,
        dhe_support_day=9, ecdhe_support_day=9, ticket_support_day=10,
        crossdomain_day=11, session_probe_day=12, ticket_probe_day=12,
        shards=4, workers=4,      # sharded scan; output depends on shards only
    )
    data = run_study(eco, config)
    spans = core.stek_spans(data.ticket_daily, set(data.always_present))
    print(core.span_fractions(spans))

(Experiment days must fall inside ``range(days)`` — ``StudyConfig``
validates the schedule instead of silently skipping experiments.)
"""

from . import core, crypto, figures, hosting, nationstate, netsim, scanner, tls, tls13, x509
from .hosting import EcosystemConfig, build_ecosystem
from .scanner import StudyConfig, StudyStats, run_study, run_study_with_stats

__version__ = "1.0.0"

__all__ = [
    "core",
    "crypto",
    "figures",
    "hosting",
    "nationstate",
    "netsim",
    "scanner",
    "tls",
    "tls13",
    "x509",
    "EcosystemConfig",
    "build_ecosystem",
    "StudyConfig",
    "StudyStats",
    "run_study",
    "run_study_with_stats",
    "__version__",
]
