"""Streaming, parallel analysis over sharded JSONL datasets.

The scan side of the pipeline has been streaming since PR 1; this
package (PR 5) makes the *analysis* side match.  ``repro report`` and
``repro audit`` run on an :class:`~repro.analysis.engine.AnalysisEngine`
that chunks each channel file, folds raw record dicts into mergeable
per-chunk partial states (:class:`~repro.analysis.aggregates.
ShardAggregate`), caches the partials under ``<dataset>/.analysis/``,
and merges them in deterministic order — producing byte-identical
output to the old in-memory path while holding memory to O(one chunk).

Layered like the rest of the repo:

* :mod:`repro.analysis.chunks`     — line-aligned byte-range planner;
* :mod:`repro.analysis.aggregates` — the ShardAggregate protocol and
  the per-table implementations;
* :mod:`repro.analysis.engine`     — process-pool driver + partial
  cache + telemetry;
* :mod:`repro.analysis.reports`    — report/audit input builders (one
  legacy, one streaming) and the shared renderers.
"""

from .aggregates import (
    EdgeGroupsAggregate,
    IdentifierGroupsAggregate,
    LifetimeAggregate,
    RotationAggregate,
    ShardAggregate,
    SpanAggregate,
    SupportAggregate,
    default_aggregates,
)
from .chunks import DEFAULT_CHUNK_BYTES, Chunk, plan_chunks, read_chunk
from .engine import (
    CACHE_DIR_NAME,
    CACHE_SCHEMA,
    AnalysisEngine,
    AnalysisResult,
    analyze,
)
from .reports import (
    AuditInputs,
    ReportInputs,
    audit_inputs_from_analysis,
    audit_inputs_from_dataset,
    render_audit,
    render_events_provenance,
    render_report,
    report_inputs_from_analysis,
    report_inputs_from_dataset,
)

__all__ = [
    "ShardAggregate",
    "SpanAggregate",
    "LifetimeAggregate",
    "SupportAggregate",
    "RotationAggregate",
    "IdentifierGroupsAggregate",
    "EdgeGroupsAggregate",
    "default_aggregates",
    "Chunk",
    "plan_chunks",
    "read_chunk",
    "DEFAULT_CHUNK_BYTES",
    "AnalysisEngine",
    "AnalysisResult",
    "analyze",
    "CACHE_SCHEMA",
    "CACHE_DIR_NAME",
    "ReportInputs",
    "AuditInputs",
    "report_inputs_from_dataset",
    "report_inputs_from_analysis",
    "audit_inputs_from_dataset",
    "audit_inputs_from_analysis",
    "render_report",
    "render_audit",
    "render_events_provenance",
]
