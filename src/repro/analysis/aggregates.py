"""ShardAggregate implementations: mergeable partial analysis states.

Each aggregate consumes one or more JSONL channels and maintains a
*partial state* that is

* **foldable** — built incrementally from raw record dicts, one chunk
  at a time, without constructing record dataclasses;
* **associative** — ``merge(merge(a, b), c) == merge(a, merge(b, c))``
  for chunk states ``a, b, c`` taken in stream order, mirroring the
  shard-order determinism of :func:`repro.obs.metrics.merge_snapshots`;
* **JSON-serializable** — partials round-trip through the
  ``<dataset>/.analysis/`` cache with key order intact, because the
  in-memory analysis path's output depends on dict insertion order
  (first-seen order breaks ties in the top-reuse tables).

Merging chunk partials left-to-right in file order therefore
reproduces the exact dict insertion order a single in-memory pass
would have produced — which is what makes the streamed ``repro
report``/``repro audit`` byte-identical to the legacy path.

>>> agg = SpanAggregate("stek_spans", "ticket_daily", kind="stek")
>>> rows = [
...     {"domain": "a.test", "day": 0, "success": True,
...      "ticket_issued": True, "stek_id": "k1"},
...     {"domain": "a.test", "day": 5, "success": True,
...      "ticket_issued": True, "stek_id": "k1"},
...     {"domain": "a.test", "day": 9, "success": False,
...      "ticket_issued": True, "stek_id": "k1"},
... ]
>>> left = agg.fold(agg.zero(), "ticket_daily", rows[:1])
>>> right = agg.fold(agg.zero(), "ticket_daily", rows[1:])
>>> spans = agg.finalize(agg.merge(left, right), {})
>>> spans["a.test"].max_span_days  # day 9 failed, so the span is 0..5
5
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..core.groups import GroupingResult, groups_from_edges, groups_from_identifier_map
from ..core.spans import DomainSpans, IdentifierSpan
from ..netsim.clock import HOUR
from ..scanner.records import CrossDomainEdge


def _as_names(meta: dict) -> dict:
    """``meta.json`` stores AS numbers as JSON string keys; restore ints."""
    return {int(k): v for k, v in (meta.get("as_names") or {}).items()}


class ShardAggregate:
    """Base protocol: fold record dicts into a mergeable partial state.

    Subclasses define ``zero``/``fold``/``merge``/``finalize`` plus a
    ``spec()`` identifying everything output-affecting about the
    aggregate; the analysis cache keys stored partials on the spec's
    fingerprint so a configuration change invalidates exactly the
    states it affects.  ``merge`` may mutate and return its left
    argument (states are never shared between aggregates).
    """

    #: Stable key for this aggregate's output in an AnalysisResult.
    name: str
    #: Channels consumed, in the order their streams are folded.
    channels: Tuple[str, ...]
    #: Bump when fold/merge/finalize semantics change (cache poison pill).
    version = 1

    def spec(self) -> dict:
        return {
            "aggregate": type(self).__name__,
            "name": self.name,
            "channels": list(self.channels),
            "version": self.version,
            **self._params(),
        }

    def _params(self) -> dict:
        return {}

    def zero(self):
        """The identity state: ``merge(zero(), s) == s``."""
        raise NotImplementedError

    def fold(self, state, channel: str, rows: Iterable[dict]):
        """Fold a chunk of ``channel`` rows (stream order) into ``state``."""
        raise NotImplementedError

    def merge(self, left, right):
        """Combine two partials; ``left`` precedes ``right`` in the stream."""
        raise NotImplementedError

    def finalize(self, state, meta: dict):
        """Turn the merged state into the analysis output."""
        raise NotImplementedError


def _secret_value(row: dict, kind: str) -> Optional[str]:
    """The scanned secret identifier for ``kind``, or None.

    Matches ``core.spans._extract_stek`` / ``_extract_kex`` (with the
    ``kex_spans`` kind filter) and ``core.support._per_domain_values``.
    """
    if kind == "stek" or kind == "ticket":
        return row["stek_id"] if row["ticket_issued"] else None
    return row["kex_public"] if row["kex_kind"] == kind else None


class SpanAggregate(ShardAggregate):
    """First/last-seen identifier spans (``core.spans.collect_spans``).

    State: ``{domain: {identifier: [first_day, last_day, count]}}``.
    ``first_day`` is first-seen in *stream* order (so ``merge`` keeps
    the left value), ``last_day`` is the max, ``count`` the sum —
    exactly the legacy estimator's firsts/lasts/counts maps.
    """

    def __init__(self, name: str, channel: str, kind: str) -> None:
        if kind not in ("stek", "dhe", "ecdhe"):
            raise ValueError(f"unknown span kind {kind!r}")
        self.name = name
        self.channels = (channel,)
        self.kind = kind

    def _params(self) -> dict:
        return {"kind": self.kind}

    def zero(self) -> dict:
        return {}

    def fold(self, state: dict, channel: str, rows: Iterable[dict]) -> dict:
        kind = self.kind
        for row in rows:
            if not row["success"]:
                continue
            identifier = _secret_value(row, kind)
            if not identifier:
                continue
            by_id = state.setdefault(row["domain"], {})
            entry = by_id.get(identifier)
            if entry is None:
                by_id[identifier] = [row["day"], row["day"], 1]
            else:
                if row["day"] > entry[1]:
                    entry[1] = row["day"]
                entry[2] += 1
        return state

    def merge(self, left: dict, right: dict) -> dict:
        for domain, by_id in right.items():
            left_ids = left.setdefault(domain, {})
            for identifier, entry in by_id.items():
                mine = left_ids.get(identifier)
                if mine is None:
                    left_ids[identifier] = entry
                else:
                    if entry[1] > mine[1]:
                        mine[1] = entry[1]
                    mine[2] += entry[2]
        return left

    def finalize(self, state: dict, meta: dict) -> dict:
        result = {}
        for domain, by_id in state.items():
            entry = DomainSpans(domain=domain)
            for identifier, (first, last, count) in by_id.items():
                entry.spans.append(IdentifierSpan(
                    domain=domain, identifier=identifier,
                    first_day=first, last_day=last, observations=count,
                ))
            result[domain] = entry
        return result


class LifetimeAggregate(ShardAggregate):
    """Per-domain honored resumption lifetime, in seconds.

    Streamed twin of ``core.lifetimes.session_lifetime_by_domain``:
    probes that never resumed are skipped; probes still resuming at
    the 24-hour cutoff contribute the probe ceiling; a domain's value
    is the max across its probes.
    """

    def __init__(self, name: str, channel: str = "session_probes",
                 probe_ceiling_seconds: float = 24 * HOUR) -> None:
        self.name = name
        self.channels = (channel,)
        self.probe_ceiling_seconds = probe_ceiling_seconds

    def _params(self) -> dict:
        return {"probe_ceiling_seconds": self.probe_ceiling_seconds}

    def zero(self) -> dict:
        return {}

    def fold(self, state: dict, channel: str, rows: Iterable[dict]) -> dict:
        ceiling = self.probe_ceiling_seconds
        for row in rows:
            if row["max_success_delay"] is None:
                continue
            value = ceiling if row["hit_probe_ceiling"] else row["max_success_delay"]
            state[row["domain"]] = max(state.get(row["domain"], 0.0), value)
        return state

    def merge(self, left: dict, right: dict) -> dict:
        for domain, value in right.items():
            left[domain] = max(left.get(domain, 0.0), value)
        return left

    def finalize(self, state: dict, meta: dict) -> dict:
        return state


class SupportAggregate(ShardAggregate):
    """Per-domain trust flag + secret-value tally from a support scan.

    State: ``{domain: [browser_trusted, {value: count}]}`` over
    successful connections — everything ``core.support_waterfall``
    needs (via :func:`repro.core.support.waterfall_from_tallies`)
    without keeping the per-connection value lists in memory.
    """

    def __init__(self, name: str, channel: str, kind: str) -> None:
        if kind not in ("dhe", "ecdhe", "ticket"):
            raise ValueError(f"unknown support kind {kind!r}")
        self.name = name
        self.channels = (channel,)
        self.kind = kind

    def _params(self) -> dict:
        return {"kind": self.kind}

    def zero(self) -> dict:
        return {}

    def fold(self, state: dict, channel: str, rows: Iterable[dict]) -> dict:
        kind = self.kind
        for row in rows:
            if not row["success"]:
                continue
            entry = state.setdefault(row["domain"], [False, {}])
            if row["cert_trusted"]:
                entry[0] = True
            value = _secret_value(row, kind)
            if value:
                entry[1][value] = entry[1].get(value, 0) + 1
        return state

    def merge(self, left: dict, right: dict) -> dict:
        for domain, (trusted, tally) in right.items():
            entry = left.setdefault(domain, [False, {}])
            if trusted:
                entry[0] = True
            for value, count in tally.items():
                entry[1][value] = entry[1].get(value, 0) + count
        return left

    def finalize(self, state: dict, meta: dict) -> dict:
        return {
            "trusted": {domain: bool(entry[0]) for domain, entry in state.items()},
            "tallies": {domain: entry[1] for domain, entry in state.items()},
        }


class RotationAggregate(ShardAggregate):
    """Per-domain day -> STEK identifier maps for rotation inference.

    State: ``{domain: {str(day): stek_id}}`` (string day keys so the
    state JSON-round-trips; ``finalize`` restores ints).  Later chunks
    overwrite earlier ones per (domain, day), matching the legacy
    last-write-wins build in ``core.rotation.estimate_rotation``.
    """

    def __init__(self, name: str, channel: str = "ticket_daily") -> None:
        self.name = name
        self.channels = (channel,)

    def zero(self) -> dict:
        return {}

    def fold(self, state: dict, channel: str, rows: Iterable[dict]) -> dict:
        for row in rows:
            if not row["success"] or not row["stek_id"]:
                continue
            state.setdefault(row["domain"], {})[str(row["day"])] = row["stek_id"]
        return state

    def merge(self, left: dict, right: dict) -> dict:
        for domain, by_day in right.items():
            left.setdefault(domain, {}).update(by_day)
        return left

    def finalize(self, state: dict, meta: dict) -> dict:
        return {
            domain: {int(day): key for day, key in by_day.items()}
            for domain, by_day in state.items()
        }


class IdentifierGroupsAggregate(ShardAggregate):
    """Service groups from shared secret identifiers (paper §5.2/§5.3).

    State: ``{identifier: [domains, first-seen order, deduplicated]}``.
    The union-find itself only runs at ``finalize`` (via
    :func:`repro.core.groups.groups_from_identifier_map`), because
    component membership — unlike union order — is all that determines
    the fully-sorted :class:`~repro.core.groups.GroupingResult`.
    """

    def __init__(self, name: str, channels: Tuple[str, ...],
                 kind: str = "stek") -> None:
        if kind not in ("stek", "dh"):
            raise ValueError(f"unknown identifier kind {kind!r}")
        self.name = name
        self.channels = tuple(channels)
        self.kind = kind

    def _params(self) -> dict:
        return {"kind": self.kind}

    def zero(self) -> dict:
        return {}

    def fold(self, state: dict, channel: str, rows: Iterable[dict]) -> dict:
        for row in rows:
            if not row["success"]:
                continue
            if self.kind == "stek":
                value = row["stek_id"] if row["ticket_issued"] else None
            else:
                value = row["kex_public"]
            if not value:
                continue
            domains = state.setdefault(value, [])
            if row["domain"] not in domains:
                domains.append(row["domain"])
        return state

    def merge(self, left: dict, right: dict) -> dict:
        for value, domains in right.items():
            mine = left.setdefault(value, [])
            for domain in domains:
                if domain not in mine:
                    mine.append(domain)
        return left

    def finalize(self, state: dict, meta: dict) -> GroupingResult:
        return groups_from_identifier_map(
            state, self.kind, meta.get("domain_asn"), _as_names(meta)
        )


class EdgeGroupsAggregate(ShardAggregate):
    """Session-cache service groups from cross-domain edges (§5.1).

    State: the edge rows themselves (tiny relative to scan channels);
    ``finalize`` rebuilds :class:`CrossDomainEdge` records and runs the
    legacy ``groups_from_edges`` with the probed-domain universe from
    ``meta.json``, so singleton accounting matches exactly.
    """

    def __init__(self, name: str, channel: str = "cache_edges") -> None:
        self.name = name
        self.channels = (channel,)

    def zero(self) -> list:
        return []

    def fold(self, state: list, channel: str, rows: Iterable[dict]) -> list:
        state.extend(rows)
        return state

    def merge(self, left: list, right: list) -> list:
        left.extend(right)
        return left

    def finalize(self, state: list, meta: dict) -> GroupingResult:
        return groups_from_edges(
            (CrossDomainEdge(**row) for row in state),
            meta.get("crossdomain_targets") or [],
            meta.get("domain_asn"), _as_names(meta),
        )


def default_aggregates() -> list:
    """The aggregate set behind ``repro report`` and ``repro audit``."""
    return [
        SpanAggregate("stek_spans", "ticket_daily", kind="stek"),
        SpanAggregate("dhe_spans", "dhe_daily", kind="dhe"),
        SpanAggregate("ecdhe_spans", "ecdhe_daily", kind="ecdhe"),
        LifetimeAggregate("session_lifetimes"),
        SupportAggregate("ticket_waterfall", "ticket_support", kind="ticket"),
        SupportAggregate("dhe_waterfall", "dhe_support", kind="dhe"),
        SupportAggregate("ecdhe_waterfall", "ecdhe_support", kind="ecdhe"),
        RotationAggregate("stek_rotation"),
        IdentifierGroupsAggregate(
            "stek_groups", ("ticket_support", "ticket_30min"), kind="stek"
        ),
        EdgeGroupsAggregate("cache_groups"),
    ]


__all__ = [
    "ShardAggregate",
    "SpanAggregate",
    "LifetimeAggregate",
    "SupportAggregate",
    "RotationAggregate",
    "IdentifierGroupsAggregate",
    "EdgeGroupsAggregate",
    "default_aggregates",
]
