"""Line-aligned byte-range chunking over a dataset's JSONL channels.

A merged dataset directory holds one ``<channel>.jsonl`` file per
channel (see :mod:`repro.scanner.datastore`).  The analysis engine
never loads a whole file: it partitions each channel into fixed-size
byte ranges and assigns every *line* to exactly one chunk — the chunk
whose range contains the line's first byte.  The partition is a pure
function of the file size and ``chunk_bytes``, so chunk boundaries are
identical across runs and worker counts.

Ownership rule (both ends use the same test, so chunks never overlap
and never leave gaps):

* a line belongs to the chunk in whose ``[start, end)`` range its
  first byte falls;
* a chunk whose ``start`` lands mid-line skips forward to the next
  line start before reading;
* a chunk whose ``end`` lands mid-line reads through the end of that
  straddling line (its first byte was inside the range).

>>> import json, tempfile, os
>>> tmp = tempfile.mkdtemp()
>>> path = os.path.join(tmp, "ticket_daily.jsonl")
>>> with open(path, "w") as fh:
...     _ = fh.write('{"n": 1}\\n{"n": 2}\\n{"n": 3}\\n')
>>> plan = plan_chunks(tmp, ["ticket_daily"], chunk_bytes=10)
>>> [(c.start, c.end) for c in plan]
[(0, 10), (10, 20), (20, 27)]
>>> [row["n"] for c in plan
...  for row in iter_chunk_rows(read_chunk(path, c.start, c.end))]
[1, 2, 3]
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

from ..scanner.datastore import channel_path

#: Default analysis chunk size.  Large enough that per-chunk overhead
#: (hashing, cache lookups, pool dispatch) is noise; small enough that
#: a worker's resident set stays at "one chunk + its partial states".
DEFAULT_CHUNK_BYTES = 1 << 20


@dataclass(frozen=True)
class Chunk:
    """One byte range of one channel file."""

    channel: str
    start: int
    end: int


def plan_chunks(directory: str, channels: Sequence[str],
                chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> List[Chunk]:
    """Deterministic chunk plan for ``channels`` (in the given order).

    Missing or empty channel files yield no chunks, mirroring how an
    absent channel behaves as an empty record list when loading the
    dataset in memory.
    """
    if chunk_bytes <= 0:
        raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
    plan: List[Chunk] = []
    for channel in channels:
        path = channel_path(directory, channel)
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        start = 0
        while start < size:
            end = min(size, start + chunk_bytes)
            plan.append(Chunk(channel, start, end))
            start = end
    return plan


def read_chunk(path: str, start: int, end: int) -> bytes:
    """The bytes of every line owned by ``[start, end)`` in ``path``.

    Returns ``b""`` when no line starts inside the range (possible when
    a single line is longer than the chunk size).
    """
    size = os.path.getsize(path)
    with open(path, "rb") as fh:
        if start:
            fh.seek(start - 1)
            if fh.read(1) != b"\n":
                fh.readline()  # mid-line start: previous chunk owns it
        begin = fh.tell()
        if begin >= end:
            return b""
        if end >= size:
            stop = size
        else:
            fh.seek(end - 1)
            if fh.read(1) == b"\n":
                stop = end
            else:
                fh.readline()  # straddling line: this chunk owns it
                stop = fh.tell()
        fh.seek(begin)
        return fh.read(stop - begin)


def iter_chunk_rows(blob: bytes) -> Iterator[dict]:
    """Parse a chunk's lines as JSON objects, skipping blank lines."""
    for line in blob.splitlines():
        if line.strip():
            yield json.loads(line)


def parse_chunk(blob: bytes) -> List[dict]:
    """All rows of a chunk as a list (each row parsed exactly once)."""
    return list(iter_chunk_rows(blob))


def iter_channel_rows(directory: str, channel: str) -> Iterator[dict]:
    """Stream one channel's rows without chunking (single-pass helper)."""
    path = channel_path(directory, channel)
    if not os.path.exists(path):
        return
    with open(path, "rb") as fh:
        for line in fh:
            if line.strip():
                yield json.loads(line)


def channels_in_order(channels: Iterable[str]) -> List[str]:
    """``channels`` deduplicated, preserving first-seen order."""
    seen = {}
    for channel in channels:
        seen.setdefault(channel, None)
    return list(seen)
