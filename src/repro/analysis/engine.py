"""The streaming analysis driver: chunk → fold → cache → merge.

``AnalysisEngine`` computes every registered aggregate's output from a
dataset directory in one pass per channel, without loading the dataset
into memory:

1. **Plan** — each channel file is split into deterministic
   line-aligned byte ranges (:mod:`repro.analysis.chunks`).
2. **Fold** — workers parse each chunk's rows once (raw dicts, no
   record dataclasses) and fold them into one partial state per
   aggregate.  ``--workers N`` fans chunks across a process pool the
   same way the scan engine fans shards; like there, worker count
   never affects output because
3. **Merge** — partials merge left-to-right in (channel, byte offset)
   order, which reproduces the exact dict insertion order of a
   single-threaded in-memory pass.
4. **Cache** — each chunk's partials persist under
   ``<dataset>/.analysis/`` keyed by the sha256 of the chunk's bytes
   plus each aggregate's spec fingerprint
   (:func:`repro.scanner.checkpoint.fingerprint_digest`), so re-running
   after a ``--resume`` or with a tweaked aggregate set only re-folds
   chunks whose bytes or specs actually changed.

Memory stays at O(largest chunk + aggregate states): the corpus itself
is never resident.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..obs.metrics import METRICS
from ..obs.trace import TRACER
from ..scanner.checkpoint import fingerprint_digest
from ..scanner.datastore import channel_path, read_meta
from .aggregates import ShardAggregate, default_aggregates
from .chunks import (
    DEFAULT_CHUNK_BYTES,
    Chunk,
    channels_in_order,
    parse_chunk,
    plan_chunks,
    read_chunk,
)

CACHE_SCHEMA = "repro-analysis/1"
CACHE_DIR_NAME = ".analysis"


@dataclass
class ChunkOutcome:
    """One worker's result for one chunk."""

    chunk: Chunk
    rows: int
    states: Dict[str, object]
    cache_hit: bool


@dataclass
class AnalysisResult:
    """Finalized aggregate outputs plus run bookkeeping."""

    directory: str
    meta: dict
    outputs: Dict[str, object]
    channel_rows: Dict[str, int]
    chunks: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 1
    elapsed_seconds: float = 0.0

    # -- convenience accessors used by report/audit wiring ---------------

    @property
    def always_present(self) -> set:
        return set(self.meta.get("always_present") or [])

    @property
    def ranks(self) -> dict:
        return self.meta.get("ranks") or {}

    def rows(self, channel: str) -> int:
        return self.channel_rows.get(channel, 0)

    def spans(self, name: str, domains: Optional[set] = None) -> dict:
        """A SpanAggregate output, optionally restricted to ``domains``.

        Filtering a finished span dict preserves insertion order among
        the surviving domains, so it is interchangeable with the legacy
        path's filter-during-collection.
        """
        result = self.outputs[name]
        if domains is None:
            return result
        return {d: s for d, s in result.items() if d in domains}

    def trusted_domains(self, name: str = "ticket_waterfall") -> set:
        """Browser-trusted domains from a support scan's aggregate."""
        trusted = self.outputs[name]["trusted"]
        return {domain for domain, ok in trusted.items() if ok}


def _cache_file(cache_dir: str, chunk: Chunk) -> str:
    return os.path.join(
        cache_dir, f"{chunk.channel}-{chunk.start:012d}-{chunk.end:012d}.json"
    )


def _spec_digests(aggregates: Sequence[ShardAggregate]) -> Dict[str, str]:
    return {agg.name: fingerprint_digest(agg.spec()) for agg in aggregates}


def _load_cached(path: str, digest: str, needed: Sequence[ShardAggregate],
                 specs: Dict[str, str]) -> Optional[ChunkOutcome]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return None
    if payload.get("schema") != CACHE_SCHEMA or payload.get("sha256") != digest:
        return None
    stored = payload.get("states", {})
    states: Dict[str, object] = {}
    for agg in needed:
        entry = stored.get(agg.name)
        if not isinstance(entry, dict) or entry.get("spec") != specs[agg.name]:
            return None
        states[agg.name] = entry["state"]
    return ChunkOutcome(
        chunk=Chunk(**payload["chunk"]),
        rows=int(payload.get("rows", 0)),
        states=states,
        cache_hit=True,
    )


def _write_cache(path: str, chunk: Chunk, digest: str, rows: int,
                 states: Dict[str, object], specs: Dict[str, str]) -> None:
    payload = {
        "schema": CACHE_SCHEMA,
        "chunk": {"channel": chunk.channel, "start": chunk.start,
                  "end": chunk.end},
        "sha256": digest,
        "rows": rows,
        "states": {
            name: {"spec": specs[name], "state": state}
            for name, state in states.items()
        },
    }
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)  # no sort_keys: state key order is load-bearing
    os.replace(tmp, path)


def _run_chunk(task) -> ChunkOutcome:
    """Worker entry point: fold one chunk for every aggregate that reads
    its channel (top-level function so the process pool can pickle it)."""
    directory, chunk, aggregates, use_cache = task
    needed = [a for a in aggregates if chunk.channel in a.channels]
    specs = _spec_digests(needed)
    blob = read_chunk(channel_path(directory, chunk.channel),
                      chunk.start, chunk.end)
    digest = hashlib.sha256(blob).hexdigest()
    cache_dir = os.path.join(directory, CACHE_DIR_NAME)
    cache_path = _cache_file(cache_dir, chunk)
    if use_cache:
        cached = _load_cached(cache_path, digest, needed, specs)
        if cached is not None:
            return cached
    rows = parse_chunk(blob)
    states = {
        agg.name: agg.fold(agg.zero(), chunk.channel, rows) for agg in needed
    }
    if use_cache:
        os.makedirs(cache_dir, exist_ok=True)
        _write_cache(cache_path, chunk, digest, len(rows), states, specs)
    return ChunkOutcome(chunk=chunk, rows=len(rows), states=states,
                        cache_hit=False)


@dataclass
class AnalysisEngine:
    """Streams a dataset directory through the registered aggregates."""

    directory: str
    aggregates: List[ShardAggregate] = field(default_factory=default_aggregates)
    workers: int = 1
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    use_cache: bool = True

    def channels(self) -> List[str]:
        """Channels consumed by the aggregate set, first-use order."""
        return channels_in_order(
            channel for agg in self.aggregates for channel in agg.channels
        )

    def run(self) -> AnalysisResult:
        started = time.monotonic()
        meta = read_meta(self.directory)
        with TRACER.span("analysis.plan", directory=self.directory):
            plan = plan_chunks(self.directory, self.channels(),
                               self.chunk_bytes)
        tasks = [
            (self.directory, chunk, self.aggregates, self.use_cache)
            for chunk in plan
        ]
        with TRACER.span("analysis.fold", chunks=len(plan),
                         workers=self.workers):
            if self.workers > 1 and len(tasks) > 1:
                pool_size = min(self.workers, len(tasks))
                with ProcessPoolExecutor(max_workers=pool_size) as pool:
                    # pool.map preserves submission order, so outcomes
                    # arrive in deterministic (channel, offset) order no
                    # matter which worker finishes first.
                    outcomes = list(pool.map(_run_chunk, tasks))
            else:
                outcomes = [_run_chunk(task) for task in tasks]
        by_channel: Dict[str, List[ChunkOutcome]] = {}
        channel_rows: Dict[str, int] = {}
        cache_hits = cache_misses = 0
        for outcome in outcomes:
            by_channel.setdefault(outcome.chunk.channel, []).append(outcome)
            channel_rows[outcome.chunk.channel] = (
                channel_rows.get(outcome.chunk.channel, 0) + outcome.rows
            )
            if outcome.cache_hit:
                cache_hits += 1
            else:
                cache_misses += 1
        outputs: Dict[str, object] = {}
        with TRACER.span("analysis.merge", aggregates=len(self.aggregates)):
            for agg in self.aggregates:
                state = agg.zero()
                for channel in agg.channels:
                    for outcome in by_channel.get(channel, []):
                        state = agg.merge(state, outcome.states[agg.name])
                outputs[agg.name] = agg.finalize(state, meta)
        METRICS.counter("analysis.chunks").inc(len(plan))
        METRICS.counter("analysis.cache.hit").inc(cache_hits)
        METRICS.counter("analysis.cache.miss").inc(cache_misses)
        for channel, count in channel_rows.items():
            METRICS.counter("analysis.rows", channel=channel).inc(count)
        return AnalysisResult(
            directory=self.directory,
            meta=meta,
            outputs=outputs,
            channel_rows=channel_rows,
            chunks=len(plan),
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            workers=self.workers,
            elapsed_seconds=time.monotonic() - started,
        )


def analyze(directory: str, *, workers: int = 1, use_cache: bool = True,
            chunk_bytes: int = DEFAULT_CHUNK_BYTES,
            aggregates: Optional[List[ShardAggregate]] = None) -> AnalysisResult:
    """One-call streaming analysis of a dataset directory."""
    engine = AnalysisEngine(
        directory=directory,
        aggregates=list(aggregates) if aggregates is not None
        else default_aggregates(),
        workers=workers,
        chunk_bytes=chunk_bytes,
        use_cache=use_cache,
    )
    return engine.run()


__all__ = [
    "AnalysisEngine",
    "AnalysisResult",
    "ChunkOutcome",
    "analyze",
    "CACHE_SCHEMA",
    "CACHE_DIR_NAME",
]
