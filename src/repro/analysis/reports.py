"""Report/audit wiring: one renderer, two input paths.

``repro report`` and ``repro audit`` historically loaded the dataset
and analyzed it in memory.  This module splits each command into an
*inputs* stage (two interchangeable builders: the legacy in-memory
dataset path, and the streaming :class:`~repro.analysis.engine.
AnalysisEngine` path) and a shared *render* stage, so byte-identical
output reduces to input equality — which the aggregate merge rules
guarantee (see :mod:`repro.analysis.aggregates`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .. import core
from ..core.groups import GroupingResult
from ..core.mitigations import evaluate_mitigations, render_mitigation_report
from ..core.rotation import RotationEstimate
from ..core.windows import VulnerabilityWindow
from .engine import AnalysisResult


@dataclass
class ReportInputs:
    """Everything ``repro report`` renders."""

    sections: List["core.SupportWaterfall"]
    stek_spans: Dict[str, "core.DomainSpans"]
    dhe_spans: Dict[str, "core.DomainSpans"]
    ecdhe_spans: Dict[str, "core.DomainSpans"]
    ranks: Dict[str, int]
    cache_groups: Optional[GroupingResult]
    stek_groups: Optional[GroupingResult]


@dataclass
class AuditInputs:
    """Everything ``repro audit`` renders."""

    windows: Dict[str, VulnerabilityWindow]
    estimates: Dict[str, RotationEstimate]
    ranks: Dict[str, int]


# ---------------------------------------------------------------------------
# Input builders
# ---------------------------------------------------------------------------


def report_inputs_from_dataset(dataset) -> ReportInputs:
    """The pre-PR-5 in-memory analysis path, kept as the reference
    implementation (``repro report --legacy``) and golden-test oracle."""
    always = set(dataset.always_present)
    sections: List[core.SupportWaterfall] = []
    stek_groups = None
    if dataset.ticket_support:
        trusted = {
            o.domain for o in dataset.ticket_support
            if o.success and o.cert_trusted
        }
        if dataset.dhe_support:
            sections.append(core.support_waterfall(
                dataset.dhe_support, "dhe", *dataset.list_sizes["dhe"],
                trusted_domains=trusted))
        if dataset.ecdhe_support:
            sections.append(core.support_waterfall(
                dataset.ecdhe_support, "ecdhe", *dataset.list_sizes["ecdhe"],
                trusted_domains=trusted))
        sections.append(core.support_waterfall(
            dataset.ticket_support, "ticket", *dataset.list_sizes["ticket"]))
        stek_groups = core.groups_from_shared_identifiers(
            [dataset.ticket_support, dataset.ticket_30min], "stek",
            dataset.domain_asn, dataset.as_names)
    cache_groups = None
    if dataset.cache_edges or dataset.crossdomain_targets:
        cache_groups = core.groups_from_edges(
            dataset.cache_edges, dataset.crossdomain_targets,
            dataset.domain_asn, dataset.as_names)
    return ReportInputs(
        sections=sections,
        stek_spans=core.stek_spans(dataset.ticket_daily, always),
        dhe_spans=core.kex_spans(dataset.dhe_daily, always, kind="dhe"),
        ecdhe_spans=core.kex_spans(dataset.ecdhe_daily, always, kind="ecdhe"),
        ranks=dataset.ranks,
        cache_groups=cache_groups,
        stek_groups=stek_groups,
    )


def report_inputs_from_analysis(result: AnalysisResult) -> ReportInputs:
    """The streaming path: the same inputs from finalized aggregates."""
    meta = result.meta
    list_sizes = meta.get("list_sizes") or {}
    always = result.always_present
    sections: List[core.SupportWaterfall] = []
    stek_groups = None
    if result.rows("ticket_support"):
        trusted = result.trusted_domains("ticket_waterfall")
        if result.rows("dhe_support"):
            dhe = result.outputs["dhe_waterfall"]
            sections.append(core.waterfall_from_tallies(
                dhe["tallies"], dhe["trusted"], "dhe",
                *list_sizes["dhe"], trusted_domains=trusted))
        if result.rows("ecdhe_support"):
            ecdhe = result.outputs["ecdhe_waterfall"]
            sections.append(core.waterfall_from_tallies(
                ecdhe["tallies"], ecdhe["trusted"], "ecdhe",
                *list_sizes["ecdhe"], trusted_domains=trusted))
        ticket = result.outputs["ticket_waterfall"]
        sections.append(core.waterfall_from_tallies(
            ticket["tallies"], ticket["trusted"], "ticket",
            *list_sizes["ticket"]))
        stek_groups = result.outputs["stek_groups"]
    cache_groups = None
    if result.rows("cache_edges") or meta.get("crossdomain_targets"):
        cache_groups = result.outputs["cache_groups"]
    return ReportInputs(
        sections=sections,
        stek_spans=result.spans("stek_spans", always),
        dhe_spans=result.spans("dhe_spans", always),
        ecdhe_spans=result.spans("ecdhe_spans", always),
        ranks=result.ranks,
        cache_groups=cache_groups,
        stek_groups=stek_groups,
    )


def audit_inputs_from_dataset(dataset) -> AuditInputs:
    """Legacy in-memory audit inputs (the ``--legacy`` oracle)."""
    always = set(dataset.always_present)
    windows = core.combine_windows(
        stek_spans_by_domain=core.stek_spans(dataset.ticket_daily, always),
        session_lifetimes=core.session_lifetime_by_domain(
            dataset.session_probes),
        dhe_spans_by_domain=core.kex_spans(
            dataset.dhe_daily, always, kind="dhe"),
        ecdhe_spans_by_domain=core.kex_spans(
            dataset.ecdhe_daily, always, kind="ecdhe"),
    )
    estimates = core.estimate_rotation(dataset.ticket_daily, always)
    return AuditInputs(windows=windows, estimates=estimates,
                       ranks=dataset.ranks)


def audit_inputs_from_analysis(result: AnalysisResult) -> AuditInputs:
    """Streaming audit inputs; ``core.combine_windows`` runs on the
    merged aggregates instead of freshly-collected spans."""
    always = result.always_present
    windows = core.combine_windows(
        stek_spans_by_domain=result.spans("stek_spans", always),
        session_lifetimes=result.outputs["session_lifetimes"],
        dhe_spans_by_domain=result.spans("dhe_spans", always),
        ecdhe_spans_by_domain=result.spans("ecdhe_spans", always),
    )
    estimates = core.estimates_from_day_keys(
        result.outputs["stek_rotation"], always)
    return AuditInputs(windows=windows, estimates=estimates,
                       ranks=result.ranks)


# ---------------------------------------------------------------------------
# Renderers (shared by both paths)
# ---------------------------------------------------------------------------


def render_report(inputs: ReportInputs, min_days: int = 7) -> str:
    """The full ``repro report`` text (no trailing newline)."""
    blocks: List[str] = []
    if inputs.sections:
        blocks.append(core.render_waterfalls(inputs.sections))
    blocks.append(core.render_top_reuse(
        core.top_reuse_rows(inputs.stek_spans, inputs.ranks,
                            min_days=min_days),
        f"Top domains with prolonged STEK reuse (>= {min_days} days)"))
    blocks.append("")
    blocks.append(core.render_top_reuse(
        core.top_reuse_rows(inputs.dhe_spans, inputs.ranks,
                            min_days=min_days),
        f"Top domains with prolonged DHE reuse (>= {min_days} days)"))
    blocks.append("")
    blocks.append(core.render_top_reuse(
        core.top_reuse_rows(inputs.ecdhe_spans, inputs.ranks,
                            min_days=min_days),
        f"Top domains with prolonged ECDHE reuse (>= {min_days} days)"))
    if inputs.cache_groups is not None:
        blocks.append("")
        blocks.append(core.render_largest_groups(
            inputs.cache_groups, "Largest session cache service groups"))
    if inputs.stek_groups is not None:
        blocks.append("")
        blocks.append(core.render_largest_groups(
            inputs.stek_groups, "Largest STEK service groups"))
    return "\n".join(blocks)


def render_audit(inputs: AuditInputs, worst: int = 0) -> str:
    """The full ``repro audit`` text (no trailing newline)."""
    blocks: List[str] = []
    summary = core.summarize_exposure(inputs.windows)
    blocks.append(core.render_exposure_summary(summary))
    blocks.append("")
    histogram = core.rotation_policy_histogram(inputs.estimates)
    blocks.append(f"inferred STEK rotation policies: {histogram}")
    blocks.append("")
    blocks.append(render_mitigation_report(
        evaluate_mitigations(inputs.windows)))
    if worst:
        blocks.append("")
        lines = [f"{'rank':>6}  {'domain':<34} {'window':>8}  mechanism"]
        ordered = sorted(
            inputs.windows.values(), key=lambda w: -w.combined)[:worst]
        for window in ordered:
            rank = inputs.ranks.get(window.domain, 0)
            lines.append(f"{rank:>6}  {window.domain:<34} "
                         f"{core.describe_window(window.combined):>8}  "
                         f"{window.dominant_mechanism}")
        blocks.append("\n".join(lines))
    return "\n".join(blocks)


def render_events_provenance(summary: dict, path: str) -> str:
    """A short provenance note appended below ``repro report --events``.

    ``summary`` is :func:`repro.obs.events.summarize_events` output for
    the event log the producing run streamed; the note surfaces the
    run-health facts a reader needs to judge the tables above (retries,
    chaos injections, breaker trips, whether the run aborted).
    """
    lines = [
        "run provenance (from event log)",
        f"  event log          {path}",
        f"  events             {summary.get('total', 0)}",
        f"  retries            {summary.get('retries', 0)}",
        f"  chaos injections   {summary.get('chaos_injections', 0)}",
        f"  breaker trips      {summary.get('breaker_trips', 0)}",
        f"  checkpoints        {summary.get('checkpoints', 0)}",
    ]
    if summary.get("aborted"):
        lines.append("  WARNING: the producing run ABORTED; "
                     "this dataset may be partial")
    return "\n".join(lines)


__all__ = [
    "ReportInputs",
    "AuditInputs",
    "report_inputs_from_dataset",
    "report_inputs_from_analysis",
    "audit_inputs_from_dataset",
    "audit_inputs_from_analysis",
    "render_report",
    "render_audit",
    "render_events_provenance",
]
