"""Repeatable performance benchmarks: ``python -m repro.bench``.

The measurement pipeline's throughput ceiling is the pure-Python
crypto underneath millions of simulated handshakes, so this harness
tracks two layers on every PR:

* **micro** — ops/sec of the primitives the scans lean on (AES blocks,
  ticket seal/open under one STEK, CBC, RSA-CRT signing, EC scalar
  multiplication, full and abbreviated handshakes);
* **e2e** — wall-clock and grabs/sec for a small reference study run
  end-to-end through the sharded scan engine, plus a ``scale_study``
  section that pushes a large daily-sweep-only population through the
  event-driven core (``concurrency=2048``, streamed to disk) and
  records RSS before/after so memory stays part of the trajectory;
* **analysis** — ``report`` + ``audit`` wall-clock on a synthetic
  corpus: the legacy in-memory path versus the streaming engine
  (:mod:`repro.analysis`) cold at 1 and 4 workers and with a warm
  partial cache, asserting byte-identical output along the way.

Results are emitted as JSON (``BENCH_<label>.json`` at the repo root
by convention) so the perf trajectory across PRs lives in version
control next to the code that produced it.  ``--baseline`` merges a
previously captured run into the output under ``"baseline"`` and
prints speedup ratios, which is how a PR records the numbers it is
claiming credit against.

Examples::

    python -m repro.bench --quick --out BENCH_PR2.json
    python -m repro.bench --baseline .bench_cache/baseline.json \
        --label PR2 --out BENCH_PR2.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Optional

from .crypto import ec, rsa
from .crypto.aes import AES
from .crypto.modes import cbc_decrypt, cbc_encrypt
from .crypto.rng import DeterministicRandom
from .tls.ciphers import MODERN_BROWSER_OFFER
from .tls.client import TLSClient
from .tls.constants import ProtocolVersion
from .tls.keyexchange import KexReusePolicy, ReuseMode
from .tls.server import ServerConfig, TLSServer, TicketPolicy
from .tls.session import SessionCache, SessionState
from .tls.ticket import (
    STEKStore,
    TicketFormat,
    generate_stek,
    open_ticket,
    seal_ticket,
)
from .x509 import CertificateAuthority, TrustStore


# --- timing core -------------------------------------------------------

def _measure(fn: Callable[[], object], seconds: float) -> dict:
    """Run ``fn`` repeatedly for ~``seconds``; return ops/sec stats.

    One warm-up call runs first (populating lazy tables and caches —
    steady-state throughput is what the trajectory tracks, not
    first-call latency).
    """
    fn()
    # Calibrate a batch size so the timed loop overhead is negligible.
    batch, elapsed = 1, 0.0
    while True:
        start = time.perf_counter()
        for _ in range(batch):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed > seconds / 20 or batch >= 1 << 20:
            break
        batch *= 4
    iters = max(1, int(batch * (seconds / max(elapsed, 1e-9))))
    start = time.perf_counter()
    for _ in range(iters):
        fn()
    total = time.perf_counter() - start
    return {
        "ops_per_sec": round(iters / total, 2),
        "iterations": iters,
        "seconds": round(total, 4),
    }


# --- a self-contained TLS rig ------------------------------------------

class _Clock:
    def __init__(self) -> None:
        self.value = 1000.0

    def now(self) -> float:
        return self.value


def _make_rig(seed: int = 2718, ticket_window: float = 10**9):
    """One CA + server + client wired together (mirrors the test rig)."""
    rng = DeterministicRandom(seed)
    clock = _Clock()
    ca = CertificateAuthority("Bench CA", rsa.generate_keypair(512, rng))
    trust = TrustStore()
    trust.add_root(ca.name, ca.public_key)
    server_key = rsa.generate_keypair(512, rng)
    cert = ca.issue(["bench.example", "*.bench.example"], server_key.public, 0, 10**9)
    stek_store = STEKStore(generate_stek(rng, clock.now()))
    config = ServerConfig(
        certificate=cert,
        private_key=server_key,
        supported_suites=MODERN_BROWSER_OFFER,
        session_cache=SessionCache(300.0),
        stek_store=stek_store,
        ticket_policy=TicketPolicy(accept_window_seconds=ticket_window),
        kex_policy=KexReusePolicy(ReuseMode.FRESH),
        curve=ec.SECP128R1,
    )
    server = TLSServer(config, rng.fork("server"), clock.now)
    client = TLSClient(rng.fork("client"), trust, clock.now)
    return server, client


# --- microbenchmarks ---------------------------------------------------

def run_micro(seconds: float) -> dict:
    """Primitive-level throughput measurements."""
    rng = DeterministicRandom(31415)
    results: dict[str, dict] = {}

    cipher = AES(rng.random_bytes(16))
    block = rng.random_bytes(16)
    results["aes_encrypt_block"] = _measure(lambda: cipher.encrypt_block(block), seconds)
    results["aes_decrypt_block"] = _measure(lambda: cipher.decrypt_block(block), seconds)

    # STEK reuse is the paper's whole subject: one key seals/opens huge
    # ticket volumes, so per-call key-schedule cost dominates untuned
    # implementations.  This pair is the PR-2 headline metric.
    stek = generate_stek(rng, 0.0)
    session = SessionState(
        master_secret=rng.random_bytes(48),
        cipher_suite=MODERN_BROWSER_OFFER[0],
        version=ProtocolVersion.TLS12,
        created_at=0.0,
        domain="bench.example",
    )
    seal_rng = DeterministicRandom(999)
    results["ticket_seal"] = _measure(
        lambda: seal_ticket(stek, session, seal_rng), seconds
    )
    ticket = seal_ticket(stek, session, DeterministicRandom(1000))
    results["ticket_open"] = _measure(lambda: open_ticket(stek, ticket), seconds)

    key, iv = rng.random_bytes(16), rng.random_bytes(16)
    kilobyte = rng.random_bytes(1024)
    sealed_kb = cbc_encrypt(key, iv, kilobyte)
    results["cbc_encrypt_1k"] = _measure(lambda: cbc_encrypt(key, iv, kilobyte), seconds)
    results["cbc_decrypt_1k"] = _measure(lambda: cbc_decrypt(key, iv, sealed_kb), seconds)

    signing_key = rsa.generate_keypair(512, rng)
    results["rsa_sign"] = _measure(
        lambda: signing_key.sign(b"server key exchange params"), seconds
    )

    for curve in (ec.SECP128R1, ec.P256):
        scalar_rng = DeterministicRandom(curve.name)
        point = ec.scalar_mult_base(curve, scalar_rng.randrange(1, curve.n))
        results[f"ec_base_mult_{curve.name}"] = _measure(
            lambda: ec.scalar_mult_base(curve, scalar_rng.randrange(1, curve.n)),
            seconds,
        )
        results[f"ec_scalar_mult_{curve.name}"] = _measure(
            lambda: ec.scalar_mult(curve, scalar_rng.randrange(1, curve.n), point),
            seconds,
        )

    server, client = _make_rig()

    def full_handshake():
        result = client.connect(server, "bench.example", offer=MODERN_BROWSER_OFFER)
        assert result.ok
        return result

    results["full_handshake"] = _measure(full_handshake, seconds)

    first = client.connect(server, "bench.example")
    assert first.ok and first.new_ticket is not None

    def abbreviated_handshake():
        result = client.connect(
            server,
            "bench.example",
            ticket=first.new_ticket.ticket,
            saved_session=first.session,
        )
        assert result.resumed
        return result

    results["abbreviated_handshake"] = _measure(abbreviated_handshake, seconds)
    return results


# --- end-to-end reference study ----------------------------------------

def run_e2e(quick: bool) -> dict:
    """Run the reference mini-study through the engine; report grabs/sec.

    The run streams a live event log through :class:`LivePlane` so the
    reported grabs/sec carries the observability plane's overhead — the
    number a ``--events`` run would actually see — and the event/series
    counts land in the JSON for the cross-PR trajectory.
    """
    import shutil
    import tempfile

    from .hosting import EcosystemConfig, build_ecosystem
    from .obs.events import load_events
    from .obs.exporter import LivePlane
    from .obs.metrics import METRICS, cache_stats
    from .scanner import StudyConfig, run_study_with_stats
    from .scanner.engine import StudyEngine

    population = 320
    days = 2 if quick else 4
    config = StudyConfig(
        days=days,
        seed=404,
        probe_domain_count=40,
        dhe_support_day=1,
        ecdhe_support_day=1,
        ticket_support_day=1,
        crossdomain_day=1,
        session_probe_day=1,
        ticket_probe_day=1,
    )
    ecosystem = build_ecosystem(EcosystemConfig(population=population, seed=2016))
    metrics_base = METRICS.snapshot()
    workdir = tempfile.mkdtemp(prefix="repro-bench-obs-")
    events_path = os.path.join(workdir, "events.jsonl")
    plane = LivePlane(events_path=events_path).start()
    try:
        _, stats = run_study_with_stats(ecosystem, config, live=plane)
        plane.stop()
        events_emitted = max(0, len(load_events(events_path)) - 1)  # - header
    finally:
        plane.stop()
        shutil.rmtree(workdir, ignore_errors=True)
    # Cache-effectiveness counters for *this* study run (the PR-2 caches
    # the pipeline's throughput depends on), from the metrics delta.
    delta = METRICS.snapshot_delta(metrics_base)
    caches = {}
    for family in StudyEngine.CACHE_FAMILIES:
        summary = cache_stats(delta, family)
        if summary is not None:
            caches[family] = summary
    return {
        "reference_study": {
            "population": population,
            "days": days,
            "grabs": stats.grabs,
            "seconds": round(stats.elapsed_seconds, 3),
            "grabs_per_sec": round(stats.grabs_per_sec, 2),
        },
        "caches": caches,
        "observability": {
            "events_emitted": events_emitted,
            "metric_series": sum(
                len(delta.get(section, {}))
                for section in ("counters", "gauges", "histograms")
            ),
        },
    }


# --- scale study (event-driven scan core) ------------------------------

def run_scale(quick: bool, population: Optional[int] = None) -> dict:
    """Daily-sweep throughput at scan scale through the event-driven core.

    Unlike the reference study (small population, every experiment
    enabled), this section isolates the scan engine itself: a large
    population, daily sweeps only, ``concurrency=2048`` in-flight
    handshakes, and observations streamed to disk — the configuration
    SCALING.md recommends for real studies.  Records RSS after the
    ecosystem build and at peak so memory growth under load is part of
    the cross-PR trajectory (streaming keeps it near-flat; the delta is
    per-STEK key schedules and scan bookkeeping, not observations).
    """
    import shutil
    import tempfile

    from .hosting import EcosystemConfig, build_ecosystem
    from .scanner import StudyConfig, run_study_with_stats

    if population is None:
        population = 2_000 if quick else 10_000

    def _rss_kb() -> int:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":  # pragma: no cover - linux CI
            peak //= 1024
        return peak

    ecosystem = build_ecosystem(EcosystemConfig(population=population, seed=2016))
    rss_after_build = _rss_kb()
    stream_dir = tempfile.mkdtemp(prefix="repro-bench-scale-")
    config = StudyConfig(
        days=2,
        seed=404,
        run_support_scans=False,
        run_crossdomain=False,
        run_probes=False,
        concurrency=2048,
        stream_dir=stream_dir,
    )
    try:
        _, stats = run_study_with_stats(ecosystem, config)
    finally:
        shutil.rmtree(stream_dir, ignore_errors=True)
    return {
        "scale_study": {
            "population": population,
            "days": config.days,
            "concurrency": config.concurrency,
            "grabs": stats.grabs,
            "seconds": round(stats.elapsed_seconds, 3),
            "grabs_per_sec": round(stats.grabs_per_sec, 2),
            "rss_after_build_kb": rss_after_build,
            "rss_peak_kb": _rss_kb(),
        },
    }


# --- streaming analysis ------------------------------------------------

def _synth_analysis_corpus(directory: str, domains: int, days: int) -> dict:
    """Write a deterministic mid-size dataset directly as JSONL.

    The records are synthesized arithmetically (no TLS stack) so the
    benchmark times *analysis* throughput, not handshake simulation:
    rotating STEK/key identifiers with per-domain periods, shared STEKs
    inside small clusters (service groups), resumption-probe lifetimes,
    and a sprinkle of failures and untrusted certs.
    """
    from .scanner.datastore import channel_path, write_meta
    from .scanner.records import (
        CHANNELS,
        CrossDomainEdge,
        ResumptionProbeResult,
        ScanObservation,
        write_jsonl,
    )

    names = [f"site{i:04d}.example" for i in range(domains)]

    def obs(i: int, day: int, kind: str, identifier: str,
            conn: int = 0) -> ScanObservation:
        ok = (i + day + conn) % 29 != 0
        is_ticket = kind == "stek"
        return ScanObservation(
            domain=names[i],
            day=day,
            timestamp=day * 86400.0 + conn,
            rank=i + 1,
            ip=f"198.51.{i % 250}.{(i * 7) % 250}",
            success=ok,
            cipher="ECDHE-RSA-AES128-SHA" if ok else None,
            kex_kind="ecdhe" if is_ticket else kind,
            forward_secret=ok,
            cert_trusted=ok and i % 13 != 0,
            ticket_extension=ok,
            ticket_issued=ok and is_ticket,
            stek_id=identifier if ok and is_ticket else None,
            kex_public=identifier if ok and not is_ticket else None,
        )

    channels: dict[str, list] = {name: [] for name in CHANNELS}
    for i in range(domains):
        stek_period = 1 + i % 9
        dhe_period = 1 + i % 6
        ecdhe_period = 1 + i % 4
        for day in range(days):
            channels["ticket_daily"].append(
                obs(i, day, "stek", f"stek-{i}-{day // stek_period}"))
            channels["dhe_daily"].append(
                obs(i, day, "dhe", f"dhe-{i}-{day // dhe_period}"))
            channels["ecdhe_daily"].append(
                obs(i, day, "ecdhe", f"ec-{i}-{day // ecdhe_period}"))
        # Support scans (day 1): clusters of four share one STEK, which
        # is what the service-group analysis exists to find.
        shared = f"stek-c{i // 4}" if i % 3 == 0 else f"stek-{i}-s"
        reuse = 1 + i % 3
        for conn in range(10):
            channels["ticket_support"].append(obs(i, 1, "stek", shared, conn))
            channels["dhe_support"].append(
                obs(i, 1, "dhe", f"dhe-{i}-s{conn % reuse}", conn))
            channels["ecdhe_support"].append(
                obs(i, 1, "ecdhe", f"ec-{i}-s{conn % reuse}", conn))
        for conn in range(4):
            channels["ticket_30min"].append(obs(i, 1, "stek", shared, conn))
        for mechanism, channel in (("session_id", "session_probes"),
                                   ("ticket", "ticket_probes")):
            channels[channel].append(ResumptionProbeResult(
                domain=names[i],
                rank=i + 1,
                mechanism=mechanism,
                handshake_ok=True,
                issued=i % 7 != 0,
                resumed_at_1s=i % 7 != 0,
                max_success_delay=None if i % 7 == 0 else (i % 48) * 1800.0,
                hit_probe_ceiling=i % 11 == 0,
                attempts=20,
            ))
    for i in range(0, domains - 1, 9):
        channels["cache_edges"].append(CrossDomainEdge(
            origin=names[i], acceptor=names[i + 1],
            via_same_ip=i % 2 == 0, via_same_as=True))

    total_rows = 0
    total_bytes = 0
    for name, rows in channels.items():
        path = channel_path(directory, name)
        total_rows += write_jsonl(path, rows)
        total_bytes += os.path.getsize(path)
    write_meta(directory, {
        "days": days,
        "day0_list": [],
        "always_present": names,
        "ranks": {name: i + 1 for i, name in enumerate(names)},
        "crossdomain_targets": names[: min(40, domains)],
        "domain_asn": {name: 64500 + i % 20 for i, name in enumerate(names)},
        "domain_ip": {},
        "as_names": {64500 + k: f"Bench AS {k}" for k in range(20)},
        "list_sizes": {kind: [domains, domains]
                       for kind in ("dhe", "ecdhe", "ticket")},
    })
    return {"domains": domains, "days": days,
            "rows": total_rows, "bytes": total_bytes}


def run_analysis(quick: bool) -> dict:
    """Time ``report`` + ``audit`` end-to-end: legacy in-memory path vs
    the streaming engine (cold at 1 and 4 workers, then warm cache).

    The four paths must render byte-identical text — the same invariant
    the golden tests pin — so a benchmark run doubles as an identity
    check on a corpus shaped differently from the reference study.
    """
    import shutil
    import tempfile

    from .analysis import (
        analyze,
        audit_inputs_from_analysis,
        audit_inputs_from_dataset,
        render_audit,
        render_report,
        report_inputs_from_analysis,
        report_inputs_from_dataset,
    )
    from .scanner import load_dataset

    domains = 120 if quick else 280
    days = 12 if quick else 48
    workdir = tempfile.mkdtemp(prefix="repro-bench-analysis-")
    try:
        corpus = _synth_analysis_corpus(workdir, domains, days)

        def legacy() -> str:
            dataset = load_dataset(workdir)
            report = render_report(report_inputs_from_dataset(dataset))
            audit = render_audit(audit_inputs_from_dataset(dataset), worst=10)
            return report + "\n" + audit

        def streamed(workers: int, use_cache: bool) -> str:
            result = analyze(workdir, workers=workers, use_cache=use_cache)
            report = render_report(report_inputs_from_analysis(result))
            audit = render_audit(audit_inputs_from_analysis(result), worst=10)
            return report + "\n" + audit

        def timed(fn: Callable[[], str]) -> tuple[float, str]:
            start = time.perf_counter()
            text = fn()
            return time.perf_counter() - start, text

        legacy_seconds, expected = timed(legacy)
        w1_seconds, w1_text = timed(lambda: streamed(1, use_cache=False))
        w4_seconds, w4_text = timed(lambda: streamed(4, use_cache=False))
        streamed(1, use_cache=True)  # populate the partial cache
        warm_seconds, warm_text = timed(lambda: streamed(1, use_cache=True))
        if not (expected == w1_text == w4_text == warm_text):
            raise AssertionError(
                "streaming analysis diverged from the in-memory path")
        return {
            "corpus": corpus,
            "report_audit_seconds": {
                "legacy": round(legacy_seconds, 3),
                "stream_workers1": round(w1_seconds, 3),
                "stream_workers4": round(w4_seconds, 3),
                "stream_warm_cache": round(warm_seconds, 3),
            },
            "speedup_vs_legacy": {
                "stream_workers1": round(legacy_seconds / w1_seconds, 2),
                "stream_workers4": round(legacy_seconds / w4_seconds, 2),
                "stream_warm_cache": round(legacy_seconds / warm_seconds, 2),
            },
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


# --- orchestration -----------------------------------------------------

def _resource_usage() -> dict:
    """Peak RSS of the benchmark process (after all workloads ran).

    ``ru_maxrss`` is kilobytes on Linux but *bytes* on macOS; normalize
    to KiB so the trajectory across PRs is comparable.
    """
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return {"peak_rss_kb": peak}


_SPEEDUP_KEYS = (
    ("micro", "ticket_seal", "ops_per_sec"),
    ("micro", "ticket_open", "ops_per_sec"),
    ("micro", "full_handshake", "ops_per_sec"),
    ("micro", "abbreviated_handshake", "ops_per_sec"),
    ("e2e", "reference_study", "grabs_per_sec"),
    # Absent from baselines captured before the event-driven scan core
    # landed; compute_speedups silently skips metrics a baseline lacks.
    ("e2e", "scale_study", "grabs_per_sec"),
)


def _lookup(report: dict, path: tuple) -> Optional[float]:
    node = report
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node if isinstance(node, (int, float)) else None


def compute_speedups(report: dict, baseline: dict) -> dict:
    """current/baseline ratios for the headline metrics."""
    speedups = {}
    for path in _SPEEDUP_KEYS:
        current, base = _lookup(report, path), _lookup(baseline, path)
        if current and base:
            speedups["/".join(path[:-1])] = round(current / base, 2)
    return speedups


def run_bench(
    quick: bool = False,
    label: str = "dev",
    baseline_path: Optional[str] = None,
    micro_seconds: Optional[float] = None,
    scale_population: Optional[int] = None,
) -> dict:
    """Run every benchmark tier and return the JSON-serializable report.

    With ``baseline_path`` the named prior report is merged in under
    ``"baseline"`` and speedup ratios are computed for the headline
    metrics (metrics absent from the baseline are skipped).
    """
    seconds = micro_seconds if micro_seconds is not None else (0.1 if quick else 0.5)
    micro = run_micro(seconds)
    e2e = run_e2e(quick)
    scale = run_scale(quick)
    e2e.update(scale)
    if (
        scale_population is not None
        and scale_population != scale["scale_study"]["population"]
    ):
        # Record the larger smoke *alongside* the default-population
        # scale study, not instead of it: cross-PR speedup tracking
        # keys off ``scale_study``, which must stay comparable.
        extra = run_scale(quick, population=scale_population)
        key = f"scale_study_{scale_population // 1000}k"
        e2e[key] = extra["scale_study"]
    report = {
        "label": label,
        "python": sys.version.split()[0],
        "quick": quick,
        "micro": micro,
        "e2e": e2e,
        "analysis": run_analysis(quick),
        "resources": _resource_usage(),
    }
    if baseline_path:
        with open(baseline_path, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        report["baseline"] = {
            "label": baseline.get("label", "baseline"),
            "micro": baseline.get("micro", {}),
            "e2e": baseline.get("e2e", {}),
        }
        report["speedup"] = compute_speedups(report, baseline)
    return report


def render(report: dict) -> str:
    """Format a report dict as the human-readable console table."""
    lines = [f"benchmark report ({report['label']}, python {report['python']})"]
    width = max(len(name) for name in report["micro"])
    for name, stats in report["micro"].items():
        lines.append(f"  {name:<{width}}  {stats['ops_per_sec']:>12,.1f} ops/s")
    for name, stats in report["e2e"].items():
        if name in ("caches", "observability"):
            continue
        line = (
            f"  {name:<{width}}  {stats['grabs_per_sec']:>12,.1f} grabs/s "
            f"({stats['grabs']:,} grabs in {stats['seconds']}s)"
        )
        if "rss_peak_kb" in stats:
            line += (
                f" [pop {stats['population']:,} @ concurrency "
                f"{stats['concurrency']:,}; RSS "
                f"{stats['rss_after_build_kb'] / 1024:,.0f}->"
                f"{stats['rss_peak_kb'] / 1024:,.0f} MiB]"
            )
        lines.append(line)
    plane = report["e2e"].get("observability")
    if plane:
        lines.append(
            f"  observability: {plane['events_emitted']:,} events emitted, "
            f"{plane['metric_series']:,} live metric series"
        )
    resources = report.get("resources")
    if resources:
        lines.append(f"  peak RSS: {resources['peak_rss_kb'] / 1024:,.1f} MiB")
    caches = report["e2e"].get("caches", {})
    if caches:
        lines.append("  cache effectiveness (reference study):")
        cache_width = max(len(name) for name in caches)
        for name, stats in caches.items():
            line = (
                f"    {name:<{cache_width}}  {stats['hit_rate'] * 100:6.2f}% hits "
                f"({stats['hits']:,} hit / {stats['misses']:,} miss"
            )
            if stats.get("evictions"):
                line += f" / {stats['evictions']:,} evicted"
            lines.append(line + ")")
    analysis = report.get("analysis")
    if analysis:
        lines.append(
            f"  streaming analysis (report+audit, "
            f"{analysis['corpus']['rows']:,}-row corpus):"
        )
        seconds = analysis["report_audit_seconds"]
        speedups = analysis["speedup_vs_legacy"]
        path_width = max(len(name) for name in seconds)
        for name, value in seconds.items():
            line = f"    {name:<{path_width}}  {value:>8.3f}s"
            if name in speedups:
                line += f"  ({speedups[name]}x vs legacy)"
            lines.append(line)
    for name, ratio in report.get("speedup", {}).items():
        lines.append(f"  speedup {name}: {ratio}x vs {report['baseline']['label']}")
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point (``python -m repro.bench``)."""
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="micro + end-to-end performance benchmarks",
    )
    parser.add_argument("--quick", action="store_true",
                        help="short timing windows and a 2-day e2e study "
                             "(CI smoke mode)")
    parser.add_argument("--label", default="dev",
                        help="run label recorded in the JSON (e.g. PR2)")
    parser.add_argument("--out", default=None,
                        help="write the JSON report to this path")
    parser.add_argument("--baseline", default=None,
                        help="previously captured JSON to diff against; "
                             "merged into the output under 'baseline'")
    parser.add_argument("--micro-seconds", type=float, default=None,
                        help="seconds per microbenchmark (default 0.5, "
                             "0.1 with --quick)")
    parser.add_argument("--scale-population", type=int, default=None,
                        help="record an extra scale study at this population "
                             "alongside the default one (10000, 2000 with "
                             "--quick)")
    args = parser.parse_args(argv)

    report = run_bench(
        quick=args.quick,
        label=args.label,
        baseline_path=args.baseline,
        micro_seconds=args.micro_seconds,
        scale_population=args.scale_population,
    )
    print(render(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
