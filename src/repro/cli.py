"""Command-line interface: run the measurement system from a shell.

Subcommands mirror the library's workflow:

* ``scan DOMAIN``   — one zgrab-style connection against a synthetic
  ecosystem, printing the crypto-shortcut signals.
* ``study``         — run the longitudinal study and save the dataset
  (JSONL) to a directory; ``--shards``/``--workers`` shard the
  population across processes (output depends only on ``--shards``)
  and ``--stream-dir`` spills observations to disk as they are
  produced.
* ``report DIR``    — regenerate the paper's tables from a saved
  dataset.
* ``stats DIR``     — render the telemetry a study wrote with
  ``--telemetry-dir`` (run manifest, metrics, cache effectiveness);
  ``--prometheus`` emits the text exposition instead.
* ``audit DIR``     — vulnerability windows + §8.2 mitigation
  counterfactuals from a saved dataset.
* ``target DOMAIN`` — the §7.2 nation-state target analysis.
* ``watch TARGET``  — follow a running ``--serve-metrics`` study by
  URL (live progress/ETA line) or summarize a telemetry directory.
* ``events FILE``   — inspect/validate/summarize a ``repro-events/1``
  JSONL event log written by ``study --events``.

Every command takes ``--population`` and ``--seed`` so results are
reproducible; ecosystems are rebuilt deterministically rather than
persisted.

Example::

    python -m repro study --days 14 --population 500 --out run1/
    python -m repro report run1/
    python -m repro audit run1/
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
import time
from typing import Optional

from .crypto.rng import DeterministicRandom
from .faults import ImpairmentPlan, RetryPolicy, seeded_profile
from .hosting import EcosystemConfig, build_ecosystem
from .netsim.clock import HOUR
from .scanner import (
    CheckpointMismatch,
    CheckpointStore,
    StudyAborted,
    StudyConfig,
    ZGrabber,
    load_dataset,
    run_study_with_stats,
    save_dataset,
)
from .scanner.checkpoint import study_config_from_dict

log = logging.getLogger("repro")


def _add_ecosystem_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--population", type=int, default=450,
                        help="ranked-list size (default 450)")
    parser.add_argument("--seed", type=int, default=2016,
                        help="deterministic ecosystem seed (default 2016)")


def _configure_logging(args) -> int:
    """Set up the ``repro`` logger from -v/-q; returns the verbosity.

    Results always go to stdout via ``print``; the logger carries
    *progress and diagnostics* to stderr.  Default verbosity 0 keeps
    the historical output (transient ``\\r`` progress on stderr), -q
    silences progress, -v switches to full per-event log lines.
    """
    verbosity = getattr(args, "verbose", 0) - getattr(args, "quiet", 0)
    level = (
        logging.WARNING if verbosity < 0
        else logging.INFO if verbosity == 0
        else logging.DEBUG
    )
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    log.handlers[:] = [handler]
    log.setLevel(level)
    log.propagate = False
    return verbosity


class _ProgressReporter:
    """Scan-progress display honoring the -v/-q verbosity.

    * verbosity < 0 (-q): nothing.
    * verbosity = 0: the historical transient ``\\r`` line on stderr.
    * verbosity > 0 (-v): one DEBUG log line per event (CI-friendly;
      no carriage returns).
    """

    def __init__(self, verbosity: int) -> None:
        self.verbosity = verbosity

    def _emit(self, text: str) -> None:
        if self.verbosity < 0:
            return
        if self.verbosity > 0:
            log.debug(text.strip())
        else:
            print(f"\r{text}", end="", flush=True, file=sys.stderr)

    def day(self, day: int, days: int) -> None:
        self._emit(f"scanning day {day + 1}/{days}")

    def shard(self, shard_id: int, shards: int, day: int, days: int) -> None:
        if day >= days:
            self._emit(f"shard {shard_id + 1}/{shards} done        ")
        else:
            self._emit(f"shard {shard_id + 1}/{shards}: day {day + 1}/{days}")

    def close(self) -> None:
        if self.verbosity == 0:
            print(file=sys.stderr)


def _build(args) -> "object":
    return build_ecosystem(
        EcosystemConfig(population=args.population, seed=args.seed)
    )


def cmd_scan(args) -> int:
    ecosystem = _build(args)
    grabber = ZGrabber(ecosystem, DeterministicRandom(args.seed + 1))
    observation = grabber.grab(args.domain)
    print(f"domain:          {observation.domain}")
    print(f"success:         {observation.success}")
    if not observation.success:
        print(f"error:           {observation.error}")
        return 1
    print(f"ip:              {observation.ip}")
    print(f"cipher:          {observation.cipher}")
    print(f"forward secret:  {observation.forward_secret}")
    print(f"cert trusted:    {observation.cert_trusted}")
    print(f"session id set:  {observation.session_id_set}")
    print(f"ticket issued:   {observation.ticket_issued}")
    if observation.ticket_issued:
        print(f"ticket hint:     {observation.ticket_hint}s")
        print(f"ticket format:   {observation.ticket_format}")
        print(f"STEK id:         {observation.stek_id}")
    if observation.kex_public:
        print(f"kex value:       {observation.kex_public[:32]}…")
    return 0


def _scaled_day(paper_day: int, days: int) -> int:
    """Scale a paper-schedule day into a shorter study, staying in range."""
    return min(days - 1, max(1, int(paper_day * days / 63)))


def _chaos_profile(args) -> Optional[dict]:
    """The chaos profile selected by --chaos/--chaos-profile, or None."""
    if args.chaos_profile:
        with open(args.chaos_profile, "r", encoding="utf-8") as fh:
            profile = json.load(fh)
        ImpairmentPlan.from_profile(profile)  # reject bad files up front
        return profile
    if args.chaos is not None:
        return seeded_profile(args.chaos, args.days)
    return None


def _retry_policy(args) -> Optional[RetryPolicy]:
    """The RetryPolicy from --retries/--retry-budget/--breaker-threshold,
    or None when every knob is at its no-op default."""
    if args.retries <= 1 and args.retry_budget is None and not args.breaker_threshold:
        return None
    return RetryPolicy(
        max_attempts=max(args.retries, 1),
        retry_budget=args.retry_budget,
        breaker_threshold=args.breaker_threshold,
    )


def _resumed_study(args) -> tuple["object", StudyConfig]:
    """Rebuild (ecosystem, config) from a stream directory's checkpoint.

    Everything output-affecting comes from the checkpoint fingerprint —
    the original study configuration and ecosystem knobs — so a resume
    cannot accidentally merge shards from two different studies; only
    execution knobs (``--workers``, ``--concurrency``, ``--oracle``)
    are taken from the new invocation.
    """
    store = CheckpointStore(args.resume)
    state = store.load_run_state()
    fingerprint = state.get("fingerprint", {})
    config = study_config_from_dict(
        dict(fingerprint.get("study", {})),
        workers=args.workers,
        stream_dir=args.resume,
        concurrency=args.concurrency,
        oracle=args.oracle,
    )
    ecosystem_data = fingerprint.get("ecosystem") or {}
    if ecosystem_data:
        ecosystem = build_ecosystem(EcosystemConfig(**ecosystem_data))
    else:
        ecosystem = _build(args)
    return ecosystem, config


def cmd_study(args) -> int:
    if args.telemetry_dir and (
        os.path.abspath(args.telemetry_dir) == os.path.abspath(args.out)
    ):
        print("--telemetry-dir must not be the dataset --out directory "
              "(telemetry lives next to the dataset, not inside it)",
              file=sys.stderr)
        return 2
    if args.resume:
        if args.chaos is not None or args.chaos_profile:
            print("--resume takes its chaos profile from the checkpoint; "
                  "drop --chaos/--chaos-profile", file=sys.stderr)
            return 2
        if args.stream_dir and (
            os.path.abspath(args.stream_dir) != os.path.abspath(args.resume)
        ):
            print("--resume DIR already names the stream directory; a "
                  "different --stream-dir would split the run", file=sys.stderr)
            return 2
        try:
            ecosystem, config = _resumed_study(args)
        except (OSError, ValueError) as exc:
            print(f"cannot resume from {args.resume}: {exc}", file=sys.stderr)
            return 2
        log.info("resuming study from %s (config restored from checkpoint)",
                 args.resume)
    else:
        try:
            chaos = _chaos_profile(args)
        except (OSError, ValueError) as exc:
            print(f"bad chaos profile: {exc}", file=sys.stderr)
            return 2
        try:
            retry = _retry_policy(args)
        except ValueError as exc:
            print(f"bad retry policy: {exc}", file=sys.stderr)
            return 2
        ecosystem = _build(args)
        config = StudyConfig(
            days=args.days,
            probe_domain_count=args.population,
            dhe_support_day=_scaled_day(43, args.days),
            ecdhe_support_day=_scaled_day(44, args.days),
            ticket_support_day=_scaled_day(46, args.days),
            crossdomain_day=_scaled_day(50, args.days),
            session_probe_day=_scaled_day(56, args.days),
            ticket_probe_day=_scaled_day(58, args.days),
            shards=args.shards,
            workers=args.workers,
            stream_dir=args.stream_dir,
            concurrency=args.concurrency,
            oracle=args.oracle,
            chaos=chaos,
            retry=retry,
        )
    profile_dir = None
    if args.profile:
        if not args.telemetry_dir:
            print("--profile requires --telemetry-dir (the aggregated "
                  "profile lands under <telemetry-dir>/profile/)",
                  file=sys.stderr)
            return 2
        profile_dir = os.path.join(args.telemetry_dir, "profile")

    live = None
    if args.serve_metrics is not None or args.events:
        from .obs.exporter import LivePlane

        live = LivePlane(
            serve_port=args.serve_metrics, events_path=args.events
        ).start()
        if live.url:
            log.info(
                "live observability plane at %s "
                "(endpoints: /metrics /progress /healthz /events)", live.url,
            )
        if args.events:
            log.info("streaming events to %s", args.events)

    reporter = _ProgressReporter(args.verbosity)
    try:
        dataset, stats = run_study_with_stats(
            ecosystem, config,
            progress=reporter.day,
            shard_progress=reporter.shard,
            telemetry_dir=args.telemetry_dir,
            resume=bool(args.resume),
            fail_fast=args.fail_fast,
            live=live,
            profile_dir=profile_dir,
        )
    except StudyAborted as exc:
        reporter.close()
        if live is not None:
            live.study_aborted(str(exc))
        print(f"error: {exc}", file=sys.stderr)
        if exc.checkpoint_dir:
            stream = os.path.dirname(exc.checkpoint_dir)
            print(f"partial checkpoint kept at {exc.checkpoint_dir}",
                  file=sys.stderr)
            print(f"resume with: repro study --resume {stream} "
                  f"--out {args.out}", file=sys.stderr)
        return 3
    except CheckpointMismatch as exc:
        reporter.close()
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if live is not None:
            live.stop()
    reporter.close()
    save_dataset(dataset, args.out)
    print(f"dataset saved to {args.out} "
          f"({len(dataset.ticket_daily):,} daily ticket observations)")
    print(stats.render())
    if args.telemetry_dir:
        log.info(
            "telemetry written to %s (inspect with `repro stats %s`)",
            args.telemetry_dir, args.telemetry_dir,
        )
    if args.events:
        log.info(
            "event log written to %s (inspect with `repro events %s`)",
            args.events, args.events,
        )
    return 0


def _load(directory: str):
    return load_dataset(directory)


def _analysis_result(args):
    """Run the streaming analysis engine per the report/audit flags."""
    from .analysis import analyze

    result = analyze(
        args.dataset,
        workers=max(args.workers, 1),
        use_cache=not args.no_cache,
    )
    log.info(
        "analysis: %d chunks (%d cached, %d folded) over %d channels "
        "with %d worker(s) in %.2fs",
        result.chunks, result.cache_hits, result.cache_misses,
        len(result.channel_rows), result.workers, result.elapsed_seconds,
    )
    return result


def cmd_report(args) -> int:
    from .analysis import (
        render_report,
        report_inputs_from_analysis,
        report_inputs_from_dataset,
    )

    provenance = None
    if args.events:
        from .analysis import render_events_provenance
        from .obs.events import load_events, summarize_events

        try:
            summary = summarize_events(load_events(args.events))
        except (OSError, ValueError) as exc:
            print(f"cannot load events from {args.events}: {exc}",
                  file=sys.stderr)
            return 1
        provenance = render_events_provenance(summary, args.events)
    if args.legacy:
        inputs = report_inputs_from_dataset(_load(args.dataset))
    else:
        inputs = report_inputs_from_analysis(_analysis_result(args))
    print(render_report(inputs, min_days=args.min_days))
    if provenance is not None:
        print()
        print(provenance)
    return 0


def cmd_audit(args) -> int:
    from .analysis import (
        audit_inputs_from_analysis,
        audit_inputs_from_dataset,
        render_audit,
    )

    if args.legacy:
        inputs = audit_inputs_from_dataset(_load(args.dataset))
    else:
        inputs = audit_inputs_from_analysis(_analysis_result(args))
    print(render_audit(inputs, worst=args.worst))
    return 0


def cmd_bench(args) -> int:
    from .bench import main as bench_main

    forwarded: list[str] = []
    if args.quick:
        forwarded.append("--quick")
    forwarded += ["--label", args.label]
    if args.out:
        forwarded += ["--out", args.out]
    if args.baseline:
        forwarded += ["--baseline", args.baseline]
    return bench_main(forwarded)


def cmd_stats(args) -> int:
    from .obs import (
        load_manifest,
        load_metrics,
        render_prometheus,
        render_stats_report,
        validate_manifest,
    )

    try:
        manifest = load_manifest(args.telemetry)
    except (OSError, ValueError) as exc:
        print(f"cannot load manifest from {args.telemetry}: {exc}",
              file=sys.stderr)
        return 1
    directory = (
        args.telemetry if os.path.isdir(args.telemetry)
        else os.path.dirname(args.telemetry) or "."
    )
    errors = validate_manifest(manifest)
    for error in errors:
        print(f"manifest: {error}", file=sys.stderr)
    metrics = load_metrics(directory)
    if args.prometheus:
        print(render_prometheus(metrics), end="")
    else:
        print(render_stats_report(manifest, metrics))
        from .obs.profiling import load_profile_summary, render_profile_report

        summary = load_profile_summary(os.path.join(directory, "profile"))
        if summary is not None:
            print()
            print(render_profile_report(summary))
    return 1 if errors else 0


def _watch_http(args) -> int:
    """Poll a --serve-metrics study's /progress endpoint until done."""
    import urllib.error
    import urllib.request

    from .obs.progress import render_progress

    base = args.target.rstrip("/")
    progress_url = (
        base if base.endswith("/progress") else base + "/progress"
    )
    reached = False
    while True:
        try:
            with urllib.request.urlopen(progress_url, timeout=5) as response:
                snapshot = json.load(response)
        except (OSError, ValueError):
            if not reached:
                print(f"cannot reach {progress_url} — is the study running "
                      "with --serve-metrics?", file=sys.stderr)
                return 1
            # The study exited and took its endpoint with it: a normal
            # end of watch, not an error.
            print(file=sys.stderr)
            log.info("endpoint gone; the study has exited")
            return 0
        reached = True
        line = render_progress(snapshot)
        if args.once:
            print(line)
            return 0
        print(f"\r{line}", end="", flush=True, file=sys.stderr)
        state = snapshot.get("state")
        if state in ("done", "aborted"):
            print(file=sys.stderr)
            print(line)
            return 0 if state == "done" else 3
        time.sleep(max(args.interval, 0.1))


def _watch_dir(args) -> int:
    """Summarize a telemetry directory (or a checkpointed stream dir)."""
    from .obs import load_manifest
    from .obs.report import render_stats_report

    target = args.target
    try:
        manifest = load_manifest(target)
    except (OSError, ValueError):
        store = CheckpointStore(target)
        if store.exists():
            done = store.completed_shards()
            print(f"{target}: in-flight streamed run — "
                  f"{len(done)} shard(s) checkpointed "
                  f"({', '.join(str(s) for s in done) or 'none'})")
            return 0
        print(f"{target}: neither a telemetry directory (manifest.json) "
              "nor a checkpointed stream directory", file=sys.stderr)
        return 1
    # Headline only — `repro stats` renders the full report.
    print(render_stats_report(manifest, {}).splitlines()[0])
    run = manifest.get("run", {})
    if run:
        print(f"  finished: {run.get('grabs', 0):,} grabs over "
              f"{run.get('days', '?')} days in "
              f"{run.get('elapsed_seconds', 0.0):.2f}s")
    return 0


def cmd_watch(args) -> int:
    if args.target.startswith(("http://", "https://")):
        return _watch_http(args)
    return _watch_dir(args)


def cmd_events(args) -> int:
    from .obs.events import (
        level_at_least,
        load_events,
        render_event,
        render_summary,
        summarize_events,
        validate_events,
    )

    try:
        records = load_events(args.file)
    except (OSError, ValueError) as exc:
        print(f"cannot load events from {args.file}: {exc}", file=sys.stderr)
        return 1
    if args.validate:
        errors = validate_events(records)
        for error in errors:
            print(f"events: {error}", file=sys.stderr)
        if errors:
            return 1
        print(f"{args.file}: {len(records):,} events, repro-events/1 OK")
        return 0
    if args.summary:
        print(render_summary(summarize_events(records)))
        return 0
    shown = 0
    for record in records:
        if level_at_least(record, args.level):
            print(render_event(record))
            shown += 1
    if shown == 0:
        log.info("no events at level >= %s", args.level)
    return 0


def cmd_target(args) -> int:
    from .nationstate import analyze_target, render_report

    ecosystem = _build(args)
    report = analyze_target(
        ecosystem, args.domain, rotation_horizon=args.horizon_hours * HOUR
    )
    print(render_report(report))
    return 0


def _escape_cell(text: str) -> str:
    return " ".join((text or "").split()).replace("|", "\\|")


def render_cli_table(parser: argparse.ArgumentParser) -> str:
    """The README CLI reference, generated from the argparse tree.

    One markdown table covering every subcommand and flag, so the
    documented interface can never drift from the implemented one —
    the ``docs-check`` CI job diffs this output against README.md.
    """
    lines = [
        "| Command | Option | Default | Description |",
        "| --- | --- | --- | --- |",
    ]
    sub_action = next(
        a for a in parser._actions
        if isinstance(a, argparse._SubParsersAction)
    )
    command_help = {
        pseudo.dest: pseudo.help or ""
        for pseudo in sub_action._choices_actions
    }
    shared: list[tuple[str, str, str]] = []
    for name, sub in sub_action.choices.items():
        lines.append(
            f"| `{name}` |  |  | {_escape_cell(command_help.get(name, ''))} |"
        )
        for action in sub._actions:
            if isinstance(action, argparse._HelpAction):
                continue
            if action.option_strings:
                display = ", ".join(action.option_strings)
                if action.nargs != 0:
                    metavar = action.metavar or action.dest.upper()
                    display = f"{display} {metavar}"
                if action.default in (None, False):
                    default = ""
                elif action.default == 0 and action.nargs == 0:
                    default = ""
                else:
                    default = f"`{action.default}`"
            else:
                display = action.dest
                default = (
                    f"`{action.default}`" if action.default is not None
                    else "required"
                )
            row = (display, default, _escape_cell(action.help or ""))
            if action.dest in ("verbose", "quiet"):
                if row not in shared:
                    shared.append(row)
                continue
            lines.append(f"| | `{row[0]}` | {row[1]} | {row[2]} |")
    for display, default, help_text in shared:
        lines.append(
            f"| *(all commands)* | `{display}` | {default} | {help_text} |"
        )
    return "\n".join(lines)


class _DocTableAction(argparse.Action):
    """``--doc-table``: print the generated CLI reference and exit."""

    def __init__(self, option_strings, dest, **kwargs):
        kwargs["nargs"] = 0
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        print(render_cli_table(parser))
        parser.exit(0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TLS crypto-shortcut measurement toolchain (IMC 2016 reproduction)",
    )
    parser.add_argument(
        "--doc-table", action=_DocTableAction,
        help="print the CLI reference as a markdown table and exit "
             "(README.md embeds this output; docs-check CI diffs it)",
    )
    # -v/-q live on the subcommands (argparse clobbers same-dest options
    # shared between the main parser and subparsers), via a parent.
    verbosity = argparse.ArgumentParser(add_help=False)
    verbosity.add_argument("-v", "--verbose", action="count", default=0,
                           help="log per-event progress lines to stderr")
    verbosity.add_argument("-q", "--quiet", action="count", default=0,
                           help="suppress progress output")
    subparsers = parser.add_subparsers(dest="command", required=True)

    class _Sub:
        """Adds every subcommand with the shared verbosity options."""

        @staticmethod
        def add_parser(name: str, **kwargs) -> argparse.ArgumentParser:
            return subparsers.add_parser(name, parents=[verbosity], **kwargs)

    sub = _Sub()

    scan = sub.add_parser("scan", help="one zgrab-style TLS connection")
    scan.add_argument("domain")
    _add_ecosystem_arguments(scan)
    scan.set_defaults(func=cmd_scan)

    study = sub.add_parser("study", help="run the longitudinal study")
    study.add_argument("--days", type=int, default=14,
                       help="study length in days (default 14)")
    study.add_argument("--out", required=True, help="dataset output directory")
    study.add_argument("--shards", type=int, default=1,
                       help="deterministic population shards; the only "
                            "parallelism knob that affects output (default 1)")
    study.add_argument("--workers", type=int, default=1,
                       help="worker processes executing shards; never "
                            "affects output (default 1)")
    study.add_argument("--concurrency", type=int, default=1024,
                       metavar="N",
                       help="in-flight grabs admitted per event-loop batch "
                            "within each shard; execution-only, never "
                            "affects output (default 1024; see "
                            "docs/SCALING.md)")
    study.add_argument("--oracle", action="store_true",
                       help="use the blocking reference scan path (full "
                            "record serialization and real crypto per "
                            "connection) instead of the event-driven fast "
                            "path; output is byte-identical, roughly 10x "
                            "slower — for equivalence checks")
    study.add_argument("--stream-dir", default=None,
                       help="stream observations to JSONL in this directory "
                            "as they are produced instead of holding them "
                            "in memory (may equal --out)")
    study.add_argument("--telemetry-dir", default=None,
                       help="write a run manifest, merged metrics, and trace "
                            "spans here (must NOT be the dataset directory; "
                            "inspect with `repro stats`)")
    chaos = study.add_mutually_exclusive_group()
    chaos.add_argument("--chaos", type=int, default=None, metavar="SEED",
                       help="inject a deterministic seeded fault schedule "
                            "(outages, latency spikes, handshake faults, "
                            "flapping backends, NXDOMAIN windows)")
    chaos.add_argument("--chaos-profile", default=None, metavar="FILE",
                       help="JSON repro-chaos/1 impairment profile "
                            "(see examples/chaos_profile.json)")
    study.add_argument("--retries", type=int, default=1, metavar="N",
                       help="connection attempts per grab with capped "
                            "exponential backoff on the virtual clock "
                            "(default 1 = never retry)")
    study.add_argument("--retry-budget", type=int, default=None, metavar="N",
                       help="cap total retries across the whole study "
                            "(default unlimited)")
    study.add_argument("--breaker-threshold", type=int, default=0, metavar="N",
                       help="open a per-domain circuit breaker after N "
                            "consecutive failed grabs (default 0 = disabled)")
    study.add_argument("--fail-fast", action="store_true",
                       help="abort the whole study on the first shard "
                            "failure instead of letting sibling shards "
                            "finish and checkpoint")
    study.add_argument("--resume", default=None, metavar="DIR",
                       help="resume a killed streamed study from DIR's "
                            "checkpoint (config is restored from the "
                            "checkpoint; output is byte-identical to an "
                            "uninterrupted run)")
    study.add_argument("--serve-metrics", type=int, default=None,
                       metavar="PORT",
                       help="serve live /metrics (Prometheus), /progress, "
                            "/healthz, and /events on 127.0.0.1:PORT while "
                            "the study runs (0 picks a free port; watch "
                            "with `repro watch`)")
    study.add_argument("--events", default=None, metavar="FILE",
                       help="stream a structured repro-events/1 JSONL event "
                            "log to FILE (lifecycle, checkpoints, retries, "
                            "breaker trips, chaos injections; inspect with "
                            "`repro events`)")
    study.add_argument("--profile", action="store_true",
                       help="run each shard under cProfile with phase "
                            "timers and a slowest-grabs board, aggregated "
                            "into <telemetry-dir>/profile/ (requires "
                            "--telemetry-dir; surfaced by `repro stats`)")
    _add_ecosystem_arguments(study)
    study.set_defaults(func=cmd_study)

    watch = sub.add_parser(
        "watch", help="follow a running --serve-metrics study, or "
                      "summarize a telemetry directory"
    )
    watch.add_argument("target",
                       help="base URL of a running study "
                            "(http://127.0.0.1:PORT) or a telemetry/"
                            "stream directory")
    watch.add_argument("--interval", type=float, default=2.0,
                       metavar="SECONDS",
                       help="poll interval for URL targets (default 2)")
    watch.add_argument("--once", action="store_true",
                       help="print one status line and exit instead of "
                            "following until the study finishes")
    watch.set_defaults(func=cmd_watch)

    events = sub.add_parser(
        "events", help="inspect a repro-events/1 JSONL event log"
    )
    events.add_argument("file",
                        help="event log written by `repro study --events`")
    events.add_argument("--level", default="debug",
                        choices=("debug", "info", "warning", "error"),
                        help="minimum severity to print (default debug)")
    events.add_argument("--summary", action="store_true",
                        help="print per-event-type and per-level counts "
                             "instead of individual lines")
    events.add_argument("--validate", action="store_true",
                        help="check header/schema/sequence invariants; "
                             "nonzero exit if the log is malformed")
    events.set_defaults(func=cmd_events)

    stats = sub.add_parser(
        "stats", help="render a telemetry directory written by `repro study`"
    )
    stats.add_argument("telemetry",
                       help="telemetry directory (or manifest.json path)")
    stats.add_argument("--prometheus", action="store_true",
                       help="emit the Prometheus text exposition instead of "
                            "the human-readable report")
    stats.set_defaults(func=cmd_stats)

    def _add_analysis_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=int, default=1,
                       help="analysis worker processes folding dataset "
                            "chunks; never affects output (default 1)")
        p.add_argument("--no-cache", action="store_true",
                       help="skip the <dataset>/.analysis/ partial cache "
                            "(always re-fold every chunk)")
        p.add_argument("--legacy", action="store_true",
                       help="use the in-memory reference analysis path "
                            "instead of the streaming engine (same "
                            "output, O(dataset) memory)")

    report = sub.add_parser("report", help="render tables from a dataset")
    report.add_argument("dataset", help="directory written by `repro study`")
    report.add_argument("--min-days", type=int, default=7,
                        help="reuse-table threshold in days (default 7)")
    report.add_argument("--events", default=None, metavar="FILE",
                        help="append a provenance note summarizing the "
                             "producing run's event log (retries, chaos "
                             "injections, breaker trips)")
    _add_analysis_arguments(report)
    report.set_defaults(func=cmd_report)

    audit = sub.add_parser("audit", help="vulnerability windows + mitigations")
    audit.add_argument("dataset")
    audit.add_argument("--worst", type=int, default=0,
                       help="also list the N most exposed domains")
    _add_analysis_arguments(audit)
    audit.set_defaults(func=cmd_audit)

    bench = sub.add_parser("bench", help="micro + end-to-end performance benchmarks")
    bench.add_argument("--quick", action="store_true",
                       help="short timing windows (CI smoke mode)")
    bench.add_argument("--label", default="dev")
    bench.add_argument("--out", default=None, help="write JSON report here")
    bench.add_argument("--baseline", default=None,
                       help="baseline JSON to compute speedups against")
    bench.set_defaults(func=cmd_bench)

    target = sub.add_parser("target", help="§7.2 nation-state target analysis")
    target.add_argument("domain", nargs="?", default="google.com")
    target.add_argument("--horizon-hours", type=float, default=48.0)
    _add_ecosystem_arguments(target)
    target.set_defaults(func=cmd_target)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.verbosity = _configure_logging(args)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Piped into `head` and the reader went away: not an error.
        # Point stdout at /dev/null so interpreter shutdown doesn't
        # raise again while flushing the dead pipe.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
