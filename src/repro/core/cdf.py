"""Empirical distribution utilities for the measurement analyses.

Every figure in the paper is a CDF (or a set of CDFs); :class:`CDF`
wraps a sample with the exact queries those figures need: "what
fraction of domains honored resumption for at most one hour", medians
for the treemap coloring, and plot-ready step points.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Sequence


class CDF:
    """An empirical cumulative distribution over a numeric sample."""

    def __init__(self, values: Iterable[float]) -> None:
        self._values = sorted(float(v) for v in values)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> Sequence[float]:
        return tuple(self._values)

    def fraction_at_most(self, x: float) -> float:
        """P(V <= x); 0.0 for an empty sample."""
        if not self._values:
            return 0.0
        return bisect.bisect_right(self._values, x) / len(self._values)

    def fraction_less(self, x: float) -> float:
        """P(V < x)."""
        if not self._values:
            return 0.0
        return bisect.bisect_left(self._values, x) / len(self._values)

    def fraction_at_least(self, x: float) -> float:
        """P(V >= x)."""
        return 1.0 - self.fraction_less(x)

    def fraction_greater(self, x: float) -> float:
        """P(V > x)."""
        return 1.0 - self.fraction_at_most(x)

    def quantile(self, q: float) -> float:
        """The q-quantile (nearest-rank); requires a non-empty sample."""
        if not self._values:
            raise ValueError("quantile of an empty sample")
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if q == 0.0:
            return self._values[0]
        rank = max(1, math.ceil(q * len(self._values)))
        return self._values[rank - 1]

    def median(self) -> float:
        return self.quantile(0.5)

    def step_points(self) -> list[tuple[float, float]]:
        """(x, P(V <= x)) at each distinct sample value, for plotting."""
        points = []
        n = len(self._values)
        previous = None
        for index, value in enumerate(self._values, start=1):
            if value != previous:
                if points and points[-1][0] == previous:
                    pass
                points.append((value, index / n))
                previous = value
            else:
                points[-1] = (value, index / n)
        return points


def survival_points(cdf: CDF) -> list[tuple[float, float]]:
    """(x, P(V > x)) points — some paper plots read better inverted."""
    return [(x, 1.0 - p) for x, p in cdf.step_points()]


__all__ = ["CDF", "survival_points"]
