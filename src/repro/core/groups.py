"""Service-group construction (paper §5).

Domains that share TLS secret state — a session cache, a STEK, or a
Diffie-Hellman value — form *service groups*.  Groups grow
transitively (if ``a`` shares with ``b`` and ``b`` with ``c``, all
three are one group), which the paper implements and we reproduce with
a union-find structure.

Three builders mirror the paper's three experiments:

* :func:`groups_from_edges` — session caches, from cross-domain
  resumption probe edges (§5.1);
* :func:`groups_from_shared_identifiers` — STEKs, from ticket key
  names observed in the 10-connection + 30-minute scans (§5.2), and
  Diffie-Hellman values from the key-exchange scans (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..scanner.records import CrossDomainEdge, ScanObservation


class UnionFind:
    """Disjoint sets over arbitrary hashable items (path compression)."""

    def __init__(self) -> None:
        self._parent: dict = {}
        self._rank: dict = {}

    def add(self, item) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def find(self, item):
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1

    def groups(self) -> list[set]:
        """All disjoint sets, largest first."""
        by_root: dict = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return sorted(by_root.values(), key=len, reverse=True)


@dataclass
class ServiceGroup:
    """One set of domains sharing TLS secret state."""

    domains: frozenset[str]
    label: str = ""           # operator guess (largest AS among members)
    mechanism: str = ""       # "session_cache" | "stek" | "dh"

    def __len__(self) -> int:
        return len(self.domains)


@dataclass
class GroupingResult:
    """All service groups for one mechanism, plus summary statistics."""

    groups: list[ServiceGroup] = field(default_factory=list)
    mechanism: str = ""

    @property
    def group_count(self) -> int:
        return len(self.groups)

    @property
    def singleton_count(self) -> int:
        return sum(1 for g in self.groups if len(g) == 1)

    @property
    def multi_domain_count(self) -> int:
        return self.group_count - self.singleton_count

    def largest(self, n: int = 10) -> list[ServiceGroup]:
        return self.groups[:n]

    def domains_in_shared_groups(self) -> int:
        """How many domains share state with at least one other domain."""
        return sum(len(g) for g in self.groups if len(g) > 1)


def _label_groups(
    raw_groups: list[set],
    mechanism: str,
    domain_asn: Optional[dict[str, int]] = None,
    as_names: Optional[dict[int, str]] = None,
) -> GroupingResult:
    result = GroupingResult(mechanism=mechanism)
    for members in raw_groups:
        label = ""
        if domain_asn:
            tally: dict[int, int] = {}
            for domain in members:
                asn = domain_asn.get(domain)
                if asn is not None:
                    tally[asn] = tally.get(asn, 0) + 1
            if tally:
                top_asn = max(tally, key=lambda a: (tally[a], -a))
                label = (as_names or {}).get(top_asn, f"AS{top_asn}")
        result.groups.append(
            ServiceGroup(domains=frozenset(members), label=label, mechanism=mechanism)
        )
    result.groups.sort(key=lambda g: (-len(g), sorted(g.domains)[0]))
    return result


def groups_from_edges(
    edges: Iterable[CrossDomainEdge],
    probed_domains: Iterable[str],
    domain_asn: Optional[dict[str, int]] = None,
    as_names: Optional[dict[int, str]] = None,
) -> GroupingResult:
    """Session-cache groups from cross-domain resumption edges (§5.1).

    Every probed domain becomes at least a singleton group, matching
    the paper's accounting (183,261 of 212,491 groups were singletons).
    """
    uf = UnionFind()
    for domain in probed_domains:
        uf.add(domain)
    for edge in edges:
        uf.union(edge.origin, edge.acceptor)
    return _label_groups(uf.groups(), "session_cache", domain_asn, as_names)


def groups_from_shared_identifiers(
    observation_sets: Iterable[Iterable[ScanObservation]],
    identifier: str = "stek",
    domain_asn: Optional[dict[str, int]] = None,
    as_names: Optional[dict[int, str]] = None,
) -> GroupingResult:
    """STEK or DH service groups: domains that ever presented the same
    identifier are one group (§5.2/§5.3).

    ``observation_sets`` joins multiple scans (the paper merges a
    10-connection six-hour scan with a 30-minute scan).
    """
    if identifier == "stek":
        def extract(o: ScanObservation):
            return o.stek_id if o.ticket_issued else None
        mechanism = "stek"
    elif identifier == "dh":
        def extract(o: ScanObservation):
            return o.kex_public
        mechanism = "dh"
    else:
        raise ValueError(f"unknown identifier kind {identifier!r}")

    identifier_domains: dict[str, list[str]] = {}
    for observations in observation_sets:
        for observation in observations:
            if not observation.success:
                continue
            value = extract(observation)
            if not value:
                continue
            domains = identifier_domains.setdefault(value, [])
            if observation.domain not in domains:
                domains.append(observation.domain)
    return groups_from_identifier_map(
        identifier_domains, mechanism, domain_asn, as_names
    )


def groups_from_identifier_map(
    identifier_domains: dict[str, list[str]],
    mechanism: str,
    domain_asn: Optional[dict[str, int]] = None,
    as_names: Optional[dict[int, str]] = None,
) -> GroupingResult:
    """Service groups from an identifier -> domains map.

    The map is the natural *mergeable* form of the shared-identifier
    experiment (the streaming analysis engine folds one per shard and
    concatenates domain lists); every domain listed under one
    identifier joins that identifier's group, and groups connected
    through a common domain merge transitively as usual.
    """
    uf = UnionFind()
    for domains in identifier_domains.values():
        if not domains:
            continue
        owner = domains[0]
        uf.add(owner)
        for domain in domains[1:]:
            uf.union(owner, domain)
    return _label_groups(uf.groups(), mechanism, domain_asn, as_names)


__all__ = [
    "UnionFind",
    "ServiceGroup",
    "GroupingResult",
    "groups_from_edges",
    "groups_from_shared_identifiers",
    "groups_from_identifier_map",
]
