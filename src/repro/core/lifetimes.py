"""Resumption-lifetime analysis (paper §4.1/§4.2, Figures 1 and 2).

Turns the 24-hour probe results into the distributions the paper
plots: how long session IDs and session tickets were actually honored,
what fraction of sites support each mechanism, and how advertised
ticket lifetime hints compare with honored lifetimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..netsim.clock import HOUR, MINUTE
from ..scanner.records import ResumptionProbeResult
from .cdf import CDF


@dataclass
class ResumptionSupport:
    """Headline support rates for one mechanism."""

    mechanism: str
    probed: int
    handshake_ok: int
    issued: int                 # set a session ID / issued a ticket
    resumed_at_1s: int
    honored_any: int            # ever successfully resumed

    @property
    def issue_rate(self) -> float:
        return self.issued / self.handshake_ok if self.handshake_ok else 0.0

    @property
    def resume_rate(self) -> float:
        return self.resumed_at_1s / self.handshake_ok if self.handshake_ok else 0.0


def support_summary(
    probes: Iterable[ResumptionProbeResult], mechanism: str
) -> ResumptionSupport:
    """Compute §4.1/§4.2's headline counts from probe results."""
    probes = list(probes)
    return ResumptionSupport(
        mechanism=mechanism,
        probed=len(probes),
        handshake_ok=sum(1 for p in probes if p.handshake_ok),
        issued=sum(1 for p in probes if p.issued),
        resumed_at_1s=sum(1 for p in probes if p.resumed_at_1s),
        honored_any=sum(1 for p in probes if p.max_success_delay is not None),
    )


def honored_lifetime_cdf(
    probes: Iterable[ResumptionProbeResult],
    probe_ceiling_seconds: float = 24 * HOUR,
) -> CDF:
    """CDF of honored resumption lifetimes over resuming domains.

    Domains still resuming at the 24-hour cutoff contribute the ceiling
    value (the paper's figures are likewise right-censored at 24 h).
    """
    values = []
    for probe in probes:
        if probe.max_success_delay is None:
            continue
        if probe.hit_probe_ceiling:
            values.append(probe_ceiling_seconds)
        else:
            values.append(probe.max_success_delay)
    return CDF(values)


def hint_cdf(probes: Iterable[ResumptionProbeResult]) -> CDF:
    """CDF of advertised ticket lifetime hints (specified ones only)."""
    return CDF(
        float(p.ticket_hint)
        for p in probes
        if p.ticket_hint is not None and p.ticket_hint > 0
    )


def unspecified_hint_count(probes: Iterable[ResumptionProbeResult]) -> int:
    """Domains leaving the hint unspecified (hint = 0), per RFC 5077."""
    return sum(1 for p in probes if p.issued and (p.ticket_hint or 0) == 0)


@dataclass
class LifetimeBuckets:
    """The headline fractions the paper quotes for Figures 1/2."""

    under_5_minutes: float
    at_most_1_hour: float
    at_most_10_hours: float
    at_least_24_hours: float
    resuming_domains: int


def lifetime_buckets(
    probes: Iterable[ResumptionProbeResult],
    probe_ceiling_seconds: float = 24 * HOUR,
) -> LifetimeBuckets:
    cdf = honored_lifetime_cdf(probes, probe_ceiling_seconds)
    return LifetimeBuckets(
        under_5_minutes=cdf.fraction_less(5 * MINUTE),
        at_most_1_hour=cdf.fraction_at_most(1 * HOUR),
        at_most_10_hours=cdf.fraction_at_most(10 * HOUR),
        at_least_24_hours=cdf.fraction_at_least(probe_ceiling_seconds),
        resuming_domains=len(cdf),
    )


def session_lifetime_by_domain(
    probes: Iterable[ResumptionProbeResult],
    probe_ceiling_seconds: float = 24 * HOUR,
) -> dict[str, float]:
    """domain -> honored lifetime in seconds (for the §6 windows)."""
    lifetimes: dict[str, float] = {}
    for probe in probes:
        if probe.max_success_delay is None:
            continue
        value = (
            probe_ceiling_seconds if probe.hit_probe_ceiling else probe.max_success_delay
        )
        lifetimes[probe.domain] = max(lifetimes.get(probe.domain, 0.0), value)
    return lifetimes


__all__ = [
    "ResumptionSupport",
    "support_summary",
    "honored_lifetime_cdf",
    "hint_cdf",
    "unspecified_hint_count",
    "LifetimeBuckets",
    "lifetime_buckets",
    "session_lifetime_by_domain",
]
