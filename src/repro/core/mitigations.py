"""Counterfactual evaluation of the paper's §8.2 recommendations.

Given measured per-domain vulnerability windows, model what each
operator-side mitigation would do to the population's exposure:

* **Rotate STEKs frequently** — caps the ticket window at the rotation
  interval (the paper suggests daily; Twitter/Google/CloudFlare built
  custom rotators).
* **Reduce session cache lifetimes** — caps the cache window at a
  typical-visit duration.
* **Never reuse (EC)DHE values** — zeroes the DH window (fresh value
  per handshake, as RFC 5246 already says).
* **Disable all resumption** — the maximum-security configuration:
  every window collapses to the connection itself.

These are analysis-level counterfactuals: they assume the mitigation is
applied perfectly and ask how the §6.4 headline numbers change.  The
same functions power the mitigation ablation benchmark, which shows the
38%/22%/10% exposure tail collapsing under daily STEK rotation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..netsim.clock import DAY, HOUR
from .windows import ExposureSummary, VulnerabilityWindow, summarize_exposure


@dataclass(frozen=True)
class MitigationPolicy:
    """One §8.2 configuration an operator could adopt."""

    name: str
    max_ticket_window: float = float("inf")   # STEK rotation cap
    max_cache_window: float = float("inf")    # session-cache lifetime cap
    max_dh_window: float = float("inf")       # 0 = never reuse values

    def apply(self, window: VulnerabilityWindow) -> VulnerabilityWindow:
        return VulnerabilityWindow(
            domain=window.domain,
            ticket_window=min(window.ticket_window, self.max_ticket_window),
            session_cache_window=min(window.session_cache_window, self.max_cache_window),
            dh_window=min(window.dh_window, self.max_dh_window),
        )


#: The paper's recommendations as concrete policies.
ROTATE_STEKS_DAILY = MitigationPolicy(
    name="rotate STEKs daily", max_ticket_window=1 * DAY
)
CAP_SESSION_CACHES = MitigationPolicy(
    name="cap session caches at 1 h", max_cache_window=1 * HOUR
)
FRESH_DH_VALUES = MitigationPolicy(
    name="never reuse (EC)DHE values", max_dh_window=0.0
)
ALL_RECOMMENDATIONS = MitigationPolicy(
    name="all §8.2 recommendations",
    max_ticket_window=1 * DAY,
    max_cache_window=1 * HOUR,
    max_dh_window=0.0,
)
DISABLE_RESUMPTION = MitigationPolicy(
    name="disable resumption and reuse entirely",
    max_ticket_window=0.0,
    max_cache_window=0.0,
    max_dh_window=0.0,
)

STANDARD_POLICIES = (
    ROTATE_STEKS_DAILY,
    CAP_SESSION_CACHES,
    FRESH_DH_VALUES,
    ALL_RECOMMENDATIONS,
    DISABLE_RESUMPTION,
)


@dataclass
class MitigationReport:
    """Before/after exposure for a set of policies."""

    baseline: ExposureSummary
    by_policy: dict[str, ExposureSummary] = field(default_factory=dict)

    def improvement_over_24h(self, policy_name: str) -> float:
        """Fractional reduction in >24 h exposed domains."""
        if self.baseline.over_24_hours == 0:
            return 0.0
        after = self.by_policy[policy_name].over_24_hours
        return 1.0 - after / self.baseline.over_24_hours


def apply_policy(
    windows: Mapping[str, VulnerabilityWindow], policy: MitigationPolicy
) -> dict[str, VulnerabilityWindow]:
    """Per-domain counterfactual windows under ``policy``."""
    return {name: policy.apply(window) for name, window in windows.items()}


def evaluate_mitigations(
    windows: Mapping[str, VulnerabilityWindow],
    policies=STANDARD_POLICIES,
) -> MitigationReport:
    """Exposure summaries for the baseline and each policy."""
    report = MitigationReport(baseline=summarize_exposure(windows))
    for policy in policies:
        report.by_policy[policy.name] = summarize_exposure(
            apply_policy(windows, policy)
        )
    return report


def render_mitigation_report(report: MitigationReport) -> str:
    """Text table: policy vs >24 h / >7 d / >30 d exposure."""
    lines = [
        "Mitigation evaluation (counterfactual, paper §8.2)",
        "",
        f"{'policy':<40} {'>24h':>8} {'>7d':>8} {'>30d':>8}",
        f"{'baseline (measured)':<40} "
        f"{report.baseline.fraction_over_24_hours:>8.1%} "
        f"{report.baseline.fraction_over_7_days:>8.1%} "
        f"{report.baseline.fraction_over_30_days:>8.1%}",
    ]
    for name, summary in report.by_policy.items():
        lines.append(
            f"{name:<40} {summary.fraction_over_24_hours:>8.1%} "
            f"{summary.fraction_over_7_days:>8.1%} "
            f"{summary.fraction_over_30_days:>8.1%}"
        )
    return "\n".join(lines)


__all__ = [
    "MitigationPolicy",
    "MitigationReport",
    "ROTATE_STEKS_DAILY",
    "CAP_SESSION_CACHES",
    "FRESH_DH_VALUES",
    "ALL_RECOMMENDATIONS",
    "DISABLE_RESUMPTION",
    "STANDARD_POLICIES",
    "apply_policy",
    "evaluate_mitigations",
    "render_mitigation_report",
]
