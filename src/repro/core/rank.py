"""Alexa-rank tiering (paper Figure 4).

The paper buckets domains into nested popularity tiers — Top 100, Top
1K, Top 10K, Top 100K, Top 1M — and plots STEK lifetime per tier.
Scaled-down populations use proportionally scaled tier boundaries so
the figure keeps its shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from .cdf import CDF
from .spans import DomainSpans

FULL_SCALE_TIERS = (100, 1_000, 10_000, 100_000, 1_000_000)


@dataclass(frozen=True)
class RankTier:
    """One nested popularity tier."""

    label: str
    max_rank: int


def tiers_for_population(
    population: int, full_scale: int = 1_000_000
) -> tuple[RankTier, ...]:
    """Scale the paper's tier boundaries to a smaller population.

    Tiers keep their full-scale labels ("Top 1K" means the same
    *fraction* of the list) so reports read like the paper's.
    """
    tiers = []
    for boundary in FULL_SCALE_TIERS:
        if boundary >= full_scale:
            # The outermost tier covers the whole list, including pinned
            # notable domains whose paper rank exceeds the population.
            max_rank = 1 << 30
        else:
            scaled = max(1, round(boundary * population / full_scale))
            max_rank = min(scaled, population)
        tiers.append(RankTier(label=f"Top {_format_count(boundary)}", max_rank=max_rank))
    return tuple(tiers)


def _format_count(count: int) -> str:
    if count >= 1_000_000:
        return f"{count // 1_000_000}M"
    if count >= 1_000:
        return f"{count // 1_000}K"
    return str(count)


def spans_by_tier(
    spans: Mapping[str, DomainSpans],
    ranks: Mapping[str, int],
    tiers: tuple[RankTier, ...],
) -> dict[str, CDF]:
    """Per-tier CDFs of max STEK span (tiers are nested, like Fig. 4)."""
    result: dict[str, CDF] = {}
    for tier in tiers:
        values = [
            entry.max_span_days
            for domain, entry in spans.items()
            if ranks.get(domain, 1 << 30) <= tier.max_rank
        ]
        result[tier.label] = CDF(values)
    return result


def tier_counts(
    spans: Mapping[str, DomainSpans],
    ranks: Mapping[str, int],
    tiers: tuple[RankTier, ...],
) -> dict[str, int]:
    """How many measured domains fall in each (nested) tier."""
    return {
        tier.label: sum(
            1 for domain in spans if ranks.get(domain, 1 << 30) <= tier.max_rank
        )
        for tier in tiers
    }


__all__ = [
    "RankTier",
    "FULL_SCALE_TIERS",
    "tiers_for_population",
    "spans_by_tier",
    "tier_counts",
]
