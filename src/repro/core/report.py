"""Report rendering: the paper's tables as text and structured rows.

Each ``table_*`` function consumes analysis outputs (never raw ground
truth) and returns both structured rows and a formatted text block
shaped like the corresponding table in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..netsim.clock import format_duration
from .groups import GroupingResult
from .spans import DomainSpans
from .support import SupportWaterfall


@dataclass
class TopReuseRow:
    """One row of Tables 2-4: a popular domain with a long-lived secret."""

    rank: int
    domain: str
    days: int


def render_waterfalls(sections: list[SupportWaterfall]) -> str:
    """Table 1: support for forward secrecy and resumption."""
    lines = ["Table 1: Support for Forward Secrecy and Resumption", ""]
    titles = {"dhe": "DHE", "ecdhe": "ECDHE", "ticket": "Session Tickets"}
    for section in sections:
        lines.append(f"[{titles.get(section.label, section.label)}]")
        for label, count in section.rows():
            lines.append(f"  {label:<34} {count:>10,}")
        lines.append("")
    return "\n".join(lines)


def top_reuse_rows(
    spans: Mapping[str, DomainSpans],
    ranks: Mapping[str, int],
    min_days: int = 7,
    top_n: int = 10,
) -> list[TopReuseRow]:
    """Most popular domains (by rank) reusing a secret for at least
    ``min_days``, counting days *inclusively* like the paper's tables
    (first-to-last day of a 63-day study reads "63")."""
    rows = [
        TopReuseRow(rank=ranks.get(domain, 1 << 30), domain=domain,
                    days=entry.max_days_inclusive)
        for domain, entry in spans.items()
        if entry.max_days_inclusive >= min_days
    ]
    rows.sort(key=lambda row: row.rank)
    return rows[:top_n]


def render_top_reuse(rows: list[TopReuseRow], title: str) -> str:
    """Tables 2-4 rendering."""
    lines = [title, "", f"{'Rank':>6}  {'Domain':<28} {'# Days':>6}"]
    for row in rows:
        lines.append(f"{row.rank:>6}  {row.domain:<28} {row.days:>6}")
    return "\n".join(lines)


def largest_group_rows(
    grouping: GroupingResult, top_n: int = 10
) -> list[tuple[str, int]]:
    """(operator label, member count) for the largest service groups.

    When one operator owns several of the top groups, rows are numbered
    "CloudFlare #1", "CloudFlare #2" like the paper's tables.
    """
    top = grouping.largest(top_n)
    bases = [group.label or "(unlabeled)" for group in top]
    totals = {base: bases.count(base) for base in bases}
    counters: dict[str, int] = {}
    rows = []
    for group, base in zip(top, bases):
        if totals[base] > 1:
            counters[base] = counters.get(base, 0) + 1
            label = f"{base} #{counters[base]}"
        else:
            label = base
        rows.append((label, len(group)))
    return rows


def render_largest_groups(grouping: GroupingResult, title: str, top_n: int = 10) -> str:
    """Tables 5-7 rendering."""
    lines = [title, "", f"{'Operator':<28} {'# domains':>10}"]
    for label, count in largest_group_rows(grouping, top_n):
        lines.append(f"{label:<28} {count:>10,}")
    lines.append("")
    lines.append(
        f"groups={grouping.group_count:,}  "
        f"singletons={grouping.singleton_count:,} "
        f"({grouping.singleton_count / max(grouping.group_count, 1):.0%})"
    )
    return "\n".join(lines)


def render_exposure_summary(summary, title: str = "Overall vulnerability windows") -> str:
    """§6.4 headline: domains exposed beyond 24 h / 7 d / 30 d."""
    lines = [
        title,
        "",
        f"domains considered:        {summary.domains:>8,}",
        f"window > 24 hours:         {summary.over_24_hours:>8,} "
        f"({summary.fraction_over_24_hours:.0%})",
        f"window > 7 days:           {summary.over_7_days:>8,} "
        f"({summary.fraction_over_7_days:.0%})",
        f"window > 30 days:          {summary.over_30_days:>8,} "
        f"({summary.fraction_over_30_days:.0%})",
    ]
    return "\n".join(lines)


def render_lifetime_buckets(buckets, mechanism: str) -> str:
    """Figures 1/2 headline fractions."""
    return "\n".join([
        f"{mechanism} resumption lifetimes "
        f"({buckets.resuming_domains:,} resuming domains)",
        f"  honored < 5 minutes:  {buckets.under_5_minutes:.0%}",
        f"  honored <= 1 hour:    {buckets.at_most_1_hour:.0%}",
        f"  honored <= 10 hours:  {buckets.at_most_10_hours:.0%}",
        f"  honored >= 24 hours:  {buckets.at_least_24_hours:.1%}",
    ])


def describe_window(seconds: float) -> str:
    """Readable form of a vulnerability window."""
    if seconds <= 0:
        return "none observed"
    return format_duration(seconds)


__all__ = [
    "TopReuseRow",
    "render_waterfalls",
    "top_reuse_rows",
    "render_top_reuse",
    "largest_group_rows",
    "render_largest_groups",
    "render_exposure_summary",
    "render_lifetime_buckets",
    "describe_window",
]
