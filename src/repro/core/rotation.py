"""Offline rotation-interval estimation from longitudinal scans.

§7.2 measures Google's 14-hour STEK rotation with dedicated hourly
probes.  At population scale only daily observations exist, but the
same inference works offline: the sequence of identifier *changes* in
a domain's daily scans bounds its rotation interval, and the span
distribution classifies its policy.

These estimators feed operator-facing reporting ("this domain appears
to rotate roughly weekly") and the `repro` CLI's audit output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from ..netsim.clock import DAY
from .spans import DomainSpans
from ..scanner.records import ScanObservation


@dataclass(frozen=True)
class RotationEstimate:
    """One domain's inferred key-rotation behavior."""

    domain: str
    observed_keys: int
    observation_days: int
    estimated_interval_days: Optional[float]  # None = no rotation observed
    policy: str  # "sub-daily" | "daily" | "multi-day" | "static"

    @property
    def rotates(self) -> bool:
        return self.estimated_interval_days is not None


def estimate_rotation(
    observations: Iterable[ScanObservation],
    domains: Optional[set] = None,
) -> dict[str, RotationEstimate]:
    """Estimate each domain's STEK rotation from daily ticket scans.

    With one sample per day the estimate is day-granular: a domain
    showing a fresh identifier every day rotates at least daily
    ("sub-daily" is indistinguishable from "daily" here — the paper's
    hourly probes exist precisely to split that case); a domain showing
    one identifier throughout is "static".
    """
    per_domain: dict[str, dict[int, str]] = {}
    for observation in observations:
        if not observation.success or not observation.stek_id:
            continue
        if domains is not None and observation.domain not in domains:
            continue
        per_domain.setdefault(observation.domain, {})[observation.day] = (
            observation.stek_id
        )
    return estimates_from_day_keys(per_domain)


def estimates_from_day_keys(
    per_domain: Mapping[str, Mapping[int, str]],
    domains: Optional[set] = None,
) -> dict[str, RotationEstimate]:
    """Rotation estimates from per-domain ``{day: identifier}`` maps.

    The map form is what the streaming analysis engine accumulates per
    shard (each (domain, day) cell is written by exactly one scan, so
    shard merges commute); :func:`estimate_rotation` builds the same
    maps from raw observations and delegates here.
    """
    estimates: dict[str, RotationEstimate] = {}
    for domain, by_day in per_domain.items():
        if domains is not None and domain not in domains:
            continue
        days = sorted(by_day)
        keys = [by_day[d] for d in days]
        distinct = len(set(keys))
        if distinct == 1:
            estimates[domain] = RotationEstimate(
                domain=domain,
                observed_keys=1,
                observation_days=len(days),
                estimated_interval_days=None,
                policy="static",
            )
            continue
        change_days = [
            days[i] for i in range(1, len(days)) if keys[i] != keys[i - 1]
        ]
        if len(change_days) >= 2:
            gaps = sorted(
                b - a for a, b in zip(change_days, change_days[1:])
            )
            interval = float(gaps[len(gaps) // 2])
        else:
            # One observed change: the interval is at least the longer
            # stable stretch around it.
            interval = float(max(change_days[0] - days[0],
                                 days[-1] - change_days[0]))
        interval = max(interval, 1.0)
        if interval <= 1.0:
            policy = "daily"
        elif interval <= 2.0:
            policy = "daily"
        else:
            policy = "multi-day"
        estimates[domain] = RotationEstimate(
            domain=domain,
            observed_keys=distinct,
            observation_days=len(days),
            estimated_interval_days=interval,
            policy=policy,
        )
    return estimates


def rotation_policy_histogram(
    estimates: Mapping[str, RotationEstimate]
) -> dict[str, int]:
    """Domains per inferred rotation policy class."""
    histogram: dict[str, int] = {}
    for estimate in estimates.values():
        histogram[estimate.policy] = histogram.get(estimate.policy, 0) + 1
    return histogram


def consistent_with_spans(
    estimates: Mapping[str, RotationEstimate],
    spans: Mapping[str, DomainSpans],
) -> bool:
    """Cross-check: a domain's max span can't exceed what its estimated
    rotation interval allows (static domains excepted)."""
    for domain, estimate in estimates.items():
        if estimate.estimated_interval_days is None:
            continue
        entry = spans.get(domain)
        if entry is None:
            continue
        if entry.max_span_days > estimate.estimated_interval_days + 1:
            return False
    return True


__all__ = ["RotationEstimate", "estimate_rotation", "estimates_from_day_keys",
           "rotation_policy_histogram", "consistent_with_spans"]
