"""Secret-lifetime span estimation from daily scans (paper §4.3, §4.4).

The central estimator: for each ``(domain, identifier)`` pair — where
the identifier is a STEK key name or an (EC)DHE public value — the
lifetime *span* is the gap between the first and last study day it was
observed.  The paper argues first/last-seen is the right estimator
because Internet scanning jitters (A-record rotation, load balancers
without affinity, missed connections) interleave other identifiers
between sightings of a long-lived one; colliding or flip-flopping
identifiers are overwhelmingly unlikely, so intermediate noise should
not split a span.

The consecutive-days estimator the paper rejects is implemented too,
for the ablation benchmark that quantifies exactly how much it
undercounts under jitter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from .cdf import CDF
from ..scanner.records import ScanObservation


@dataclass
class IdentifierSpan:
    """One identifier's observed lifetime at one domain."""

    domain: str
    identifier: str
    first_day: int
    last_day: int
    observations: int

    @property
    def span_days(self) -> int:
        """First-seen to last-seen gap, in days (0 = seen on one day)."""
        return self.last_day - self.first_day

    @property
    def days_inclusive(self) -> int:
        """Inclusive day count, the paper's table convention: a key seen
        on the first and last day of a 63-day study shows "63 days"."""
        return self.span_days + 1


@dataclass
class DomainSpans:
    """All identifier spans for one domain."""

    domain: str
    spans: list[IdentifierSpan] = field(default_factory=list)

    @property
    def max_span_days(self) -> int:
        return max((span.span_days for span in self.spans), default=0)

    @property
    def max_days_inclusive(self) -> int:
        return max((span.days_inclusive for span in self.spans), default=0)

    @property
    def ever_observed(self) -> bool:
        return bool(self.spans)


def _extract_stek(observation: ScanObservation) -> Optional[str]:
    return observation.stek_id if observation.ticket_issued else None


def _extract_kex(observation: ScanObservation) -> Optional[str]:
    return observation.kex_public


def collect_spans(
    observations: Iterable[ScanObservation],
    identifier_fn: Callable[[ScanObservation], Optional[str]],
    domains: Optional[set[str]] = None,
) -> dict[str, DomainSpans]:
    """First/last-seen spans per (domain, identifier).

    ``domains`` restricts the analysis (the paper restricts to domains
    present in the Top Million every day of the study).
    """
    firsts: dict[tuple[str, str], int] = {}
    lasts: dict[tuple[str, str], int] = {}
    counts: dict[tuple[str, str], int] = {}
    for observation in observations:
        if not observation.success:
            continue
        if domains is not None and observation.domain not in domains:
            continue
        identifier = identifier_fn(observation)
        if not identifier:
            continue
        key = (observation.domain, identifier)
        if key not in firsts:
            firsts[key] = observation.day
        lasts[key] = max(lasts.get(key, observation.day), observation.day)
        counts[key] = counts.get(key, 0) + 1
    result: dict[str, DomainSpans] = {}
    for (domain, identifier), first_day in firsts.items():
        entry = result.setdefault(domain, DomainSpans(domain=domain))
        entry.spans.append(
            IdentifierSpan(
                domain=domain,
                identifier=identifier,
                first_day=first_day,
                last_day=lasts[(domain, identifier)],
                observations=counts[(domain, identifier)],
            )
        )
    return result


def stek_spans(
    observations: Iterable[ScanObservation],
    domains: Optional[set[str]] = None,
) -> dict[str, DomainSpans]:
    """STEK-identifier spans from the daily ticket scans (Fig. 3)."""
    return collect_spans(observations, _extract_stek, domains)


def kex_spans(
    observations: Iterable[ScanObservation],
    domains: Optional[set[str]] = None,
    kind: Optional[str] = None,
) -> dict[str, DomainSpans]:
    """(EC)DHE-value spans from the daily key-exchange scans (Fig. 5).

    Accepts any iterable (including a streamed dataset view) and never
    materializes it: the ``kind`` filter is applied lazily.
    """
    if kind is not None:
        observations = (o for o in observations if o.kex_kind == kind)
    return collect_spans(observations, _extract_kex, domains)


def consecutive_spans(
    observations: Iterable[ScanObservation],
    identifier_fn: Callable[[ScanObservation], Optional[str]] = _extract_stek,
    domains: Optional[set[str]] = None,
) -> dict[str, DomainSpans]:
    """The jitter-fragile estimator: count only *consecutive* scan days.

    A single missed day or load-balancer flip splits one long span into
    several short ones.  Kept for the span-estimator ablation.
    """
    per_key_days: dict[tuple[str, str], set[int]] = {}
    for observation in observations:
        if not observation.success:
            continue
        if domains is not None and observation.domain not in domains:
            continue
        identifier = identifier_fn(observation)
        if not identifier:
            continue
        per_key_days.setdefault((observation.domain, identifier), set()).add(
            observation.day
        )
    result: dict[str, DomainSpans] = {}
    for (domain, identifier), days in per_key_days.items():
        entry = result.setdefault(domain, DomainSpans(domain=domain))
        for first, last, count in _runs(sorted(days)):
            entry.spans.append(
                IdentifierSpan(
                    domain=domain,
                    identifier=identifier,
                    first_day=first,
                    last_day=last,
                    observations=count,
                )
            )
    return result


def _runs(days: list[int]) -> Iterable[tuple[int, int, int]]:
    """Maximal runs of consecutive integers as (first, last, length)."""
    if not days:
        return
    start = previous = days[0]
    for day in days[1:]:
        if day == previous + 1:
            previous = day
            continue
        yield (start, previous, previous - start + 1)
        start = previous = day
    yield (start, previous, previous - start + 1)


def max_span_cdf(spans: dict[str, DomainSpans]) -> CDF:
    """CDF of per-domain maximum identifier spans, in days."""
    return CDF(entry.max_span_days for entry in spans.values())


def span_fractions(
    spans: dict[str, DomainSpans], thresholds_days: Iterable[int] = (1, 7, 30)
) -> dict[int, float]:
    """Fraction of domains whose max span meets each threshold."""
    cdf = max_span_cdf(spans)
    return {t: cdf.fraction_at_least(t) for t in thresholds_days}


def reuse_within_scan(observations: Iterable[ScanObservation]) -> dict[str, dict[str, int]]:
    """Per-domain identifier repetition counts within one multi-connection
    scan (Table 1's "≥2x same server KEX value" / "all same" rows)."""
    per_domain: dict[str, dict[str, int]] = {}
    for observation in observations:
        if not observation.success or not observation.kex_public:
            continue
        bucket = per_domain.setdefault(observation.domain, {})
        bucket[observation.kex_public] = bucket.get(observation.kex_public, 0) + 1
    return per_domain


__all__ = [
    "IdentifierSpan",
    "DomainSpans",
    "collect_spans",
    "stek_spans",
    "kex_spans",
    "consecutive_spans",
    "max_span_cdf",
    "span_fractions",
    "reuse_within_scan",
]
