"""Support-scan analysis: the counts behind Table 1.

From a 10-connection scan with one cipher offer, derive the paper's
waterfall: list size → non-blacklisted → browser-trusted TLS → supports
the mechanism → repeated the same secret value at least twice → always
presented the same value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from ..scanner.records import ScanObservation


@dataclass
class SupportWaterfall:
    """One section of Table 1."""

    label: str
    list_size: int
    non_blacklisted: int
    browser_trusted: int
    supporting: int          # completed the mechanism's handshake / issued
    repeated_value: int      # ≥2 connections with the same secret value
    always_same_value: int   # every successful connection had one value

    def rows(self) -> list[tuple[str, int]]:
        support_label = {
            "dhe": "Support DHE ciphers",
            "ecdhe": "Support ECDHE ciphers",
            "ticket": "Issue session tickets",
        }.get(self.label, "Support mechanism")
        value_label = "STEK ID" if self.label == "ticket" else "server KEX value"
        return [
            ("Alexa 1M domains", self.list_size),
            ("Non-blacklisted domains", self.non_blacklisted),
            ("Browser-trusted TLS domains", self.browser_trusted),
            (support_label, self.supporting),
            (f">= 2x same {value_label}", self.repeated_value),
            (f"All same {value_label}", self.always_same_value),
        ]


def _per_domain_values(
    observations: Iterable[ScanObservation], kind: str
) -> tuple[dict[str, list[Optional[str]]], dict[str, bool]]:
    """Per-domain secret values from successful connections, plus trust."""
    values: dict[str, list[Optional[str]]] = {}
    trusted: dict[str, bool] = {}
    for observation in observations:
        if not observation.success:
            continue
        trusted[observation.domain] = (
            trusted.get(observation.domain, False) or observation.cert_trusted
        )
        if kind == "ticket":
            value = observation.stek_id if observation.ticket_issued else None
        else:
            value = (
                observation.kex_public
                if observation.kex_kind == kind
                else None
            )
        values.setdefault(observation.domain, []).append(value)
    return values, trusted


def support_waterfall(
    observations: Iterable[ScanObservation],
    kind: str,
    list_size: int,
    non_blacklisted: int,
    trusted_domains: Optional[set] = None,
) -> SupportWaterfall:
    """Compute one Table 1 section from a multi-connection scan.

    ``kind`` is "dhe", "ecdhe", or "ticket".  Counts follow the paper:
    *browser-trusted* = any successful connection with a trusted cert;
    *supporting* = among trusted, completed the kind's key exchange (or
    issued a ticket); the value rows count trusted supporters whose
    secret values repeated within the scan.

    A restricted-offer scan (DHE-only) cannot measure general trust —
    non-DHE servers refuse the handshake outright — so the paper takes
    the trusted-domain population from a full scan.  Pass that set as
    ``trusted_domains`` for such sections.
    """
    if kind not in ("dhe", "ecdhe", "ticket"):
        raise ValueError(f"unknown support kind {kind!r}")
    values, trusted = _per_domain_values(observations, kind)
    tallies: dict[str, dict[str, int]] = {}
    for domain, domain_values in values.items():
        tally: dict[str, int] = {}
        for value in domain_values:
            if value:
                tally[value] = tally.get(value, 0) + 1
        tallies[domain] = tally
    return waterfall_from_tallies(
        tallies, trusted, kind, list_size, non_blacklisted,
        trusted_domains=trusted_domains,
    )


def waterfall_from_tallies(
    tallies: Mapping[str, Mapping[str, int]],
    trusted: Mapping[str, bool],
    kind: str,
    list_size: int,
    non_blacklisted: int,
    trusted_domains: Optional[set] = None,
) -> SupportWaterfall:
    """Build one Table 1 section from per-domain value tallies.

    ``tallies`` maps every domain that completed at least one
    connection to its counts of repeated secret values (may be empty
    for a domain that never presented one); ``trusted`` carries each
    such domain's browser-trust flag.  This is the aggregated form the
    streaming analysis engine folds per shard — the per-connection
    value lists :func:`support_waterfall` sees never need to exist.
    """
    if kind not in ("dhe", "ecdhe", "ticket"):
        raise ValueError(f"unknown support kind {kind!r}")
    if trusted_domains is not None:
        browser_trusted = [d for d in trusted_domains]
        eligible = [d for d in browser_trusted if d in tallies]
    else:
        browser_trusted = [d for d, ok in trusted.items() if ok]
        eligible = browser_trusted
    supporting = repeated = always_same = 0
    for domain in eligible:
        tally = tallies.get(domain)
        if not tally:
            continue
        supporting += 1
        if max(tally.values()) >= 2:
            repeated += 1
        if len(tally) == 1 and sum(tally.values()) >= 2:
            always_same += 1
    return SupportWaterfall(
        label=kind,
        list_size=list_size,
        non_blacklisted=non_blacklisted,
        browser_trusted=len(browser_trusted),
        supporting=supporting,
        repeated_value=repeated,
        always_same_value=always_same,
    )


__all__ = ["SupportWaterfall", "support_waterfall", "waterfall_from_tallies"]
