"""Attack-value ranking of shared secrets (paper §6).

§6 frames the harm as the *interaction* of two factors: how long a
secret lives (the vulnerability window) and how many domains it covers
(the service group).  "The interaction of these two factors presents an
enticing target for an attacker who wishes to decrypt large numbers of
connections for a comparatively small amount of work."

This module scores that interaction: for each service group, the
*blast radius* of stealing its secret is the number of member domains
times the window during which recorded traffic stays decryptable —
domain-days of retrospective decryption per theft.  Ranked output is
what an intelligence agency's targeting cell (or a defender running a
risk review) would look at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..netsim.clock import DAY, format_duration
from .groups import GroupingResult
from .spans import DomainSpans


@dataclass(frozen=True)
class TargetValue:
    """One service group's worth to an attacker."""

    label: str
    mechanism: str
    member_domains: int
    median_window_seconds: float
    blast_radius_domain_days: float  # members × window, in domain-days

    def describe(self) -> str:
        return (
            f"{self.label or '(unlabeled)':<24} {self.mechanism:<13} "
            f"{self.member_domains:>8,} domains x "
            f"{format_duration(self.median_window_seconds):>7} = "
            f"{self.blast_radius_domain_days:>10,.1f} domain-days"
        )


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    return ordered[len(ordered) // 2] if ordered else 0.0


def rank_targets(
    grouping: GroupingResult,
    window_seconds_by_domain: Mapping[str, float],
    min_members: int = 1,
    top_n: Optional[int] = None,
) -> list[TargetValue]:
    """Score and rank service groups by blast radius.

    ``window_seconds_by_domain`` is the per-domain window for the
    grouping's mechanism — e.g. STEK span seconds for a STEK grouping,
    honored cache lifetime for a session-cache grouping.
    """
    scored: list[TargetValue] = []
    for group in grouping.groups:
        if len(group) < min_members:
            continue
        windows = [
            window_seconds_by_domain[d]
            for d in group.domains
            if d in window_seconds_by_domain
        ]
        if not windows:
            continue
        median = _median(windows)
        scored.append(
            TargetValue(
                label=group.label,
                mechanism=grouping.mechanism,
                member_domains=len(group),
                median_window_seconds=median,
                blast_radius_domain_days=len(group) * median / DAY,
            )
        )
    scored.sort(key=lambda t: (-t.blast_radius_domain_days, t.label))
    return scored[:top_n] if top_n else scored


def spans_to_window_seconds(spans: Mapping[str, DomainSpans]) -> dict[str, float]:
    """Per-domain window from span measurements (max span, seconds)."""
    return {domain: entry.max_span_days * DAY for domain, entry in spans.items()}


def render_target_ranking(targets: Sequence[TargetValue], title: str,
                          top_n: int = 10) -> str:
    """The targeting cell's briefing sheet."""
    lines = [title, ""]
    for target in targets[:top_n]:
        lines.append("  " + target.describe())
    if not targets:
        lines.append("  (no shared secrets found)")
    else:
        total = sum(t.blast_radius_domain_days for t in targets[:top_n])
        lines.append("")
        lines.append(
            f"stealing the top {min(top_n, len(targets))} secrets buys "
            f"{total:,.0f} domain-days of retrospective decryption"
        )
    return "\n".join(lines)


__all__ = [
    "TargetValue",
    "rank_targets",
    "spans_to_window_seconds",
    "render_target_ranking",
]
