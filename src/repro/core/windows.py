"""Vulnerability-window computation (paper §6) — the headline analysis.

A domain's *vulnerability window* for a mechanism is the span of time
during which an attacker who compromises the server's stored secrets
can decrypt a recorded "forward-secret" connection:

* **Session tickets** — the ticket rides every connection in the
  clear; anyone holding the STEK can open it.  The window is the
  STEK's lifetime: its observed first/last-seen span (§6.1).
* **Session caches** — the session keys sit in the server cache until
  eviction.  The window is the honored resumption lifetime (§6.2).
* **Diffie-Hellman reuse** — the server's ``a``/``d_A`` decrypts every
  connection that used it.  The window is the value's observed span
  (§6.3).

A domain's combined exposure is the maximum across mechanisms (§6.4,
Figure 8).  All windows are lower bounds: a server that stops
*honoring* state may not have *erased* it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from ..netsim.clock import DAY, HOUR
from .cdf import CDF
from .spans import DomainSpans


@dataclass
class VulnerabilityWindow:
    """One domain's per-mechanism and combined exposure, in seconds."""

    domain: str
    ticket_window: float = 0.0
    session_cache_window: float = 0.0
    dh_window: float = 0.0

    @property
    def combined(self) -> float:
        """Overall exposure: the longest mechanism window (§6.4)."""
        return max(self.ticket_window, self.session_cache_window, self.dh_window)

    @property
    def dominant_mechanism(self) -> str:
        best = self.combined
        if best == 0.0:
            return "none"
        if best == self.ticket_window:
            return "ticket"
        if best == self.session_cache_window:
            return "session_cache"
        return "dh"


def combine_windows(
    stek_spans_by_domain: Optional[Mapping[str, DomainSpans]] = None,
    session_lifetimes: Optional[Mapping[str, float]] = None,
    dhe_spans_by_domain: Optional[Mapping[str, DomainSpans]] = None,
    ecdhe_spans_by_domain: Optional[Mapping[str, DomainSpans]] = None,
    domains: Optional[Iterable[str]] = None,
) -> dict[str, VulnerabilityWindow]:
    """Merge the three mechanisms' measurements into per-domain windows.

    ``domains`` fixes the universe (e.g. always-present trusted
    domains); otherwise the union of all measured domains is used.
    Span measurements are day-granular; a span of 0 days means the
    secret was only seen on one day, which still implies a window of up
    to one scan interval — we count it as 0 (a strict lower bound).
    """
    stek_spans_by_domain = stek_spans_by_domain or {}
    session_lifetimes = session_lifetimes or {}
    dhe_spans_by_domain = dhe_spans_by_domain or {}
    ecdhe_spans_by_domain = ecdhe_spans_by_domain or {}
    if domains is None:
        universe = (
            set(stek_spans_by_domain)
            | set(session_lifetimes)
            | set(dhe_spans_by_domain)
            | set(ecdhe_spans_by_domain)
        )
    else:
        universe = set(domains)
    windows: dict[str, VulnerabilityWindow] = {}
    # Sorted iteration makes the result's dict order (and therefore any
    # tie-breaking downstream, e.g. `repro audit --worst`) independent
    # of hash randomization — identical across processes and between
    # the in-memory and streaming analysis paths.
    for domain in sorted(universe):
        window = VulnerabilityWindow(domain=domain)
        stek = stek_spans_by_domain.get(domain)
        if stek is not None and stek.ever_observed:
            window.ticket_window = stek.max_span_days * DAY
        lifetime = session_lifetimes.get(domain)
        if lifetime:
            window.session_cache_window = lifetime
        dh_days = 0
        dhe = dhe_spans_by_domain.get(domain)
        if dhe is not None:
            dh_days = max(dh_days, dhe.max_span_days)
        ecdhe = ecdhe_spans_by_domain.get(domain)
        if ecdhe is not None:
            dh_days = max(dh_days, ecdhe.max_span_days)
        window.dh_window = dh_days * DAY
        windows[domain] = window
    return windows


@dataclass
class ExposureSummary:
    """The paper's §6.4 headline numbers."""

    domains: int
    over_24_hours: int
    over_7_days: int
    over_30_days: int

    @property
    def fraction_over_24_hours(self) -> float:
        return self.over_24_hours / self.domains if self.domains else 0.0

    @property
    def fraction_over_7_days(self) -> float:
        return self.over_7_days / self.domains if self.domains else 0.0

    @property
    def fraction_over_30_days(self) -> float:
        return self.over_30_days / self.domains if self.domains else 0.0


def summarize_exposure(windows: Mapping[str, VulnerabilityWindow]) -> ExposureSummary:
    """Count domains whose combined window exceeds 24 h / 7 d / 30 d."""
    values = [w.combined for w in windows.values()]
    return ExposureSummary(
        domains=len(values),
        over_24_hours=sum(1 for v in values if v > 24 * HOUR),
        over_7_days=sum(1 for v in values if v > 7 * DAY),
        over_30_days=sum(1 for v in values if v > 30 * DAY),
    )


def combined_window_cdf(windows: Mapping[str, VulnerabilityWindow]) -> CDF:
    """Figure 8: CDF of combined vulnerability windows (seconds)."""
    return CDF(w.combined for w in windows.values())


def per_mechanism_cdfs(
    windows: Mapping[str, VulnerabilityWindow],
) -> dict[str, CDF]:
    """Per-mechanism window CDFs (for decomposition/ablation plots)."""
    return {
        "ticket": CDF(w.ticket_window for w in windows.values()),
        "session_cache": CDF(w.session_cache_window for w in windows.values()),
        "dh": CDF(w.dh_window for w in windows.values()),
    }


__all__ = [
    "VulnerabilityWindow",
    "combine_windows",
    "ExposureSummary",
    "summarize_exposure",
    "combined_window_cdf",
    "per_mechanism_cdfs",
]
