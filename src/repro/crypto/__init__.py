"""Cryptographic primitives implemented from scratch for the TLS model.

Submodules:

* :mod:`repro.crypto.rng` — deterministic HMAC-DRBG randomness
* :mod:`repro.crypto.aes` — AES block cipher (FIPS 197)
* :mod:`repro.crypto.modes` — CBC/CTR modes, PKCS#7 padding
* :mod:`repro.crypto.mac` — SHA-2/HMAC helpers
* :mod:`repro.crypto.prf` — TLS 1.2 PRF and key derivation
* :mod:`repro.crypto.dh` — finite-field Diffie-Hellman (DHE)
* :mod:`repro.crypto.ec` — elliptic-curve arithmetic (ECDHE)
* :mod:`repro.crypto.rsa` — RSA for certificate signatures
"""

from .rng import DeterministicRandom
from .aes import AES
from .modes import cbc_decrypt, cbc_encrypt, ctr_xor, PaddingError
from .mac import hmac_sha256, sha256, constant_time_equal
from .prf import derive_key_block, derive_master_secret, prf
from . import dh, ec, rsa

__all__ = [
    "DeterministicRandom",
    "AES",
    "cbc_encrypt",
    "cbc_decrypt",
    "ctr_xor",
    "PaddingError",
    "hmac_sha256",
    "sha256",
    "constant_time_equal",
    "prf",
    "derive_master_secret",
    "derive_key_block",
    "dh",
    "ec",
    "rsa",
]
