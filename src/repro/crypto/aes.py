"""Pure-Python AES block cipher (FIPS 197).

Implements AES-128/192/256 encryption and decryption of single 16-byte
blocks.  RFC 5077 recommends AES-CBC with a 128-bit key for encrypting
session-ticket state, and this module (together with
:mod:`repro.crypto.modes`) is what the simulated servers use to build
tickets, so the scanner genuinely decrypts and forges nothing.

The round function uses the classic 32-bit T-table formulation
(SubBytes + ShiftRows + MixColumns folded into four table lookups per
column), which keeps the millions of simulated ticket seal/open
operations fast enough for full-ecosystem scans.  Correctness is pinned
to the FIPS 197 vectors in the test suite.
"""

from __future__ import annotations

from collections import OrderedDict

from ..obs.metrics import METRICS, register_process_cache

BLOCK_SIZE = 16

_SBOX = [0] * 256
_INV_SBOX = [0] * 256


def _rotl8(x: int, shift: int) -> int:
    return ((x << shift) | (x >> (8 - shift))) & 0xFF


def _build_sbox() -> None:
    # Multiplicative inverse in GF(2^8) followed by the affine transform.
    p = q = 1
    first = True
    while first or p != 1:
        first = False
        p = p ^ ((p << 1) & 0xFF) ^ (0x1B if p & 0x80 else 0)  # p *= 3
        q ^= q << 1  # q /= 3
        q ^= q << 2
        q ^= q << 4
        q &= 0xFF
        if q & 0x80:
            q ^= 0x09
        xformed = q ^ _rotl8(q, 1) ^ _rotl8(q, 2) ^ _rotl8(q, 3) ^ _rotl8(q, 4)
        _SBOX[p] = xformed ^ 0x63
    _SBOX[0] = 0x63
    for i, v in enumerate(_SBOX):
        _INV_SBOX[v] = i


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) under the AES polynomial."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


_build_sbox()

# Encryption T-tables: T0[x] = (2s, s, s, 3s) as a big-endian 32-bit
# word; T1..T3 are byte rotations of T0.
_T0 = [0] * 256
for _x in range(256):
    _s = _SBOX[_x]
    _T0[_x] = (_gmul(_s, 2) << 24) | (_s << 16) | (_s << 8) | _gmul(_s, 3)
_T1 = [((t >> 8) | ((t & 0xFF) << 24)) & 0xFFFFFFFF for t in _T0]
_T2 = [((t >> 16) | ((t & 0xFFFF) << 16)) & 0xFFFFFFFF for t in _T0]
_T3 = [((t >> 24) | ((t & 0xFFFFFF) << 8)) & 0xFFFFFFFF for t in _T0]

# Decryption T-tables: D0[x] = (14s, 9s, 13s, 11s) with s = InvSBox[x].
_D0 = [0] * 256
for _x in range(256):
    _s = _INV_SBOX[_x]
    _D0[_x] = (
        (_gmul(_s, 14) << 24) | (_gmul(_s, 9) << 16) | (_gmul(_s, 13) << 8) | _gmul(_s, 11)
    )
_D1 = [((t >> 8) | ((t & 0xFF) << 24)) & 0xFFFFFFFF for t in _D0]
_D2 = [((t >> 16) | ((t & 0xFFFF) << 16)) & 0xFFFFFFFF for t in _D0]
_D3 = [((t >> 24) | ((t & 0xFFFFFF) << 8)) & 0xFFFFFFFF for t in _D0]

# InvMixColumns as word->word (for transforming decryption round keys).
_U0 = [0] * 256
for _x in range(256):
    _U0[_x] = (
        (_gmul(_x, 14) << 24) | (_gmul(_x, 9) << 16) | (_gmul(_x, 13) << 8) | _gmul(_x, 11)
    )

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]


def _inv_mix_word(word: int) -> int:
    return (
        _U0[(word >> 24) & 0xFF]
        ^ ((_U0[(word >> 16) & 0xFF] >> 8) | ((_U0[(word >> 16) & 0xFF] & 0xFF) << 24))
        ^ ((_U0[(word >> 8) & 0xFF] >> 16) | ((_U0[(word >> 8) & 0xFF] & 0xFFFF) << 16))
        ^ ((_U0[word & 0xFF] >> 24) | ((_U0[word & 0xFF] & 0xFFFFFF) << 8))
    ) & 0xFFFFFFFF


class AES:
    """AES block cipher for a fixed key.

    >>> cipher = AES(bytes(16))
    >>> cipher.decrypt_block(cipher.encrypt_block(b"sixteen byte msg"))
    b'sixteen byte msg'
    """

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ValueError("AES key must be 16, 24, or 32 bytes")
        self.key = key
        self._nk = len(key) // 4
        self._nr = self._nk + 6
        self._rounds = range(self._nr - 1)  # hoisted out of the block loop
        self._enc_keys = self._expand_key(key)
        # Decryption keys are derived lazily: a STEK that only ever
        # *seals* (every full handshake on a ticket-issuing server)
        # never pays for the InvMixColumns transform.
        self._dec_keys: list[int] | None = None

    def _expand_key(self, key: bytes) -> list[int]:
        """Key schedule as a flat list of 4*(nr+1) 32-bit words."""
        nk, nr = self._nk, self._nr
        words = [int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(nk)]
        for i in range(nk, 4 * (nr + 1)):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = (  # SubWord
                    (_SBOX[(temp >> 24) & 0xFF] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (_SBOX[(temp >> 24) & 0xFF] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return words

    def _decryption_keys(self, enc_keys: list[int]) -> list[int]:
        """Equivalent-inverse-cipher round keys (reversed + InvMixColumns)."""
        nr = self._nr
        dec: list[int] = []
        for rnd in range(nr, -1, -1):
            block = enc_keys[4 * rnd : 4 * rnd + 4]
            if rnd in (0, nr):
                dec.extend(block)
            else:
                dec.extend(_inv_mix_word(w) for w in block)
        return dec

    def encrypt_int(self, state: int) -> int:
        """Encrypt one block held as a 128-bit big-endian integer.

        The integer form is the cipher-mode fast path: CBC chaining and
        CTR keystream generation are whole-block XORs on ints, so modes
        avoid four ``int``/``bytes`` conversions per block per call.
        """
        rk = self._enc_keys
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        s0 = (state >> 96) ^ rk[0]
        s1 = ((state >> 64) & 0xFFFFFFFF) ^ rk[1]
        s2 = ((state >> 32) & 0xFFFFFFFF) ^ rk[2]
        s3 = (state & 0xFFFFFFFF) ^ rk[3]
        k = 4
        for _ in self._rounds:
            u0 = t0[s0 >> 24] ^ t1[(s1 >> 16) & 0xFF] ^ t2[(s2 >> 8) & 0xFF] ^ t3[s3 & 0xFF] ^ rk[k]
            u1 = t0[s1 >> 24] ^ t1[(s2 >> 16) & 0xFF] ^ t2[(s3 >> 8) & 0xFF] ^ t3[s0 & 0xFF] ^ rk[k + 1]
            u2 = t0[s2 >> 24] ^ t1[(s3 >> 16) & 0xFF] ^ t2[(s0 >> 8) & 0xFF] ^ t3[s1 & 0xFF] ^ rk[k + 2]
            u3 = t0[s3 >> 24] ^ t1[(s0 >> 16) & 0xFF] ^ t2[(s1 >> 8) & 0xFF] ^ t3[s2 & 0xFF] ^ rk[k + 3]
            s0, s1, s2, s3 = u0, u1, u2, u3
            k += 4
        sbox = _SBOX
        w0 = (sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16) | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]
        w1 = (sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16) | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]
        w2 = (sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16) | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]
        w3 = (sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16) | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]
        return (
            ((w0 ^ rk[k]) << 96)
            | ((w1 ^ rk[k + 1]) << 64)
            | ((w2 ^ rk[k + 2]) << 32)
            | (w3 ^ rk[k + 3])
        )

    def decrypt_int(self, state: int) -> int:
        """Decrypt one block held as a 128-bit big-endian integer."""
        rk = self._dec_keys
        if rk is None:
            rk = self._dec_keys = self._decryption_keys(self._enc_keys)
        d0, d1, d2, d3 = _D0, _D1, _D2, _D3
        s0 = (state >> 96) ^ rk[0]
        s1 = ((state >> 64) & 0xFFFFFFFF) ^ rk[1]
        s2 = ((state >> 32) & 0xFFFFFFFF) ^ rk[2]
        s3 = (state & 0xFFFFFFFF) ^ rk[3]
        k = 4
        for _ in self._rounds:
            u0 = d0[s0 >> 24] ^ d1[(s3 >> 16) & 0xFF] ^ d2[(s2 >> 8) & 0xFF] ^ d3[s1 & 0xFF] ^ rk[k]
            u1 = d0[s1 >> 24] ^ d1[(s0 >> 16) & 0xFF] ^ d2[(s3 >> 8) & 0xFF] ^ d3[s2 & 0xFF] ^ rk[k + 1]
            u2 = d0[s2 >> 24] ^ d1[(s1 >> 16) & 0xFF] ^ d2[(s0 >> 8) & 0xFF] ^ d3[s3 & 0xFF] ^ rk[k + 2]
            u3 = d0[s3 >> 24] ^ d1[(s2 >> 16) & 0xFF] ^ d2[(s1 >> 8) & 0xFF] ^ d3[s0 & 0xFF] ^ rk[k + 3]
            s0, s1, s2, s3 = u0, u1, u2, u3
            k += 4
        inv = _INV_SBOX
        w0 = (inv[s0 >> 24] << 24) | (inv[(s3 >> 16) & 0xFF] << 16) | (inv[(s2 >> 8) & 0xFF] << 8) | inv[s1 & 0xFF]
        w1 = (inv[s1 >> 24] << 24) | (inv[(s0 >> 16) & 0xFF] << 16) | (inv[(s3 >> 8) & 0xFF] << 8) | inv[s2 & 0xFF]
        w2 = (inv[s2 >> 24] << 24) | (inv[(s1 >> 16) & 0xFF] << 16) | (inv[(s0 >> 8) & 0xFF] << 8) | inv[s3 & 0xFF]
        w3 = (inv[s3 >> 24] << 24) | (inv[(s2 >> 16) & 0xFF] << 16) | (inv[(s1 >> 8) & 0xFF] << 8) | inv[s0 & 0xFF]
        return (
            ((w0 ^ rk[k]) << 96)
            | ((w1 ^ rk[k + 1]) << 64)
            | ((w2 ^ rk[k + 2]) << 32)
            | (w3 ^ rk[k + 3])
        )

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError("AES operates on 16-byte blocks")
        return self.encrypt_int(int.from_bytes(block, "big")).to_bytes(16, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError("AES operates on 16-byte blocks")
        return self.decrypt_int(int.from_bytes(block, "big")).to_bytes(16, "big")


# --- key-schedule cache ------------------------------------------------
#
# A STEK is by definition reused across huge ticket volumes — the very
# phenomenon the paper measures — so rebuilding the key schedule per
# seal/open would dominate ticket throughput.  AES instances are
# immutable after construction, which makes sharing one expansion per
# key across all callers safe (see DESIGN.md's cache-safety rules).

_INSTANCE_CACHE: "OrderedDict[bytes, AES]" = OrderedDict()
_INSTANCE_CACHE_MAX = 256

_CACHE_HIT = METRICS.counter("crypto.aes.key_cache.hit")
_CACHE_MISS = METRICS.counter("crypto.aes.key_cache.miss")
_CACHE_EVICTION = METRICS.counter("crypto.aes.key_cache.eviction")


def aes_for_key(key: bytes) -> AES:
    """Return a cached :class:`AES` for ``key``, expanding it at most once.

    Bounded LRU: the simulation's working set is the live STEKs plus
    record-layer keys, far below the cap; eviction only protects against
    pathological key churn.
    """
    cipher = _INSTANCE_CACHE.get(key)
    if cipher is None:
        _CACHE_MISS.value += 1
        cipher = AES(key)
        _INSTANCE_CACHE[key] = cipher
        if len(_INSTANCE_CACHE) > _INSTANCE_CACHE_MAX:
            _CACHE_EVICTION.value += 1
            _INSTANCE_CACHE.popitem(last=False)
    else:
        _CACHE_HIT.value += 1
        _INSTANCE_CACHE.move_to_end(key)
    return cipher


register_process_cache(_INSTANCE_CACHE.clear)

__all__ = ["AES", "BLOCK_SIZE", "aes_for_key"]
