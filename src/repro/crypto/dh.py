"""Finite-field Diffie-Hellman key exchange (TLS DHE).

Provides the standard MODP groups TLS servers actually ship (RFC 3526
group 14, the Oakley group 2 that old Apache defaults used) plus a
small test group so unit tests run instantly.  Exponentiation uses
Python's built-in ``pow``, which is fast enough for simulated scans of
tens of thousands of domains.
"""

from __future__ import annotations

from dataclasses import dataclass

from .rng import DeterministicRandom

# RFC 2409 §6.2 (Oakley group 2, 1024-bit) — the group many legacy
# servers served and the one Logjam showed was dangerously common.
OAKLEY_GROUP_2_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6"
    "49286651ECE65381FFFFFFFFFFFFFFFF",
    16,
)

# RFC 3526 §3 (group 14, 2048-bit) — the common "strong" DHE group.
MODP_2048_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6"
    "49286651ECE45B3DC2007CB8A163BF0598DA48361C55D39A69163FA8"
    "FD24CF5F83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3BE39E772C"
    "180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFF"
    "FFFFFFFF",
    16,
)

# A 256-bit safe prime for fast unit tests (2*q + 1 with q prime).
TEST_PRIME_256 = int(
    "C998FF967972196995C8DE6284B5BF11A36AE4D26BD3767468E33BD0E61A5A7F",
    16,
)


@dataclass(frozen=True)
class DHGroup:
    """A finite cyclic group for Diffie-Hellman: prime modulus + generator."""

    name: str
    prime: int
    generator: int = 2

    @property
    def bits(self) -> int:
        """Size of the group modulus in bits."""
        return self.prime.bit_length()

    def element_bytes(self) -> int:
        """Wire size of a group element in bytes."""
        return (self.bits + 7) // 8


OAKLEY_GROUP_2 = DHGroup("oakley-group-2", OAKLEY_GROUP_2_PRIME, 2)
MODP_2048 = DHGroup("modp-2048", MODP_2048_PRIME, 2)
TEST_GROUP = DHGroup("test-256", TEST_PRIME_256, 2)

GROUPS_BY_NAME = {
    group.name: group for group in (OAKLEY_GROUP_2, MODP_2048, TEST_GROUP)
}


@dataclass(frozen=True)
class DHKeyPair:
    """One side's Diffie-Hellman state: the secret exponent and public value."""

    group: DHGroup
    private: int
    public: int

    def shared_secret(self, peer_public: int) -> int:
        """Compute ``peer_public ** private mod p``."""
        validate_public_value(self.group, peer_public)
        return pow(peer_public, self.private, self.group.prime)

    def shared_secret_bytes(self, peer_public: int) -> bytes:
        """The premaster secret: the shared value, fixed-width big-endian."""
        return int_to_group_bytes(self.group, self.shared_secret(peer_public))


class InvalidPublicValue(ValueError):
    """A peer offered a DH public value outside the valid range."""


def validate_public_value(group: DHGroup, public: int) -> None:
    """Reject degenerate public values (0, 1, p-1, out of range).

    Real TLS stacks that skip this check are vulnerable to small-
    subgroup confinement; our server model performs it so tests can
    assert that malformed scanner probes are refused.
    """
    if not 1 < public < group.prime - 1:
        raise InvalidPublicValue(f"public value out of range for {group.name}")


def generate_keypair(group: DHGroup, rng: DeterministicRandom) -> DHKeyPair:
    """Generate a fresh exponent in ``[2, p-2]`` and its public value."""
    private = rng.randrange(2, group.prime - 1)
    public = pow(group.generator, private, group.prime)
    return DHKeyPair(group=group, private=private, public=public)


def int_to_group_bytes(group: DHGroup, value: int) -> bytes:
    """Encode a group element as a fixed-width big-endian byte string."""
    return value.to_bytes(group.element_bytes(), "big")


def bytes_to_int(data: bytes) -> int:
    """Decode a big-endian byte string into an integer."""
    return int.from_bytes(data, "big")


__all__ = [
    "DHGroup",
    "DHKeyPair",
    "InvalidPublicValue",
    "OAKLEY_GROUP_2",
    "MODP_2048",
    "TEST_GROUP",
    "GROUPS_BY_NAME",
    "generate_keypair",
    "validate_public_value",
    "int_to_group_bytes",
    "bytes_to_int",
]
