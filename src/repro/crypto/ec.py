"""Elliptic-curve arithmetic for ECDHE (short Weierstrass curves).

Implements the group law over curves ``y^2 = x^3 + ax + b (mod p)`` in
Jacobian coordinates (no per-step modular inversion), with the NIST
curves TLS servers actually negotiate: P-256 (secp256r1) and P-224.
A small 64-bit toy curve is included for exhaustive unit testing.

ECDHE in the simulated handshakes is real scalar multiplication — a
server that reuses its ephemeral scalar ``d_A`` really does present the
same point ``d_A·G`` on the wire, which is exactly the signal the
scanner's reuse detector keys on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..obs.metrics import METRICS, register_process_cache
from .rng import DeterministicRandom


@dataclass(frozen=True)
class Curve:
    """Domain parameters of a short Weierstrass curve."""

    name: str
    p: int   # field prime
    a: int   # curve coefficient a
    b: int   # curve coefficient b
    gx: int  # base point x
    gy: int  # base point y
    n: int   # base point order
    #: Width of one coordinate on the wire; derived once at construction
    #: (``encode_point``/``decode_point`` are per-handshake hot paths).
    coordinate_bytes: int = field(init=False, repr=False, compare=False, default=0)
    #: True when ``a ≡ -3 (mod p)`` (all the NIST/SEC2 curves here),
    #: enabling the cheaper doubling formula.
    a_is_minus_3: bool = field(init=False, repr=False, compare=False, default=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "coordinate_bytes", (self.p.bit_length() + 7) // 8)
        object.__setattr__(self, "a_is_minus_3", self.a % self.p == self.p - 3)


# NIST P-256 / secp256r1 (RFC 4492 named curve 23) — the dominant
# ECDHE curve in the paper's measurement era.
P256 = Curve(
    name="secp256r1",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFC,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
)

# NIST P-224 / secp224r1 (named curve 21).
P224 = Curve(
    name="secp224r1",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF000000000000000000000001,
    a=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFFFFFFFFFFFFFFFFFE,
    b=0xB4050A850C04B3ABF54132565044B0B7D7BFD8BA270B39432355FFB4,
    gx=0xB70E0CBD6BB4BF7F321390B94A03C1D356C21122343280D6115C1D21,
    gy=0xBD376388B5F723FB4C22DFE6CD4375A05A07476444D5819985007E34,
    n=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFF16A2E0B8F03E13DD29455C5C2A3D,
)

# SEC2 secp128r1 — a real standardized curve small enough that the
# simulated ecosystem's millions of handshakes stay fast, while its
# 128-bit group order keeps accidental ephemeral-value collisions
# (which would corrupt the shared-value analysis) vanishingly unlikely.
SECP128R1 = Curve(
    name="secp128r1",
    p=0xFFFFFFFDFFFFFFFFFFFFFFFFFFFFFFFF,
    a=0xFFFFFFFDFFFFFFFFFFFFFFFFFFFFFFFC,
    b=0xE87579C11079F43DD824993C2CEE5ED3,
    gx=0x161FF7528B899B2D0C28607CA52C5B86,
    gy=0xCF5AC8395BAFEB13C02DA292DDED7A83,
    n=0xFFFFFFFE0000000075A30D1B9038A115,
)

# SEC2 secp160r1.
SECP160R1 = Curve(
    name="secp160r1",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF7FFFFFFF,
    a=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF7FFFFFFC,
    b=0x1C97BEFC54BD7A8B65ACF89F81D4D4ADC565FA45,
    gx=0x4A96B5688EF573284664698968C38BB913CBFC82,
    gy=0x23A628553168947D59DCC912042351377AC5FB32,
    n=0x0100000000000000000001F4C8F927AED3CA752257,
)

# A tiny curve for fast exhaustive unit tests: y^2 = x^3 + x + 28 over
# GF(10007).  The group has prime order 9851, so every non-identity
# point generates the whole group (verified exhaustively in tests).
TINY = Curve(
    name="tiny-10007",
    p=10007,
    a=1,
    b=28,
    gx=2,
    gy=4582,
    n=9851,
)

CURVES_BY_NAME = {
    curve.name: curve for curve in (P256, P224, SECP128R1, SECP160R1, TINY)
}

# RFC 4492 NamedCurve registry values used on the wire.
NAMED_CURVE_IDS = {
    "secp224r1": 21,
    "secp256r1": 23,
    "secp160r1": 18,
    "secp128r1": 16,
    "tiny-10007": 0xFE00,
}
NAMED_CURVE_BY_ID = {v: k for k, v in NAMED_CURVE_IDS.items()}


class NotOnCurveError(ValueError):
    """A peer offered a point that does not satisfy the curve equation."""


# Shared-secret memo: (curve name, private scalar, peer point) -> point.
_shared_secret_memo: dict = {}
register_process_cache(_shared_secret_memo.clear)

_MEMO_HIT = METRICS.counter("crypto.ec.shared_memo.hit")
_MEMO_MISS = METRICS.counter("crypto.ec.shared_memo.miss")


Point = Optional[Tuple[int, int]]  # None is the point at infinity


def is_on_curve(curve: Curve, point: Point) -> bool:
    """Check that an affine point satisfies the curve equation."""
    if point is None:
        return True
    x, y = point
    if not (0 <= x < curve.p and 0 <= y < curve.p):
        return False
    return (y * y - (x * x * x + curve.a * x + curve.b)) % curve.p == 0


def _to_jacobian(point: Point) -> tuple[int, int, int]:
    if point is None:
        return (1, 1, 0)
    return (point[0], point[1], 1)


def _from_jacobian(curve: Curve, jac: tuple[int, int, int]) -> Point:
    x, y, z = jac
    if z == 0:
        return None
    z_inv = pow(z, curve.p - 2, curve.p)
    z_inv2 = z_inv * z_inv % curve.p
    return (x * z_inv2 % curve.p, y * z_inv2 * z_inv % curve.p)


def _jacobian_double(curve: Curve, jac: tuple[int, int, int]) -> tuple[int, int, int]:
    x, y, z = jac
    if z == 0 or y == 0:
        return (1, 1, 0)
    p = curve.p
    ysq = y * y % p
    s = 4 * x * ysq % p
    zsq = z * z % p
    if curve.a_is_minus_3:
        # a = -3 (all NIST/SEC2 curves here): 3x² + a·z⁴ = 3(x−z²)(x+z²).
        m = 3 * (x - zsq) * (x + zsq) % p
    else:
        m = (3 * x * x + curve.a * zsq * zsq) % p
    nx = (m * m - 2 * s) % p
    ny = (m * (s - nx) - 8 * ysq * ysq) % p
    nz = 2 * y * z % p
    return (nx, ny, nz)


def _jacobian_add(
    curve: Curve, a: tuple[int, int, int], b: tuple[int, int, int]
) -> tuple[int, int, int]:
    if a[2] == 0:
        return b
    if b[2] == 0:
        return a
    p = curve.p
    x1, y1, z1 = a
    x2, y2, z2 = b
    z1sq = z1 * z1 % p
    z2sq = z2 * z2 % p
    u1 = x1 * z2sq % p
    u2 = x2 * z1sq % p
    s1 = y1 * z2sq * z2 % p
    s2 = y2 * z1sq * z1 % p
    if u1 == u2:
        if s1 != s2:
            return (1, 1, 0)
        return _jacobian_double(curve, a)
    h = (u2 - u1) % p
    r = (s2 - s1) % p
    h2 = h * h % p
    h3 = h2 * h % p
    u1h2 = u1 * h2 % p
    nx = (r * r - h3 - 2 * u1h2) % p
    ny = (r * (u1h2 - nx) - s1 * h3) % p
    nz = h * z1 * z2 % p
    return (nx, ny, nz)


def point_add(curve: Curve, a: Point, b: Point) -> Point:
    """Group addition of two affine points."""
    return _from_jacobian(curve, _jacobian_add(curve, _to_jacobian(a), _to_jacobian(b)))


def point_double(curve: Curve, a: Point) -> Point:
    """Group doubling of an affine point."""
    return _from_jacobian(curve, _jacobian_double(curve, _to_jacobian(a)))


def point_neg(curve: Curve, a: Point) -> Point:
    """Group inverse of an affine point."""
    if a is None:
        return None
    return (a[0], (-a[1]) % curve.p)


_WNAF_WIDTH = 5


def _wnaf_digits(k: int, width: int) -> list[int]:
    """Width-``w`` non-adjacent form of ``k``, least significant first.

    Digits are odd values in ``(-2^(w-1), 2^(w-1))`` or zero, with at
    most one nonzero digit per ``w`` consecutive positions — so the
    main loop averages ``bits/(w+1)`` additions instead of ``bits/2``
    for plain double-and-add.
    """
    digits = []
    modulus = 1 << width
    half = modulus >> 1
    while k:
        if k & 1:
            digit = k & (modulus - 1)
            if digit >= half:
                digit -= modulus
            k -= digit
        else:
            digit = 0
        digits.append(digit)
        k >>= 1
    return digits


def scalar_mult(curve: Curve, k: int, point: Point) -> Point:
    """Compute ``k · point`` by windowed-NAF in Jacobian coordinates.

    This is the variable-point half of ECDHE (``d · peer_public``);
    fixed-base ``d · G`` goes through :func:`scalar_mult_base`'s comb
    table instead.  wNAF yields the same affine result as double-and-add
    for every scalar, so swapping it in cannot perturb wire bytes.
    """
    if point is not None and not is_on_curve(curve, point):
        raise NotOnCurveError(f"point is not on {curve.name}")
    k %= curve.n
    if k == 0 or point is None:
        return None
    p = curve.p
    base = _to_jacobian(point)
    # Odd multiples P, 3P, ..., (2^(w-1) - 1)P; table[i] = (2i+1)·P.
    twice = _jacobian_double(curve, base)
    table = [base]
    for _ in range((1 << (_WNAF_WIDTH - 2)) - 1):
        table.append(_jacobian_add(curve, table[-1], twice))
    result = (1, 1, 0)
    for digit in reversed(_wnaf_digits(k, _WNAF_WIDTH)):
        result = _jacobian_double(curve, result)
        if digit > 0:
            result = _jacobian_add(curve, result, table[digit >> 1])
        elif digit < 0:
            x, y, z = table[(-digit) >> 1]
            result = _jacobian_add(curve, result, (x, (p - y) % p, z))
    return _from_jacobian(curve, result)


def base_point(curve: Curve) -> Point:
    """The curve's generator ``G``."""
    return (curve.gx, curve.gy)


# 8-bit windows: ~32 additions per 256-bit keygen instead of ~60 at
# the cost of a once-per-curve ~8k-addition table build.  The event-
# driven scanner regenerates a server keypair per full handshake under
# the paper's FRESH reuse policy, so base multiplication dominates its
# remaining crypto budget.
_FIXED_BASE_WINDOW = 8
_fixed_base_tables: dict[str, list[list[tuple[int, int, int]]]] = {}


def _fixed_base_table(curve: Curve) -> list[list[tuple[int, int, int]]]:
    """Precompute ``j * 16^i * G`` for windowed fixed-base multiplication.

    Built lazily once per curve; turns the millions of ``d·G`` keygens a
    full ecosystem scan performs into ~``bits/4`` point additions each.
    """
    table = _fixed_base_tables.get(curve.name)
    if table is not None:
        return table
    windows = (curve.n.bit_length() + _FIXED_BASE_WINDOW - 1) // _FIXED_BASE_WINDOW
    table = []
    row_base = _to_jacobian(base_point(curve))
    for _ in range(windows):
        row = [(1, 1, 0)]
        for j in range(1, 1 << _FIXED_BASE_WINDOW):
            row.append(_jacobian_add(curve, row[j - 1], row_base))
        table.append(row)
        row_base = row[1]
        for _ in range(_FIXED_BASE_WINDOW):
            row_base = _jacobian_double(curve, row_base)
    _fixed_base_tables[curve.name] = table
    return table


def scalar_mult_base(curve: Curve, k: int) -> Point:
    """Compute ``k · G`` using the precomputed fixed-base table."""
    k %= curve.n
    if k == 0:
        return None
    table = _fixed_base_table(curve)
    result = (1, 1, 0)
    window = 0
    while k:
        digit = k & ((1 << _FIXED_BASE_WINDOW) - 1)
        if digit:
            result = _jacobian_add(curve, result, table[window][digit])
        k >>= _FIXED_BASE_WINDOW
        window += 1
    return _from_jacobian(curve, result)


@dataclass(frozen=True)
class ECKeyPair:
    """One side's ECDHE state: a scalar and the point ``d·G``."""

    curve: Curve
    private: int
    public: Tuple[int, int]

    def shared_secret(self, peer_public: Tuple[int, int]) -> Tuple[int, int]:
        """Compute ``d · peer_public``, validating the peer point.

        Results are memoized on ``(curve, d, peer)``: when either side
        reuses its ephemeral value — the very behavior this codebase
        studies — repeat computations collapse to a dict lookup.
        """
        memo_key = (self.curve.name, self.private, peer_public)
        cached = _shared_secret_memo.get(memo_key)
        if cached is not None:
            _MEMO_HIT.value += 1
            return cached
        _MEMO_MISS.value += 1
        if not is_on_curve(self.curve, peer_public):
            raise NotOnCurveError("peer public point not on curve")
        result = scalar_mult(self.curve, self.private, peer_public)
        if result is None:
            raise NotOnCurveError("shared secret is the point at infinity")
        if len(_shared_secret_memo) > 131072:
            _shared_secret_memo.clear()
        _shared_secret_memo[memo_key] = result
        return result

    def shared_secret_bytes(self, peer_public: Tuple[int, int]) -> bytes:
        """The ECDHE premaster secret: the x-coordinate, per RFC 4492 §5.10."""
        x, _ = self.shared_secret(peer_public)
        return x.to_bytes(self.curve.coordinate_bytes, "big")


def generate_keypair(curve: Curve, rng: DeterministicRandom) -> ECKeyPair:
    """Generate a fresh scalar in ``[1, n-1]`` and its public point."""
    private = rng.randrange(1, curve.n)
    public = scalar_mult_base(curve, private)
    assert public is not None
    return ECKeyPair(curve=curve, private=private, public=public)


def encode_point(curve: Curve, point: Tuple[int, int]) -> bytes:
    """Uncompressed SEC1 encoding: ``0x04 || X || Y``."""
    size = curve.coordinate_bytes
    return b"\x04" + point[0].to_bytes(size, "big") + point[1].to_bytes(size, "big")


def decode_point(curve: Curve, data: bytes) -> Tuple[int, int]:
    """Parse an uncompressed SEC1 point, validating curve membership."""
    size = curve.coordinate_bytes
    if len(data) != 1 + 2 * size or data[0] != 0x04:
        raise ValueError("malformed uncompressed EC point")
    x = int.from_bytes(data[1 : 1 + size], "big")
    y = int.from_bytes(data[1 + size :], "big")
    if not is_on_curve(curve, (x, y)):
        raise NotOnCurveError(f"decoded point not on {curve.name}")
    return (x, y)


__all__ = [
    "Curve",
    "ECKeyPair",
    "NotOnCurveError",
    "P256",
    "P224",
    "SECP128R1",
    "SECP160R1",
    "TINY",
    "CURVES_BY_NAME",
    "NAMED_CURVE_IDS",
    "NAMED_CURVE_BY_ID",
    "Point",
    "is_on_curve",
    "point_add",
    "point_double",
    "point_neg",
    "scalar_mult",
    "scalar_mult_base",
    "base_point",
    "generate_keypair",
    "encode_point",
    "decode_point",
]
