"""Hash and MAC helpers used throughout the TLS model.

Thin wrappers over :mod:`hashlib`/:mod:`hmac` so the rest of the code
has a single place naming its digests, plus constant-time comparison.
"""

from __future__ import annotations

import hashlib
import hmac


def sha256(data: bytes) -> bytes:
    """SHA-256 digest."""
    return hashlib.sha256(data).digest()


def sha1(data: bytes) -> bytes:
    """SHA-1 digest (used only for legacy identifiers, never security)."""
    return hashlib.sha1(data).digest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA-256 — RFC 5077's recommended ticket MAC.

    Uses the one-shot :func:`hmac.digest` fast path, which stays inside
    OpenSSL for the whole computation instead of building a Python HMAC
    object per call.  Output is identical to ``hmac.new(...).digest()``.
    """
    return hmac.digest(key, data, "sha256")


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Timing-safe equality (mirrors what real implementations must do)."""
    return hmac.compare_digest(a, b)


__all__ = ["sha256", "sha1", "hmac_sha256", "constant_time_equal"]
