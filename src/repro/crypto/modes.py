"""Block-cipher modes of operation and padding.

RFC 5077's recommended ticket construction uses AES-CBC; this module
provides CBC with PKCS#7 padding on top of :class:`repro.crypto.aes.AES`.

Two deliberate fast-path choices (see DESIGN.md §7 for the safety
argument):

* key schedules come from :func:`repro.crypto.aes.aes_for_key`, a
  bounded LRU keyed by key bytes — a STEK seals/opens enormous ticket
  volumes, so the hit rate in practice is ~100%;
* chaining works on whole blocks held as 128-bit integers
  (``int.from_bytes`` once per block, one big XOR) instead of a
  per-byte generator, which is the difference between the XOR being
  free and being a quarter of the runtime.
"""

from __future__ import annotations

from .aes import AES, BLOCK_SIZE, aes_for_key


class PaddingError(ValueError):
    """Raised when CBC ciphertext has invalid PKCS#7 padding."""


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Pad ``data`` to a multiple of ``block_size`` per PKCS#7."""
    if not 0 < block_size < 256:
        raise ValueError("block size must be in [1, 255]")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len

def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Strip PKCS#7 padding, raising :class:`PaddingError` if malformed."""
    if not data or len(data) % block_size:
        raise PaddingError("ciphertext length is not a multiple of the block size")
    pad_len = data[-1]
    if pad_len == 0 or pad_len > block_size:
        raise PaddingError("invalid padding length byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise PaddingError("padding bytes are inconsistent")
    return data[:-pad_len]


def cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """AES-CBC encrypt ``plaintext`` (PKCS#7 padded) under ``key``/``iv``."""
    return cbc_encrypt_with(aes_for_key(key), iv, plaintext)


def cbc_encrypt_with(cipher: "AES", iv: bytes, plaintext: bytes) -> bytes:
    """:func:`cbc_encrypt` against an already-expanded :class:`AES`.

    Callers that own a long-lived key (a STEK seals tickets for its
    whole rotation period) hold the cipher object themselves instead of
    going through the bounded ``aes_for_key`` LRU, whose working set a
    full-ecosystem scan of per-domain keys would otherwise cycle.
    """
    if len(iv) != BLOCK_SIZE:
        raise ValueError("IV must be one block")
    encrypt_int = cipher.encrypt_int
    padded = pkcs7_pad(plaintext)
    out = bytearray()
    previous = int.from_bytes(iv, "big")
    for offset in range(0, len(padded), BLOCK_SIZE):
        block = int.from_bytes(padded[offset : offset + BLOCK_SIZE], "big")
        previous = encrypt_int(block ^ previous)
        out += previous.to_bytes(BLOCK_SIZE, "big")
    return bytes(out)


def cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """AES-CBC decrypt and unpad; raises :class:`PaddingError` on bad padding."""
    return cbc_decrypt_with(aes_for_key(key), iv, ciphertext)


def cbc_decrypt_with(cipher: "AES", iv: bytes, ciphertext: bytes) -> bytes:
    """:func:`cbc_decrypt` against an already-expanded :class:`AES`."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError("IV must be one block")
    if not ciphertext or len(ciphertext) % BLOCK_SIZE:
        raise PaddingError("ciphertext length is not a multiple of the block size")
    decrypt_int = cipher.decrypt_int
    out = bytearray()
    previous = int.from_bytes(iv, "big")
    for offset in range(0, len(ciphertext), BLOCK_SIZE):
        block = int.from_bytes(ciphertext[offset : offset + BLOCK_SIZE], "big")
        out += (decrypt_int(block) ^ previous).to_bytes(BLOCK_SIZE, "big")
        previous = block
    return pkcs7_unpad(bytes(out))


def ctr_keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Generate an AES-CTR keystream (used for record-layer encryption).

    The simulated record layer uses CTR rather than the full TLS 1.2
    GCM/CBC-MAC constructions: what the measurement study depends on is
    that application data is unreadable without the session keys, not
    the particular AEAD composition.
    """
    if len(nonce) != BLOCK_SIZE:
        raise ValueError("nonce must be one block")
    encrypt_int = aes_for_key(key).encrypt_int
    counter = int.from_bytes(nonce, "big")
    mask = (1 << 128) - 1
    out = bytearray()
    while len(out) < length:
        out += encrypt_int(counter).to_bytes(BLOCK_SIZE, "big")
        counter = (counter + 1) & mask
    return bytes(out[:length])


def ctr_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Encrypt/decrypt ``data`` with an AES-CTR keystream (symmetric)."""
    if not data:
        return b""
    stream = ctr_keystream(key, nonce, len(data))
    xored = int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
    return xored.to_bytes(len(data), "big")


__all__ = [
    "PaddingError",
    "pkcs7_pad",
    "pkcs7_unpad",
    "cbc_encrypt",
    "cbc_encrypt_with",
    "cbc_decrypt",
    "cbc_decrypt_with",
    "ctr_keystream",
    "ctr_xor",
]
