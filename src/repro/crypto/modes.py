"""Block-cipher modes of operation and padding.

RFC 5077's recommended ticket construction uses AES-CBC; this module
provides CBC with PKCS#7 padding on top of :class:`repro.crypto.aes.AES`.
"""

from __future__ import annotations

from .aes import AES, BLOCK_SIZE


class PaddingError(ValueError):
    """Raised when CBC ciphertext has invalid PKCS#7 padding."""


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Pad ``data`` to a multiple of ``block_size`` per PKCS#7."""
    if not 0 < block_size < 256:
        raise ValueError("block size must be in [1, 255]")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len

def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Strip PKCS#7 padding, raising :class:`PaddingError` if malformed."""
    if not data or len(data) % block_size:
        raise PaddingError("ciphertext length is not a multiple of the block size")
    pad_len = data[-1]
    if pad_len == 0 or pad_len > block_size:
        raise PaddingError("invalid padding length byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise PaddingError("padding bytes are inconsistent")
    return data[:-pad_len]


def cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """AES-CBC encrypt ``plaintext`` (PKCS#7 padded) under ``key``/``iv``."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError("IV must be one block")
    cipher = AES(key)
    padded = pkcs7_pad(plaintext)
    out = bytearray()
    previous = iv
    for offset in range(0, len(padded), BLOCK_SIZE):
        block = bytes(a ^ b for a, b in zip(padded[offset : offset + BLOCK_SIZE], previous))
        encrypted = cipher.encrypt_block(block)
        out.extend(encrypted)
        previous = encrypted
    return bytes(out)


def cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """AES-CBC decrypt and unpad; raises :class:`PaddingError` on bad padding."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError("IV must be one block")
    if not ciphertext or len(ciphertext) % BLOCK_SIZE:
        raise PaddingError("ciphertext length is not a multiple of the block size")
    cipher = AES(key)
    out = bytearray()
    previous = iv
    for offset in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[offset : offset + BLOCK_SIZE]
        decrypted = cipher.decrypt_block(block)
        out.extend(a ^ b for a, b in zip(decrypted, previous))
        previous = block
    return pkcs7_unpad(bytes(out))


def ctr_keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Generate an AES-CTR keystream (used for record-layer encryption).

    The simulated record layer uses CTR rather than the full TLS 1.2
    GCM/CBC-MAC constructions: what the measurement study depends on is
    that application data is unreadable without the session keys, not
    the particular AEAD composition.
    """
    if len(nonce) != BLOCK_SIZE:
        raise ValueError("nonce must be one block")
    cipher = AES(key)
    counter = int.from_bytes(nonce, "big")
    out = bytearray()
    while len(out) < length:
        out.extend(cipher.encrypt_block(counter.to_bytes(BLOCK_SIZE, "big")))
        counter = (counter + 1) % (1 << 128)
    return bytes(out[:length])


def ctr_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Encrypt/decrypt ``data`` with an AES-CTR keystream (symmetric)."""
    stream = ctr_keystream(key, nonce, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))


__all__ = [
    "PaddingError",
    "pkcs7_pad",
    "pkcs7_unpad",
    "cbc_encrypt",
    "cbc_decrypt",
    "ctr_keystream",
    "ctr_xor",
]
