"""TLS 1.2 pseudorandom function (RFC 5246 §5).

The PRF expands a secret into key material using P_SHA256:

    P_hash(secret, seed) = HMAC(secret, A(1) + seed) +
                           HMAC(secret, A(2) + seed) + ...
    A(0) = seed;  A(i) = HMAC(secret, A(i-1))

Both the simulated servers and the scanner's TLS client derive master
secrets and key blocks through this function, so a recovered
premaster/master secret really does decrypt recorded traffic.
"""

from __future__ import annotations

from .mac import hmac_sha256

MASTER_SECRET_LENGTH = 48


def p_sha256(secret: bytes, seed: bytes, length: int) -> bytes:
    """P_SHA256 expansion from RFC 5246 §5."""
    if length < 0:
        raise ValueError("length must be non-negative")
    out = bytearray()
    a = seed
    while len(out) < length:
        a = hmac_sha256(secret, a)
        out.extend(hmac_sha256(secret, a + seed))
    return bytes(out[:length])


def prf(secret: bytes, label: bytes, seed: bytes, length: int) -> bytes:
    """TLS 1.2 PRF: ``P_SHA256(secret, label + seed)``."""
    return p_sha256(secret, label + seed, length)


def derive_master_secret(premaster: bytes, client_random: bytes, server_random: bytes) -> bytes:
    """RFC 5246 §8.1: 48-byte master secret from the premaster secret."""
    return prf(premaster, b"master secret", client_random + server_random, MASTER_SECRET_LENGTH)


def derive_key_block(master: bytes, client_random: bytes, server_random: bytes, length: int) -> bytes:
    """RFC 5246 §6.3: expand the master secret into connection keys.

    Note the random order flips relative to master-secret derivation
    (server random first), exactly as in the RFC.
    """
    return prf(master, b"key expansion", server_random + client_random, length)


def verify_data(master: bytes, label: bytes, handshake_hash: bytes) -> bytes:
    """RFC 5246 §7.4.9: 12-byte Finished verify_data."""
    return prf(master, label, handshake_hash, 12)


__all__ = [
    "MASTER_SECRET_LENGTH",
    "p_sha256",
    "prf",
    "derive_master_secret",
    "derive_key_block",
    "verify_data",
]
