"""Deterministic random byte generation.

Every stochastic component in this reproduction draws randomness from an
explicit generator object so that simulations are reproducible
bit-for-bit.  :class:`DeterministicRandom` is an HMAC-DRBG-style
generator (HMAC-SHA-256 based, loosely modeled on NIST SP 800-90A) that
is seeded explicitly and never touches OS entropy.

The real systems this code models (OpenSSL, NSS, SChannel) use OS
CSPRNGs; substituting a seeded DRBG preserves the *distribution* of all
derived values (session IDs, STEKs, ephemeral exponents) while making
experiments replayable.
"""

from __future__ import annotations

import hmac
from hmac import digest as _hmac_digest


class DeterministicRandom:
    """An HMAC-SHA-256 based deterministic random byte generator.

    The generator follows the HMAC-DRBG construction: an internal
    ``(key, value)`` pair is updated on every reseed and generate call.
    It is *not* intended to protect real secrets — it exists to make the
    simulated TLS ecosystem reproducible — but it is uniform,
    forward-unpredictable given the seed, and collision-free in
    practice, which is all the measurement inference relies on.
    """

    _HASH_LEN = 32

    def __init__(self, seed: bytes | str | int) -> None:
        if isinstance(seed, int):
            seed = seed.to_bytes((seed.bit_length() + 7) // 8 or 1, "big")
        elif isinstance(seed, str):
            seed = seed.encode("utf-8")
        self._key = b"\x00" * self._HASH_LEN
        self._value = b"\x01" * self._HASH_LEN
        self._update(seed)
        self.bytes_generated = 0

    def _hmac(self, key: bytes, data: bytes) -> bytes:
        # One-shot fast path; byte-identical to hmac.new(...).digest().
        return hmac.digest(key, data, "sha256")

    def _update(self, provided: bytes | None) -> None:
        self._key = self._hmac(self._key, self._value + b"\x00" + (provided or b""))
        self._value = self._hmac(self._key, self._value)
        if provided:
            self._key = self._hmac(self._key, self._value + b"\x01" + provided)
            self._value = self._hmac(self._key, self._value)

    def reseed(self, data: bytes) -> None:
        """Mix additional entropy (e.g. a domain name) into the state."""
        self._update(data)

    def random_bytes(self, n: int) -> bytes:
        """Return ``n`` uniformly random bytes."""
        # Hottest function in a full-ecosystem scan (two nonces plus the
        # derived draws per handshake), so the HMAC-DRBG generate+update
        # sequence is inlined against the one-shot ``hmac.digest``.  The
        # state transitions are byte-identical to the readable
        # ``_hmac``/``_update`` formulation used everywhere else.
        if n < 0:
            raise ValueError("cannot generate a negative number of bytes")
        key = self._key
        if 0 < n <= self._HASH_LEN:
            value = _hmac_digest(key, self._value, "sha256")
            out = value[:n]
        else:  # n == 0 leaves the value chain unadvanced, as the loop does
            chunks = []
            value = self._value
            total = 0
            while total < n:
                value = _hmac_digest(key, value, "sha256")
                chunks.append(value)
                total += self._HASH_LEN
            out = b"".join(chunks)[:n]
        # _update(None): re-key, then advance the value chain.
        self._key = key = _hmac_digest(key, value + b"\x00", "sha256")
        self._value = _hmac_digest(key, value, "sha256")
        self.bytes_generated += n
        return out

    def random_int(self, bits: int) -> int:
        """Return a uniformly random integer with at most ``bits`` bits."""
        if bits <= 0:
            raise ValueError("bits must be positive")
        nbytes = (bits + 7) // 8
        value = int.from_bytes(self.random_bytes(nbytes), "big")
        return value >> (nbytes * 8 - bits)

    def randbelow(self, upper: int) -> int:
        """Return a uniform integer in ``[0, upper)`` via rejection sampling."""
        if upper <= 0:
            raise ValueError("upper bound must be positive")
        bits = upper.bit_length()
        while True:
            candidate = self.random_int(bits)
            if candidate < upper:
                return candidate

    def randrange(self, lower: int, upper: int) -> int:
        """Return a uniform integer in ``[lower, upper)``."""
        if upper <= lower:
            raise ValueError("empty range")
        return lower + self.randbelow(upper - lower)

    def choice(self, seq):
        """Return a uniformly chosen element of a non-empty sequence."""
        if not seq:
            raise IndexError("cannot choose from an empty sequence")
        return seq[self.randbelow(len(seq))]

    def sample(self, seq, k: int) -> list:
        """Return ``k`` distinct elements sampled without replacement."""
        n = len(seq)
        if k > n:
            raise ValueError("sample larger than population")
        indices = list(range(n))
        picked = []
        for _ in range(k):
            j = self.randbelow(len(indices))
            picked.append(seq[indices[j]])
            indices[j] = indices[-1]
            indices.pop()
        return picked

    def shuffle(self, seq: list) -> None:
        """Fisher-Yates shuffle in place."""
        for i in range(len(seq) - 1, 0, -1):
            j = self.randbelow(i + 1)
            seq[i], seq[j] = seq[j], seq[i]

    def uniform(self, lower: float, upper: float) -> float:
        """Return a float uniform in ``[lower, upper)`` (53-bit precision)."""
        frac = self.random_int(53) / (1 << 53)
        return lower + (upper - lower) * frac

    def random(self) -> float:
        """Return a float uniform in ``[0, 1)``."""
        return self.uniform(0.0, 1.0)

    def fork(self, label: str) -> "DeterministicRandom":
        """Derive an independent child generator.

        Forking lets subsystems (per-domain server randomness, scanner
        jitter, churn) consume randomness without perturbing each
        other's streams, which keeps results stable when one subsystem
        changes how much randomness it uses.
        """
        child_seed = self._hmac(self._key, b"fork:" + label.encode("utf-8"))
        return DeterministicRandom(child_seed)


__all__ = ["DeterministicRandom"]
