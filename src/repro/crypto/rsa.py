"""RSA key generation and signatures for the simulated certificate PKI.

The measurement study filters domains by *browser-trusted certificates*;
to preserve that filtering step, the simulated CAs sign leaf
certificates with real RSA signatures that the scanner verifies against
a root store.  Keys default to 512 bits — cryptographically weak but
structurally identical, and fast enough to mint tens of thousands of
simulated certificates.

Signing uses a simplified PKCS#1 v1.5-style encoding over SHA-256
(fixed prefix rather than a full ASN.1 DigestInfo, since no code here
interoperates with external verifiers).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from .mac import sha256
from .rng import DeterministicRandom

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]

_DIGEST_PREFIX = b"repro-pkcs1-sha256:"

# Memoized CRT parameters per modulus (the simulation shares a small
# pool of RSA keys across certificates, so this cache stays tiny).
_CRT_CACHE: dict[int, tuple[int, int, int]] = {}


def is_probable_prime(n: int, rng: DeterministicRandom, rounds: int = 20) -> bool:
    """Miller-Rabin primality test with trial division pre-filter."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: DeterministicRandom) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime too small")
    while True:
        candidate = rng.random_int(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RSAPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @cached_property
    def byte_length(self) -> int:
        """Modulus width in bytes (signature wire size)."""
        return (self.n.bit_length() + 7) // 8

    def verify(self, message: bytes, signature: int) -> bool:
        """Verify a signature over ``message``."""
        if not 0 <= signature < self.n:
            return False
        expected = _encode_digest(message, self.n)
        return pow(signature, self.e, self.n) == expected

    def fingerprint(self) -> bytes:
        """A stable 8-byte identifier for grouping keys in analyses."""
        return sha256(self.n.to_bytes(self.byte_length, "big"))[:8]


@dataclass(frozen=True)
class RSAPrivateKey:
    """An RSA private key with its public half."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def public(self) -> RSAPublicKey:
        return RSAPublicKey(n=self.n, e=self.e)

    @cached_property
    def byte_length(self) -> int:
        """Modulus width in bytes (signature wire size)."""
        return (self.n.bit_length() + 7) // 8

    def _crt_params(self) -> tuple[int, int, int]:
        """Memoized CRT exponents/coefficient (dp, dq, q_inv)."""
        params = _CRT_CACHE.get(self.n)
        if params is None:
            params = (
                self.d % (self.p - 1),
                self.d % (self.q - 1),
                pow(self.q, -1, self.p),
            )
            if len(_CRT_CACHE) > 4096:
                _CRT_CACHE.clear()
            _CRT_CACHE[self.n] = params
        return params

    def sign(self, message: bytes) -> int:
        """Sign ``message`` (hash-then-encode-then-exponentiate).

        Uses the CRT (Garner's recombination) like every real RSA
        implementation — a ~4x speedup that matters across the
        millions of ServerKeyExchange signatures a study performs.
        """
        m = _encode_digest(message, self.n)
        dp, dq, q_inv = self._crt_params()
        sp = pow(m % self.p, dp, self.p)
        sq = pow(m % self.q, dq, self.q)
        h = (q_inv * (sp - sq)) % self.p
        return sq + self.q * h

    def decrypt_raw(self, ciphertext: int) -> int:
        """Textbook RSA decryption (used by RSA key-exchange modeling)."""
        if not 0 <= ciphertext < self.n:
            raise ValueError("ciphertext out of range")
        return pow(ciphertext, self.d, self.n)


def _encode_digest(message: bytes, modulus: int) -> int:
    """Deterministically map a message hash into the RSA domain."""
    digest = sha256(_DIGEST_PREFIX + message)
    # Expand the digest to just below the modulus size with counter mode.
    size = (modulus.bit_length() - 1) // 8
    blocks = bytearray()
    counter = 0
    while len(blocks) < size:
        blocks.extend(sha256(digest + counter.to_bytes(4, "big")))
        counter += 1
    return int.from_bytes(blocks[:size], "big")


def generate_keypair(
    bits: int, rng: DeterministicRandom, e: int = 65537
) -> RSAPrivateKey:
    """Generate an RSA keypair with an exactly ``bits``-bit modulus."""
    if bits < 64:
        raise ValueError("modulus too small")
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = pow(e, -1, phi)
        except ValueError:
            continue
        return RSAPrivateKey(n=n, e=e, d=d, p=p, q=q)


__all__ = [
    "RSAPublicKey",
    "RSAPrivateKey",
    "generate_keypair",
    "generate_prime",
    "is_probable_prime",
]
