"""Deterministic fault injection and scanner resilience.

Three pieces, all dependency-free and seeded:

* :mod:`plan` — :class:`ImpairmentPlan`: a deterministic schedule (on
  the virtual clock) of outages, latency spikes, handshake
  resets/truncations, flapping backends, and NXDOMAIN windows, compiled
  from a JSON chaos profile or the ``--chaos SEED`` shorthand.
* :mod:`inject` — :func:`install_chaos` wires a plan into an
  ecosystem's network/DNS hooks; :class:`ImpairedServer` injects
  mid-handshake faults on the TLS accept path.
* :mod:`retry` — :class:`RetryPolicy` (capped exponential backoff on
  virtual time, retry budget) and a per-domain :class:`CircuitBreaker`
  consumed by the scanner.

Turned off (no plan installed, default policy), the scanner's behavior
— and therefore the golden-digest corpus — is byte-for-byte unchanged.
"""

from .inject import ImpairedServer, install_chaos
from .plan import (
    FAULT_KINDS,
    HANDSHAKE_KINDS,
    PROFILE_SCHEMA,
    ImpairmentMatch,
    ImpairmentPlan,
    ImpairmentWindow,
    seeded_profile,
)
from .retry import (
    DEFAULT_RETRY_POLICY,
    RETRYABLE_REASONS,
    CircuitBreaker,
    RetryPolicy,
)

__all__ = [
    "PROFILE_SCHEMA",
    "FAULT_KINDS",
    "HANDSHAKE_KINDS",
    "ImpairmentMatch",
    "ImpairmentWindow",
    "ImpairmentPlan",
    "seeded_profile",
    "ImpairedServer",
    "install_chaos",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "RETRYABLE_REASONS",
    "CircuitBreaker",
]
