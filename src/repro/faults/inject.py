"""Wiring an :class:`ImpairmentPlan` into a live ecosystem.

:func:`install_chaos` is the single entry point: it hands the plan to
the network fabric and the DNS zone (both expose a duck-typed
``install_impairments`` hook so :mod:`repro.netsim` never imports this
package).  :class:`ImpairedServer` is the handshake-level injector — a
per-connection wrapper around one backend that resets or truncates the
server's first flight, which is how mid-handshake faults reach the TLS
layer without the server code knowing about chaos at all.
"""

from __future__ import annotations

from ..obs.events import EVENTS
from ..obs.metrics import METRICS
from ..tls.errors import HandshakeFailure
from .plan import KIND_RESET, KIND_TRUNCATE, ImpairmentPlan

_INJECTED_RESET = METRICS.counter("faults.injected", kind=KIND_RESET)
_INJECTED_TRUNCATE = METRICS.counter("faults.injected", kind=KIND_TRUNCATE)


class ImpairedServer:
    """One backend, one connection, one injected handshake fault.

    Wraps the ``ServerExchange`` surface the client drives: ``accept``
    either raises (reset) or returns a cut-short flight (truncate);
    everything else delegates.  The grabber reads ``injected_fault`` to
    classify the resulting failure precisely instead of lumping it into
    the generic ``handshake`` bucket.
    """

    def __init__(self, inner, kind: str) -> None:
        if kind not in (KIND_RESET, KIND_TRUNCATE):
            raise ValueError(f"unsupported handshake fault kind {kind!r}")
        self._inner = inner
        self.injected_fault = kind

    def accept(self, client_hello_bytes: bytes):
        if EVENTS.enabled:
            EVENTS.emit("chaos.injected", kind=self.injected_fault)
        if self.injected_fault == KIND_RESET:
            _INJECTED_RESET.value += 1
            raise HandshakeFailure("injected fault: connection reset mid-handshake")
        _INJECTED_TRUNCATE.value += 1
        flight, connection = self._inner.accept(client_hello_bytes)
        # Drop the tail of the server's first flight: the client sees a
        # partial record stream and fails to decode or to find the
        # messages it needs — exactly a connection cut mid-flight.
        return flight[: max(1, len(flight) // 2)], connection

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


def install_chaos(ecosystem, plan: ImpairmentPlan) -> ImpairmentPlan:
    """Install ``plan``'s hooks into ``ecosystem``'s network and DNS."""
    ecosystem.network.install_impairments(plan, ecosystem.clock)
    ecosystem.dns.install_impairments(plan, ecosystem.clock.now)
    return plan


__all__ = ["ImpairedServer", "install_chaos"]
