"""Deterministic impairment plans: *when* and *where* the network misbehaves.

The paper's nine-week scan ran against a hostile substrate — servers
that "fail to respond to one of our connections" (§4.3), domains that
vanish mid-study, balancer jitter.  The netsim models only a flat
transient-timeout rate; an :class:`ImpairmentPlan` layers *structured*
misbehavior on top: outage windows, latency spikes, mid-handshake
resets/truncations, flapping backends, and DNS NXDOMAIN windows, each
optionally scoped to a provider (domain suffix / IP prefix) so chaos
profiles can model "CDN X had a bad Tuesday".

Determinism is the whole design.  A plan never consumes the shared
network RNG stream (which would perturb every later draw and break the
golden-digest corpus); every decision is a pure hash of
``(plan seed, window id, target, time slot)``.  The same profile
therefore yields the same fault at the same virtual instant for the
same target, regardless of worker count, shard interleaving, or how
many other connections happened first.

Plans compile from a JSON *chaos profile* (``repro-chaos/1`` schema,
see :func:`ImpairmentPlan.from_profile`) or from the ``--chaos SEED``
shorthand (:func:`seeded_profile`), and are installed into a live
ecosystem by :func:`repro.faults.inject.install_chaos`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from ..crypto.rng import DeterministicRandom
from ..netsim.clock import DAY, MINUTE

PROFILE_SCHEMA = "repro-chaos/1"

#: Impairment kinds a window may carry (values appear in metrics labels
#: and in the grab failure taxonomy).
KIND_OUTAGE = "outage"          # connect attempts time out
KIND_LATENCY = "latency"        # connects succeed after a virtual delay
KIND_RESET = "reset"            # server resets mid-handshake
KIND_TRUNCATE = "truncate"      # server flight is cut short
KIND_FLAP = "flap"              # subsets of an endpoint's backends go dark
KIND_NXDOMAIN = "nxdomain"      # DNS answers NXDOMAIN for existing names

FAULT_KINDS = (
    KIND_OUTAGE, KIND_LATENCY, KIND_RESET, KIND_TRUNCATE, KIND_FLAP, KIND_NXDOMAIN,
)

#: Handshake-level kinds (applied on the server accept path).
HANDSHAKE_KINDS = (KIND_RESET, KIND_TRUNCATE)


def _hash01(*parts) -> float:
    """A uniform float in [0, 1) derived purely from ``parts``.

    This is the plan's only source of "randomness": sha256 of the
    joined parts, so decisions are a pure function of their inputs and
    never touch any RNG stream the simulation already owns.
    """
    token = "|".join(str(part) for part in parts).encode("utf-8")
    digest = hashlib.sha256(token).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class ImpairmentMatch:
    """Which targets a window applies to; empty criteria match everything.

    ``domains`` and ``domain_suffix`` scope by the scanned name (this is
    how per-provider profiles work — provider customers share a suffix
    like ``.cf-proxied.example``); ``ip_prefix`` scopes by the dotted
    address string.  A window applies if *any* populated criterion hits.
    """

    domains: tuple[str, ...] = ()
    domain_suffix: str = ""
    ip_prefix: str = ""

    @property
    def match_all(self) -> bool:
        return not (self.domains or self.domain_suffix or self.ip_prefix)

    def matches(self, domain: str = "", ip: str = "") -> bool:
        if self.match_all:
            return True
        if domain:
            if self.domains and domain in self.domains:
                return True
            if self.domain_suffix and domain.endswith(self.domain_suffix):
                return True
        if ip and self.ip_prefix and ip.startswith(self.ip_prefix):
            return True
        return False

    def to_dict(self) -> dict:
        out: dict = {}
        if self.domains:
            out["domains"] = list(self.domains)
        if self.domain_suffix:
            out["domain_suffix"] = self.domain_suffix
        if self.ip_prefix:
            out["ip_prefix"] = self.ip_prefix
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ImpairmentMatch":
        unknown = set(data) - {"domains", "domain_suffix", "ip_prefix"}
        if unknown:
            raise ValueError(f"unknown match keys: {sorted(unknown)}")
        return cls(
            domains=tuple(data.get("domains", ())),
            domain_suffix=data.get("domain_suffix", ""),
            ip_prefix=data.get("ip_prefix", ""),
        )


MATCH_ALL = ImpairmentMatch()


@dataclass(frozen=True)
class ImpairmentWindow:
    """One scheduled impairment on the virtual clock.

    ``rate`` is the fraction of matched targets affected.  Outage and
    NXDOMAIN windows affect a stable per-(window, target) subset — a
    down host stays down for the whole window, like a real incident —
    while latency/reset/truncate re-roll per ``period_seconds`` time
    slot, modeling intermittent spikes.  ``down_fraction`` is the
    per-slot probability that each individual backend of a flapping
    endpoint is dark.
    """

    kind: str
    start: float                    # virtual seconds, inclusive
    end: float                      # virtual seconds, exclusive
    rate: float = 1.0
    delay_seconds: float = 30.0     # latency windows
    period_seconds: float = 15 * MINUTE  # re-roll slot for transient kinds
    down_fraction: float = 0.5      # flap windows
    match: ImpairmentMatch = MATCH_ALL

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown impairment kind {self.kind!r} (expected one of {FAULT_KINDS})"
            )
        if not self.end > self.start:
            raise ValueError(
                f"window end ({self.end}) must be after start ({self.start})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.delay_seconds <= 0:
            raise ValueError("delay_seconds must be positive")
        if self.period_seconds <= 0:
            raise ValueError("period_seconds must be positive")
        if not 0.0 <= self.down_fraction <= 1.0:
            raise ValueError(f"down_fraction must be in [0, 1], got {self.down_fraction}")

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def to_dict(self) -> dict:
        out = {
            "kind": self.kind,
            "start_day": self.start / DAY,
            "end_day": self.end / DAY,
            "rate": self.rate,
        }
        if self.kind == KIND_LATENCY:
            out["delay_seconds"] = self.delay_seconds
        if self.kind in (KIND_LATENCY, KIND_RESET, KIND_TRUNCATE, KIND_FLAP):
            out["period_seconds"] = self.period_seconds
        if self.kind == KIND_FLAP:
            out["down_fraction"] = self.down_fraction
        if not self.match.match_all:
            out["match"] = self.match.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ImpairmentWindow":
        allowed = {
            "kind", "start_day", "end_day", "rate",
            "delay_seconds", "period_seconds", "down_fraction", "match",
        }
        unknown = set(data) - allowed
        if unknown:
            raise ValueError(f"unknown window keys: {sorted(unknown)}")
        for required in ("kind", "start_day", "end_day"):
            if required not in data:
                raise ValueError(f"window is missing required key {required!r}")
        kwargs: dict = {
            "kind": data["kind"],
            "start": float(data["start_day"]) * DAY,
            "end": float(data["end_day"]) * DAY,
            "rate": float(data.get("rate", 1.0)),
            "match": ImpairmentMatch.from_dict(data.get("match", {})),
        }
        if "delay_seconds" in data:
            kwargs["delay_seconds"] = float(data["delay_seconds"])
        if "period_seconds" in data:
            kwargs["period_seconds"] = float(data["period_seconds"])
        if "down_fraction" in data:
            kwargs["down_fraction"] = float(data["down_fraction"])
        return cls(**kwargs)


@dataclass(frozen=True)
class ImpairmentPlan:
    """A compiled, queryable schedule of impairments.

    The hooks below are the *entire* interface the netsim calls (duck
    typed — netsim never imports this package): per-connect faults,
    per-endpoint backend liveness, DNS existence, and server wrapping.
    Every answer is a pure function of (seed, window, target, time).
    """

    windows: tuple[ImpairmentWindow, ...] = ()
    seed: int = 0
    _by_kind: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        by_kind: dict[str, list[tuple[int, ImpairmentWindow]]] = {}
        for window_id, window in enumerate(self.windows):
            by_kind.setdefault(window.kind, []).append((window_id, window))
        object.__setattr__(self, "_by_kind", by_kind)

    # -- internal ----------------------------------------------------------

    def _active(self, kind: str, now: float):
        for window_id, window in self._by_kind.get(kind, ()):
            if window.active(now):
                yield window_id, window

    def _affected(
        self, window_id: int, window: ImpairmentWindow, target: str, slot=None
    ) -> bool:
        """Is ``target`` in this window's affected subset (stable per slot)?"""
        if window.rate >= 1.0:
            return True
        if window.rate <= 0.0:
            return False
        parts = [self.seed, window.kind, window_id, target]
        if slot is not None:
            parts.append(slot)
        return _hash01(*parts) < window.rate

    @staticmethod
    def _slot(window: ImpairmentWindow, now: float) -> int:
        return int((now - window.start) // window.period_seconds)

    # -- netsim hooks ------------------------------------------------------

    def connect_fault(
        self, now: float, ip: str, port: int, domain: str = ""
    ) -> Optional[tuple[str, float]]:
        """Fault for one connect attempt: ``("outage", 0)``,
        ``("latency", delay_seconds)``, or None.  Outages win over
        latency when both windows are active."""
        target = domain or f"{ip}:{port}"
        for window_id, window in self._active(KIND_OUTAGE, now):
            if window.match.matches(domain, ip) and self._affected(
                window_id, window, target
            ):
                return (KIND_OUTAGE, 0.0)
        for window_id, window in self._active(KIND_LATENCY, now):
            if window.match.matches(domain, ip) and self._affected(
                window_id, window, target, slot=self._slot(window, now)
            ):
                return (KIND_LATENCY, window.delay_seconds)
        return None

    def live_backends(
        self, now: float, ip: str, port: int, backend_count: int
    ) -> Optional[list[int]]:
        """Indices of live backends under flap windows, or None (all live)."""
        for window_id, window in self._active(KIND_FLAP, now):
            if not window.match.matches("", ip):
                continue
            slot = self._slot(window, now)
            live = [
                index for index in range(backend_count)
                if _hash01(self.seed, KIND_FLAP, window_id, ip, port, slot, index)
                >= window.down_fraction
            ]
            return live
        return None

    def nxdomain(self, now: float, name: str) -> bool:
        """Should DNS pretend ``name`` does not exist right now?"""
        for window_id, window in self._active(KIND_NXDOMAIN, now):
            if window.match.matches(name, "") and self._affected(
                window_id, window, name
            ):
                return True
        return False

    def handshake_fault(
        self, now: float, ip: str, port: int, domain: str = ""
    ) -> Optional[str]:
        """``"reset"``/``"truncate"`` for this handshake, or None."""
        target = domain or f"{ip}:{port}"
        for kind in HANDSHAKE_KINDS:
            for window_id, window in self._active(kind, now):
                if window.match.matches(domain, ip) and self._affected(
                    window_id, window, target, slot=self._slot(window, now)
                ):
                    return kind
        return None

    def impair_server(self, server, now: float, ip: str, port: int, domain: str = ""):
        """Wrap ``server`` if a handshake fault fires (netsim calls this
        so it never has to import the wrapper class itself)."""
        kind = self.handshake_fault(now, ip, port, domain)
        if kind is None:
            return server
        from .inject import ImpairedServer  # local import: plan ↔ inject

        return ImpairedServer(server, kind)

    # -- (de)serialization -------------------------------------------------

    def to_profile(self) -> dict:
        return {
            "schema": PROFILE_SCHEMA,
            "seed": self.seed,
            "windows": [window.to_dict() for window in self.windows],
        }

    @classmethod
    def from_profile(cls, profile: dict) -> "ImpairmentPlan":
        if not isinstance(profile, dict):
            raise ValueError("chaos profile must be a JSON object")
        schema = profile.get("schema", PROFILE_SCHEMA)
        if schema != PROFILE_SCHEMA:
            raise ValueError(
                f"unsupported chaos profile schema {schema!r} "
                f"(expected {PROFILE_SCHEMA!r})"
            )
        unknown = set(profile) - {"schema", "seed", "windows"}
        if unknown:
            raise ValueError(f"unknown profile keys: {sorted(unknown)}")
        windows = tuple(
            ImpairmentWindow.from_dict(entry)
            for entry in profile.get("windows", ())
        )
        return cls(windows=windows, seed=int(profile.get("seed", 0)))


def seeded_profile(seed: int, days: int) -> dict:
    """The ``--chaos SEED`` shorthand: a plausible schedule derived from
    the seed alone — one multi-hour outage, a study-long low-rate latency
    band, intermittent reset/truncate spikes, a flapping afternoon, and a
    short NXDOMAIN incident.  Same (seed, days) ⇒ same profile dict."""
    if days <= 0:
        raise ValueError("days must be positive")
    rng = DeterministicRandom(f"chaos-profile:{seed}")
    horizon = float(days)

    def window_start(length_days: float) -> float:
        return rng.uniform(0.0, max(horizon - length_days, 0.001))

    windows = []
    outage_len = rng.uniform(0.05, 0.25)
    windows.append({
        "kind": KIND_OUTAGE,
        "start_day": window_start(outage_len),
        "end_day": 0.0,  # patched below
        "rate": rng.uniform(0.4, 0.9),
    })
    windows[-1]["end_day"] = windows[-1]["start_day"] + outage_len
    windows.append({
        "kind": KIND_LATENCY,
        "start_day": 0.0,
        "end_day": horizon,
        "rate": rng.uniform(0.02, 0.08),
        "delay_seconds": rng.uniform(10.0, 45.0),
        "period_seconds": 300.0,
    })
    for kind, rate_hi in ((KIND_RESET, 0.2), (KIND_TRUNCATE, 0.15)):
        length = rng.uniform(0.1, 0.4)
        start = window_start(length)
        windows.append({
            "kind": kind,
            "start_day": start,
            "end_day": start + length,
            "rate": rng.uniform(0.05, rate_hi),
            "period_seconds": 600.0,
        })
    flap_len = rng.uniform(0.2, 0.5)
    flap_start = window_start(flap_len)
    windows.append({
        "kind": KIND_FLAP,
        "start_day": flap_start,
        "end_day": flap_start + flap_len,
        "period_seconds": 900.0,
        "down_fraction": rng.uniform(0.3, 0.6),
    })
    nx_len = rng.uniform(0.05, 0.2)
    nx_start = window_start(nx_len)
    windows.append({
        "kind": KIND_NXDOMAIN,
        "start_day": nx_start,
        "end_day": nx_start + nx_len,
        "rate": rng.uniform(0.1, 0.3),
    })
    return {"schema": PROFILE_SCHEMA, "seed": seed, "windows": windows}


__all__ = [
    "PROFILE_SCHEMA",
    "FAULT_KINDS",
    "HANDSHAKE_KINDS",
    "ImpairmentMatch",
    "ImpairmentWindow",
    "ImpairmentPlan",
    "seeded_profile",
]
