"""Scanner-side resilience: retry budgets, backoff, and circuit breaking.

A real longitudinal scanner cannot treat every timeout as truth — the
paper's pipeline re-contacts hosts and tolerates balancer jitter rather
than letting substrate noise bias the measurement.  :class:`RetryPolicy`
describes how :class:`repro.scanner.grab.ZGrabber` should respond to
*retryable* failures: capped exponential backoff on the **virtual**
clock (retries advance simulated time, never wall time), an optional
global retry budget, and a per-domain :class:`CircuitBreaker` that stops
hammering a host that is clearly down.

The default policy (:data:`DEFAULT_RETRY_POLICY`) is one attempt, no
breaker — byte-for-byte identical scanner behavior to a build without
this module, which is what keeps the golden-digest corpus stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Failure reasons worth a retry: substrate noise, not server policy.
#: ``nxdomain`` and ``handshake`` are deliberate server answers (the
#: domain is gone / the handshake was refused) and retrying would only
#: re-measure the same fact.
RETRYABLE_REASONS = frozenset(
    {"connect_timeout", "no_backend", "outage", "reset", "truncate"}
)


@dataclass(frozen=True)
class RetryPolicy:
    """How the grabber responds to retryable failures.

    ``max_attempts`` counts connection attempts per grab (1 = never
    retry).  ``retry_budget`` caps total retries across a grabber's
    lifetime (None = unlimited) so a melting ecosystem cannot stretch a
    study unboundedly.  ``breaker_threshold`` consecutive failed grabs
    against one domain open its breaker for ``breaker_cooldown_seconds``
    of virtual time (0 = breaker disabled); the first attempt after the
    cooldown is a half-open trial.
    """

    max_attempts: int = 1
    base_delay_seconds: float = 2.0
    backoff_multiplier: float = 2.0
    max_delay_seconds: float = 120.0
    retry_budget: Optional[int] = None
    breaker_threshold: int = 0
    breaker_cooldown_seconds: float = 1800.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_seconds <= 0:
            raise ValueError("base_delay_seconds must be positive")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.max_delay_seconds < self.base_delay_seconds:
            raise ValueError("max_delay_seconds must be >= base_delay_seconds")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        if self.breaker_threshold < 0:
            raise ValueError("breaker_threshold must be >= 0")
        if self.breaker_cooldown_seconds <= 0:
            raise ValueError("breaker_cooldown_seconds must be positive")

    @property
    def enabled(self) -> bool:
        """Does this policy change scanner behavior at all?"""
        return self.max_attempts > 1 or self.breaker_threshold > 0

    def backoff_delay(self, attempt: int) -> float:
        """Virtual seconds to wait after failed attempt number ``attempt``
        (1-based): capped exponential, no jitter (determinism first)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = self.base_delay_seconds * self.backoff_multiplier ** (attempt - 1)
        return min(delay, self.max_delay_seconds)


#: One attempt, no breaker: the historical scanner behavior.
DEFAULT_RETRY_POLICY = RetryPolicy()


class CircuitBreaker:
    """Per-key consecutive-failure breaker on the virtual clock.

    ``threshold`` consecutive failures open the breaker for ``cooldown``
    seconds; while open, :meth:`allow` returns False.  After the
    cooldown one trial is let through *half-open*: success closes the
    breaker, failure re-opens it immediately.
    """

    def __init__(self, threshold: int, cooldown_seconds: float) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown_seconds <= 0:
            raise ValueError("cooldown_seconds must be positive")
        self.threshold = threshold
        self.cooldown = cooldown_seconds
        self._consecutive: dict[str, int] = {}
        self._open_until: dict[str, float] = {}
        self._half_open: set[str] = set()

    @property
    def open_count(self) -> int:
        return len(self._open_until)

    def allow(self, key: str, now: float) -> bool:
        until = self._open_until.get(key)
        if until is None:
            return True
        if now < until:
            return False
        # Cooldown elapsed: let one trial through half-open.
        del self._open_until[key]
        self._half_open.add(key)
        return True

    def record(self, key: str, ok: bool, now: float) -> Optional[str]:
        """Record a grab outcome; returns ``"opened"``/``"closed"`` on a
        state transition, else None."""
        if ok:
            self._consecutive.pop(key, None)
            if key in self._half_open:
                self._half_open.discard(key)
                return "closed"
            return None
        if key in self._half_open:
            self._half_open.discard(key)
            self._open_until[key] = now + self.cooldown
            return "opened"
        count = self._consecutive.get(key, 0) + 1
        if count >= self.threshold:
            self._consecutive.pop(key, None)
            self._open_until[key] = now + self.cooldown
            return "opened"
        self._consecutive[key] = count
        return None


__all__ = [
    "RETRYABLE_REASONS",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "CircuitBreaker",
]
