"""Figure rendering: ASCII CDF plots and service-group treemaps."""

from .plots import ascii_cdf, multi_cdf_table
from .svg import cdf_svg, treemap_svg
from .treemap import TreemapCell, layout_treemap, render_treemap, severity_histogram

__all__ = [
    "ascii_cdf",
    "cdf_svg",
    "treemap_svg",
    "multi_cdf_table",
    "TreemapCell",
    "layout_treemap",
    "render_treemap",
    "severity_histogram",
]
