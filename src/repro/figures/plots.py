"""Text-mode figure rendering.

The benchmark harness regenerates every figure as data (CDF step
points) plus a terminal-friendly rendering.  No plotting libraries are
required; the ASCII output is good enough to eyeball the shapes the
paper shows — the discrete jumps at 5 minutes and 10 hours in Figure 1,
the 18-hour CloudFlare cliff in Figure 2, the long STEK tail in
Figure 3.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

from ..core.cdf import CDF
from ..netsim.clock import format_duration


def ascii_cdf(
    cdf: CDF,
    title: str,
    width: int = 64,
    height: int = 16,
    log_x: bool = True,
    x_label: str = "",
    x_formatter=format_duration,
    min_x: Optional[float] = None,
) -> str:
    """Render one CDF as an ASCII plot (log-x by default, like the paper)."""
    points = cdf.step_points()
    if not points:
        return f"{title}\n(no data)"
    xs = [x for x, _ in points if x > 0] or [1.0]
    lo = min_x if min_x is not None else max(min(xs), 1e-3)
    hi = max(max(xs), lo * 10)

    def x_to_col(x: float) -> int:
        if log_x:
            x = max(x, lo)
            frac = (math.log10(x) - math.log10(lo)) / (math.log10(hi) - math.log10(lo))
        else:
            frac = (x - lo) / (hi - lo) if hi > lo else 0.0
        return min(width - 1, max(0, int(frac * (width - 1))))

    # Build the fraction reached at each column.
    column_fraction = [0.0] * width
    for x, p in points:
        column_fraction[x_to_col(x)] = max(column_fraction[x_to_col(x)], p)
    running = 0.0
    for col in range(width):
        running = max(running, column_fraction[col])
        column_fraction[col] = running

    rows = []
    for row in range(height, 0, -1):
        threshold = row / height
        line = "".join(
            "#" if column_fraction[col] >= threshold else " " for col in range(width)
        )
        axis = f"{threshold:4.0%} |" if row in (height, height // 2, 1) else "     |"
        rows.append(axis + line)
    footer = "     +" + "-" * width
    lo_label, hi_label = x_formatter(lo), x_formatter(hi)
    label_line = f"      {lo_label}{' ' * max(1, width - len(lo_label) - len(hi_label))}{hi_label}"
    lines = [title, ""] + rows + [footer, label_line]
    if x_label:
        lines.append(f"      ({x_label})")
    return "\n".join(lines)


def multi_cdf_table(
    cdfs: Mapping[str, CDF],
    thresholds: Sequence[float],
    formatter=format_duration,
    title: str = "",
) -> str:
    """Several CDFs as a fraction-at-most table (used for Figure 4)."""
    lines = []
    if title:
        lines.extend([title, ""])
    header = f"{'series':<12}" + "".join(f"{'<=' + formatter(t):>12}" for t in thresholds)
    header += f"{'n':>8}"
    lines.append(header)
    for name, cdf in cdfs.items():
        row = f"{name:<12}" + "".join(
            f"{cdf.fraction_at_most(t):>12.0%}" for t in thresholds
        )
        row += f"{len(cdf):>8}"
        lines.append(row)
    return "\n".join(lines)


__all__ = ["ascii_cdf", "multi_cdf_table"]
