"""Standalone SVG rendering for the paper's figures.

The ASCII renderers in :mod:`repro.figures.plots` are for terminals;
this module emits real, viewable figures — step-function CDFs with
log-scaled time axes (Figures 1/2/3/5/8) and treemaps (Figures 6/7) —
as self-contained SVG strings, with no plotting dependencies.

The drawing model is intentionally small: a fixed plot box, log or
linear x mapping, stepped polylines, and text labels.  Colors follow
the paper's severity scale for treemaps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..core.cdf import CDF
from ..netsim.clock import format_duration
from .treemap import TreemapCell

_SERIES_COLORS = ("#1f6feb", "#d1242f", "#1a7f37", "#9a6700", "#8250df",
                  "#bf3989")
_SEVERITY_FILL = {
    "red": "#d1242f",
    "orange": "#fb8f44",
    "yellow": "#eac54f",
    "green": "#4ac26b",
}


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
            .replace('"', "&quot;"))


@dataclass
class _Frame:
    """Plot-box geometry and x-axis mapping."""

    width: int
    height: int
    left: int = 70
    right: int = 20
    top: int = 40
    bottom: int = 50
    log_x: bool = True
    x_min: float = 1.0
    x_max: float = 10.0

    @property
    def plot_width(self) -> int:
        return self.width - self.left - self.right

    @property
    def plot_height(self) -> int:
        return self.height - self.top - self.bottom

    def x(self, value: float) -> float:
        value = min(max(value, self.x_min), self.x_max)
        if self.log_x:
            frac = (math.log10(value) - math.log10(self.x_min)) / (
                math.log10(self.x_max) - math.log10(self.x_min)
            )
        else:
            frac = (value - self.x_min) / (self.x_max - self.x_min)
        return self.left + frac * self.plot_width

    def y(self, fraction: float) -> float:
        return self.top + (1.0 - fraction) * self.plot_height


def _axis_ticks(frame: _Frame) -> list[float]:
    if not frame.log_x:
        step = (frame.x_max - frame.x_min) / 6
        return [frame.x_min + i * step for i in range(7)]
    lo = math.ceil(math.log10(frame.x_min))
    hi = math.floor(math.log10(frame.x_max))
    return [10.0 ** e for e in range(lo, hi + 1)]


def _step_path(frame: _Frame, points: Sequence[tuple[float, float]]) -> str:
    """SVG path for a right-continuous CDF step function."""
    if not points:
        return ""
    parts = [f"M {frame.x(points[0][0]):.1f} {frame.y(0.0):.1f}"]
    previous_fraction = 0.0
    for x, fraction in points:
        parts.append(f"L {frame.x(x):.1f} {frame.y(previous_fraction):.1f}")
        parts.append(f"L {frame.x(x):.1f} {frame.y(fraction):.1f}")
        previous_fraction = fraction
    parts.append(f"L {frame.x(frame.x_max):.1f} {frame.y(previous_fraction):.1f}")
    return " ".join(parts)


def cdf_svg(
    cdfs: Mapping[str, CDF],
    title: str,
    x_label: str = "",
    width: int = 640,
    height: int = 400,
    log_x: bool = True,
    x_formatter=format_duration,
    x_min: Optional[float] = None,
) -> str:
    """Render one or more CDFs as a stepped-line SVG chart."""
    all_values = [v for cdf in cdfs.values() for v in cdf.values if v > 0]
    lo = x_min if x_min is not None else (min(all_values) if all_values else 1.0)
    hi = max(all_values) if all_values else lo * 10
    if hi <= lo:
        hi = lo * 10
    frame = _Frame(width=width, height=height, log_x=log_x, x_min=lo, x_max=hi)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2:.0f}" y="22" text-anchor="middle" '
        f'font-size="15" font-weight="bold">{_escape(title)}</text>',
        f'<rect x="{frame.left}" y="{frame.top}" width="{frame.plot_width}" '
        f'height="{frame.plot_height}" fill="none" stroke="#333"/>',
    ]
    # Y gridlines at 0/25/50/75/100%.
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        y = frame.y(fraction)
        parts.append(
            f'<line x1="{frame.left}" y1="{y:.1f}" '
            f'x2="{frame.left + frame.plot_width}" y2="{y:.1f}" '
            f'stroke="#ddd"/>' if 0 < fraction < 1 else ""
        )
        parts.append(
            f'<text x="{frame.left - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end">{fraction:.0%}</text>'
        )
    # X ticks.
    for tick in _axis_ticks(frame):
        x = frame.x(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{frame.top + frame.plot_height}" '
            f'x2="{x:.1f}" y2="{frame.top + frame.plot_height + 5}" stroke="#333"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{frame.top + frame.plot_height + 20}" '
            f'text-anchor="middle">{_escape(x_formatter(tick))}</text>'
        )
    if x_label:
        parts.append(
            f'<text x="{width / 2:.0f}" y="{height - 8}" text-anchor="middle" '
            f'fill="#555">{_escape(x_label)}</text>'
        )
    # Series.
    for index, (name, cdf) in enumerate(cdfs.items()):
        color = _SERIES_COLORS[index % len(_SERIES_COLORS)]
        path = _step_path(frame, cdf.step_points())
        if path:
            parts.append(
                f'<path d="{path}" fill="none" stroke="{color}" stroke-width="2"/>'
            )
        legend_y = frame.top + 16 + 18 * index
        parts.append(
            f'<line x1="{frame.left + 10}" y1="{legend_y - 4}" '
            f'x2="{frame.left + 34}" y2="{legend_y - 4}" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{frame.left + 40}" y="{legend_y}">{_escape(name)} '
            f'(n={len(cdf)})</text>'
        )
    parts.append("</svg>")
    return "\n".join(p for p in parts if p)


def treemap_svg(
    cells: Sequence[TreemapCell],
    title: str,
    width: int = 640,
    height: int = 420,
    label_min_fraction: float = 0.01,
) -> str:
    """Render a treemap layout as SVG (Figures 6/7)."""
    top = 36
    legend_height = 26
    plot_height = height - top - legend_height
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2:.0f}" y="22" text-anchor="middle" '
        f'font-size="15" font-weight="bold">{_escape(title)}</text>',
    ]
    for cell in cells:
        x = cell.x * width
        y = top + cell.y * plot_height
        w = cell.width * width
        h = cell.height * plot_height
        fill = _SEVERITY_FILL[cell.severity]
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{max(w, 0.5):.1f}" '
            f'height="{max(h, 0.5):.1f}" fill="{fill}" stroke="white" '
            f'stroke-width="1"><title>{_escape(cell.label)}: {cell.size} '
            f'domains, {_escape(format_duration(cell.longevity_seconds))}'
            f'</title></rect>'
        )
        if cell.width * cell.height >= label_min_fraction and w > 60 and h > 14:
            parts.append(
                f'<text x="{x + w / 2:.1f}" y="{y + h / 2 + 4:.1f}" '
                f'text-anchor="middle" fill="white">'
                f'{_escape(cell.label)} ({cell.size})</text>'
            )
    legend_items = [("&lt; 24 h", "green"), ("&#8805; 24 h", "yellow"),
                    ("&#8805; 7 d", "orange"), ("&#8805; 30 d", "red")]
    x_cursor = 10
    legend_y = height - 8
    for label, severity in legend_items:
        parts.append(
            f'<rect x="{x_cursor}" y="{legend_y - 11}" width="12" height="12" '
            f'fill="{_SEVERITY_FILL[severity]}"/>'
        )
        parts.append(f'<text x="{x_cursor + 16}" y="{legend_y}">{label}</text>')
        x_cursor += 95
    parts.append("</svg>")
    return "\n".join(parts)


__all__ = ["cdf_svg", "treemap_svg"]
