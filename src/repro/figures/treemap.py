"""Treemap layout for Figures 6 and 7.

The paper visualizes service groups as boxes sized by member count and
colored by secret longevity (solid red = a key shared for ≥ 30 days).
This module computes a slice-and-dice treemap layout (rectangles in a
unit square) plus an ASCII rendering that conveys the same two signals:
area = group size, shading = median secret lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..netsim.clock import DAY, HOUR


@dataclass(frozen=True)
class TreemapCell:
    """One service group's box."""

    label: str
    size: int                 # member domains
    longevity_seconds: float  # median secret lifetime for the group
    x: float
    y: float
    width: float
    height: float

    @property
    def severity(self) -> str:
        """The paper's color scale, as a category."""
        if self.longevity_seconds >= 30 * DAY:
            return "red"        # solid red boxes in Fig. 6
        if self.longevity_seconds >= 7 * DAY:
            return "orange"
        if self.longevity_seconds >= 24 * HOUR:
            return "yellow"
        return "green"


_SEVERITY_CHAR = {"red": "#", "orange": "x", "yellow": "+", "green": "."}


def layout_treemap(
    groups: Sequence[tuple[str, int, float]],
    x: float = 0.0,
    y: float = 0.0,
    width: float = 1.0,
    height: float = 1.0,
) -> list[TreemapCell]:
    """Slice-and-dice layout of (label, size, longevity) groups.

    Groups are laid out largest-first, alternating split direction —
    simple, deterministic, and proportional, which is all the figure
    needs.
    """
    ordered = sorted(groups, key=lambda g: -g[1])
    cells: list[TreemapCell] = []
    _slice(ordered, x, y, width, height, vertical=True, out=cells)
    return cells


def _slice(
    groups: Sequence[tuple[str, int, float]],
    x: float,
    y: float,
    width: float,
    height: float,
    vertical: bool,
    out: list[TreemapCell],
) -> None:
    if not groups:
        return
    total = sum(size for _, size, _ in groups)
    if total <= 0:
        return
    if len(groups) == 1:
        label, size, longevity = groups[0]
        out.append(TreemapCell(label, size, longevity, x, y, width, height))
        return
    # Put the largest group in the first slice, recurse on the rest.
    label, size, longevity = groups[0]
    fraction = size / total
    if vertical:
        slice_width = width * fraction
        out.append(TreemapCell(label, size, longevity, x, y, slice_width, height))
        _slice(groups[1:], x + slice_width, y, width - slice_width, height,
               vertical=False, out=out)
    else:
        slice_height = height * fraction
        out.append(TreemapCell(label, size, longevity, x, y, width, slice_height))
        _slice(groups[1:], x, y + slice_height, width, height - slice_height,
               vertical=True, out=out)


def render_treemap(
    cells: Sequence[TreemapCell],
    columns: int = 72,
    rows: int = 20,
    title: str = "",
) -> str:
    """ASCII rendering: area ∝ group size, character = severity."""
    grid = [[" "] * columns for _ in range(rows)]
    for cell in cells:
        char = _SEVERITY_CHAR[cell.severity]
        col0 = int(cell.x * columns)
        col1 = max(col0 + 1, int((cell.x + cell.width) * columns))
        row0 = int(cell.y * rows)
        row1 = max(row0 + 1, int((cell.y + cell.height) * rows))
        for row in range(row0, min(row1, rows)):
            for col in range(col0, min(col1, columns)):
                grid[row][col] = char
    lines = []
    if title:
        lines.extend([title, ""])
    lines.extend("".join(row) for row in grid)
    lines.append("")
    lines.append("legend: '#' >=30d   'x' >=7d   '+' >=24h   '.' <24h")
    return "\n".join(lines)


def severity_histogram(cells: Sequence[TreemapCell]) -> dict[str, int]:
    """Domains per severity class — the figure's machine-readable core."""
    histogram = {"red": 0, "orange": 0, "yellow": 0, "green": 0}
    for cell in cells:
        histogram[cell.severity] += cell.size
    return histogram


__all__ = ["TreemapCell", "layout_treemap", "render_treemap", "severity_histogram"]
