"""The synthetic hosting ecosystem standing in for the live Internet."""

from .ecosystem import Domain, Ecosystem, EcosystemConfig, build_ecosystem
from .notable import NOTABLE_DOMAINS, NotableDomain
from .profiles import DomainBehavior, sample_behavior
from .providers import PROVIDERS, ProviderSpec

__all__ = [
    "Domain",
    "Ecosystem",
    "EcosystemConfig",
    "build_ecosystem",
    "NOTABLE_DOMAINS",
    "NotableDomain",
    "DomainBehavior",
    "sample_behavior",
    "PROVIDERS",
    "ProviderSpec",
]
