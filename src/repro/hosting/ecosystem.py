"""Build and evolve the synthetic HTTPS ecosystem.

:func:`build_ecosystem` assembles everything the scanner can see:

* a ranked, churning "Alexa-like" domain list;
* hosting providers with shared session caches, STEK stores, and
  ephemeral-key caches across terminator clusters (§5's ground truth);
* notable domains pinned at their paper ranks with the reported
  long-lived secrets (Tables 2-4);
* independently hosted domains with behaviors sampled from the
  calibrated distributions in :mod:`repro.hosting.profiles`;
* DNS (A + MX records), an AS registry, and a network fabric with
  transient failures and load-balancer jitter.

:class:`Ecosystem.advance_to` moves virtual time forward, firing STEK
rotations and daily churn — the server-side dynamics whose observable
consequences the measurement study infers from the outside.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from ..crypto import dh as dhmod, ec as ecmod, rsa
from ..crypto.rng import DeterministicRandom
from ..netsim.address import IPv4Address
from ..netsim.clock import DAY, SimClock
from ..netsim.dns import DNSZone
from ..netsim.network import Endpoint, Network
from ..netsim.topology import ASRegistry, AutonomousSystem
from ..tls.ciphers import (
    CipherSuite,
    DHE_SUITES,
    ECDHE_SUITES,
    RSA_SUITES,
)
from ..tls.keyexchange import EphemeralKeyCache, KexReusePolicy, ReuseMode
from ..tls.server import ServerConfig, TLSServer, TicketPolicy
from ..tls.session import SessionCache
from ..tls.ticket import STEKStore, TicketFormat, generate_stek
from ..x509 import CertificateAuthority, TrustStore, X509Certificate
from .notable import NOTABLE_DOMAINS, NotableDomain
from .profiles import DomainBehavior, sample_behavior
from .providers import PROVIDERS, ProviderSpec

GOOGLE_MX_HOST = "aspmx.l.google-sim.example"

#: TLS-based mail protocols the paper checked against Google's STEK
#: (§7.2: SMTPS, IMAPS, POP3S share the HTTPS key).
MAIL_TLS_PORTS = (465, 993, 995)

_KEY_NAME_LENGTH = {
    TicketFormat.RFC5077: 16,
    TicketFormat.MBEDTLS: 4,
    TicketFormat.SCHANNEL: 16,
}


@dataclass
class EcosystemConfig:
    """Knobs for the synthetic population."""

    population: int = 2000          # size of the ranked list
    seed: int = 1
    study_days: int = 63            # certificate validity horizon etc.
    curve_name: str = "secp128r1"   # ECDHE curve the servers use
    dh_group_name: str = "test-256" # DHE group the servers use
    rsa_bits: int = 512
    key_pool_size: int = 48         # distinct RSA keys shared by certs
    failure_rate: float = 0.012     # transient connect failures
    churn_daily_fraction: float = 0.008
    reserve_fraction: float = 0.25  # extra domains available for churn
    mx_google_fraction: float = 0.091  # §7.2: MX → Google
    multi_ip_fraction: float = 0.08    # independents with two A records
    lb_jitter_fraction: float = 0.05   # ticket domains with unsynced STEKs
    blacklist_fraction: float = 0.004  # institutional do-not-scan list


@dataclass
class Domain:
    """One domain: public identity plus ground-truth server handles."""

    name: str
    rank: int
    behavior: DomainBehavior
    provider: Optional[str] = None
    notable: bool = False
    ips: list[IPv4Address] = field(default_factory=list)
    asn: Optional[int] = None
    joined_day: int = 0
    left_day: Optional[int] = None  # exclusive; None = never left
    # Ground truth (None for non-HTTPS domains).
    servers: list[TLSServer] = field(default_factory=list)
    stek_store: Optional[STEKStore] = None
    extra_stek_stores: list[STEKStore] = field(default_factory=list)
    session_cache: Optional[SessionCache] = None
    kex_cache: Optional[EphemeralKeyCache] = None
    certificate: Optional[X509Certificate] = None

    def active_on(self, day: int) -> bool:
        """Was this domain in the ranked list on study day ``day``?"""
        if day < self.joined_day:
            return False
        return self.left_day is None or day < self.left_day

    @property
    def https(self) -> bool:
        return self.behavior.https


@dataclass(order=True)
class _RotationTask:
    due: float
    order: int
    store: STEKStore = field(compare=False)
    interval: float = field(compare=False)
    key_name_length: int = field(compare=False)


class Ecosystem:
    """The living synthetic Internet the scanner measures."""

    def __init__(
        self,
        config: EcosystemConfig,
        clock: SimClock,
        network: Network,
        dns: DNSZone,
        as_registry: ASRegistry,
        trust_store: TrustStore,
        domains: list[Domain],
        rotation_rng: DeterministicRandom,
        churn_rng: DeterministicRandom,
        reserve: list[Domain],
        blacklist: Optional[set[str]] = None,
    ) -> None:
        self.config = config
        # The institution's do-not-scan list: the scanner must skip
        # these (the paper "followed the institutional blacklist").
        self.blacklist: set[str] = blacklist or set()
        self.clock = clock
        self.network = network
        self.dns = dns
        self.as_registry = as_registry
        self.trust_store = trust_store
        self.domains = domains
        self._by_name = {domain.name: domain for domain in domains}
        self._rotation_rng = rotation_rng
        self._churn_rng = churn_rng
        self._reserve = reserve
        self._rotations: list[_RotationTask] = []
        self._rotation_order = 0
        self._last_churn_day = 0
        self.stek_rotations_performed = 0

    # -- construction helpers (used by the builder) ----------------------

    def schedule_rotation(
        self, store: STEKStore, interval: Optional[float], key_name_length: int
    ) -> None:
        """Register a STEK store for periodic rotation (None = never)."""
        if interval is None or interval <= 0:
            return
        self._rotation_order += 1
        heapq.heappush(
            self._rotations,
            _RotationTask(
                due=self.clock.now() + interval,
                order=self._rotation_order,
                store=store,
                interval=interval,
                key_name_length=key_name_length,
            ),
        )

    # -- public API -------------------------------------------------------

    def domain(self, name: str) -> Domain:
        return self._by_name[name]

    def active_domains(self, day: Optional[int] = None) -> list[Domain]:
        """Domains in the ranked list on ``day`` (default: today), by rank."""
        if day is None:
            day = self.clock.day_index
        active = [d for d in self.domains if d.active_on(day)]
        active.sort(key=lambda d: d.rank)
        return active

    def alexa_list(self, day: Optional[int] = None) -> list[tuple[int, str]]:
        """The (rank, name) list a scanner downloads for a study day."""
        return [(d.rank, d.name) for d in self.active_domains(day)]

    def always_present_domains(self, through_day: int) -> list[Domain]:
        """Domains in the list every day of ``[0, through_day]`` — the
        paper restricts multi-day analyses to these."""
        return [
            d
            for d in self.active_domains(0)
            if d.joined_day == 0 and (d.left_day is None or d.left_day > through_day)
        ]

    def advance_to(self, timestamp: float) -> None:
        """Move time forward, firing STEK rotations and daily churn."""
        if timestamp < self.clock.now():
            raise ValueError("time cannot move backwards")
        while self._rotations and self._rotations[0].due <= timestamp:
            task = heapq.heappop(self._rotations)
            self.clock.advance_to(max(task.due, self.clock.now()))
            fresh = generate_stek(
                self._rotation_rng, task.due, key_name_length=task.key_name_length
            )
            task.store.rotate(fresh)
            self.stek_rotations_performed += 1
            task.due += task.interval
            self._rotation_order += 1
            task.order = self._rotation_order
            heapq.heappush(self._rotations, task)
        self.clock.advance_to(timestamp)
        self._apply_churn()

    def advance_days(self, days: float) -> None:
        self.advance_to(self.clock.now() + days * DAY)

    def _apply_churn(self) -> None:
        """Replace a sample of the list with reserve domains, daily."""
        today = self.clock.day_index
        while self._last_churn_day < today:
            self._last_churn_day += 1
            day = self._last_churn_day
            count = int(round(self.config.churn_daily_fraction * self.config.population))
            if count == 0 or not self._reserve:
                continue
            eligible = [
                d
                for d in self.domains
                if d.active_on(day) and not d.notable and d.provider is None
            ]
            if len(eligible) < count:
                count = len(eligible)
            leaving = self._churn_rng.sample(eligible, count)
            for domain in leaving:
                domain.left_day = day
            for domain in leaving:
                if not self._reserve:
                    break
                newcomer = self._reserve.pop()
                newcomer.joined_day = day
                newcomer.rank = domain.rank
                self.domains.append(newcomer)
                self._by_name[newcomer.name] = newcomer

    # -- ground-truth accessors for verification and the attacker model --

    def ground_truth_stek_groups(self) -> dict[int, list[str]]:
        """Domains grouped by the identity of their STEK store."""
        groups: dict[int, list[str]] = {}
        for domain in self.domains:
            if domain.stek_store is not None:
                groups.setdefault(id(domain.stek_store), []).append(domain.name)
        return groups

    def ground_truth_cache_groups(self) -> dict[int, list[str]]:
        """Domains grouped by the identity of their session cache."""
        groups: dict[int, list[str]] = {}
        for domain in self.domains:
            if domain.session_cache is not None:
                groups.setdefault(id(domain.session_cache), []).append(domain.name)
        return groups


# ---------------------------------------------------------------------------
# Builder
# ---------------------------------------------------------------------------


class _Builder:
    """Assembles an :class:`Ecosystem` from an :class:`EcosystemConfig`."""

    def __init__(self, config: EcosystemConfig) -> None:
        self.config = config
        self.clock = SimClock(0.0)
        root = DeterministicRandom(config.seed)
        self.rng_keys = root.fork("keys")
        self.rng_behavior = root.fork("behavior")
        self.rng_network = root.fork("network")
        self.rng_servers = root.fork("servers")
        self.rng_rotation = root.fork("rotation")
        self.rng_churn = root.fork("churn")
        self.rng_ranks = root.fork("ranks")
        self.network = Network(self.rng_network, failure_rate=config.failure_rate)
        self.dns = DNSZone()
        self.as_registry = ASRegistry()
        self.trust_store = TrustStore()
        self.curve = ecmod.CURVES_BY_NAME[config.curve_name]
        self.dh_group = dhmod.GROUPS_BY_NAME[config.dh_group_name]
        self.domains: list[Domain] = []
        self._cert_validity = (0.0, (config.study_days + 30) * DAY)
        self._generic_as: list[AutonomousSystem] = []
        self._generic_cursor = 0
        self._server_count = 0

        # Simulated CAs.  Key pooling (many certificates share an RSA
        # key) is a documented speed substitution: no analysis in the
        # study uses the server key as a grouping signal.
        self.cas = [
            CertificateAuthority(
                f"Repro Root CA {i + 1}", rsa.generate_keypair(config.rsa_bits, self.rng_keys)
            )
            for i in range(2)
        ]
        for ca in self.cas:
            self.trust_store.add_root(ca.name, ca.public_key)
        self.untrusted_ca = CertificateAuthority(
            "Shady CA", rsa.generate_keypair(config.rsa_bits, self.rng_keys)
        )
        self.key_pool = [
            rsa.generate_keypair(config.rsa_bits, self.rng_keys)
            for _ in range(config.key_pool_size)
        ]
        self._key_cursor = 0

    # -- small helpers ---------------------------------------------------

    def _next_key(self) -> rsa.RSAPrivateKey:
        key = self.key_pool[self._key_cursor % len(self.key_pool)]
        self._key_cursor += 1
        return key

    def _issue_cert(self, names: list[str], key: rsa.RSAPrivateKey, trusted: bool) -> X509Certificate:
        ca = self.cas[self._key_cursor % len(self.cas)] if trusted else self.untrusted_ca
        return ca.issue(names, key.public, *self._cert_validity)

    def _make_generic_ases(self, count: int = 40) -> None:
        for i in range(count):
            autonomous_system = self.as_registry.register(
                64500 + i, f"Generic Hosting {i + 1}", [f"10.{i}.0.0/16"]
            )
            self._generic_as.append(autonomous_system)

    def _next_generic_as(self) -> AutonomousSystem:
        autonomous_system = self._generic_as[self._generic_cursor % len(self._generic_as)]
        self._generic_cursor += 1
        return autonomous_system

    def _suites_for(
        self, supports_dhe: bool, supports_ecdhe: bool
    ) -> tuple[CipherSuite, ...]:
        suites: tuple[CipherSuite, ...] = ()
        if supports_ecdhe:
            suites += ECDHE_SUITES
        if supports_dhe:
            suites += DHE_SUITES
        return suites + RSA_SUITES

    def _kex_policy(self, reuse_seconds: Optional[float]) -> KexReusePolicy:
        """None = fresh per handshake; inf = reuse forever; else timed."""
        if reuse_seconds is None:
            return KexReusePolicy(ReuseMode.FRESH)
        if reuse_seconds == float("inf"):
            return KexReusePolicy(ReuseMode.PROCESS_LIFETIME)
        return KexReusePolicy(ReuseMode.TIMED, lifetime_seconds=reuse_seconds)

    def _new_server(
        self, config: ServerConfig, kex_cache: Optional[EphemeralKeyCache] = None
    ) -> TLSServer:
        self._server_count += 1
        return TLSServer(
            config,
            self.rng_servers.fork(f"server-{self._server_count}"),
            self.clock.now,
            kex_cache=kex_cache,
        )

    def _new_stek_store(
        self, ticket_format: TicketFormat, retain: int
    ) -> STEKStore:
        key_name_length = _KEY_NAME_LENGTH[ticket_format]
        initial = generate_stek(self.rng_rotation, self.clock.now(), key_name_length)
        return STEKStore(initial, ticket_format=ticket_format, retain=retain)

    # -- provider construction --------------------------------------------

    def _build_provider(self, spec: ProviderSpec, ecosystem_hooks: list) -> list[Domain]:
        autonomous_system = self.as_registry.register(
            spec.asn, spec.name, list(spec.as_blocks)
        )
        count = spec.scaled_customers(self.config.population)
        named = [name for cluster in spec.clusters for name in cluster.named_domains]
        total = count + len(named)

        # Shared state objects, keyed by group id.
        caches: dict[int, SessionCache] = {}
        steks: dict[int, STEKStore] = {}
        kexes: dict[int, EphemeralKeyCache] = {}
        for cluster in spec.clusters:
            if cluster.cache_lifetime is not None and cluster.cache_group not in caches:
                caches[cluster.cache_group] = SessionCache(cluster.cache_lifetime)
            if spec.tickets and cluster.stek_group not in steks:
                store = self._new_stek_store(spec.ticket_format, spec.stek_retain)
                steks[cluster.stek_group] = store
                ecosystem_hooks.append(
                    (store, spec.stek_rotation, _KEY_NAME_LENGTH[spec.ticket_format])
                )
            if cluster.dh_group is not None and cluster.dh_group not in kexes:
                shared_lifetime = (
                    spec.kex_reuse_seconds
                    if spec.kex_reuse_seconds is not None
                    else float("inf")  # provider never regenerates the value
                )
                kexes[cluster.dh_group] = EphemeralKeyCache(
                    self._kex_policy(shared_lifetime)
                )

        domains: list[Domain] = []
        weights = [cluster.weight for cluster in spec.clusters]
        weight_total = sum(weights)
        assigned = 0
        for idx, cluster in enumerate(spec.clusters):
            if idx == len(spec.clusters) - 1:
                cluster_count = count - assigned
            else:
                cluster_count = int(round(count * cluster.weight / weight_total))
            assigned += cluster_count
            customer_names = [
                spec.customer_pattern.format(index=assigned - cluster_count + i,
                                              provider=spec.name)
                for i in range(cluster_count)
            ]
            names = list(cluster.named_domains) + customer_names

            key = self._next_key()
            sni_certs = {}
            default_cert = None
            for name in names:
                cert = self._issue_cert([name], key, trusted=True)
                sni_certs[name] = (cert, key)
                if default_cert is None:
                    default_cert = cert
            assert default_cert is not None or not names
            if not names:
                continue

            shared_kex = kexes.get(cluster.dh_group) if cluster.dh_group is not None else None
            server_config = ServerConfig(
                certificate=default_cert,
                private_key=key,
                supported_suites=self._suites_for(spec.supports_dhe, spec.supports_ecdhe),
                session_cache=caches.get(cluster.cache_group)
                if cluster.cache_lifetime is not None
                else None,
                issue_session_ids=spec.issue_session_ids,
                stek_store=steks.get(cluster.stek_group) if spec.tickets else None,
                ticket_policy=TicketPolicy(
                    lifetime_hint_seconds=spec.ticket_hint,
                    accept_window_seconds=spec.ticket_window,
                    ticket_format=spec.ticket_format,
                ),
                dh_group=self.dh_group,
                curve=self.curve,
                kex_policy=(
                    shared_kex.policy
                    if shared_kex is not None
                    else KexReusePolicy(ReuseMode.FRESH)
                ),
                sni_certificates=sni_certs,
            )
            server = self._new_server(server_config, kex_cache=shared_kex)

            # Each cluster fronts a handful of IPs; every customer name
            # resolves to one or two of them.
            ip_count = max(1, min(4, cluster_count // 8 + 1))
            ips = [autonomous_system.allocate_address() for _ in range(ip_count)]
            for ip in ips:
                self.network.register(Endpoint(ip=ip, backends=[server]))
            if cluster.named_domains and spec.name == "google":
                # §7.2: the provider's mail protocols terminate TLS on
                # the same infrastructure — same process, same STEK.
                for ip in ips:
                    for port in MAIL_TLS_PORTS:
                        self.network.register(
                            Endpoint(ip=ip, port=port, backends=[server])
                        )
                self.dns.add_a(GOOGLE_MX_HOST, ips[0])
            for i, name in enumerate(names):
                primary = ips[i % len(ips)]
                self.dns.add_a(name, primary)
                if len(ips) > 1 and i % 3 == 0:
                    self.dns.add_a(name, ips[(i + 1) % len(ips)])
                behavior = DomainBehavior(
                    https=True,
                    trusted_cert=True,
                    supports_dhe=spec.supports_dhe,
                    supports_ecdhe=spec.supports_ecdhe,
                    issue_session_ids=spec.issue_session_ids,
                    session_cache_lifetime=cluster.cache_lifetime,
                    tickets=spec.tickets,
                    ticket_hint_seconds=spec.ticket_hint,
                    ticket_window_seconds=spec.ticket_window,
                    ticket_format=spec.ticket_format,
                    stek_rotation_seconds=spec.stek_rotation,
                    stek_retain_previous=spec.stek_retain,
                    dhe_reuse_seconds=(
                        (spec.kex_reuse_seconds if spec.kex_reuse_seconds is not None
                         else float("inf"))
                        if cluster.dh_group is not None and spec.supports_dhe
                        else None
                    ),
                    ecdhe_reuse_seconds=(
                        (spec.kex_reuse_seconds if spec.kex_reuse_seconds is not None
                         else float("inf"))
                        if cluster.dh_group is not None and spec.supports_ecdhe
                        else None
                    ),
                )
                domains.append(
                    Domain(
                        name=name,
                        rank=0,  # assigned later
                        behavior=behavior,
                        provider=spec.name,
                        ips=[primary],
                        asn=spec.asn,
                        servers=[server],
                        stek_store=steks.get(cluster.stek_group) if spec.tickets else None,
                        session_cache=caches.get(cluster.cache_group)
                        if cluster.cache_lifetime is not None
                        else None,
                        kex_cache=shared_kex or server.kex_cache,
                        certificate=sni_certs[name][0],
                    )
                )
        return domains

    # -- independent domain construction -----------------------------------

    def _build_served_domain(
        self,
        name: str,
        behavior: DomainBehavior,
        notable: bool,
        ecosystem_hooks: list,
        lb_jitter: bool = False,
    ) -> Domain:
        """Create one independently hosted domain with its own process."""
        autonomous_system = self._next_generic_as()
        key = self._next_key()
        cert = self._issue_cert([name, f"www.{name}"], key, trusted=behavior.trusted_cert)

        cache = (
            SessionCache(behavior.session_cache_lifetime)
            if behavior.session_cache_lifetime is not None
            else None
        )
        stek_store = None
        extra_stores: list[STEKStore] = []
        if behavior.tickets:
            stek_store = self._new_stek_store(
                behavior.ticket_format, behavior.stek_retain_previous
            )
            ecosystem_hooks.append(
                (stek_store, behavior.stek_rotation_seconds,
                 _KEY_NAME_LENGTH[behavior.ticket_format])
            )

        # DHE and ECDHE reuse are configured independently, like real
        # stacks (netflix reused both; whatsapp only its ECDHE scalar).
        dh_policy = self._kex_policy(behavior.dhe_reuse_seconds)
        ec_policy = self._kex_policy(behavior.ecdhe_reuse_seconds)

        def make_config(store: Optional[STEKStore]) -> ServerConfig:
            return ServerConfig(
                certificate=cert,
                private_key=key,
                supported_suites=self._suites_for(
                    behavior.supports_dhe, behavior.supports_ecdhe
                ),
                session_cache=cache,
                issue_session_ids=behavior.issue_session_ids,
                stek_store=store,
                ticket_policy=TicketPolicy(
                    lifetime_hint_seconds=behavior.ticket_hint_seconds,
                    accept_window_seconds=behavior.ticket_window_seconds,
                    ticket_format=behavior.ticket_format,
                ),
                dh_group=self.dh_group,
                curve=self.curve,
                kex_policy=dh_policy,
                kex_policy_ec=ec_policy,
            )

        servers = [self._new_server(make_config(stek_store))]
        if lb_jitter and behavior.tickets:
            # A second, unsynchronized backend: its own STEK on the same
            # rotation schedule — the paper's "poorly configured load
            # balancer" jitter source.
            second_store = self._new_stek_store(
                behavior.ticket_format, behavior.stek_retain_previous
            )
            ecosystem_hooks.append(
                (second_store, behavior.stek_rotation_seconds,
                 _KEY_NAME_LENGTH[behavior.ticket_format])
            )
            extra_stores.append(second_store)
            servers.append(self._new_server(make_config(second_store)))

        ip = autonomous_system.allocate_address()
        self.network.register(
            Endpoint(ip=ip, backends=list(servers), affinity=len(servers) == 1)
        )
        ips = [ip]
        if not lb_jitter and self.rng_behavior.random() < self.config.multi_ip_fraction:
            second_ip = autonomous_system.allocate_address()
            self.network.register(Endpoint(ip=second_ip, backends=[servers[0]]))
            self.dns.add_a(name, second_ip)
            ips.append(second_ip)
        self.dns.add_a(name, ip)

        return Domain(
            name=name,
            rank=0,
            behavior=behavior,
            notable=notable,
            ips=ips,
            asn=autonomous_system.asn,
            servers=servers,
            stek_store=stek_store,
            extra_stek_stores=extra_stores,
            session_cache=cache,
            kex_cache=servers[0].kex_cache,
            certificate=cert,
        )

    def _build_dark_domain(self, name: str, behavior: DomainBehavior) -> Domain:
        """A domain with no HTTPS service (DNS may or may not resolve)."""
        if self.rng_behavior.random() < 0.7:
            autonomous_system = self._next_generic_as()
            ip = autonomous_system.allocate_address()
            self.dns.add_a(name, ip)  # resolves, but nothing listens on 443
            return Domain(name=name, rank=0, behavior=behavior,
                          ips=[ip], asn=autonomous_system.asn)
        return Domain(name=name, rank=0, behavior=behavior)

    def _behavior_for_notable(self, spec: NotableDomain) -> DomainBehavior:
        return DomainBehavior(
            https=True,
            trusted_cert=True,
            supports_dhe=spec.supports_dhe,
            supports_ecdhe=True,
            issue_session_ids=True,
            session_cache_lifetime=spec.session_cache_lifetime,
            tickets=True,
            ticket_hint_seconds=int(spec.ticket_window),
            ticket_window_seconds=spec.ticket_window,
            stek_rotation_seconds=spec.stek_rotation,
            dhe_reuse_seconds=spec.dhe_reuse,
            ecdhe_reuse_seconds=spec.ecdhe_reuse,
        )

    # -- main build --------------------------------------------------------

    def build(self) -> Ecosystem:
        config = self.config
        self._make_generic_ases()
        hooks: list = []

        provider_domains: list[Domain] = []
        for spec in PROVIDERS:
            provider_domains.extend(self._build_provider(spec, hooks))

        notable_domains = [
            self._build_served_domain(
                spec.name, self._behavior_for_notable(spec), notable=True,
                ecosystem_hooks=hooks,
            )
            for spec in NOTABLE_DOMAINS
        ]
        for domain, spec in zip(notable_domains, NOTABLE_DOMAINS):
            domain.rank = spec.rank

        remaining = config.population - len(provider_domains) - len(notable_domains)
        if remaining < 0:
            raise ValueError(
                f"population {config.population} too small for "
                f"{len(provider_domains)} provider + {len(notable_domains)} notable domains"
            )
        independents: list[Domain] = []
        for i in range(remaining):
            name = f"site{i:06d}.indie.example"
            behavior = sample_behavior(self.rng_behavior)
            if not behavior.https:
                independents.append(self._build_dark_domain(name, behavior))
                continue
            jitter = (
                behavior.tickets
                and self.rng_behavior.random() < config.lb_jitter_fraction
            )
            independents.append(
                self._build_served_domain(
                    name, behavior, notable=False, ecosystem_hooks=hooks,
                    lb_jitter=jitter,
                )
            )

        reserve_count = int(config.population * config.reserve_fraction)
        reserve: list[Domain] = []
        for i in range(reserve_count):
            name = f"res{i:06d}.churn.example"
            behavior = sample_behavior(self.rng_behavior)
            if not behavior.https:
                reserve.append(self._build_dark_domain(name, behavior))
            else:
                reserve.append(
                    self._build_served_domain(
                        name, behavior, notable=False, ecosystem_hooks=hooks
                    )
                )

        # Rank assignment: notables keep their pinned ranks; named
        # provider domains (google.com, yandex.ru…) get the lowest free
        # ranks; anonymous provider *customers* (blogs, shops, proxied
        # long-tail sites) are biased toward the unpopular end, like the
        # real hosted long tail; independents fill everything else.
        taken = {d.rank for d in notable_domains}
        all_unranked = provider_domains + independents
        free_ranks = [
            r for r in range(1, config.population + 1) if r not in taken
        ]
        named_provider = [d for d in all_unranked if not d.name.split(".")[0][-1].isdigit()]
        low_ranks = sorted(free_ranks)[: len(named_provider)]
        for domain, rank in zip(named_provider, low_ranks):
            domain.rank = rank
        low_set = set(low_ranks)
        rest = sorted(r for r in free_ranks if r not in low_set)
        customers = [d for d in provider_domains if d not in named_provider]
        other = [d for d in independents if d not in named_provider]
        # Customers draw from the bottom 70% of remaining ranks.
        cutoff = max(0, len(rest) - max(len(customers), int(len(rest) * 0.7)))
        bottom = rest[cutoff:]
        self.rng_ranks.shuffle(bottom)
        for domain, rank in zip(customers, bottom):
            domain.rank = rank
        used = {d.rank for d in customers}
        remaining = [r for r in rest if r not in used]
        self.rng_ranks.shuffle(remaining)
        for domain, rank in zip(other, remaining):
            domain.rank = rank

        # MX records (§7.2): a slice of the population uses Google mail.
        all_active = notable_domains + provider_domains + independents
        for domain in all_active:
            roll = self.rng_behavior.random()
            if domain.provider == "google" or roll < config.mx_google_fraction:
                self.dns.add_mx(domain.name, GOOGLE_MX_HOST)
            elif roll < config.mx_google_fraction + 0.5:
                self.dns.add_mx(domain.name, f"mail.{domain.name}")

        blacklist_count = int(round(config.blacklist_fraction * len(all_active)))
        blacklist = {
            d.name
            for d in self.rng_behavior.sample(
                [d for d in all_active if not d.notable and d.provider is None],
                min(blacklist_count,
                    sum(1 for d in all_active if not d.notable and d.provider is None)),
            )
        }
        ecosystem = Ecosystem(
            config=config,
            clock=self.clock,
            network=self.network,
            dns=self.dns,
            as_registry=self.as_registry,
            trust_store=self.trust_store,
            domains=all_active,
            rotation_rng=self.rng_rotation,
            churn_rng=self.rng_churn,
            reserve=reserve,
            blacklist=blacklist,
        )
        for store, interval, key_name_length in hooks:
            ecosystem.schedule_rotation(store, interval, key_name_length)
        return ecosystem


def build_ecosystem(config: Optional[EcosystemConfig] = None) -> Ecosystem:
    """Build a deterministic synthetic HTTPS ecosystem."""
    return _Builder(config or EcosystemConfig()).build()


__all__ = ["Ecosystem", "EcosystemConfig", "Domain", "build_ecosystem", "GOOGLE_MX_HOST"]
