"""Notable domains with the exact behaviors the paper reports.

Tables 2-4 name specific popular domains with prolonged STEK and
(EC)DHE reuse (yahoo.com's STEK lived 63 days; netflix.com reused a
DHE value for 59).  To reproduce those tables — names, ranks, and
spans — the synthetic population pins these domains at their paper
ranks with rotation/reuse intervals equal to the reported spans.

A span of 63 days means the same secret was seen on the first and last
day of the 9-week study, i.e. it was (as far as measurable) never
rotated; those entries get interval ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..netsim.clock import DAY, HOUR, MINUTE

STUDY_DAYS = 63


def _interval(days: Optional[int]) -> Optional[float]:
    """Rotation interval reproducing an observed span of ``days``."""
    if days is None:
        return None
    if days >= STUDY_DAYS:
        return None  # effectively never rotated within the study
    return float(days) * DAY


def _reuse_lifetime(days: Optional[int]) -> Optional[float]:
    """Ephemeral reuse lifetime: None = fresh, inf = reuse forever."""
    if not days:
        return None
    if days >= STUDY_DAYS:
        return float("inf")
    return float(days) * DAY


@dataclass(frozen=True)
class NotableDomain:
    """One pinned domain: rank, name, and its long-lived secrets."""

    rank: int
    name: str
    stek_days: Optional[int] = None    # Table 2 span; None = normal rotation
    dhe_days: Optional[int] = None     # Table 3 span; None = no DHE reuse
    ecdhe_days: Optional[int] = None   # Table 4 span; None = no ECDHE reuse
    session_cache_lifetime: float = 5 * MINUTE
    ticket_window: float = 1 * HOUR
    supports_dhe: bool = True

    @property
    def stek_rotation(self) -> Optional[float]:
        if self.stek_days is None:
            return DAY
        return _interval(self.stek_days)

    @property
    def dhe_reuse(self) -> Optional[float]:
        return _reuse_lifetime(self.dhe_days)

    @property
    def ecdhe_reuse(self) -> Optional[float]:
        return _reuse_lifetime(self.ecdhe_days)


#: Tables 2-4 rows plus the other named examples from §4.3/§4.4.
NOTABLE_DOMAINS: tuple[NotableDomain, ...] = (
    # Table 2: prolonged STEK reuse.
    NotableDomain(rank=5, name="yahoo.com", stek_days=63),
    NotableDomain(rank=19, name="qq.com", stek_days=56),
    NotableDomain(rank=20, name="taobao.com", stek_days=63),
    NotableDomain(rank=21, name="pinterest.com", stek_days=63),
    # yandex.ru's 63-day STEK is modeled by the yandex provider group.
    NotableDomain(rank=31, name="netflix.com", stek_days=54,
                  dhe_days=59, ecdhe_days=59),
    NotableDomain(rank=35, name="imgur.com", stek_days=63),
    # tmall.com rank 41 is modeled inside the tmall provider group.
    NotableDomain(rank=53, name="fc2.com", stek_days=18, dhe_days=18),
    NotableDomain(rank=55, name="pornhub.com", stek_days=29),
    # §4.3 extras.
    NotableDomain(rank=96, name="mail.ru", stek_days=63),
    NotableDomain(rank=389, name="slack.com", stek_days=18),
    # Table 3: prolonged DHE reuse.
    NotableDomain(rank=392, name="ebay.in", dhe_days=7),
    NotableDomain(rank=456, name="ebay.it", dhe_days=8),
    NotableDomain(rank=528, name="bleacherreport.com", dhe_days=24,
                  ecdhe_days=24),
    NotableDomain(rank=580, name="kayak.com", dhe_days=13),
    NotableDomain(rank=592, name="cbssports.com", dhe_days=60),
    NotableDomain(rank=626, name="gamefaqs.com", dhe_days=12),
    NotableDomain(rank=633, name="overstock.com", dhe_days=17),
    NotableDomain(rank=730, name="cookpad.com", dhe_days=63),
    NotableDomain(rank=2841, name="commsec.com.au", dhe_days=36),
    # Table 4: prolonged ECDHE reuse.
    NotableDomain(rank=74, name="whatsapp.com", ecdhe_days=62,
                  supports_dhe=False),
    NotableDomain(rank=158, name="vice.com", ecdhe_days=26),
    NotableDomain(rank=221, name="9gag.com", ecdhe_days=31),
    NotableDomain(rank=322, name="liputan6.com", ecdhe_days=28),
    NotableDomain(rank=353, name="paytm.com", ecdhe_days=27),
    NotableDomain(rank=464, name="playstation.com", ecdhe_days=11),
    NotableDomain(rank=527, name="woot.com", ecdhe_days=62),
    NotableDomain(rank=615, name="leagueoflegends.com", ecdhe_days=27),
    # §4.4 extras.
    NotableDomain(rank=1204, name="betterment.com", ecdhe_days=62),
    NotableDomain(rank=901, name="mint.com", ecdhe_days=62),
    NotableDomain(rank=744, name="symantec.com", ecdhe_days=41),
    NotableDomain(rank=4120, name="symanteccloud.com", ecdhe_days=16),
    NotableDomain(rank=1388, name="norton.com", ecdhe_days=19),
    # Facebook's CDN honored session IDs for more than 24 hours (§4.1).
    NotableDomain(rank=3, name="facebook.com",
                  session_cache_lifetime=30 * HOUR, supports_dhe=False),
    NotableDomain(rank=112, name="fbcdn-like.example",
                  session_cache_lifetime=30 * HOUR, supports_dhe=False),
    # Baidu and Twitter rotated STEKs at least daily (§4.3).
    NotableDomain(rank=4, name="baidu.com"),
    NotableDomain(rank=9, name="twitter.com"),
    # The two domains with a 90-day lifetime hint (§4.2) are sampled via
    # profiles.P_EXTREME_HINT rather than pinned here.
)

NOTABLE_BY_NAME = {domain.name: domain for domain in NOTABLE_DOMAINS}
NOTABLE_RANKS = {domain.rank for domain in NOTABLE_DOMAINS}


__all__ = ["NotableDomain", "NOTABLE_DOMAINS", "NOTABLE_BY_NAME", "NOTABLE_RANKS",
           "STUDY_DAYS"]
