"""Per-domain behavior profiles, calibrated to the paper's measurements.

Every domain in the synthetic ecosystem gets a :class:`DomainBehavior`
— its *ground truth* — sampled from the weighted distributions below.
The distributions are calibrated so the population-level statistics the
scanner recovers land near the paper's reported numbers:

* 97% of trusted-HTTPS domains issue session IDs, 83% resume them
  (Table 1 / §4.1); 61% honor for <5 min, 82% for ≤1 h, a visible jump
  at 10 h (IIS default), 0.8% for ≥24 h (Fig. 1).
* 79% issue session tickets, 76% resume; 67% honor <5 min, 76% ≤1 h,
  clusters at 18 h (CloudFlare) and 28 h (Google) (Fig. 2).
* Of ticket issuers: 64% use a fresh issuing STEK each day, 36% reuse
  ≥1 day, 22% >7 days, 10% >30 days (§4.3/§6.1, Fig. 3).
* 58% of trusted domains complete DHE, 90% ECDHE; 7.2% of DHE and
  15.5% of ECDHE domains repeat a key-exchange value within a
  10-connection scan; daily-scan spans per §4.4 (Fig. 5).

Provider-hosted domains (see :mod:`repro.hosting.providers`) override
these with their operator's shared configuration, which is what
produces the 18 h/28 h clusters and the large shared-state groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..crypto.rng import DeterministicRandom
from ..netsim.clock import DAY, HOUR, MINUTE
from ..tls.ticket import TicketFormat

#: Sentinel rotation interval meaning "longer than any study" — the key
#: is never rotated (Fastly/Yandex-style configurations).
NEVER = None


@dataclass(frozen=True)
class DomainBehavior:
    """Ground-truth TLS configuration of one domain's serving stack."""

    https: bool = True
    trusted_cert: bool = True
    # Cipher support.  ECDHE-preferring stacks pick ECDHE from a modern
    # offer; DHE support shows up only under the DHE-only scan.
    supports_dhe: bool = True
    supports_ecdhe: bool = True
    # Session-ID resumption.
    issue_session_ids: bool = True
    session_cache_lifetime: Optional[float] = 5 * MINUTE  # None = no cache
    # Session tickets.
    tickets: bool = True
    ticket_hint_seconds: int = 300
    ticket_window_seconds: float = 5 * MINUTE
    ticket_format: TicketFormat = TicketFormat.RFC5077
    stek_rotation_seconds: Optional[float] = DAY  # None = never rotate
    stek_retain_previous: int = 1
    # Ephemeral-value reuse: None = fresh value per handshake.
    dhe_reuse_seconds: Optional[float] = None
    ecdhe_reuse_seconds: Optional[float] = None

    @property
    def resumes_session_ids(self) -> bool:
        return self.issue_session_ids and self.session_cache_lifetime is not None


Weighted = Sequence[tuple[object, float]]


def weighted_choice(rng: DeterministicRandom, table: Weighted):
    """Draw from a (value, weight) table; weights need not sum to 1."""
    total = sum(weight for _, weight in table)
    roll = rng.uniform(0.0, total)
    acc = 0.0
    for value, weight in table:
        acc += weight
        if roll < acc:
            return value
    return table[-1][0]


# --- population-level support rates (Table 1, §3) ----------------------

P_HTTPS = 0.70             # fraction of list domains that speak HTTPS at all
P_TRUSTED = 0.86           # of HTTPS domains, fraction with a trusted cert
P_SUPPORTS_DHE = 0.58      # §4.4: 57% completed a DHE-only handshake
P_SUPPORTS_ECDHE = 0.90    # §4.4: 80%+ completed ECDHE; ~90% FS overall

# --- session-ID resumption (§4.1, Fig. 1) -------------------------------

P_ISSUE_SESSION_IDS = 0.97   # set a session ID in ServerHello
P_CACHE_GIVEN_ISSUE = 0.86   # actually resume (0.97 * 0.86 ≈ 0.83)

#: Honored session-cache lifetimes, given the server caches at all.
#: Mass at 300 s (Apache/Nginx default), a step at 10 h (IIS), and a
#: sliver at ≥24 h (Google/Facebook-style infrastructure).
SESSION_CACHE_LIFETIMES: Weighted = (
    (1 * MINUTE, 0.070),
    (2 * MINUTE, 0.060),
    (5 * MINUTE, 0.485),
    (10 * MINUTE, 0.070),
    (30 * MINUTE, 0.060),
    (1 * HOUR, 0.080),
    (2 * HOUR, 0.020),
    (4 * HOUR, 0.015),
    (10 * HOUR, 0.100),
    (12 * HOUR, 0.015),
    (18 * HOUR, 0.010),
    (24 * HOUR, 0.005),
    (36 * HOUR, 0.003),
)

# --- session tickets (§4.2, Fig. 2) --------------------------------------

P_ISSUE_TICKETS = 0.78       # issue a NewSessionTicket
P_HONOR_GIVEN_ISSUE = 0.96   # actually resume offered tickets

#: Honored ticket windows for *independent* domains.  Provider overlays
#: add the 18 h CloudFlare cluster and the 28 h Google cluster on top.
TICKET_WINDOWS: Weighted = (
    (1 * MINUTE, 0.040),
    (3 * MINUTE, 0.330),     # Apache/Nginx default ticket lifetime
    (5 * MINUTE, 0.360),
    (10 * MINUTE, 0.060),
    (30 * MINUTE, 0.040),
    (1 * HOUR, 0.070),
    (2 * HOUR, 0.020),
    (4 * HOUR, 0.020),
    (10 * HOUR, 0.020),
    (24 * HOUR, 0.028),
    (48 * HOUR, 0.002),
)

#: Fraction of ticket issuers that leave the lifetime hint unspecified
#: (hint = 0); the paper saw 14,663 such domains (§4.2).
P_UNSPECIFIED_HINT = 0.042
#: A couple of domains hint 90 days (fantabobworld/fantabobshow).
P_EXTREME_HINT = 0.00002
EXTREME_HINT_SECONDS = int(90 * DAY)

#: STEK rotation intervals for ticket issuers (§4.3/§6.1, Fig. 3).
#: Sub-daily rotators show a different issuing STEK every scan day.
STEK_ROTATIONS: Weighted = (
    (4 * HOUR, 0.10),
    (8 * HOUR, 0.15),
    (12 * HOUR, 0.16),
    (1 * DAY, 0.22),
    (2 * DAY, 0.050),
    (3 * DAY, 0.040),
    (5 * DAY, 0.035),
    (8 * DAY, 0.035),
    (12 * DAY, 0.035),
    (18 * DAY, 0.030),
    (25 * DAY, 0.025),
    (35 * DAY, 0.025),
    (50 * DAY, 0.020),
    (NEVER, 0.055),
)

#: Non-RFC5077 ticket framings: mbedTLS's 4-byte key name and
#: SChannel's DPAPI blob (§4.3).
TICKET_FORMATS: Weighted = (
    (TicketFormat.RFC5077, 0.90),
    (TicketFormat.MBEDTLS, 0.04),
    (TicketFormat.SCHANNEL, 0.06),
)

# --- ephemeral value reuse (§4.4, Fig. 5) --------------------------------

P_DHE_REUSE = 0.072     # of DHE-supporting domains, reuse at all
P_ECDHE_REUSE = 0.155   # of ECDHE-supporting domains, reuse at all

#: Reuse lifetimes, given the server reuses at all.  Most reusers are
#: sub-daily (OpenSSL process-lifetime caching + frequent restarts);
#: the tail reaches the full study span.
DHE_REUSE_LIFETIMES: Weighted = (
    (1 * HOUR, 0.17),
    (3 * HOUR, 0.17),
    (8 * HOUR, 0.17),
    (18 * HOUR, 0.10),
    (1 * DAY, 0.04),
    (3 * DAY, 0.02),
    (8 * DAY, 0.03),
    (12 * DAY, 0.05),
    (20 * DAY, 0.09),
    (35 * DAY, 0.07),
    (NEVER, 0.09),
)

ECDHE_REUSE_LIFETIMES: Weighted = (
    (30 * MINUTE, 0.18),
    (2 * HOUR, 0.22),
    (6 * HOUR, 0.20),
    (12 * HOUR, 0.14),
    (1 * DAY, 0.02),
    (2 * DAY, 0.015),
    (4 * DAY, 0.02),
    (10 * DAY, 0.04),
    (20 * DAY, 0.065),
    (40 * DAY, 0.05),
    (NEVER, 0.05),
)


def _hint_for_window(rng: DeterministicRandom, window: float) -> int:
    """Advertised lifetime hint for a given honored window."""
    if rng.random() < P_EXTREME_HINT:
        return EXTREME_HINT_SECONDS
    if rng.random() < P_UNSPECIFIED_HINT:
        return 0
    return int(window)


def sample_behavior(rng: DeterministicRandom) -> DomainBehavior:
    """Sample one independent (non-provider-hosted) domain's behavior."""
    https = rng.random() < P_HTTPS
    if not https:
        return DomainBehavior(https=False, trusted_cert=False)
    trusted = rng.random() < P_TRUSTED

    supports_ecdhe = rng.random() < P_SUPPORTS_ECDHE
    supports_dhe = rng.random() < P_SUPPORTS_DHE

    issue_ids = rng.random() < P_ISSUE_SESSION_IDS
    if issue_ids and rng.random() < P_CACHE_GIVEN_ISSUE:
        cache_lifetime: Optional[float] = weighted_choice(rng, SESSION_CACHE_LIFETIMES)
    else:
        cache_lifetime = None

    tickets = rng.random() < P_ISSUE_TICKETS
    if tickets:
        if rng.random() < P_HONOR_GIVEN_ISSUE:
            window = float(weighted_choice(rng, TICKET_WINDOWS))
        else:
            window = 0.0  # issues tickets, never honors them
        hint = _hint_for_window(rng, window)
        rotation = weighted_choice(rng, STEK_ROTATIONS)
        ticket_format = weighted_choice(rng, TICKET_FORMATS)
    else:
        window, hint, rotation = 0.0, 0, DAY
        ticket_format = TicketFormat.RFC5077

    # Reuse lifetimes: None = fresh per handshake, inf = reuse forever
    # (the NEVER table entries mean the value is never regenerated).
    dhe_reuse = None
    if supports_dhe and rng.random() < P_DHE_REUSE:
        dhe_reuse = weighted_choice(rng, DHE_REUSE_LIFETIMES)
        if dhe_reuse is NEVER:
            dhe_reuse = float("inf")
    ecdhe_reuse = None
    if supports_ecdhe and rng.random() < P_ECDHE_REUSE:
        ecdhe_reuse = weighted_choice(rng, ECDHE_REUSE_LIFETIMES)
        if ecdhe_reuse is NEVER:
            ecdhe_reuse = float("inf")

    return DomainBehavior(
        https=True,
        trusted_cert=trusted,
        supports_dhe=supports_dhe,
        supports_ecdhe=supports_ecdhe,
        issue_session_ids=issue_ids,
        session_cache_lifetime=cache_lifetime,
        tickets=tickets,
        ticket_hint_seconds=hint,
        ticket_window_seconds=window,
        ticket_format=ticket_format,
        stek_rotation_seconds=rotation,
        dhe_reuse_seconds=dhe_reuse,
        ecdhe_reuse_seconds=ecdhe_reuse,
    )


__all__ = [
    "DomainBehavior",
    "sample_behavior",
    "weighted_choice",
    "NEVER",
    "SESSION_CACHE_LIFETIMES",
    "TICKET_WINDOWS",
    "STEK_ROTATIONS",
    "TICKET_FORMATS",
    "DHE_REUSE_LIFETIMES",
    "ECDHE_REUSE_LIFETIMES",
    "P_HTTPS",
    "P_TRUSTED",
    "P_SUPPORTS_DHE",
    "P_SUPPORTS_ECDHE",
    "P_ISSUE_SESSION_IDS",
    "P_CACHE_GIVEN_ISSUE",
    "P_ISSUE_TICKETS",
    "P_HONOR_GIVEN_ISSUE",
    "P_DHE_REUSE",
    "P_ECDHE_REUSE",
]
