"""Hosting providers and their shared-state topology (paper §5).

A provider is a set of *clusters*; each cluster is one SSL-terminator
process serving many customer domains.  Clusters reference shared
objects by small integer ids:

* ``cache_group`` — which shared session cache the cluster mounts
  (Table 5: CloudFlare ran two big caches, Blogspot five);
* ``stek_group`` — which shared STEK store it issues tickets from
  (Table 6: one CloudFlare STEK across 62k domains);
* ``dh_group`` — which shared ephemeral-key cache it draws (EC)DHE
  values from, or ``None`` for per-process values (Table 7:
  SquareSpace's single value across 1,627 domains).

Counts are given at the paper's 1M-domain scale and scaled down
proportionally (with a floor) when building smaller populations, which
preserves the *ordering* of the service-group tables.

Behavioral parameters come from the paper's observations: CloudFlare
honored tickets for 18 h and rotated its STEK sub-daily; Google rotated
every 14 h but accepted for 28 h and kept session IDs alive past 24 h;
TMall and Fastly never rotated during the nine weeks; Jack Henry &
Associates' 79 bank domains used one STEK for 59 days, then rotated to
another shared key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..netsim.clock import DAY, HOUR, MINUTE
from ..tls.ticket import TicketFormat


@dataclass(frozen=True)
class ClusterSpec:
    """One terminator cluster within a provider."""

    weight: float = 1.0
    cache_group: int = 0
    stek_group: int = 0
    dh_group: Optional[int] = None
    cache_lifetime: Optional[float] = 5 * MINUTE
    named_domains: tuple[str, ...] = ()


@dataclass(frozen=True)
class ProviderSpec:
    """A hosting provider / CDN / SSL-terminator operator."""

    name: str
    asn: int
    as_blocks: tuple[str, ...]
    customers_at_1m: int          # customer domains at 1M-population scale
    min_customers: int            # floor when the population is scaled down
    clusters: tuple[ClusterSpec, ...]
    ticket_window: float = 5 * MINUTE
    ticket_hint: int = 300
    tickets: bool = True
    stek_rotation: Optional[float] = DAY
    stek_retain: int = 1
    ticket_format: TicketFormat = TicketFormat.RFC5077
    issue_session_ids: bool = True
    supports_dhe: bool = False
    supports_ecdhe: bool = True
    kex_reuse_seconds: Optional[float] = None
    customer_pattern: str = "site{index:05d}.{provider}-hosted.example"

    def scaled_customers(self, population: int, full_scale: int = 1_000_000) -> int:
        """Customer count for a scaled-down population."""
        scaled = round(self.customers_at_1m * population / full_scale)
        return max(self.min_customers, scaled)


GOOGLE_SERVICE_DOMAINS = (
    "google.com", "www.google.com", "mail.google.com", "accounts.google.com",
    "drive.google.com", "docs.google.com", "youtube.com", "gmail.com",
    "maps.google.com", "play.google.com", "hangouts.google.com",
    "googleapis.com", "gstatic.com", "google-analytics.com",
    "googlesyndication.com", "doubleclick.net",
)

YANDEX_DOMAINS = (
    "yandex.ru", "yandex.com", "yandex.ua", "yandex.by", "yandex.kz",
    "yandex.com.tr", "yandex.net", "yandex.st",
)

#: Jack Henry & Associates: 79 bank/credit-union domains, one STEK for
#: 59 days, then a rotation to a second shared key (§6.1).
JACK_HENRY_ROTATION = 59 * DAY

PROVIDERS: tuple[ProviderSpec, ...] = (
    ProviderSpec(
        name="cloudflare",
        asn=13335,
        as_blocks=("104.16.0.0/14", "172.64.0.0/16"),
        customers_at_1m=62_176,
        min_customers=60,
        clusters=(
            ClusterSpec(weight=0.66, cache_group=0, stek_group=0,
                        cache_lifetime=5 * MINUTE),
            ClusterSpec(weight=0.34, cache_group=1, stek_group=0,
                        cache_lifetime=5 * MINUTE),
        ),
        ticket_window=18 * HOUR,
        ticket_hint=int(18 * HOUR),
        stek_rotation=12 * HOUR,
        customer_pattern="site{index:05d}.cf-proxied.example",
    ),
    ProviderSpec(
        name="google",
        asn=15169,
        as_blocks=("172.217.0.0/16", "216.58.0.0/17"),
        customers_at_1m=8_973,
        min_customers=30,
        clusters=(
            # Cluster 0: Google's own services — one long-lived session
            # cache (the paper's ≥24 h session-ID resumption cluster).
            ClusterSpec(weight=0.12, cache_group=0, stek_group=0,
                        cache_lifetime=30 * HOUR,
                        named_domains=GOOGLE_SERVICE_DOMAINS),
            # Clusters 1-5: Blogspot-style hosted customers with five
            # separate caches of decreasing lifetime (Table 5 / §6.2).
            ClusterSpec(weight=0.22, cache_group=1, stek_group=0,
                        cache_lifetime=24 * HOUR),
            ClusterSpec(weight=0.19, cache_group=2, stek_group=0,
                        cache_lifetime=18 * HOUR),
            ClusterSpec(weight=0.18, cache_group=3, stek_group=0,
                        cache_lifetime=12 * HOUR),
            ClusterSpec(weight=0.16, cache_group=4, stek_group=0,
                        cache_lifetime=8 * HOUR),
            ClusterSpec(weight=0.13, cache_group=5, stek_group=0,
                        cache_lifetime=4.5 * HOUR),
        ),
        ticket_window=28 * HOUR,
        ticket_hint=int(28 * HOUR),
        stek_rotation=14 * HOUR,
        stek_retain=1,
        customer_pattern="blog{index:05d}.blogspot-like.example",
    ),
    ProviderSpec(
        name="automattic",
        asn=2635,
        as_blocks=("192.0.64.0/18",),
        customers_at_1m=4_182,
        min_customers=16,
        clusters=(
            ClusterSpec(weight=0.57, cache_group=0, stek_group=0,
                        cache_lifetime=1 * HOUR),
            ClusterSpec(weight=0.43, cache_group=1, stek_group=0,
                        cache_lifetime=1 * HOUR),
        ),
        ticket_window=1 * HOUR,
        ticket_hint=3600,
        stek_rotation=DAY,
        customer_pattern="site{index:05d}.wordpress-like.example",
    ),
    ProviderSpec(
        name="tmall",
        asn=24429,
        as_blocks=("140.205.0.0/16",),
        customers_at_1m=3_305,
        min_customers=12,
        clusters=(ClusterSpec(weight=1.0, cache_lifetime=5 * MINUTE),),
        ticket_window=30 * MINUTE,
        ticket_hint=1800,
        stek_rotation=None,  # never rotated during the study (Fig. 6)
        customer_pattern="shop{index:05d}.tmall-like.example",
    ),
    ProviderSpec(
        name="shopify",
        asn=62679,
        as_blocks=("23.227.32.0/20",),
        customers_at_1m=3_247,
        min_customers=12,
        clusters=(
            ClusterSpec(weight=0.20, cache_group=0, stek_group=0,
                        cache_lifetime=10 * MINUTE),
            ClusterSpec(weight=0.20, cache_group=1, stek_group=0,
                        cache_lifetime=10 * MINUTE),
            ClusterSpec(weight=0.20, cache_group=2, stek_group=0,
                        cache_lifetime=10 * MINUTE),
            ClusterSpec(weight=0.20, cache_group=3, stek_group=0,
                        cache_lifetime=10 * MINUTE),
            ClusterSpec(weight=0.20, cache_group=4, stek_group=0,
                        cache_lifetime=10 * MINUTE),
        ),
        ticket_window=10 * MINUTE,
        ticket_hint=600,
        stek_rotation=DAY,
        customer_pattern="store{index:05d}.shopify-like.example",
    ),
    ProviderSpec(
        name="godaddy",
        asn=26496,
        as_blocks=("160.153.0.0/16",),
        customers_at_1m=1_875,
        min_customers=8,
        clusters=(ClusterSpec(weight=1.0, cache_lifetime=5 * MINUTE),),
        ticket_window=5 * MINUTE,
        ticket_hint=300,
        stek_rotation=DAY,
        supports_dhe=True,
        customer_pattern="site{index:05d}.godaddy-hosted.example",
    ),
    ProviderSpec(
        name="amazon",
        asn=16509,
        as_blocks=("54.230.0.0/16",),
        customers_at_1m=1_495,
        min_customers=7,
        clusters=(ClusterSpec(weight=1.0, cache_lifetime=5 * MINUTE),),
        ticket_window=1 * HOUR,
        ticket_hint=3600,
        stek_rotation=12 * HOUR,
        customer_pattern="app{index:05d}.elb-fronted.example",
    ),
    ProviderSpec(
        name="tumblr",
        asn=2637,
        as_blocks=("66.6.32.0/20",),
        customers_at_1m=2_890,
        min_customers=12,
        clusters=(
            ClusterSpec(weight=0.34, cache_group=0, stek_group=0,
                        cache_lifetime=30 * MINUTE),
            ClusterSpec(weight=0.33, cache_group=1, stek_group=1,
                        cache_lifetime=30 * MINUTE),
            ClusterSpec(weight=0.33, cache_group=2, stek_group=2,
                        cache_lifetime=30 * MINUTE),
        ),
        ticket_window=30 * MINUTE,
        ticket_hint=1800,
        stek_rotation=DAY,
        customer_pattern="blog{index:05d}.tumblr-like.example",
    ),
    ProviderSpec(
        name="fastly",
        asn=54113,
        as_blocks=("151.101.0.0/16",),
        customers_at_1m=610,
        min_customers=6,
        clusters=(ClusterSpec(
            weight=1.0, cache_lifetime=5 * MINUTE,
            named_domains=("foursquare-like.example", "gov-uk-like.example",
                           "aclu-like.example"),
        ),),
        ticket_window=1 * HOUR,
        ticket_hint=3600,
        stek_rotation=None,  # same STEK for the whole study (§6.1)
        customer_pattern="cdn{index:05d}.fastly-fronted.example",
    ),
    ProviderSpec(
        name="jackhenry",
        asn=22357,
        as_blocks=("208.77.96.0/20",),
        customers_at_1m=79,
        min_customers=6,
        clusters=(ClusterSpec(weight=1.0, cache_lifetime=5 * MINUTE),),
        ticket_window=10 * MINUTE,
        ticket_hint=600,
        stek_rotation=JACK_HENRY_ROTATION,
        stek_retain=0,
        customer_pattern="bank{index:04d}.jack-henry.example",
    ),
    ProviderSpec(
        name="squarespace",
        asn=53831,
        as_blocks=("198.185.159.0/24", "198.49.23.0/24"),
        customers_at_1m=1_627,
        min_customers=8,
        clusters=(ClusterSpec(weight=1.0, dh_group=0,
                              cache_lifetime=5 * MINUTE),),
        ticket_window=5 * MINUTE,
        ticket_hint=300,
        stek_rotation=DAY,
        kex_reuse_seconds=2 * DAY,
        customer_pattern="site{index:05d}.squarespace-like.example",
    ),
    ProviderSpec(
        name="livejournal",
        asn=26853,
        as_blocks=("208.93.0.0/20",),
        customers_at_1m=1_330,
        min_customers=7,
        clusters=(ClusterSpec(weight=1.0, dh_group=0,
                              cache_lifetime=5 * MINUTE),),
        ticket_window=5 * MINUTE,
        ticket_hint=300,
        stek_rotation=DAY,
        kex_reuse_seconds=1 * DAY,
        customer_pattern="journal{index:05d}.livejournal-like.example",
    ),
    ProviderSpec(
        name="jimdo",
        asn=16276,  # hosted on EC2-like space per the paper
        as_blocks=("52.28.0.0/16",),
        customers_at_1m=357,
        min_customers=8,
        clusters=(
            ClusterSpec(weight=0.5, cache_group=0, stek_group=0, dh_group=0,
                        cache_lifetime=5 * MINUTE),
            ClusterSpec(weight=0.5, cache_group=1, stek_group=1, dh_group=1,
                        cache_lifetime=5 * MINUTE),
        ),
        ticket_window=5 * MINUTE,
        ticket_hint=300,
        stek_rotation=DAY,
        kex_reuse_seconds=18 * DAY,  # 19- and 17-day shared values (§6.3)
        customer_pattern="page{index:04d}.jimdo-like.example",
    ),
    ProviderSpec(
        name="affinity",
        asn=36483,
        as_blocks=("205.178.136.0/21",),
        customers_at_1m=146,
        min_customers=6,
        clusters=(ClusterSpec(weight=1.0, dh_group=0,
                              cache_lifetime=5 * MINUTE),),
        ticket_window=5 * MINUTE,
        ticket_hint=300,
        stek_rotation=DAY,
        kex_reuse_seconds=None,  # never regenerates: 62-day shared value
        supports_dhe=True,
        customer_pattern="site{index:04d}.affinity-hosted.example",
    ),
    ProviderSpec(
        name="distil",
        asn=394271,
        as_blocks=("107.154.96.0/20",),
        customers_at_1m=174,
        min_customers=6,
        clusters=(ClusterSpec(weight=1.0, dh_group=0,
                              cache_lifetime=5 * MINUTE),),
        ticket_window=5 * MINUTE,
        ticket_hint=300,
        stek_rotation=DAY,
        kex_reuse_seconds=12 * HOUR,
        customer_pattern="guard{index:04d}.distil-fronted.example",
    ),
    ProviderSpec(
        name="atypon",
        asn=25739,
        as_blocks=("104.232.16.0/21",),
        customers_at_1m=167,
        min_customers=6,
        clusters=(ClusterSpec(weight=1.0, dh_group=0,
                              cache_lifetime=5 * MINUTE),),
        ticket_window=5 * MINUTE,
        ticket_hint=300,
        stek_rotation=DAY,
        kex_reuse_seconds=1 * DAY,
        customer_pattern="journal{index:04d}.atypon-hosted.example",
    ),
    ProviderSpec(
        name="linecorp",
        asn=38631,
        as_blocks=("147.92.128.0/17",),
        customers_at_1m=114,
        min_customers=5,
        clusters=(ClusterSpec(weight=1.0, dh_group=0,
                              cache_lifetime=5 * MINUTE),),
        ticket_window=5 * MINUTE,
        ticket_hint=300,
        stek_rotation=DAY,
        kex_reuse_seconds=6 * HOUR,
        customer_pattern="svc{index:04d}.line-corp.example",
    ),
    ProviderSpec(
        name="digitalinsight",
        asn=20060,
        as_blocks=("206.112.96.0/20",),
        customers_at_1m=98,
        min_customers=5,
        clusters=(ClusterSpec(weight=1.0, dh_group=0,
                              cache_lifetime=5 * MINUTE),),
        ticket_window=5 * MINUTE,
        ticket_hint=300,
        stek_rotation=DAY,
        kex_reuse_seconds=1 * DAY,
        supports_dhe=True,
        customer_pattern="bank{index:04d}.digital-insight.example",
    ),
    ProviderSpec(
        name="edgecast",
        asn=15133,
        as_blocks=("192.229.128.0/17",),
        customers_at_1m=75,
        min_customers=5,
        clusters=(ClusterSpec(weight=1.0, dh_group=0,
                              cache_lifetime=5 * MINUTE),),
        ticket_window=5 * MINUTE,
        ticket_hint=300,
        stek_rotation=DAY,
        kex_reuse_seconds=2 * DAY,
        customer_pattern="cdn{index:04d}.edgecast-fronted.example",
    ),
    ProviderSpec(
        name="hostway",
        asn=20401,
        as_blocks=("64.79.64.0/19",),
        customers_at_1m=137,
        min_customers=6,
        clusters=(
            # One DHE value shared across four terminators / many IPs
            # (the paper saw it on 119 addresses in AS 20401).
            ClusterSpec(weight=0.25, cache_group=0, stek_group=0, dh_group=0,
                        cache_lifetime=5 * MINUTE),
            ClusterSpec(weight=0.25, cache_group=1, stek_group=0, dh_group=0,
                        cache_lifetime=5 * MINUTE),
            ClusterSpec(weight=0.25, cache_group=2, stek_group=0, dh_group=0,
                        cache_lifetime=5 * MINUTE),
            ClusterSpec(weight=0.25, cache_group=3, stek_group=0, dh_group=0,
                        cache_lifetime=5 * MINUTE),
        ),
        ticket_window=5 * MINUTE,
        ticket_hint=300,
        stek_rotation=DAY,
        kex_reuse_seconds=10 * DAY,
        supports_dhe=True,
        supports_ecdhe=False,  # the shared value the paper saw was DHE
        customer_pattern="host{index:04d}.hostway-hosted.example",
    ),
    ProviderSpec(
        name="yandex",
        asn=13238,
        as_blocks=("5.255.192.0/18",),
        customers_at_1m=8,
        min_customers=8,
        clusters=(ClusterSpec(weight=1.0, cache_lifetime=1 * HOUR,
                              named_domains=YANDEX_DOMAINS),),
        ticket_window=2 * HOUR,
        ticket_hint=7200,
        stek_rotation=None,  # in continuous use for 8+ months (§7.2)
        customer_pattern="svc{index:02d}.yandex-like.example",
    ),
)

PROVIDERS_BY_NAME = {spec.name: spec for spec in PROVIDERS}


__all__ = [
    "ClusterSpec",
    "ProviderSpec",
    "PROVIDERS",
    "PROVIDERS_BY_NAME",
    "GOOGLE_SERVICE_DOMAINS",
    "YANDEX_DOMAINS",
    "JACK_HENRY_ROTATION",
]
