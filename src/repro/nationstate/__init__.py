"""Nation-state adversary: passive collection + retrospective decryption."""

from .adversary import (
    DecryptionOutcome,
    NationStateAttacker,
    PassiveCollector,
    RecordedConnection,
    reconstruct_connection,
)
from .google import TargetAnalysisReport, analyze_target, render_report

__all__ = [
    "DecryptionOutcome",
    "NationStateAttacker",
    "PassiveCollector",
    "RecordedConnection",
    "reconstruct_connection",
    "TargetAnalysisReport",
    "analyze_target",
    "render_report",
]
