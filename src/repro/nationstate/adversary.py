"""The nation-state adversary model (paper §7).

A :class:`PassiveCollector` plays XKEYSCORE/TEMPORA: it stores raw TLS
wire bytes from observed connections — it never sees plaintext or any
endpoint secrets.  A :class:`NationStateAttacker` later obtains
server-side secrets (a STEK, a session cache snapshot, or a cached
Diffie-Hellman value — by intrusion, implant, or legal compulsion) and
attempts *retrospective decryption* of the recorded ciphertext.

Everything here works from the recorded bytes alone:

* the session ticket is lifted from the cleartext NewSessionTicket (or
  the ClientHello's session-ticket extension on resumed connections);
* client/server randoms come from the recorded hellos;
* with a stolen STEK the ticket opens to the session master secret,
  the connection keys re-derive, and application records decrypt;
* with a stolen DH exponent the premaster is recomputed from the
  recorded ClientKeyExchange, which yields the same keys.

This is the paper's central harm argument made executable: if any of
these secrets outlives the connection, "forward secret" ciphertext is
retroactively readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..crypto import dh, ec
from ..crypto.prf import derive_master_secret
from ..tls.ciphers import CipherSuite
from ..tls.client import CapturedFlight
from ..tls.constants import ContentType, ExtensionType, KeyExchangeKind, ProtocolVersion
from ..tls.extensions import find_extension
from ..tls.messages import (
    ClientHello,
    ClientKeyExchange,
    NewSessionTicket,
    ServerHello,
    ServerKeyExchangeDHE,
    ServerKeyExchangeECDHE,
    parse_handshake,
)
from ..tls.record import TLSRecord, decrypt_recorded_record, parse_records
from ..tls.session import SessionCache, SessionState, derive_connection_keys
from ..tls.ticket import STEK, TicketFormat, open_ticket, sniff_ticket_format
from ..tls.wire import DecodeError


@dataclass
class RecordedConnection:
    """One connection's wire capture, parsed for later exploitation."""

    domain: str
    timestamp: float
    client_random: bytes = b""
    server_random: bytes = b""
    cipher_suite: Optional[CipherSuite] = None
    offered_ticket: bytes = b""          # from the ClientHello extension
    issued_ticket: bytes = b""           # from NewSessionTicket
    offered_session_id: bytes = b""
    server_session_id: bytes = b""
    client_kex_public: bytes = b""       # from ClientKeyExchange
    server_kex_dhe: Optional[ServerKeyExchangeDHE] = None
    server_kex_ecdhe: Optional[ServerKeyExchangeECDHE] = None
    app_records: list[tuple[bool, int, TLSRecord]] = field(default_factory=list)
    # (from_client, per-direction sequence number, record)

    @property
    def best_ticket(self) -> bytes:
        """The ticket an attacker would target for this connection."""
        return self.offered_ticket or self.issued_ticket


def reconstruct_connection(
    domain: str, timestamp: float, flights: list[CapturedFlight]
) -> RecordedConnection:
    """Parse raw captured flights into a :class:`RecordedConnection`.

    This is strictly passive: only bytes on the wire are consulted.
    """
    recorded = RecordedConnection(domain=domain, timestamp=timestamp)
    sequences = {True: 0, False: 0}
    kex_hint: Optional[str] = None
    for flight in flights:
        for record in parse_records(flight.data):
            if record.content_type is ContentType.APPLICATION_DATA:
                recorded.app_records.append(
                    (flight.from_client, sequences[flight.from_client], record)
                )
                sequences[flight.from_client] += 1
                continue
            if record.content_type is not ContentType.HANDSHAKE:
                continue
            payload = record.payload
            while payload:
                try:
                    message, payload = parse_handshake(payload, kex_hint=kex_hint)
                except DecodeError:
                    break
                if isinstance(message, ClientHello):
                    recorded.client_random = message.random
                    recorded.offered_session_id = message.session_id
                    ticket = find_extension(
                        message.extensions, ExtensionType.SESSION_TICKET
                    )
                    if ticket:
                        recorded.offered_ticket = ticket
                elif isinstance(message, ServerHello):
                    recorded.server_random = message.random
                    recorded.server_session_id = message.session_id
                    recorded.cipher_suite = message.cipher_suite
                    kex_hint = {
                        KeyExchangeKind.DHE: "dhe",
                        KeyExchangeKind.ECDHE: "ecdhe",
                    }.get(message.cipher_suite.kex)
                elif isinstance(message, NewSessionTicket):
                    recorded.issued_ticket = message.ticket
                elif isinstance(message, ClientKeyExchange):
                    recorded.client_kex_public = message.exchange_data
                elif isinstance(message, ServerKeyExchangeDHE):
                    recorded.server_kex_dhe = message
                elif isinstance(message, ServerKeyExchangeECDHE):
                    recorded.server_kex_ecdhe = message
    return recorded


class PassiveCollector:
    """A bulk-interception buffer of TLS connections."""

    def __init__(self) -> None:
        self.connections: list[RecordedConnection] = []

    def intercept(
        self, domain: str, timestamp: float, flights: list[CapturedFlight]
    ) -> RecordedConnection:
        """Record one connection's flights from the wire."""
        recorded = reconstruct_connection(domain, timestamp, flights)
        self.connections.append(recorded)
        return recorded

    def __len__(self) -> int:
        return len(self.connections)


@dataclass
class DecryptionOutcome:
    """Result of one retrospective decryption attempt."""

    success: bool
    method: str = ""                  # "stek" | "session_cache" | "dh"
    master_secret: bytes = b""
    plaintexts: list[bytes] = field(default_factory=list)
    detail: str = ""


class NationStateAttacker:
    """Holds stolen server-side secrets and decrypts recorded traffic."""

    def __init__(self) -> None:
        self.stolen_steks: list[STEK] = []
        self.stolen_sessions: list[SessionState] = []
        self.stolen_dh_privates: list[dh.DHKeyPair] = []
        self.stolen_ec_privates: list[ec.ECKeyPair] = []

    # -- theft primitives (what the intrusion/subpoena yields) ----------

    def steal_steks(self, steks: list[STEK]) -> None:
        """Add exfiltrated STEKs (e.g. ``store.all_keys`` at theft time)."""
        self.stolen_steks.extend(steks)

    def steal_session_cache(self, cache: SessionCache, now: float) -> int:
        """Snapshot a compromised session cache's live sessions."""
        sessions = cache.live_sessions(now)
        self.stolen_sessions.extend(sessions)
        return len(sessions)

    def steal_kex_values(
        self,
        dh_keypair: Optional[dh.DHKeyPair] = None,
        ec_keypair: Optional[ec.ECKeyPair] = None,
    ) -> None:
        """Add a server's cached ephemeral private values."""
        if dh_keypair is not None:
            self.stolen_dh_privates.append(dh_keypair)
        if ec_keypair is not None:
            self.stolen_ec_privates.append(ec_keypair)

    # -- retrospective decryption ------------------------------------------

    def decrypt(self, recorded: RecordedConnection) -> DecryptionOutcome:
        """Try every stolen secret against one recorded connection."""
        for attempt in (
            self._try_stek,
            self._try_session_cache,
            self._try_dh,
        ):
            outcome = attempt(recorded)
            if outcome.success:
                return outcome
        return DecryptionOutcome(success=False, detail="no stolen secret applies")

    def decrypt_all(self, collector: PassiveCollector) -> list[DecryptionOutcome]:
        return [self.decrypt(c) for c in collector.connections]

    def _finish(
        self, recorded: RecordedConnection, session: SessionState, method: str
    ) -> DecryptionOutcome:
        keys = derive_connection_keys(
            session, recorded.client_random, recorded.server_random
        )
        plaintexts = []
        for from_client, sequence, record in recorded.app_records:
            try:
                plaintexts.append(
                    decrypt_recorded_record(
                        keys, record, sequence, from_client,
                        suite=recorded.cipher_suite,
                    )
                )
            except DecodeError:
                return DecryptionOutcome(
                    success=False, method=method,
                    detail="recovered keys failed record authentication",
                )
        return DecryptionOutcome(
            success=True,
            method=method,
            master_secret=session.master_secret,
            plaintexts=plaintexts,
        )

    def _try_stek(self, recorded: RecordedConnection) -> DecryptionOutcome:
        ticket = recorded.best_ticket
        if not ticket or not recorded.client_random:
            return DecryptionOutcome(success=False)
        try:
            ticket_format = sniff_ticket_format(ticket)
        except DecodeError:
            return DecryptionOutcome(success=False)
        for stek in self.stolen_steks:
            if len(stek.key_name) != _key_name_length(ticket_format):
                continue
            contents = open_ticket(stek, ticket, ticket_format)
            if contents is None:
                continue
            return self._finish(recorded, contents.session, "stek")
        return DecryptionOutcome(success=False)

    def _try_session_cache(self, recorded: RecordedConnection) -> DecryptionOutcome:
        if not recorded.server_session_id:
            return DecryptionOutcome(success=False)
        for session in self.stolen_sessions:
            outcome = self._finish(recorded, session, "session_cache")
            if outcome.success:
                return outcome
        return DecryptionOutcome(success=False)

    def _try_dh(self, recorded: RecordedConnection) -> DecryptionOutcome:
        if not recorded.client_kex_public or recorded.cipher_suite is None:
            return DecryptionOutcome(success=False)
        if recorded.server_kex_dhe is not None:
            for keypair in self.stolen_dh_privates:
                if keypair.public != recorded.server_kex_dhe.dh_public:
                    continue
                client_public = int.from_bytes(recorded.client_kex_public, "big")
                try:
                    premaster = keypair.shared_secret_bytes(client_public)
                except dh.InvalidPublicValue:
                    continue
                return self._finish_premaster(recorded, premaster, "dh")
        if recorded.server_kex_ecdhe is not None:
            for keypair in self.stolen_ec_privates:
                expected = ec.encode_point(keypair.curve, keypair.public)
                if expected != recorded.server_kex_ecdhe.point:
                    continue
                try:
                    point = ec.decode_point(keypair.curve, recorded.client_kex_public)
                    premaster = keypair.shared_secret_bytes(point)
                except (ValueError, ec.NotOnCurveError):
                    continue
                return self._finish_premaster(recorded, premaster, "dh")
        return DecryptionOutcome(success=False)

    def _finish_premaster(
        self, recorded: RecordedConnection, premaster: bytes, method: str
    ) -> DecryptionOutcome:
        assert recorded.cipher_suite is not None
        master = derive_master_secret(
            premaster, recorded.client_random, recorded.server_random
        )
        session = SessionState(
            master_secret=master,
            cipher_suite=recorded.cipher_suite,
            version=ProtocolVersion.TLS12,
            created_at=recorded.timestamp,
            domain=recorded.domain,
        )
        return self._finish(recorded, session, method)


def _key_name_length(ticket_format: TicketFormat) -> int:
    return 4 if ticket_format is TicketFormat.MBEDTLS else 16


__all__ = [
    "RecordedConnection",
    "reconstruct_connection",
    "PassiveCollector",
    "NationStateAttacker",
    "DecryptionOutcome",
]
