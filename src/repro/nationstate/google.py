"""Target analysis of a Google-like provider (paper §7.2).

From the attacker's chair: how often does the target rotate its STEK,
how long does it accept old tickets, how many domains share the key,
how many Alexa domains route mail through it — and, given the stolen
key, does recorded traffic actually decrypt?

Every measurement is scanner-side (connections and DNS); the only
ground-truth access is the *theft* itself, which is the attack being
modeled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..crypto.rng import DeterministicRandom
from ..hosting.ecosystem import Ecosystem, GOOGLE_MX_HOST, MAIL_TLS_PORTS
from ..netsim.clock import HOUR
from ..tls.ticket import extract_key_name, sniff_ticket_format
from ..scanner.grab import ZGrabber
from .adversary import NationStateAttacker, PassiveCollector


@dataclass
class TargetAnalysisReport:
    """The §7.2 findings for one target provider."""

    target_domain: str
    # DNS concentration.
    mx_domains: int = 0
    mx_total: int = 0
    # STEK behavior, measured from outside.
    observed_stek_ids: list[str] = field(default_factory=list)
    rotation_seconds: Optional[float] = None
    acceptance_seconds: Optional[float] = None
    # Sharing.
    shared_stek_domains: int = 0
    # §7.2: TLS mail protocols (SMTPS/IMAPS/POP3S) using the same STEK.
    mail_ports_sharing_stek: list[int] = field(default_factory=list)
    # Retrospective decryption demo.
    connections_captured: int = 0
    connections_decrypted: int = 0
    sample_plaintext: bytes = b""

    @property
    def mx_fraction(self) -> float:
        return self.mx_domains / self.mx_total if self.mx_total else 0.0

    @property
    def steks_per_day(self) -> float:
        """How many keys must be stolen per day for full coverage."""
        if not self.rotation_seconds:
            return 0.0
        return 86400.0 / self.rotation_seconds


def measure_mx_concentration(ecosystem: Ecosystem) -> tuple[int, int]:
    """How many Alexa domains MX through the Google-like provider."""
    pointing = 0
    total = 0
    for _, name in ecosystem.alexa_list():
        total += 1
        if GOOGLE_MX_HOST in ecosystem.dns.mx(name):
            pointing += 1
    return pointing, total


def measure_stek_rotation(
    grabber: ZGrabber,
    domain: str,
    probe_interval: float = 1 * HOUR,
    horizon: float = 72 * HOUR,
) -> tuple[list[str], Optional[float]]:
    """Connect periodically; the median gap between STEK-id changes is
    the rotation interval (Google's measured 14 hours)."""
    ecosystem = grabber.ecosystem
    observed: list[tuple[float, str]] = []
    deadline = ecosystem.clock.now() + horizon
    while ecosystem.clock.now() < deadline:
        observation = grabber.grab(domain)
        if observation.success and observation.stek_id:
            observed.append((observation.timestamp, observation.stek_id))
        ecosystem.advance_to(ecosystem.clock.now() + probe_interval)
    ids = [stek_id for _, stek_id in observed]
    change_times = [
        observed[i][0]
        for i in range(1, len(observed))
        if observed[i][1] != observed[i - 1][1]
    ]
    rotation = None
    if len(change_times) >= 2:
        gaps = [b - a for a, b in zip(change_times, change_times[1:])]
        gaps.sort()
        rotation = gaps[len(gaps) // 2]
    return ids, rotation


def measure_ticket_acceptance(
    grabber: ZGrabber,
    domain: str,
    probe_interval: float = 1 * HOUR,
    ceiling: float = 48 * HOUR,
) -> Optional[float]:
    """How long one ticket keeps resuming (Google: up to 28 hours)."""
    ecosystem = grabber.ecosystem
    result, _, _ = grabber.connect(domain)
    if result is None or not result.ok or result.new_ticket is None:
        return None
    ticket = result.new_ticket.ticket
    session = result.session
    issued_at = ecosystem.clock.now()
    last_success: Optional[float] = None
    while ecosystem.clock.now() - issued_at < ceiling:
        ecosystem.advance_to(ecosystem.clock.now() + probe_interval)
        probe = None
        for _ in range(3):  # tolerate transient connect failures
            probe, _, _ = grabber.connect(
                domain, ticket=ticket, saved_session=session
            )
            if probe is not None:
                break
        if probe is not None and probe.ok and probe.resumed:
            last_success = ecosystem.clock.now() - issued_at
        elif last_success is not None:
            break
    return last_success


def measure_cross_protocol_stek(
    grabber: ZGrabber, domain: str
) -> list[int]:
    """Which TLS mail ports present the same STEK as HTTPS (§7.2).

    The paper found Google used one STEK across HTTPS, SMTPS, IMAPS,
    and POP3S — every protocol's traffic falls to the same stolen key.
    """
    https = grabber.grab(domain)
    if not https.success or not https.stek_id:
        return []
    sharing = []
    for port in MAIL_TLS_PORTS:
        result, _, _ = grabber.connect(domain, port=port)
        if result is None or not result.ok or result.new_ticket is None:
            continue
        ticket = result.new_ticket.ticket
        try:
            fmt = sniff_ticket_format(ticket)
            stek_id = extract_key_name(ticket, fmt).hex()
        except Exception:
            continue
        if stek_id == https.stek_id:
            sharing.append(port)
    return sharing


def count_shared_stek_domains(grabber: ZGrabber, domain: str) -> int:
    """Scan the list once; count domains presenting the target's STEK id."""
    ecosystem = grabber.ecosystem
    target = grabber.grab(domain)
    if not target.success or not target.stek_id:
        return 0
    shared = 0
    for rank, name in ecosystem.alexa_list():
        if name in ecosystem.blacklist:
            continue
        observation = grabber.grab(name, rank=rank)
        if observation.stek_id == target.stek_id:
            shared += 1
    return shared


def run_decryption_demo(
    grabber: ZGrabber,
    ecosystem: Ecosystem,
    domain: str,
    connections: int = 5,
) -> tuple[int, int, bytes]:
    """Capture traffic passively, steal the STEK, decrypt after the fact."""
    collector = PassiveCollector()
    for index in range(connections):
        result, _, _ = grabber.connect(domain, capture=True)
        if result is None or not result.ok:
            continue
        grabber.client.exchange_data(
            result, b"GET /inbox?msg=%d HTTP/1.1\r\nHost: " % index + domain.encode()
        )
        collector.intercept(domain, ecosystem.clock.now(), result.captured)
    # The theft: the attacker obtains the provider's current+retained
    # keys (implant, compelled disclosure, or memory disclosure bug).
    attacker = NationStateAttacker()
    store = ecosystem.domain(domain).stek_store
    if store is not None:
        attacker.steal_steks(store.all_keys)
    outcomes = attacker.decrypt_all(collector)
    decrypted = [o for o in outcomes if o.success]
    sample = b""
    for outcome in decrypted:
        for plaintext in outcome.plaintexts:
            if b"GET /inbox" in plaintext:
                sample = plaintext
                break
        if sample:
            break
    return len(collector), len(decrypted), sample


def analyze_target(
    ecosystem: Ecosystem,
    target_domain: str = "google.com",
    seed: int = 404,
    rotation_horizon: float = 72 * HOUR,
) -> TargetAnalysisReport:
    """Full §7.2-style analysis against one target."""
    grabber = ZGrabber(ecosystem, DeterministicRandom(seed))
    report = TargetAnalysisReport(target_domain=target_domain)
    report.mx_domains, report.mx_total = measure_mx_concentration(ecosystem)
    report.shared_stek_domains = count_shared_stek_domains(grabber, target_domain)
    report.mail_ports_sharing_stek = measure_cross_protocol_stek(
        grabber, target_domain
    )
    report.observed_stek_ids, report.rotation_seconds = measure_stek_rotation(
        grabber, target_domain, horizon=rotation_horizon
    )
    report.acceptance_seconds = measure_ticket_acceptance(grabber, target_domain)
    captured, decrypted, sample = run_decryption_demo(
        grabber, ecosystem, target_domain
    )
    report.connections_captured = captured
    report.connections_decrypted = decrypted
    report.sample_plaintext = sample
    return report


def render_report(report: TargetAnalysisReport) -> str:
    """Human-readable §7.2 summary."""
    rotation = (
        f"{report.rotation_seconds / HOUR:.0f} h"
        if report.rotation_seconds
        else "not observed"
    )
    acceptance = (
        f"{report.acceptance_seconds / HOUR:.0f} h"
        if report.acceptance_seconds
        else "not observed"
    )
    lines = [
        f"Nation-state target analysis: {report.target_domain}",
        "",
        f"  MX records routed to target:   {report.mx_domains:,} of "
        f"{report.mx_total:,} ({report.mx_fraction:.1%})",
        f"  domains sharing the STEK:      {report.shared_stek_domains:,}",
        f"  mail ports sharing the STEK:   "
        f"{report.mail_ports_sharing_stek or 'none observed'}",
        f"  observed STEK rotation:        {rotation}",
        f"  ticket acceptance window:      {acceptance}",
        f"  keys to steal per day:         {report.steks_per_day:.1f}",
        f"  recorded connections:          {report.connections_captured}",
        f"  retrospectively decrypted:     {report.connections_decrypted}",
    ]
    if report.sample_plaintext:
        lines.append(f"  sample recovered plaintext:    {report.sample_plaintext[:60]!r}")
    return "\n".join(lines)


__all__ = [
    "TargetAnalysisReport",
    "analyze_target",
    "render_report",
    "measure_mx_concentration",
    "measure_stek_rotation",
    "measure_ticket_acceptance",
    "count_shared_stek_domains",
    "measure_cross_protocol_stek",
    "run_decryption_demo",
]
