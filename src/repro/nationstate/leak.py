"""Heartbleed-style memory disclosure as a concrete theft vector.

The paper's threat model (§2.1) begins with the attacker obtaining the
server's secret state — "perhaps by exploiting a memory leak like
Heartbleed".  This module makes that vector executable instead of
assumed: a vulnerable server process exposes bounded reads of a
synthetic process heap containing its live TLS secrets, and an attacker
reassembles STEKs, cached master secrets, and ephemeral private values
from repeated over-reads.

Like the real bug, each leak returns a bounded window from an attacker-
uncontrolled offset, so recovering a specific secret takes repeated
probes; unlike the real bug, the heap layout here is deliberately
simple (tagged records), because the measurement-relevant property is
*what* lives in memory and for how long — exactly the paper's point
that expired-by-policy secrets may still be recoverable forensically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..crypto.rng import DeterministicRandom
from ..tls.server import TLSServer
from ..tls.session import SessionState
from ..tls.ticket import STEK

#: Tags marking secret records in the synthetic heap.
STEK_TAG = b"\xde\xad\x53\x54\x45\x4b"       # ...STEK
SESSION_TAG = b"\xde\xad\x53\x45\x53\x53"    # ...SESS
DH_TAG = b"\xde\xad\x44\x48\x50\x56"         # ...DHPV
MAX_LEAK_BYTES = 0xFFFF                       # Heartbleed's 64 KB


def build_heap_image(
    server: TLSServer, rng: DeterministicRandom, filler_bytes: int = 4096
) -> bytes:
    """Serialize a server process's live TLS secrets into a heap image.

    Layout: random filler interleaved with tagged records —
    ``TAG || u16 length || payload`` — for every STEK in the store,
    every live session in the cache, and any cached ephemeral private
    values.  Secrets a clean process would have erased simply don't
    appear; that is the defender's only lever.
    """
    chunks: list[bytes] = []

    def filler() -> bytes:
        return rng.random_bytes(rng.randrange(64, max(65, filler_bytes // 8)))

    def record(tag: bytes, payload: bytes) -> None:
        chunks.append(filler())
        chunks.append(tag + len(payload).to_bytes(2, "big") + payload)

    store = server.config.stek_store
    if store is not None:
        for stek in store.all_keys:
            record(STEK_TAG, stek.key_name + stek.aes_key + stek.hmac_key)
    cache = server.config.session_cache
    if cache is not None:
        for session in cache.live_sessions(now=server._now()):
            record(SESSION_TAG, session.master_secret)
    kex = server.kex_cache
    if kex.current_dh is not None:
        private = kex.current_dh.private
        record(DH_TAG, private.to_bytes((private.bit_length() + 7) // 8, "big"))
    if kex.current_ec is not None:
        private = kex.current_ec.private
        record(DH_TAG, private.to_bytes((private.bit_length() + 7) // 8, "big"))
    chunks.append(filler())
    return b"".join(chunks)


class VulnerableServer:
    """A server process with a Heartbleed-class bounded over-read."""

    def __init__(self, server: TLSServer, rng: DeterministicRandom) -> None:
        self._server = server
        self._rng = rng
        self.leaks_served = 0

    def leak(self, length: int) -> bytes:
        """One malformed-heartbeat response: ``length`` bytes from an
        attacker-uncontrolled heap offset (capped like the real bug)."""
        if length <= 0:
            return b""
        length = min(length, MAX_LEAK_BYTES)
        heap = build_heap_image(self._server, self._rng.fork(f"heap-{self.leaks_served}"))
        self.leaks_served += 1
        if length >= len(heap):
            return heap
        offset = self._rng.randbelow(len(heap) - length)
        return heap[offset : offset + length]


@dataclass
class LeakHarvest:
    """Secrets extracted from accumulated memory disclosures."""

    steks: list[STEK] = field(default_factory=list)
    master_secrets: list[bytes] = field(default_factory=list)
    kex_privates: list[int] = field(default_factory=list)
    leaks_used: int = 0

    @property
    def empty(self) -> bool:
        return not (self.steks or self.master_secrets or self.kex_privates)


def _scan_records(blob: bytes, tag: bytes) -> list[bytes]:
    """Extract complete tagged records from a leaked window."""
    found = []
    start = 0
    while True:
        index = blob.find(tag, start)
        if index < 0:
            break
        header_end = index + len(tag) + 2
        if header_end > len(blob):
            break
        length = int.from_bytes(blob[index + len(tag) : header_end], "big")
        end = header_end + length
        if end <= len(blob):
            found.append(blob[header_end:end])
        start = index + 1
    return found


def harvest_leaks(
    vulnerable: VulnerableServer,
    attempts: int = 32,
    leak_size: int = MAX_LEAK_BYTES,
    now: float = 0.0,
) -> LeakHarvest:
    """Repeatedly exploit the over-read and reassemble secrets.

    Returns everything recovered; duplicates are collapsed.  The number
    of attempts needed depends on heap size vs. leak window — with
    Heartbleed's 64 KB window and this module's small synthetic heaps,
    a handful of probes usually suffices, mirroring how cheaply the
    real bug yielded key material.
    """
    harvest = LeakHarvest()
    seen_steks: set[bytes] = set()
    seen_masters: set[bytes] = set()
    seen_privates: set[int] = set()
    for _ in range(attempts):
        blob = vulnerable.leak(leak_size)
        harvest.leaks_used += 1
        for payload in _scan_records(blob, STEK_TAG):
            if len(payload) < 16 + 16 + 32 or payload in seen_steks:
                continue
            seen_steks.add(payload)
            name_length = len(payload) - 48
            harvest.steks.append(STEK(
                key_name=payload[:name_length],
                aes_key=payload[name_length : name_length + 16],
                hmac_key=payload[name_length + 16 :],
                created_at=now,
            ))
        for payload in _scan_records(blob, SESSION_TAG):
            if len(payload) == 48 and payload not in seen_masters:
                seen_masters.add(payload)
                harvest.master_secrets.append(payload)
        for payload in _scan_records(blob, DH_TAG):
            value = int.from_bytes(payload, "big")
            if value and value not in seen_privates:
                seen_privates.add(value)
                harvest.kex_privates.append(value)
    return harvest


def session_states_from_masters(
    masters: list[bytes], template: SessionState
) -> list[SessionState]:
    """Wrap leaked master secrets as session states for the attacker."""
    return [
        SessionState(
            master_secret=master,
            cipher_suite=template.cipher_suite,
            version=template.version,
            created_at=template.created_at,
            domain=template.domain,
        )
        for master in masters
    ]


__all__ = [
    "MAX_LEAK_BYTES",
    "VulnerableServer",
    "LeakHarvest",
    "build_heap_image",
    "harvest_leaks",
    "session_states_from_masters",
]
