"""Simulated Internet substrate: virtual time, IPv4, ASes, DNS, routing."""

from .address import AddressAllocator, CIDRBlock, IPv4Address
from .clock import DAY, HOUR, MINUTE, SECOND, WEEK, SimClock, format_duration
from .dns import DNSZone, NXDomainError
from .eventloop import EventLoop, Task, Wait
from .network import ConnectTimeout, Endpoint, HTTPS_PORT, Network
from .topology import ASRegistry, AutonomousSystem

__all__ = [
    "IPv4Address",
    "CIDRBlock",
    "AddressAllocator",
    "SimClock",
    "format_duration",
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "DNSZone",
    "NXDomainError",
    "EventLoop",
    "Task",
    "Wait",
    "Network",
    "Endpoint",
    "ConnectTimeout",
    "HTTPS_PORT",
    "ASRegistry",
    "AutonomousSystem",
]
