"""IPv4 addresses, CIDR blocks, and per-AS address allocation."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class IPv4Address:
    """An IPv4 address stored as an unsigned 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < 1 << 32:
            raise ValueError("IPv4 address out of range")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        parts = text.split(".")
        if len(parts) != 4:
            raise ValueError(f"malformed IPv4 address {text!r}")
        value = 0
        for part in parts:
            octet = int(part)
            if not 0 <= octet <= 255:
                raise ValueError(f"malformed IPv4 address {text!r}")
            value = (value << 8) | octet
        return cls(value)

    def __str__(self) -> str:
        v = self.value
        return f"{v >> 24}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def slash24(self) -> "CIDRBlock":
        """The /24 containing this address (used for same-block grouping)."""
        return CIDRBlock(self.value & ~0xFF, 24)


@dataclass(frozen=True)
class CIDRBlock:
    """A CIDR prefix: base address (host bits zero) + prefix length."""

    base: int
    prefix: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix <= 32:
            raise ValueError("prefix length out of range")
        mask = self.mask
        if self.base & ~mask & 0xFFFFFFFF:
            raise ValueError("CIDR base has host bits set")

    @classmethod
    def parse(cls, text: str) -> "CIDRBlock":
        address, _, prefix = text.partition("/")
        return cls(IPv4Address.parse(address).value, int(prefix))

    @property
    def mask(self) -> int:
        return (0xFFFFFFFF << (32 - self.prefix)) & 0xFFFFFFFF if self.prefix else 0

    @property
    def size(self) -> int:
        return 1 << (32 - self.prefix)

    def contains(self, address: IPv4Address) -> bool:
        return (address.value & self.mask) == self.base

    def address(self, offset: int) -> IPv4Address:
        if not 0 <= offset < self.size:
            raise ValueError("offset outside CIDR block")
        return IPv4Address(self.base + offset)

    def __str__(self) -> str:
        return f"{IPv4Address(self.base)}/{self.prefix}"


class AddressAllocator:
    """Hands out sequential addresses from a CIDR block.

    Skips network (.0) and broadcast (.255) style boundary addresses of
    each /24 for cosmetic realism.
    """

    def __init__(self, block: CIDRBlock) -> None:
        self.block = block
        self._next = 0

    def allocate(self) -> IPv4Address:
        while True:
            if self._next >= self.block.size:
                raise RuntimeError(f"address pool {self.block} exhausted")
            address = self.block.address(self._next)
            self._next += 1
            low_octet = address.value & 0xFF
            if low_octet not in (0, 255):
                return address

    @property
    def allocated(self) -> int:
        return self._next


__all__ = ["IPv4Address", "CIDRBlock", "AddressAllocator"]
