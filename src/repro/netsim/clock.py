"""Simulated time.

All timestamps in the system are seconds on a single virtual clock, so
a nine-week measurement study runs in seconds of wall time and is
perfectly reproducible.  The clock only moves forward.
"""

from __future__ import annotations

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY


class SimClock:
    """A monotonically advancing virtual clock."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.start = float(start)

    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; rejects negative steps."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute time (must not be in the past)."""
        if timestamp < self._now:
            raise ValueError("time cannot move backwards")
        self._now = float(timestamp)
        return self._now

    @property
    def elapsed(self) -> float:
        """Seconds since the clock was created."""
        return self._now - self.start

    @property
    def day_index(self) -> int:
        """Whole days elapsed since the clock's start (day 0, 1, 2, …)."""
        return int(self.elapsed // DAY)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(now={self._now:.0f}s, day={self.day_index})"


def format_duration(seconds: float) -> str:
    """Human-readable duration ("5 min", "18 h", "63 d") for reports."""
    if seconds < MINUTE:
        return f"{seconds:.0f} s"
    if seconds < HOUR:
        return f"{seconds / MINUTE:.0f} min"
    if seconds < DAY:
        value = seconds / HOUR
        return f"{value:.0f} h" if value == int(value) else f"{value:.1f} h"
    value = seconds / DAY
    return f"{value:.0f} d" if value == int(value) else f"{value:.1f} d"


__all__ = ["SimClock", "format_duration", "SECOND", "MINUTE", "HOUR", "DAY", "WEEK"]
