"""A minimal DNS: A records (with multi-record round robin) and MX records.

Two paper-relevant behaviors live here:

* multiple A records per domain — the paper attributes some day-to-day
  jitter in STEK observations to "the ZMap tool-chain's choice of
  A-record entries between days";
* MX records — §7.2 counts Alexa domains whose MX points at Google's
  mail servers to size the intelligence value of Google's STEK.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.rng import DeterministicRandom
from ..obs.metrics import METRICS
from .address import IPv4Address

_INJECTED_NXDOMAIN = METRICS.counter("faults.injected", kind="nxdomain")


class NXDomainError(KeyError):
    """The queried name does not exist."""

    reason = "nxdomain"


@dataclass
class DNSRecordSet:
    """All records for one name."""

    a_records: list[IPv4Address] = field(default_factory=list)
    mx_records: list[str] = field(default_factory=list)  # mail host names


class DNSZone:
    """The simulation's single flat zone of authoritative data."""

    def __init__(self) -> None:
        self._records: dict[str, DNSRecordSet] = {}
        self.queries = 0
        self._plan = None
        self._now = None

    def install_impairments(self, plan, now_fn) -> None:
        """Attach an impairment plan (duck-typed; see repro.faults.plan)
        whose NXDOMAIN windows make existing names resolve as absent."""
        self._plan = plan
        self._now = now_fn

    def add_a(self, name: str, address: IPv4Address) -> None:
        self._records.setdefault(name.lower(), DNSRecordSet()).a_records.append(address)

    def add_mx(self, name: str, mail_host: str) -> None:
        self._records.setdefault(name.lower(), DNSRecordSet()).mx_records.append(mail_host)

    def has(self, name: str) -> bool:
        return name.lower() in self._records

    def resolve_all(self, name: str) -> list[IPv4Address]:
        """All A records for a name (raises NXDomainError if absent)."""
        self.queries += 1
        if self._plan is not None and self._plan.nxdomain(self._now(), name.lower()):
            _INJECTED_NXDOMAIN.value += 1
            raise NXDomainError(name)
        record_set = self._records.get(name.lower())
        if record_set is None or not record_set.a_records:
            raise NXDomainError(name)
        return list(record_set.a_records)

    def resolve(self, name: str, rng: DeterministicRandom) -> IPv4Address:
        """One A record, chosen like a resolver rotating round-robin sets."""
        return rng.choice(self.resolve_all(name))

    def mx(self, name: str) -> list[str]:
        """MX hostnames for a name (empty if none)."""
        self.queries += 1
        record_set = self._records.get(name.lower())
        return list(record_set.mx_records) if record_set else []

    def names(self) -> list[str]:
        return sorted(self._records)

    def __len__(self) -> int:
        return len(self._records)


__all__ = ["DNSZone", "DNSRecordSet", "NXDomainError"]
