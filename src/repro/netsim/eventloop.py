"""Deterministic event loop over the virtual clock.

This is the scheduler behind the event-driven scan core: it interleaves
thousands of in-flight tasks (TLS handshakes, resumption probes, retry
backoffs) in ONE process while keeping execution order a pure function
of the schedule — never of how many tasks happen to be in flight.

Tasks are plain generators.  A task runs until it ``yield``\\ s a
:class:`Wait`, which parks it on the loop's heap until the requested
virtual time; the loop advances the simulation clock between resumes
via the ``advance`` callable (normally ``Ecosystem.advance_to``), so
time-driven ecosystem events — STEK rotations, churn — fire exactly as
they would under the blocking scanner.

Determinism invariants (load-bearing; see docs/SCALING.md):

1. Every resume is ordered by the pair ``(due_time, sequence)`` where
   ``sequence`` is a single global counter incremented once per spawn
   or reschedule.  There is no other ordering input: wall-clock time,
   ready-queue fast paths, and in-flight counts play no part.
2. *All* yields go through the heap — even a ``Wait(0.0)`` that is
   already due is re-inserted at ``(now, fresh sequence)`` rather than
   resumed inline.  Equal-time tasks therefore interleave in exactly
   the order their waits were issued, independent of batch size.
3. The loop never rewinds: a wait due in the past resumes at the
   current virtual time (``max(due, now)``), matching the blocking
   scanner's ``advance_to(max(scheduled, now))`` idiom.

Example — two handshake-shaped tasks interleave by virtual due time,
not by spawn order:

>>> clock = _DemoClock()
>>> loop = EventLoop(clock.now, clock.advance)
>>> log = []
>>> def task(name, delay):
...     log.append((clock.now(), name, "sent"))
...     yield Wait(delay)          # flight on the wire
...     log.append((clock.now(), name, "done"))
...     return name
>>> slow = loop.spawn(task("slow", 10.0))
>>> fast = loop.spawn(task("fast", 2.5))
>>> loop.run()
>>> for entry in log:
...     print(entry)
(0.0, 'slow', 'sent')
(0.0, 'fast', 'sent')
(2.5, 'fast', 'done')
(10.0, 'slow', 'done')
>>> (slow.result, fast.result)
('slow', 'fast')

Tasks can also be admitted at a future time (the sweep scheduler
admits one grab per schedule tick):

>>> loop = EventLoop(clock.now, clock.advance)
>>> def ping(at):
...     log.append(("ping", clock.now()))
...     return None
...     yield  # pragma: no cover - marks this function as a generator
>>> _ = loop.spawn(ping(0), at=clock.now() + 5.0)
>>> loop.run()
>>> log[-1] == ("ping", 15.0)
True
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional


@dataclass(frozen=True)
class Wait:
    """A parked continuation's wake-up request.

    ``Wait(seconds)`` resumes the task after ``seconds`` of virtual
    time; ``Wait.until(t)`` resumes at absolute virtual time ``t``.
    ``Wait(0.0)`` — the zero-latency round trip of the simulated
    network — still goes through the heap, preserving invariant 2.

    >>> Wait(1.5).due(now=10.0)
    11.5
    >>> Wait.until(99.0).due(now=10.0)
    99.0
    """

    seconds: float = 0.0
    at: Optional[float] = None

    @classmethod
    def until(cls, when: float) -> "Wait":
        """Wait until an absolute virtual time."""
        return cls(0.0, at=when)

    def due(self, now: float) -> float:
        """The absolute virtual time this wait asks to resume at."""
        return self.at if self.at is not None else now + self.seconds


class Task:
    """Handle for a spawned generator: done flag and return value."""

    __slots__ = ("gen", "label", "done", "result")

    def __init__(self, gen: Generator, label: str = "") -> None:
        self.gen = gen
        self.label = label
        self.done = False
        self.result: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "pending"
        return f"Task({self.label or self.gen.__name__!s}, {state})"


class EventLoop:
    """Run generator tasks in ``(due_time, sequence)`` order.

    ``now`` and ``advance`` are the virtual clock read/advance pair —
    for a study, ``ecosystem.clock.now`` and ``ecosystem.advance_to``
    so ecosystem timers fire while tasks wait.
    """

    def __init__(
        self,
        now: Callable[[], float],
        advance: Callable[[float], None],
    ) -> None:
        self._now = now
        self._advance = advance
        self._heap: list[tuple[float, int, Task]] = []
        self._sequence = 0

    # -- scheduling --------------------------------------------------------

    def spawn(
        self,
        gen: Generator,
        at: Optional[float] = None,
        label: str = "",
    ) -> Task:
        """Admit a task; it first runs at ``at`` (default: now)."""
        task = Task(gen, label)
        self._push(at if at is not None else self._now(), task)
        return task

    def _push(self, due: float, task: Task) -> None:
        heapq.heappush(self._heap, (due, self._sequence, task))
        self._sequence += 1

    @property
    def pending(self) -> int:
        """Parked (not yet finished) task entries."""
        return len(self._heap)

    # -- execution ---------------------------------------------------------

    def run(self) -> None:
        """Drain the heap: advance virtual time and resume each task.

        Returns when every spawned task has finished.  A task exception
        propagates immediately — deterministic schedules make the crash
        reproducible, so there is nothing useful to half-continue.
        """
        heap = self._heap
        while heap:
            due, _, task = heapq.heappop(heap)
            # Mirrors the blocking scanner: never rewind the clock.
            self._advance(max(due, self._now()))
            try:
                waited = task.gen.send(None)
            except StopIteration as stop:
                task.done = True
                task.result = stop.value
                continue
            self._push(waited.due(self._now()), task)


class _DemoClock:
    """Minimal stand-in for ``SimClock`` used by this module's doctests."""

    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t

    def advance(self, when: float) -> None:
        self.t = max(self.t, when)


__all__ = ["EventLoop", "Task", "Wait"]
