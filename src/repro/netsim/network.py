"""The network fabric: connecting a scanner to simulated endpoints.

An :class:`Endpoint` is what listens on an (IP, port): one or more TLS
server *processes* behind an optional load balancer.  Balancers without
client affinity pick a random backend per connection — the source of
the measurement jitter the paper has to tolerate when estimating STEK
spans (§4.3).

:class:`Network` routes ``connect()`` calls by IP and injects
transient failures (timeouts) at a configurable rate, modeling "the
server failing to respond to one of our connections."  Structured
misbehavior — outage windows, latency spikes, flapping backends — comes
from an impairment plan installed via :meth:`Network.install_impairments`
(see :mod:`repro.faults`; the hook is duck-typed so this module never
imports that package).  Plan decisions are pure functions of virtual
time and never consume ``rng``, so installing a plan does not perturb
the deterministic draw sequence existing behavior depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..crypto.rng import DeterministicRandom
from ..obs.metrics import METRICS
from ..tls.server import TLSServer
from .address import IPv4Address

HTTPS_PORT = 443

_INJECTED_OUTAGE = METRICS.counter("faults.injected", kind="outage")
_INJECTED_LATENCY = METRICS.counter("faults.injected", kind="latency")
_INJECTED_FLAP = METRICS.counter("faults.injected", kind="flap")


class ConnectTimeout(ConnectionError):
    """The simulated connection attempt failed (no response).

    ``reason`` is the grab failure-taxonomy label; subclasses refine it.
    """

    reason = "connect_timeout"


class NoLiveBackend(ConnectTimeout):
    """The endpoint exists but no backend process is serving it.

    Distinct from a transient timeout: the host is routable yet dead,
    which a scanner must classify differently (persistent, not noise).
    """

    reason = "no_backend"


class InjectedOutage(ConnectTimeout):
    """A chaos-plan outage window swallowed this connection."""

    reason = "outage"


@dataclass
class Endpoint:
    """Servers reachable at one (IP, port).

    ``backends`` share the listening socket; ``affinity=False`` models
    a load balancer that sprays connections across processes, which is
    how distinct STEKs/session caches show up behind one IP.
    """

    ip: IPv4Address
    port: int = HTTPS_PORT
    backends: list[TLSServer] = field(default_factory=list)
    affinity: bool = True

    def add_backend(self, server: TLSServer) -> None:
        self.backends.append(server)

    def pick_backend(
        self,
        rng: DeterministicRandom,
        live: Optional[list[int]] = None,
    ) -> TLSServer:
        """Pick the serving backend; ``live`` (from a flap window)
        restricts the choice to those backend indices."""
        backends = (
            self.backends if live is None
            else [self.backends[index] for index in live]
        )
        if not backends:
            raise NoLiveBackend(f"{self.ip}:{self.port} has no live backend")
        if self.affinity or len(backends) == 1:
            return backends[0]
        return rng.choice(backends)


class Network:
    """Routes connections from the scanner to endpoints by IP."""

    def __init__(
        self,
        rng: DeterministicRandom,
        failure_rate: float = 0.0,
        clock=None,
    ) -> None:
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError("failure rate must be in [0, 1)")
        self._rng = rng
        self.failure_rate = failure_rate
        self._endpoints: dict[tuple[int, int], Endpoint] = {}
        self.attempts = 0
        self.failures = 0
        self._plan = None
        self._clock = clock

    def install_impairments(self, plan, clock) -> None:
        """Attach an impairment plan (duck-typed; see repro.faults.plan)
        and the virtual clock its schedule is evaluated against."""
        self._plan = plan
        self._clock = clock

    def register(self, endpoint: Endpoint) -> None:
        key = (endpoint.ip.value, endpoint.port)
        if key in self._endpoints:
            raise ValueError(f"endpoint {endpoint.ip}:{endpoint.port} already registered")
        self._endpoints[key] = endpoint

    def endpoint_at(self, ip: IPv4Address, port: int = HTTPS_PORT) -> Optional[Endpoint]:
        return self._endpoints.get((ip.value, port))

    def connect(
        self, ip: IPv4Address, port: int = HTTPS_PORT, domain: str = ""
    ) -> TLSServer:
        """Open a connection; returns the backend server process.

        Raises :class:`ConnectTimeout` (or a refining subclass) for
        unroutable addresses, dead endpoints, and injected failures.
        ``domain`` is the name being scanned, if any — impairment plans
        use it to scope faults per provider.
        """
        self.attempts += 1
        plan = self._plan
        now = self._clock.now() if (plan is not None and self._clock is not None) else 0.0
        if plan is not None:
            fault = plan.connect_fault(now, str(ip), port, domain)
            if fault is not None:
                kind, delay = fault
                if kind == "outage":
                    self.failures += 1
                    _INJECTED_OUTAGE.value += 1
                    raise InjectedOutage(f"injected outage at {ip}:{port}")
                if kind == "latency":
                    _INJECTED_LATENCY.value += 1
                    if self._clock is not None:
                        self._clock.advance(delay)
                        now = self._clock.now()
        if self.failure_rate and self._rng.random() < self.failure_rate:
            self.failures += 1
            raise ConnectTimeout(f"transient failure connecting to {ip}:{port}")
        endpoint = self._endpoints.get((ip.value, port))
        if endpoint is None:
            self.failures += 1
            raise ConnectTimeout(f"no route to {ip}:{port}")
        live = None
        if plan is not None:
            live = plan.live_backends(now, str(ip), port, len(endpoint.backends))
            if live is not None and len(live) < len(endpoint.backends):
                _INJECTED_FLAP.value += 1
        try:
            server = endpoint.pick_backend(self._rng, live=live)
        except NoLiveBackend:
            self.failures += 1
            raise
        if plan is not None:
            server = plan.impair_server(server, now, str(ip), port, domain)
        return server

    def endpoints(self) -> list[Endpoint]:
        return list(self._endpoints.values())

    def __len__(self) -> int:
        return len(self._endpoints)


__all__ = [
    "Network",
    "Endpoint",
    "ConnectTimeout",
    "NoLiveBackend",
    "InjectedOutage",
    "HTTPS_PORT",
]
