"""The network fabric: connecting a scanner to simulated endpoints.

An :class:`Endpoint` is what listens on an (IP, port): one or more TLS
server *processes* behind an optional load balancer.  Balancers without
client affinity pick a random backend per connection — the source of
the measurement jitter the paper has to tolerate when estimating STEK
spans (§4.3).

:class:`Network` routes ``connect()`` calls by IP and injects
transient failures (timeouts) at a configurable rate, modeling "the
server failing to respond to one of our connections."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..crypto.rng import DeterministicRandom
from ..tls.server import TLSServer
from .address import IPv4Address

HTTPS_PORT = 443


class ConnectTimeout(ConnectionError):
    """The simulated connection attempt failed (no response)."""


@dataclass
class Endpoint:
    """Servers reachable at one (IP, port).

    ``backends`` share the listening socket; ``affinity=False`` models
    a load balancer that sprays connections across processes, which is
    how distinct STEKs/session caches show up behind one IP.
    """

    ip: IPv4Address
    port: int = HTTPS_PORT
    backends: list[TLSServer] = field(default_factory=list)
    affinity: bool = True

    def add_backend(self, server: TLSServer) -> None:
        self.backends.append(server)

    def pick_backend(self, rng: DeterministicRandom) -> TLSServer:
        if not self.backends:
            raise ConnectTimeout(f"{self.ip}:{self.port} has no live backend")
        if self.affinity or len(self.backends) == 1:
            return self.backends[0]
        return rng.choice(self.backends)


class Network:
    """Routes connections from the scanner to endpoints by IP."""

    def __init__(
        self,
        rng: DeterministicRandom,
        failure_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError("failure rate must be in [0, 1)")
        self._rng = rng
        self.failure_rate = failure_rate
        self._endpoints: dict[tuple[int, int], Endpoint] = {}
        self.attempts = 0
        self.failures = 0

    def register(self, endpoint: Endpoint) -> None:
        key = (endpoint.ip.value, endpoint.port)
        if key in self._endpoints:
            raise ValueError(f"endpoint {endpoint.ip}:{endpoint.port} already registered")
        self._endpoints[key] = endpoint

    def endpoint_at(self, ip: IPv4Address, port: int = HTTPS_PORT) -> Optional[Endpoint]:
        return self._endpoints.get((ip.value, port))

    def connect(self, ip: IPv4Address, port: int = HTTPS_PORT) -> TLSServer:
        """Open a connection; returns the backend server process.

        Raises :class:`ConnectTimeout` for unroutable addresses, dead
        endpoints, and injected transient failures.
        """
        self.attempts += 1
        if self.failure_rate and self._rng.random() < self.failure_rate:
            self.failures += 1
            raise ConnectTimeout(f"transient failure connecting to {ip}:{port}")
        endpoint = self._endpoints.get((ip.value, port))
        if endpoint is None:
            self.failures += 1
            raise ConnectTimeout(f"no route to {ip}:{port}")
        return endpoint.pick_backend(self._rng)

    def endpoints(self) -> list[Endpoint]:
        return list(self._endpoints.values())

    def __len__(self) -> int:
        return len(self._endpoints)


__all__ = ["Network", "Endpoint", "ConnectTimeout", "HTTPS_PORT"]
