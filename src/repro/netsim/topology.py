"""Autonomous systems and the AS-level view the scanner uses.

The cross-domain probing experiment (§5.1) samples peer domains "from
each AS" and "sharing its IP address", so the simulation needs an AS
registry mapping address space to AS numbers and names.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .address import AddressAllocator, CIDRBlock, IPv4Address


@dataclass
class AutonomousSystem:
    """One AS: number, operator name, and its address blocks."""

    asn: int
    name: str
    blocks: list[CIDRBlock] = field(default_factory=list)
    _allocators: list[AddressAllocator] = field(default_factory=list, repr=False)

    def add_block(self, block: CIDRBlock) -> None:
        self.blocks.append(block)
        self._allocators.append(AddressAllocator(block))

    def allocate_address(self) -> IPv4Address:
        """Allocate the next free address in this AS's space."""
        for allocator in self._allocators:
            try:
                return allocator.allocate()
            except RuntimeError:
                continue
        raise RuntimeError(f"AS{self.asn} ({self.name}) address space exhausted")

    def contains(self, address: IPv4Address) -> bool:
        return any(block.contains(address) for block in self.blocks)


class ASRegistry:
    """Registry of all ASes with longest-prefix-match lookup."""

    def __init__(self) -> None:
        self._by_asn: dict[int, AutonomousSystem] = {}
        # Lazily built longest-prefix-match index: a (prefix, table)
        # list sorted longest prefix first, where each table maps
        # ``base >> (32 - prefix)`` to its AS.  A 100k-domain ecosystem
        # registers one AS per self-hosted domain, so the per-address
        # linear block scan this replaces was O(population) — the
        # end-of-study metadata pass (one lookup per domain) made AS
        # attribution quadratic overall.
        self._match_tables: list[tuple[int, dict[int, AutonomousSystem]]] | None = None

    def register(self, asn: int, name: str, blocks: list[str]) -> AutonomousSystem:
        if asn in self._by_asn:
            raise ValueError(f"AS{asn} already registered")
        autonomous_system = AutonomousSystem(asn=asn, name=name)
        for block in blocks:
            autonomous_system.add_block(CIDRBlock.parse(block))
        self._by_asn[asn] = autonomous_system
        self._match_tables = None
        return autonomous_system

    def get(self, asn: int) -> AutonomousSystem:
        return self._by_asn[asn]

    def _tables(self) -> list[tuple[int, dict[int, AutonomousSystem]]]:
        tables = self._match_tables
        if tables is None:
            by_prefix: dict[int, dict[int, AutonomousSystem]] = {}
            for autonomous_system in self._by_asn.values():
                for block in autonomous_system.blocks:
                    table = by_prefix.setdefault(block.prefix, {})
                    key = block.base >> (32 - block.prefix) if block.prefix else 0
                    # setdefault: at equal (prefix, base) the first
                    # registered AS wins, matching the old strict-">"
                    # linear scan in registration order.
                    table.setdefault(key, autonomous_system)
            tables = self._match_tables = sorted(
                by_prefix.items(), key=lambda item: item[0], reverse=True
            )
        return tables

    def lookup(self, address: IPv4Address) -> AutonomousSystem | None:
        """Which AS originates this address? (longest prefix match)"""
        value = address.value
        for prefix, table in self._tables():
            match = table.get(value >> (32 - prefix) if prefix else 0)
            if match is not None:
                return match
        return None

    def all_systems(self) -> list[AutonomousSystem]:
        return sorted(self._by_asn.values(), key=lambda a: a.asn)

    def __len__(self) -> int:
        return len(self._by_asn)


__all__ = ["AutonomousSystem", "ASRegistry"]
