"""Autonomous systems and the AS-level view the scanner uses.

The cross-domain probing experiment (§5.1) samples peer domains "from
each AS" and "sharing its IP address", so the simulation needs an AS
registry mapping address space to AS numbers and names.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .address import AddressAllocator, CIDRBlock, IPv4Address


@dataclass
class AutonomousSystem:
    """One AS: number, operator name, and its address blocks."""

    asn: int
    name: str
    blocks: list[CIDRBlock] = field(default_factory=list)
    _allocators: list[AddressAllocator] = field(default_factory=list, repr=False)

    def add_block(self, block: CIDRBlock) -> None:
        self.blocks.append(block)
        self._allocators.append(AddressAllocator(block))

    def allocate_address(self) -> IPv4Address:
        """Allocate the next free address in this AS's space."""
        for allocator in self._allocators:
            try:
                return allocator.allocate()
            except RuntimeError:
                continue
        raise RuntimeError(f"AS{self.asn} ({self.name}) address space exhausted")

    def contains(self, address: IPv4Address) -> bool:
        return any(block.contains(address) for block in self.blocks)


class ASRegistry:
    """Registry of all ASes with longest-prefix-match style lookup."""

    def __init__(self) -> None:
        self._by_asn: dict[int, AutonomousSystem] = {}

    def register(self, asn: int, name: str, blocks: list[str]) -> AutonomousSystem:
        if asn in self._by_asn:
            raise ValueError(f"AS{asn} already registered")
        autonomous_system = AutonomousSystem(asn=asn, name=name)
        for block in blocks:
            autonomous_system.add_block(CIDRBlock.parse(block))
        self._by_asn[asn] = autonomous_system
        return autonomous_system

    def get(self, asn: int) -> AutonomousSystem:
        return self._by_asn[asn]

    def lookup(self, address: IPv4Address) -> AutonomousSystem | None:
        """Which AS originates this address? (linear scan; pools are few)"""
        best: AutonomousSystem | None = None
        best_prefix = -1
        for autonomous_system in self._by_asn.values():
            for block in autonomous_system.blocks:
                if block.contains(address) and block.prefix > best_prefix:
                    best = autonomous_system
                    best_prefix = block.prefix
        return best

    def all_systems(self) -> list[AutonomousSystem]:
        return sorted(self._by_asn.values(), key=lambda a: a.asn)

    def __len__(self) -> int:
        return len(self._by_asn)


__all__ = ["AutonomousSystem", "ASRegistry"]
