"""Dependency-free telemetry for the measurement pipeline.

Cooperating layers (see DESIGN.md §8 and §11):

* :mod:`repro.obs.metrics` — process-local counters/gauges/histograms
  with deterministic cross-process snapshot merging;
* :mod:`repro.obs.trace` — opt-in span tracing with a ring-buffer sink
  and JSONL export;
* :mod:`repro.obs.manifest` / :mod:`repro.obs.report` — run manifests
  (provenance + timing + cache effectiveness) and their human /
  Prometheus renderings;
* :mod:`repro.obs.events` — the structured JSONL event log
  (``repro-events/1``) a live run streams to disk;
* :mod:`repro.obs.progress` — shard-day progress/ETA tracking behind
  the TTY status line and ``/progress``;
* :mod:`repro.obs.exporter` — the live plane: in-run HTTP exposition
  (``/metrics``, ``/progress``, ``/healthz``, ``/events``) plus the
  cross-process snapshot-delta spool;
* :mod:`repro.obs.profiling` — opt-in phase timers, slowest-grab
  tracking, and per-shard cProfile aggregation.

The invariant every instrument obeys: telemetry is **output-neutral**.
Nothing in this package (or any call into it) may touch a seeded RNG
or alter record content — study bytes are identical with telemetry on
or off.
"""

from . import trace
from .events import EVENTS, EventLog, EventWriter, load_events, validate_events
from .exporter import LivePlane, ObservabilityServer, SpoolPoller, SpoolPush
from .manifest import (
    MANIFEST_NAME,
    METRICS_NAME,
    PROMETHEUS_NAME,
    SCHEMA,
    TRACE_NAME,
    build_manifest,
    config_dict,
    git_describe,
    load_manifest,
    load_metrics,
    validate_manifest,
    write_manifest,
    write_metrics,
)
from .metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    cache_stats,
    merge_snapshots,
    parse_key,
    register_process_cache,
    reset_process_caches,
)
from .profiling import PROFILER, Profiler, render_profile_report
from .progress import ProgressTracker, render_progress
from .report import (
    parse_prometheus,
    render_prometheus,
    render_stats_report,
    to_prom_snapshot,
)

__all__ = [
    "trace",
    "EVENTS",
    "EventLog",
    "EventWriter",
    "load_events",
    "validate_events",
    "LivePlane",
    "ObservabilityServer",
    "SpoolPush",
    "SpoolPoller",
    "PROFILER",
    "Profiler",
    "render_profile_report",
    "ProgressTracker",
    "render_progress",
    "parse_prometheus",
    "to_prom_snapshot",
    "METRICS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "merge_snapshots",
    "cache_stats",
    "parse_key",
    "register_process_cache",
    "reset_process_caches",
    "SCHEMA",
    "MANIFEST_NAME",
    "METRICS_NAME",
    "PROMETHEUS_NAME",
    "TRACE_NAME",
    "git_describe",
    "config_dict",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "validate_manifest",
    "load_metrics",
    "write_metrics",
    "render_prometheus",
    "render_stats_report",
]
