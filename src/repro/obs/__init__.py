"""Dependency-free telemetry for the measurement pipeline.

Three cooperating layers (see DESIGN.md §8):

* :mod:`repro.obs.metrics` — process-local counters/gauges/histograms
  with deterministic cross-process snapshot merging;
* :mod:`repro.obs.trace` — opt-in span tracing with a ring-buffer sink
  and JSONL export;
* :mod:`repro.obs.manifest` / :mod:`repro.obs.report` — run manifests
  (provenance + timing + cache effectiveness) and their human /
  Prometheus renderings.

The invariant every instrument obeys: telemetry is **output-neutral**.
Nothing in this package (or any call into it) may touch a seeded RNG
or alter record content — study bytes are identical with telemetry on
or off.
"""

from . import trace
from .manifest import (
    MANIFEST_NAME,
    METRICS_NAME,
    PROMETHEUS_NAME,
    SCHEMA,
    TRACE_NAME,
    build_manifest,
    config_dict,
    git_describe,
    load_manifest,
    load_metrics,
    validate_manifest,
    write_manifest,
    write_metrics,
)
from .metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    cache_stats,
    merge_snapshots,
    parse_key,
    register_process_cache,
    reset_process_caches,
)
from .report import render_prometheus, render_stats_report

__all__ = [
    "trace",
    "METRICS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "merge_snapshots",
    "cache_stats",
    "parse_key",
    "register_process_cache",
    "reset_process_caches",
    "SCHEMA",
    "MANIFEST_NAME",
    "METRICS_NAME",
    "PROMETHEUS_NAME",
    "TRACE_NAME",
    "git_describe",
    "config_dict",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "validate_manifest",
    "load_metrics",
    "write_metrics",
    "render_prometheus",
    "render_stats_report",
]
