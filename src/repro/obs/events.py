"""Structured event log: a run's lifecycle as JSONL (``repro-events/1``).

Where metrics answer *how much* and spans answer *how long*, the event
log answers *what happened, in order*: study/shard/day lifecycle,
checkpoint writes, chaos injections, retries, and circuit-breaker
trips, each as one JSON object per line with a severity level.

Two halves, mirroring the metrics design:

* :class:`EventLog` (and the process-local :data:`EVENTS` instance) is
  the **emitter** side — a bounded in-memory buffer that instruments
  append to.  It is off by default and costs one flag check per call
  when disabled, so hot-ish paths (retry loops, fault injection) can
  emit unconditionally.  Shard workers drain their buffer into the
  ``ShardResult`` they ship back to the engine.

* :class:`EventWriter` / :class:`OrderedShardWriter` are the **file**
  side, owned by the parent process.  The ordered writer is a reorder
  buffer keyed by shard id: shard batches are flushed to disk in shard
  order no matter which worker finished first, so the event log is a
  deterministic function of the shard layout — the same bytes under
  any worker count once volatile fields are stripped.

Determinism contract: every field that measures wall clock (or is
otherwise process-dependent) must use one of the names in
:data:`VOLATILE_FIELDS`; :func:`strip_volatile` removes exactly those,
and the determinism tests compare the remainder byte-for-byte.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Iterable

SCHEMA = "repro-events/1"

#: Severity levels, least to most severe.
LEVELS = ("debug", "info", "warning", "error")

#: Field names that may carry wall-clock / process-dependent values.
#: Everything else in an event record must be deterministic.
VOLATILE_FIELDS = ("ts", "pid", "elapsed_s", "seconds", "eta_s", "workers")

#: Default emitter capacity (per shard run; oldest events drop first).
DEFAULT_CAPACITY = 50_000


class EventLog:
    """A bounded process-local event buffer, off until :meth:`enable`."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.enabled = False
        self._buffer: deque = deque(maxlen=capacity)
        self.dropped = 0
        self.emitted = 0

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def emit(self, event: str, level: str = "info", **fields) -> None:
        """Append one event (no-op while disabled)."""
        if not self.enabled:
            return
        if level not in LEVELS:
            raise ValueError(f"unknown event level {level!r} (use one of {LEVELS})")
        record = {"event": event, "level": level, "ts": round(time.time(), 6)}
        record.update(fields)
        if len(self._buffer) == self._buffer.maxlen:
            self.dropped += 1
        self._buffer.append(record)
        self.emitted += 1

    def drain(self) -> list[dict]:
        """Remove and return every buffered event (oldest first)."""
        records = list(self._buffer)
        self._buffer.clear()
        return records

    def __len__(self) -> int:
        return len(self._buffer)


#: The process-local emitter instrumented modules bind to.
EVENTS = EventLog()


def emit(event: str, level: str = "info", **fields) -> None:
    """Module-level shorthand for ``EVENTS.emit(...)``."""
    if EVENTS.enabled:
        EVENTS.emit(event, level=level, **fields)


class EventWriter:
    """Appends events to a JSONL file, assigning the global ``seq``.

    The first line is always a ``log.open`` header carrying the schema
    tag; every line is serialized with sorted keys and flushed, so a
    watcher tailing the file sees complete records only.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self.seq = 0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._fh = open(path, "w", encoding="utf-8")
        self.write({"event": "log.open", "level": "info",
                    "ts": round(time.time(), 6), "schema": SCHEMA})

    def write(self, record: dict) -> dict:
        with self._lock:
            if self._fh is None:
                return record
            record = dict(record)
            record["seq"] = self.seq
            self.seq += 1
            self._fh.write(json.dumps(record, sort_keys=True))
            self._fh.write("\n")
            self._fh.flush()
            return record

    def write_many(self, records: Iterable[dict]) -> None:
        for record in records:
            self.write(record)

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


class OrderedShardWriter:
    """Flushes per-shard event batches to a writer **in shard order**.

    A batch for shard *k* is held until every batch for shards
    ``0..k-1`` has been flushed, which makes the on-disk order (and so
    the assigned ``seq`` numbers) independent of worker scheduling
    while still streaming each batch as soon as it is eligible.
    """

    def __init__(self, writer: EventWriter) -> None:
        self._writer = writer
        self._pending: dict[int, list[dict]] = {}
        self._next = 0

    def add_shard(self, shard_id: int, records: list[dict]) -> None:
        self._pending[shard_id] = list(records)
        while self._next in self._pending:
            self._writer.write_many(self._pending.pop(self._next))
            self._next += 1

    def flush_all(self) -> None:
        """Flush any still-held batches in shard order (abort path)."""
        for shard_id in sorted(self._pending):
            self._writer.write_many(self._pending.pop(shard_id))
            self._next = max(self._next, shard_id + 1)


# -- reading / validation / rendering -------------------------------------


def load_events(path: str) -> list[dict]:
    """Parse an events JSONL file into a list of records."""
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line_number, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError as exc:
                raise ValueError(f"{path}:{line_number}: bad JSON: {exc}") from exc
    return records


def validate_events(records: list[dict]) -> list[str]:
    """Structural validation; returns a list of problems (empty = valid)."""
    errors: list[str] = []
    if not records:
        return ["event log is empty (expected a log.open header)"]
    header = records[0]
    if not isinstance(header, dict) or header.get("event") != "log.open":
        errors.append("first event is not a log.open header")
    elif header.get("schema") != SCHEMA:
        errors.append(
            f"header schema is {header.get('schema')!r}, expected {SCHEMA!r}"
        )
    for index, record in enumerate(records):
        where = f"event {index}"
        if not isinstance(record, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        for field in ("event", "level", "ts", "seq"):
            if field not in record:
                errors.append(f"{where}: missing {field!r}")
        if record.get("level") not in LEVELS:
            errors.append(f"{where}: unknown level {record.get('level')!r}")
        if "ts" in record and not isinstance(record["ts"], (int, float)):
            errors.append(f"{where}: ts is not a number")
        if record.get("seq") != index:
            errors.append(
                f"{where}: seq is {record.get('seq')!r}, expected {index}"
            )
    return errors


def strip_volatile(records: Iterable[dict]) -> list[dict]:
    """Drop wall-clock/process fields — the deterministic remainder."""
    return [
        {key: value for key, value in record.items()
         if key not in VOLATILE_FIELDS}
        for record in records
    ]


def summarize_events(records: list[dict]) -> dict:
    """Counts by event type and level, plus resilience headline numbers."""
    by_event: dict[str, int] = {}
    by_level: dict[str, int] = {}
    for record in records:
        if not isinstance(record, dict):
            continue
        by_event[record.get("event", "?")] = (
            by_event.get(record.get("event", "?"), 0) + 1
        )
        by_level[record.get("level", "?")] = (
            by_level.get(record.get("level", "?"), 0) + 1
        )
    return {
        "total": len(records),
        "by_event": dict(sorted(by_event.items())),
        "by_level": {
            level: by_level[level] for level in LEVELS if level in by_level
        },
        "retries": by_event.get("scanner.retry", 0),
        "chaos_injections": by_event.get("chaos.injected", 0),
        "breaker_trips": by_event.get("breaker.opened", 0),
        "checkpoints": by_event.get("checkpoint.write", 0),
        "aborted": by_event.get("study.abort", 0) > 0,
    }


def render_event(record: dict) -> str:
    """One human-readable line for ``repro events``."""
    level = record.get("level", "?")
    event = record.get("event", "?")
    skip = {"event", "level", "ts", "seq", "schema"}
    fields = " ".join(
        f"{key}={record[key]}" for key in record if key not in skip
    )
    return f"[{level:>7}] {event:<22} {fields}".rstrip()


def render_summary(summary: dict) -> str:
    """The ``repro events --summary`` table."""
    lines = [f"{summary['total']:,} events"]
    by_level = summary.get("by_level", {})
    if by_level:
        lines.append(
            "  levels: " + "  ".join(
                f"{level}={count:,}" for level, count in by_level.items()
            )
        )
    by_event = summary.get("by_event", {})
    if by_event:
        width = max(len(name) for name in by_event)
        for name, count in sorted(by_event.items(), key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"  {name:<{width}}  {count:>8,}")
    if summary.get("aborted"):
        lines.append("  run ABORTED before the merge")
    return "\n".join(lines)


def level_at_least(record: dict, threshold: str) -> bool:
    """Is the record's severity >= ``threshold``?"""
    try:
        return LEVELS.index(record.get("level", "debug")) >= LEVELS.index(threshold)
    except ValueError:
        return True


__all__ = [
    "SCHEMA",
    "LEVELS",
    "VOLATILE_FIELDS",
    "DEFAULT_CAPACITY",
    "EventLog",
    "EVENTS",
    "emit",
    "EventWriter",
    "OrderedShardWriter",
    "load_events",
    "validate_events",
    "strip_volatile",
    "summarize_events",
    "render_event",
    "render_summary",
    "level_at_least",
]
