"""The live observability plane: in-run HTTP exposition + event log.

PR 3's telemetry is post-hoc — manifest and metrics land on disk after
the study exits.  This module makes the same registry data visible
*while the study runs*:

* :class:`ObservabilityServer` — a stdlib ``ThreadingHTTPServer`` on a
  daemon thread serving ``/metrics`` (Prometheus text),
  ``/progress`` (JSON), ``/healthz``, and ``/events`` (recent ring).

* :class:`LivePlane` — the bundle the engine talks to: a
  :class:`~repro.obs.progress.ProgressTracker`, a merged live metrics
  snapshot fed by per-day ``snapshot_delta`` pushes, the structured
  event log writer, and (optionally) the HTTP server on top.

* :class:`SpoolPush` / :class:`SpoolPoller` — the cross-process push
  protocol.  Pool workers can't call into the parent's plane, so each
  worker drops per-day delta batches as atomic JSON files into a spool
  directory; a parent poller thread folds them into the live snapshot
  within ~0.2 s.  The spool is diagnostics-only: final merged metrics
  still come from the per-shard full-run deltas merged in shard order,
  so study output stays byte-identical whether the plane is on or off.

Threading model: HTTP handler threads only *read*, through three
supplier callables that take the plane's lock, copy, and release; the
engine (or the poller thread) is the only writer.  Nothing here runs
unless the caller builds a plane — the default study path pays zero.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from .events import SCHEMA as EVENTS_SCHEMA
from .events import EventWriter, OrderedShardWriter
from .metrics import merge_snapshots
from .progress import ProgressTracker
from .report import render_prometheus

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: How many recent events the /events endpoint retains.
RECENT_EVENTS = 256


class _Handler(BaseHTTPRequestHandler):
    """Routes GETs to the server's suppliers; everything else is 404."""

    server_version = "repro-obs/1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                body = render_prometheus(self.server.metrics_supplier())
                self._respond(200, PROMETHEUS_CONTENT_TYPE, body.encode("utf-8"))
            elif path == "/progress":
                self._respond_json(self.server.progress_supplier())
            elif path == "/healthz":
                self._respond_json({
                    "ok": True,
                    "uptime_s": round(time.monotonic() - self.server.started, 3),
                })
            elif path == "/events":
                self._respond_json({
                    "schema": EVENTS_SCHEMA,
                    "recent": self.server.events_supplier(),
                })
            else:
                self._respond(
                    404, "text/plain; charset=utf-8",
                    b"repro-obs endpoints: /metrics /progress /healthz /events\n",
                )
        except Exception as exc:  # pragma: no cover - defensive
            self._respond(
                500, "text/plain; charset=utf-8",
                f"supplier error: {exc}\n".encode("utf-8"),
            )

    def _respond(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_json(self, document) -> None:
        body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        self._respond(200, "application/json; charset=utf-8", body)

    def log_message(self, format: str, *args) -> None:
        """Silence per-request stderr chatter."""


class ObservabilityServer:
    """A daemon-thread HTTP server over three read-only suppliers."""

    def __init__(
        self,
        metrics_supplier: Callable[[], dict],
        progress_supplier: Callable[[], dict],
        events_supplier: Optional[Callable[[], list]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.metrics_supplier = metrics_supplier
        self._httpd.progress_supplier = progress_supplier
        self._httpd.events_supplier = events_supplier or (lambda: [])
        self._httpd.started = time.monotonic()
        self._thread: Optional[threading.Thread] = None
        self.host = host
        self.port = self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-obs-server",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


class LivePlane:
    """Everything a running study exposes, bundled for the engine.

    Construction is cheap and side-effect free; :meth:`start` opens
    the event file and binds the HTTP port.  The caller (CLI or test)
    owns the lifecycle — the engine only feeds hooks, all of which are
    no-ops for the parts that weren't requested.
    """

    def __init__(
        self,
        serve_port: Optional[int] = None,
        events_path: Optional[str] = None,
        host: str = "127.0.0.1",
    ) -> None:
        self.serve_port = serve_port
        self.events_path = events_path
        self.host = host
        self.progress = ProgressTracker()
        self.server: Optional[ObservabilityServer] = None
        self._writer: Optional[EventWriter] = None
        self._ordered: Optional[OrderedShardWriter] = None
        self._recent: deque = deque(maxlen=RECENT_EVENTS)
        self._lock = threading.Lock()
        self._live: dict = {"counters": {}, "gauges": {}, "histograms": {}}

    @property
    def events_enabled(self) -> bool:
        return self.events_path is not None

    @property
    def url(self) -> Optional[str]:
        return self.server.url if self.server is not None else None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "LivePlane":
        if self.events_path is not None:
            self._writer = EventWriter(self.events_path)
            self._ordered = OrderedShardWriter(self._writer)
        if self.serve_port is not None:
            self.server = ObservabilityServer(
                self.live_snapshot,
                self.progress.snapshot,
                self.recent_events,
                host=self.host,
                port=self.serve_port,
            )
            self.server.start()
        return self

    def stop(self) -> None:
        if self.server is not None:
            self.server.stop()
            self.server = None
        if self._writer is not None:
            self._writer.close()
            self._writer = None
            self._ordered = None

    # -- event plumbing ----------------------------------------------------

    def _write_now(self, event: str, level: str = "info", **fields) -> None:
        """Write a parent-process event immediately (bypasses reorder)."""
        record = {"event": event, "level": level,
                  "ts": round(time.time(), 6), **fields}
        if self._writer is not None:
            record = self._writer.write(record)
        self._recent.append(record)

    # -- engine hooks ------------------------------------------------------

    def study_started(
        self, shards: int, days: int, workers: int, resumed: bool = False
    ) -> None:
        self.progress.begin(shards, days)
        self._write_now(
            "study.start", shards=shards, days=days,
            workers=workers, resumed=resumed,
        )

    def day_completed(
        self, shard_id: int, day: int, days: int, grabs: int, delta: dict
    ) -> None:
        """One shard finished one study day (direct call or spool)."""
        self.progress.day_completed(shard_id, day, days, grabs)
        if delta:
            with self._lock:
                self._live = merge_snapshots([self._live, delta])

    def record_shard(
        self, result, checkpointed: bool = False, restored: bool = False
    ) -> None:
        """A shard finished (or was restored from its checkpoint)."""
        self.progress.shard_completed(
            result.shard_id, getattr(result.stats, "days", None),
            restored=restored,
        )
        batch = list(getattr(result, "events", []) or [])
        if restored:
            self._recent.append({
                "event": "checkpoint.restored", "level": "info",
                "shard": result.shard_id,
            })
            batch.append({
                "event": "checkpoint.restored", "level": "info",
                "ts": round(time.time(), 6), "shard": result.shard_id,
            })
        elif checkpointed:
            batch.append({
                "event": "checkpoint.write", "level": "info",
                "ts": round(time.time(), 6), "shard": result.shard_id,
            })
        if self._ordered is not None and batch:
            self._ordered.add_shard(result.shard_id, batch)
        for record in batch[-32:]:
            self._recent.append(record)

    def study_finished(self, stats) -> None:
        if self._ordered is not None:
            self._ordered.flush_all()
        self._write_now(
            "study.merge",
            grabs=getattr(stats, "grabs", 0),
            shards=getattr(stats, "shards", 0),
        )
        self._write_now(
            "study.end",
            grabs=getattr(stats, "grabs", 0),
            elapsed_s=round(getattr(stats, "elapsed_seconds", 0.0), 3),
        )
        self.progress.finish()

    def study_aborted(self, message: str) -> None:
        if self._ordered is not None:
            self._ordered.flush_all()
        self._write_now("study.abort", level="error", message=str(message))
        self.progress.finish(aborted=True)

    # -- suppliers (read side) ---------------------------------------------

    def live_snapshot(self) -> dict:
        """A copy of the merged live metrics (safe across threads)."""
        with self._lock:
            return {
                "counters": dict(self._live["counters"]),
                "gauges": dict(self._live["gauges"]),
                "histograms": {
                    key: dict(value)
                    for key, value in self._live["histograms"].items()
                },
            }

    def recent_events(self) -> list:
        return list(self._recent)


# -- cross-process push protocol -------------------------------------------


class SpoolPush:
    """Worker side: drop per-day delta batches as atomic JSON files.

    File names are ``<shard:02d>-<seq:04d>.json`` so the poller can
    process each shard's pushes in order; writes go through a tmp file
    + ``os.replace`` so a concurrent scan never reads a partial file.
    """

    def __init__(self, directory: str, shard_id: int) -> None:
        self.directory = directory
        self.shard_id = shard_id
        self._seq = 0

    def push(self, day: int, days: int, grabs: int, delta: dict) -> None:
        name = f"{self.shard_id:02d}-{self._seq:04d}.json"
        self._seq += 1
        payload = {
            "shard": self.shard_id, "day": day, "days": days,
            "grabs": grabs, "delta": delta,
        }
        fd, tmp = tempfile.mkstemp(
            prefix=f".{name}.", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, os.path.join(self.directory, name))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


class SpoolPoller:
    """Parent side: fold spooled pushes into the plane as they land."""

    def __init__(
        self, directory: str, plane: LivePlane, interval: float = 0.2
    ) -> None:
        self.directory = directory
        self.plane = plane
        self.interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-spool", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.drain()

    def drain(self) -> int:
        """Process (and delete) every complete spool file present."""
        try:
            names = sorted(
                name for name in os.listdir(self.directory)
                if name.endswith(".json") and not name.startswith(".")
            )
        except OSError:
            return 0
        processed = 0
        for name in names:
            path = os.path.join(self.directory, name)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    payload = json.load(fh)
            except (OSError, ValueError):
                continue
            self.plane.day_completed(
                payload.get("shard", 0),
                payload.get("day", 0),
                payload.get("days", 0),
                payload.get("grabs", 0),
                payload.get("delta", {}),
            )
            try:
                os.unlink(path)
            except OSError:
                pass
            processed += 1
        return processed

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.drain()


__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "RECENT_EVENTS",
    "ObservabilityServer",
    "LivePlane",
    "SpoolPush",
    "SpoolPoller",
]
