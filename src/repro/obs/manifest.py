"""Run manifests: the provenance record of one study execution.

The paper's campaign notes ("the scans ran daily between March and
May, from these hosts, with these failure counts") are what let the
authors trust their own data.  A run manifest is the machine-readable
equivalent for this reproduction: alongside the dataset, a telemetry
directory records

* exactly what was run — study + ecosystem configuration, seed,
  shard/worker layout, and ``git describe`` of the producing tree;
* how it went — wall-clock per shard and per day, grabs and grab
  rates, per-experiment scan counts, per-channel record counts;
* what the hot paths did — crypto cache hit/miss rates, handshake and
  resumption counters (the merged metrics snapshot lives in a sibling
  ``metrics.json``; the manifest embeds only the headline summaries).

A telemetry directory contains::

    manifest.json   this record
    metrics.json    merged MetricsRegistry snapshot (shard order)
    metrics.prom    Prometheus-style text exposition of the same
    trace.jsonl     span records (ring-buffer tail, per process)

Everything here is output-neutral: manifests are written *next to*
the dataset (never into it), draw no randomness, and never touch
record content — the golden-digest and workers-byte-identity tests
hold with telemetry on or off.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Optional

SCHEMA = "repro-telemetry/1"

MANIFEST_NAME = "manifest.json"
METRICS_NAME = "metrics.json"
PROMETHEUS_NAME = "metrics.prom"
TRACE_NAME = "trace.jsonl"


def git_describe(cwd: Optional[str] = None) -> str:
    """``git describe --always --dirty`` of the producing tree.

    Returns ``"unknown"`` when git is missing, the tree is not a
    repository, or the command fails any other way — a manifest must
    never fail to build because of provenance lookup.
    """
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip() or "unknown"


def _jsonable(value):
    """Best-effort JSON projection for config dataclasses."""
    try:
        json.dumps(value)
        return value
    except TypeError:
        return repr(value)


def config_dict(config) -> dict:
    """A JSON-safe dict of a (dataclass-ish) config object."""
    if config is None:
        return {}
    fields = getattr(config, "__dataclass_fields__", None)
    items = (
        {name: getattr(config, name) for name in fields}
        if fields is not None
        else dict(vars(config))
    )
    return {name: _jsonable(value) for name, value in sorted(items.items())}


def build_manifest(
    *,
    study_config: Optional[object] = None,
    ecosystem_config: Optional[object] = None,
    run: Optional[dict] = None,
    shards: Optional[list[dict]] = None,
    experiments: Optional[dict] = None,
    channels: Optional[dict] = None,
    caches: Optional[dict] = None,
    label: str = "study",
    extra: Optional[dict] = None,
) -> dict:
    """Assemble a manifest dict (see module docstring for the shape)."""
    import sys

    manifest = {
        "schema": SCHEMA,
        "label": label,
        "created_unix": round(time.time(), 3),
        "python": sys.version.split()[0],
        "git": {"describe": git_describe()},
        "config": {
            "study": config_dict(study_config),
            "ecosystem": config_dict(ecosystem_config),
        },
        "seed": config_dict(study_config).get("seed"),
        "run": run or {},
        "shards": shards or [],
        "experiments": experiments or {},
        "channels": channels or {},
        "caches": caches or {},
        "files": {
            "metrics": METRICS_NAME,
            "prometheus": PROMETHEUS_NAME,
            "trace": TRACE_NAME,
        },
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(directory: str, manifest: dict) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, MANIFEST_NAME)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_manifest(path: str) -> dict:
    """Load a manifest from its file or its containing directory."""
    if os.path.isdir(path):
        path = os.path.join(path, MANIFEST_NAME)
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def validate_manifest(manifest: dict) -> list[str]:
    """Structural validation; returns a list of problems (empty = valid)."""
    errors: list[str] = []
    if not isinstance(manifest, dict):
        return ["manifest is not a JSON object"]
    if manifest.get("schema") != SCHEMA:
        errors.append(
            f"schema is {manifest.get('schema')!r}, expected {SCHEMA!r}"
        )
    for field, kind in (
        ("label", str),
        ("run", dict),
        ("shards", list),
        ("experiments", dict),
        ("channels", dict),
        ("caches", dict),
        ("config", dict),
        ("files", dict),
    ):
        if not isinstance(manifest.get(field), kind):
            errors.append(f"{field!r} missing or not a {kind.__name__}")
    run = manifest.get("run", {})
    if isinstance(run, dict):
        for field in ("days", "shards", "workers", "grabs"):
            value = run.get(field)
            if not isinstance(value, int) or value < 0:
                errors.append(f"run.{field} missing or not a non-negative int")
        elapsed = run.get("elapsed_seconds")
        if not isinstance(elapsed, (int, float)) or elapsed < 0:
            errors.append("run.elapsed_seconds missing or negative")
    channels = manifest.get("channels", {})
    if isinstance(channels, dict):
        for name, count in channels.items():
            if not isinstance(count, int) or count < 0:
                errors.append(f"channels[{name!r}] is not a non-negative int")
    shards = manifest.get("shards", [])
    if isinstance(shards, list):
        seen: set[int] = set()
        for entry in shards:
            if not isinstance(entry, dict) or "shard_id" not in entry:
                errors.append("shard entry missing shard_id")
                continue
            shard_id = entry["shard_id"]
            if shard_id in seen:
                errors.append(f"duplicate shard_id {shard_id}")
            seen.add(shard_id)
        run_shards = run.get("shards") if isinstance(run, dict) else None
        if isinstance(run_shards, int) and shards and len(shards) != run_shards:
            errors.append(
                f"{len(shards)} shard entries but run.shards={run_shards}"
            )
    return errors


def load_metrics(directory: str) -> dict:
    """Load the merged metrics snapshot next to a manifest, or {}."""
    path = os.path.join(directory, METRICS_NAME)
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def write_metrics(directory: str, snapshot: dict) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, METRICS_NAME)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


__all__ = [
    "SCHEMA",
    "MANIFEST_NAME",
    "METRICS_NAME",
    "PROMETHEUS_NAME",
    "TRACE_NAME",
    "git_describe",
    "config_dict",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "validate_manifest",
    "load_metrics",
    "write_metrics",
]
