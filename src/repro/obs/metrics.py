"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The measurement pipeline's observability layer (ISSUE: the paper's
nine-week campaign depended on per-day probe/failure/timing numbers).
Design constraints, in order:

* **Hot-path cheap.**  Instruments sit inside ``aes_for_key`` and the
  ticket codec, which run millions of times per study.  A counter is a
  plain Python object with an integer slot; modules bind the instrument
  once at import time and increment an attribute — no dict lookup, no
  lock (the pipeline is single-threaded per process).

* **Aggregatable across processes.**  A registry serializes to a plain
  JSON snapshot; :func:`merge_snapshots` combines per-shard snapshots
  *in shard order*, so the merged numbers are a deterministic function
  of the shards alone — the metrics analogue of the engine's
  byte-identity guarantee (workers never affect the merge).

* **Output-neutral.**  Nothing here touches seeded RNG state or record
  content; instruments only ever add integers/floats on the side.

Snapshots split instruments into two determinism classes: ``counters``
(and gauges) count events, which are deterministic given the seed and
shard layout; ``histograms`` hold wall-clock timings, which are not.
Tests pin the former and only sanity-check the latter.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

#: Default histogram bucket upper bounds, in seconds (a log-ish ladder
#: from sub-millisecond grabs up to multi-second shard days).
DEFAULT_SECONDS_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _key(name: str, labels: dict) -> str:
    """Serialize (name, labels) to a stable string key.

    ``name{a=1,b=x}`` with labels sorted by label name — the snapshot /
    JSON identity of an instrument.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`_key` (for rendering/exposition)."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: dict[str, str] = {}
    for part in inner[:-1].split(","):
        if part:
            label, _, value = part.partition("=")
            labels[label] = value
    return name, labels


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, cache size)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram (cumulative-style bucket counts + sum).

    ``bounds`` are upper bounds of the finite buckets; an implicit
    +Inf bucket catches the rest.  ``counts`` are per-bucket (not
    cumulative) so merging is plain elementwise addition.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Iterable[float] = DEFAULT_SECONDS_BUCKETS) -> None:
        self.bounds = tuple(sorted(bounds))
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.sum += value
        self.count += 1


class MetricsRegistry:
    """A named collection of instruments with snapshot/merge support.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call with a given (name, labels) creates the instrument, later
    calls return the same object, so hot paths bind once at import and
    everything stays registered for snapshots.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument factories ---------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = _key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        bounds: Iterable[float] = DEFAULT_SECONDS_BUCKETS,
        **labels,
    ) -> Histogram:
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(bounds)
        return instrument

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-able copy of every instrument's current state.

        Keys are sorted so two registries holding the same values
        serialize identically.
        """
        histograms = {}
        for key in sorted(self._histograms):
            hist = self._histograms[key]
            histograms[key] = {
                "bounds": list(hist.bounds),
                "counts": list(hist.counts),
                "sum": hist.sum,
                "count": hist.count,
            }
        return {
            "counters": {
                key: self._counters[key].value for key in sorted(self._counters)
            },
            "gauges": {key: self._gauges[key].value for key in sorted(self._gauges)},
            "histograms": histograms,
        }

    def snapshot_delta(self, since: dict) -> dict:
        """Current snapshot minus a previous one (counters/histograms).

        Gauges are point-in-time and carried over as-is.  This is how a
        shard run reports only *its own* activity even when the worker
        process previously ran other shards.
        """
        now = self.snapshot()
        counters = {}
        for key, value in now["counters"].items():
            delta = value - since.get("counters", {}).get(key, 0)
            if delta:
                counters[key] = delta
        histograms = {}
        for key, hist in now["histograms"].items():
            base = since.get("histograms", {}).get(key)
            if base is None or base.get("bounds") != hist["bounds"]:
                if hist["count"]:
                    histograms[key] = hist
                continue
            counts = [a - b for a, b in zip(hist["counts"], base["counts"])]
            if any(counts):
                histograms[key] = {
                    "bounds": hist["bounds"],
                    "counts": counts,
                    "sum": hist["sum"] - base["sum"],
                    "count": hist["count"] - base["count"],
                }
        return {"counters": counters, "gauges": now["gauges"], "histograms": histograms}

    def reset(self) -> None:
        """Zero every instrument *in place* (module bindings stay valid)."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0.0
        for histogram in self._histograms.values():
            histogram.counts = [0] * (len(histogram.bounds) + 1)
            histogram.sum = 0.0
            histogram.count = 0


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge snapshots in the order given (shard order ⇒ deterministic).

    Counters and histogram buckets add; gauges take the last seen value
    (a later shard's reading wins, matching the record-merge ordering).
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for snapshot in snapshots:
        for key, value in snapshot.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, value in snapshot.get("gauges", {}).items():
            gauges[key] = value
        for key, hist in snapshot.get("histograms", {}).items():
            merged = histograms.get(key)
            if merged is None or merged["bounds"] != hist["bounds"]:
                histograms[key] = {
                    "bounds": list(hist["bounds"]),
                    "counts": list(hist["counts"]),
                    "sum": hist["sum"],
                    "count": hist["count"],
                }
            else:
                merged["counts"] = [
                    a + b for a, b in zip(merged["counts"], hist["counts"])
                ]
                merged["sum"] += hist["sum"]
                merged["count"] += hist["count"]
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


def cache_stats(snapshot: dict, name: str) -> Optional[dict]:
    """Hit/miss/eviction summary for one ``<name>.{hit,miss,...}`` family."""
    counters = snapshot.get("counters", {})
    hits = counters.get(f"{name}.hit", 0)
    misses = counters.get(f"{name}.miss", 0)
    if hits == 0 and misses == 0:
        return None
    stats = {
        "hits": hits,
        "misses": misses,
        "hit_rate": round(hits / (hits + misses), 4),
    }
    evictions = counters.get(f"{name}.eviction", 0)
    if evictions:
        stats["evictions"] = evictions
    return stats


#: The process-local default registry every instrumented module binds to.
METRICS = MetricsRegistry()


# -- process-cache coordination ------------------------------------------
#
# The crypto layer keeps value-keyed memo caches (AES key schedules,
# signed-params encodings, certificate signature verdicts).  Their
# hit/miss counts depend on process history: under workers=1 a shard
# inherits a warm cache from the previous shard, under workers=N it
# starts cold.  To make merged cache counters deterministic regardless
# of worker count, the scan engine resets these caches at the start of
# every shard run — safe because the caches are value-keyed (clearing
# can never change an output byte, only recompute cost).  Caching
# modules register their clear functions here at import time.

_CACHE_RESETTERS: list[Callable[[], None]] = []


def register_process_cache(reset_fn: Callable[[], None]) -> None:
    """Register a zero-argument cache-clear callback."""
    _CACHE_RESETTERS.append(reset_fn)


def reset_process_caches() -> None:
    """Clear every registered value-keyed cache (see note above)."""
    for reset_fn in _CACHE_RESETTERS:
        reset_fn()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "DEFAULT_SECONDS_BUCKETS",
    "merge_snapshots",
    "cache_stats",
    "parse_key",
    "register_process_cache",
    "reset_process_caches",
]
