"""Opt-in profiling hooks: phase timers, slowest grabs, cProfile.

Three instruments, all off by default (the study's hot path pays one
flag check when disabled):

* **Phase timers** — :meth:`Profiler.phase` context managers accumulate
  wall-clock per named phase (``ecosystem.advance``,
  ``experiment.<name>``, ``finalize``, ``metadata``), answering
  "where did the shard's time go?" at a coarser, cheaper grain than
  span tracing.

* **Slowest grabs** — a bounded top-N heap of ``(seconds, domain)``
  observed by the grabber, answering "which domains are dragging?".

* **cProfile** — each shard optionally runs under :mod:`cProfile` and
  dumps ``shard-NN.pstats`` into the profile directory; the parent
  aggregates every dump with :mod:`pstats` into ``profile.txt`` plus a
  machine-readable ``summary.json`` that ``repro stats`` renders.

Workers snapshot their profiler into ``ShardResult.profile`` so the
parent can merge across processes; like metrics, the merge is done in
shard order, though profile numbers are inherently wall-clock and are
reported as diagnostics, never as part of the deterministic output.
"""

from __future__ import annotations

import cProfile
import heapq
import io
import json
import os
import pstats
import time
from contextlib import contextmanager
from typing import Optional

SUMMARY_NAME = "summary.json"
REPORT_NAME = "profile.txt"

#: How many slowest grabs each shard keeps.
SLOWEST_N = 20

#: How many hottest functions the pstats aggregation reports.
TOP_FUNCTIONS = 25


class Profiler:
    """Process-local phase timers + slowest-grab tracker."""

    def __init__(self, slowest_n: int = SLOWEST_N) -> None:
        self.enabled = False
        self._slowest_n = slowest_n
        self.phase_seconds: dict[str, float] = {}
        self.phase_counts: dict[str, int] = {}
        self._slowest: list[tuple[float, str]] = []  # min-heap

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.phase_seconds = {}
        self.phase_counts = {}
        self._slowest = []

    @contextmanager
    def phase(self, name: str):
        """Accumulate time under ``name`` (no-op while disabled)."""
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed
            self.phase_counts[name] = self.phase_counts.get(name, 0) + 1

    def observe_grab(self, domain: str, seconds: float) -> None:
        """Consider one grab for the slowest-N board."""
        if not self.enabled:
            return
        if len(self._slowest) < self._slowest_n:
            heapq.heappush(self._slowest, (seconds, domain))
        elif seconds > self._slowest[0][0]:
            heapq.heapreplace(self._slowest, (seconds, domain))

    def slowest(self) -> list[tuple[float, str]]:
        """Slowest grabs, slowest first."""
        return sorted(self._slowest, reverse=True)

    def snapshot(self) -> dict:
        """JSON-serializable state for ShardResult.profile."""
        return {
            "phase_seconds": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.phase_seconds.items())
            },
            "phase_counts": dict(sorted(self.phase_counts.items())),
            "slowest": [
                [round(seconds, 6), domain] for seconds, domain in self.slowest()
            ],
        }


#: The process-local profiler instrumented modules bind to.
PROFILER = Profiler()


@contextmanager
def shard_profile(profile_dir: Optional[str], shard_id: int):
    """Run a shard under cProfile, dumping ``shard-NN.pstats``.

    A no-op context when ``profile_dir`` is None, so callers wrap
    unconditionally.
    """
    if profile_dir is None:
        yield None
        return
    os.makedirs(profile_dir, exist_ok=True)
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield profile
    finally:
        profile.disable()
        profile.dump_stats(pstats_path(profile_dir, shard_id))


def pstats_path(profile_dir: str, shard_id: int) -> str:
    return os.path.join(profile_dir, f"shard-{shard_id:02d}.pstats")


def start_shard_profile(
    profile_dir: Optional[str],
) -> Optional[cProfile.Profile]:
    """Begin cProfile collection for one shard (None when disabled)."""
    if profile_dir is None:
        return None
    os.makedirs(profile_dir, exist_ok=True)
    profile = cProfile.Profile()
    profile.enable()
    return profile


def stop_shard_profile(
    profile: Optional[cProfile.Profile],
    profile_dir: Optional[str],
    shard_id: int,
) -> Optional[str]:
    """Finish collection, dump ``shard-NN.pstats``; returns the name."""
    if profile is None or profile_dir is None:
        return None
    profile.disable()
    path = pstats_path(profile_dir, shard_id)
    profile.dump_stats(path)
    return os.path.basename(path)


def merge_profiles(profiles: list[dict]) -> dict:
    """Merge per-shard profile snapshots (phase sums, global top-N)."""
    phase_seconds: dict[str, float] = {}
    phase_counts: dict[str, int] = {}
    board: list[tuple[float, str]] = []
    for profile in profiles:
        if not profile:
            continue
        for name, seconds in profile.get("phase_seconds", {}).items():
            phase_seconds[name] = phase_seconds.get(name, 0.0) + seconds
        for name, count in profile.get("phase_counts", {}).items():
            phase_counts[name] = phase_counts.get(name, 0) + count
        for seconds, domain in profile.get("slowest", []):
            if len(board) < SLOWEST_N:
                heapq.heappush(board, (seconds, domain))
            elif seconds > board[0][0]:
                heapq.heapreplace(board, (seconds, domain))
    return {
        "phase_seconds": {
            name: round(seconds, 6)
            for name, seconds in sorted(phase_seconds.items())
        },
        "phase_counts": dict(sorted(phase_counts.items())),
        "slowest": [
            [round(seconds, 6), domain]
            for seconds, domain in sorted(board, reverse=True)
        ],
    }


def aggregate_pstats(profile_dir: str) -> tuple[Optional[str], list[dict]]:
    """Combine every ``shard-*.pstats`` dump in ``profile_dir``.

    Returns ``(report_text, top_functions)`` — the classic pstats
    cumulative-time listing plus a JSON-friendly top-functions table —
    or ``(None, [])`` when no dumps exist.
    """
    dumps = sorted(
        os.path.join(profile_dir, name)
        for name in os.listdir(profile_dir)
        if name.startswith("shard-") and name.endswith(".pstats")
    )
    if not dumps:
        return None, []
    stats = pstats.Stats(dumps[0])
    for dump in dumps[1:]:
        stats.add(dump)
    buffer = io.StringIO()
    stats.stream = buffer
    stats.sort_stats("cumulative").print_stats(TOP_FUNCTIONS)
    top: list[dict] = []
    for func, (calls, _primitive, total_time, cumulative, _callers) in sorted(
        stats.stats.items(), key=lambda item: -item[1][3]
    )[:TOP_FUNCTIONS]:
        filename, line, name = func
        top.append({
            "function": f"{os.path.basename(filename)}:{line}:{name}",
            "calls": calls,
            "total_s": round(total_time, 6),
            "cumulative_s": round(cumulative, 6),
        })
    return buffer.getvalue(), top


def write_profile_summary(
    profile_dir: str, profiles: list[dict]
) -> dict:
    """Write ``summary.json`` + ``profile.txt``; returns the summary."""
    merged = merge_profiles(profiles)
    report, top_functions = aggregate_pstats(profile_dir)
    summary = {
        "schema": "repro-profile/1",
        "shards": sum(1 for profile in profiles if profile),
        "phase_seconds": merged["phase_seconds"],
        "phase_counts": merged["phase_counts"],
        "slowest_grabs": merged["slowest"],
        "top_functions": top_functions,
    }
    os.makedirs(profile_dir, exist_ok=True)
    tmp = os.path.join(profile_dir, SUMMARY_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, os.path.join(profile_dir, SUMMARY_NAME))
    if report is not None:
        with open(
            os.path.join(profile_dir, REPORT_NAME), "w", encoding="utf-8"
        ) as fh:
            fh.write(report)
    return summary


def load_profile_summary(profile_dir: str) -> Optional[dict]:
    path = os.path.join(profile_dir, SUMMARY_NAME)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def render_profile_report(summary: dict) -> str:
    """The ``repro stats`` profiling section."""
    lines = [f"profiling ({summary.get('shards', 0)} shard(s) profiled)"]
    phases = summary.get("phase_seconds", {})
    if phases:
        lines.append("  time by phase:")
        counts = summary.get("phase_counts", {})
        width = max(len(name) for name in phases)
        for name, seconds in sorted(phases.items(), key=lambda kv: -kv[1]):
            note = f"  ({counts[name]:,}x)" if name in counts else ""
            lines.append(f"    {name:<{width}}  {seconds:>10.3f}s{note}")
    slowest = summary.get("slowest_grabs", [])
    if slowest:
        lines.append(f"  slowest grabs (top {len(slowest)}):")
        for seconds, domain in slowest[:10]:
            lines.append(f"    {seconds * 1000:>9.3f} ms  {domain}")
    top = summary.get("top_functions", [])
    if top:
        lines.append("  hottest functions (cumulative):")
        for entry in top[:10]:
            lines.append(
                f"    {entry['cumulative_s']:>10.3f}s  "
                f"{entry['calls']:>10,}x  {entry['function']}"
            )
    return "\n".join(lines)


__all__ = [
    "SUMMARY_NAME",
    "REPORT_NAME",
    "SLOWEST_N",
    "TOP_FUNCTIONS",
    "Profiler",
    "PROFILER",
    "shard_profile",
    "pstats_path",
    "merge_profiles",
    "aggregate_pstats",
    "write_profile_summary",
    "load_profile_summary",
    "render_profile_report",
]
