"""Progress/ETA tracking for a running study (``repro-progress/1``).

The engine's unit of forward progress is the *shard-day*: a study of
``S`` shards over ``D`` days completes exactly ``S × D`` of them, each
reported by the shard's per-day callback.  :class:`ProgressTracker`
counts completed shard-days (and whole shards, for resumed runs that
skip straight to ``day D``), derives a completion fraction, and
extrapolates an ETA from the observed rate.

The tracker is the single source of truth behind both renderings: the
TTY status line (:func:`render_progress`) and the ``/progress`` JSON
endpoint (:meth:`ProgressTracker.snapshot`).  It is thread-safe —
the exporter's HTTP threads read snapshots while the engine's
callbacks write.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

SCHEMA = "repro-progress/1"

#: Lifecycle states a snapshot can report.
STATES = ("idle", "running", "done", "aborted")


class ProgressTracker:
    """Counts shard-day completions; derives fraction, rate, and ETA."""

    def __init__(self, clock=time.monotonic) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._state = "idle"
        self._started: Optional[float] = None
        self._finished: Optional[float] = None
        self._shards_total = 0
        self._days_per_shard = 0
        self._shards_done = 0
        self._day_units_done = 0
        self._restored_units = 0
        self._grabs = 0
        #: Highest completed day per shard, to make day callbacks
        #: idempotent (resume + live pushes may overlap).
        self._shard_days: dict[int, int] = {}

    # -- engine-facing callbacks ------------------------------------------

    def begin(self, shards: int, days: int) -> None:
        """Start the run (resumed shards arrive via shard_completed)."""
        with self._lock:
            self._state = "running"
            self._started = self._clock()
            self._finished = None
            self._shards_total = shards
            self._days_per_shard = days
            self._shards_done = 0
            self._day_units_done = 0
            self._restored_units = 0
            self._grabs = 0
            self._shard_days = {}

    def day_completed(
        self, shard_id: int, day: int, days: int, grabs: int = 0
    ) -> None:
        """Shard ``shard_id`` finished study day ``day`` (0-based)."""
        with self._lock:
            done_before = self._shard_days.get(shard_id, 0)
            done_now = max(done_before, day + 1)
            self._shard_days[shard_id] = done_now
            self._day_units_done += done_now - done_before
            self._grabs += max(grabs, 0)

    def shard_completed(
        self,
        shard_id: int,
        days: Optional[int] = None,
        restored: bool = False,
    ) -> None:
        """Shard finished end to end (checkpointed / merged-ready).

        ``restored`` marks shards replayed from a checkpoint: their day
        units count toward completion but not toward the observed rate,
        so the ETA reflects only work done by *this* process.
        """
        with self._lock:
            days = days if days is not None else self._days_per_shard
            done_before = self._shard_days.get(shard_id, 0)
            self._shard_days[shard_id] = max(done_before, days)
            added = max(days - done_before, 0)
            self._day_units_done += added
            if restored:
                self._restored_units += added
            self._shards_done += 1

    def finish(self, aborted: bool = False) -> None:
        with self._lock:
            self._state = "aborted" if aborted else "done"
            self._finished = self._clock()

    # -- readers -----------------------------------------------------------

    def snapshot(self) -> dict:
        """The ``/progress`` JSON document."""
        with self._lock:
            total_units = self._shards_total * self._days_per_shard
            done_units = min(self._day_units_done, total_units)
            fraction = done_units / total_units if total_units else 0.0
            now = self._finished if self._finished is not None else self._clock()
            elapsed = (now - self._started) if self._started is not None else 0.0
            eta: Optional[float] = None
            live_units = done_units - min(self._restored_units, done_units)
            if self._state == "running" and live_units > 0:
                # done == total while still "running" is the merge/finalize
                # window: remaining work is zero, so the ETA is too.
                eta = elapsed * (total_units - done_units) / live_units
            elif self._state in ("done", "aborted"):
                eta = 0.0
            return {
                "schema": SCHEMA,
                "state": self._state,
                "shards": {
                    "total": self._shards_total,
                    "completed": self._shards_done,
                },
                "day_units": {"total": total_units, "completed": done_units},
                "fraction": round(fraction, 6),
                "grabs": self._grabs,
                "elapsed_s": round(elapsed, 3),
                "eta_s": round(eta, 3) if eta is not None else None,
            }

    def render_line(self) -> str:
        return render_progress(self.snapshot())


def format_duration(seconds: Optional[float]) -> str:
    """``93.5`` → ``1m34s``; None → ``?``."""
    if seconds is None:
        return "?"
    seconds = max(0, int(round(seconds)))
    hours, remainder = divmod(seconds, 3600)
    minutes, secs = divmod(remainder, 60)
    if hours:
        return f"{hours}h{minutes:02d}m"
    if minutes:
        return f"{minutes}m{secs:02d}s"
    return f"{secs}s"


def render_progress(snapshot: dict) -> str:
    """One status line from a ``/progress`` snapshot (TTY + watch)."""
    state = snapshot.get("state", "?")
    shards = snapshot.get("shards", {})
    units = snapshot.get("day_units", {})
    fraction = snapshot.get("fraction", 0.0)
    width = 24
    filled = int(round(width * min(max(fraction, 0.0), 1.0)))
    bar = "#" * filled + "-" * (width - filled)
    parts = [
        f"[{bar}] {fraction * 100:5.1f}%",
        f"shards {shards.get('completed', 0)}/{shards.get('total', 0)}",
        f"days {units.get('completed', 0)}/{units.get('total', 0)}",
    ]
    grabs = snapshot.get("grabs", 0)
    if grabs:
        parts.append(f"{grabs:,} grabs")
    parts.append(f"elapsed {format_duration(snapshot.get('elapsed_s'))}")
    if state == "running":
        parts.append(f"eta {format_duration(snapshot.get('eta_s'))}")
    else:
        parts.append(state)
    return "  ".join(parts)


__all__ = [
    "SCHEMA",
    "STATES",
    "ProgressTracker",
    "format_duration",
    "render_progress",
]
