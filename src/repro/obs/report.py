"""Rendering telemetry: a human-readable report and a Prometheus
text-format exposition.

``repro stats <telemetry-dir>`` feeds a manifest (+ the sibling
metrics snapshot) through :func:`render_stats_report`; automation
scrapes :func:`render_prometheus` output (written to ``metrics.prom``
at study time and served live on ``/metrics`` by
:mod:`repro.obs.exporter`) — the standard ``# HELP`` / ``# TYPE`` /
sample line format, with dotted metric names flattened to underscores
under a ``repro_`` prefix, label values escaped per the exposition
format, and families emitted in a deterministic order (counters, then
gauges, then histograms; families sorted by name; samples sorted by
labels).  :func:`parse_prometheus` inverts the rendering back into a
snapshot-shaped dict for tests and CI smoke checks.
"""

from __future__ import annotations

import re

from .metrics import parse_key

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")

#: HELP text per dotted metric family (fallback is generated).
METRIC_HELP = {
    "scanner.grab.attempt": "TLS connection attempts made by the grabber.",
    "scanner.grab.failure": "Grab attempts that failed, by failure reason.",
    "scanner.grab.retry": "Retries taken by the grabber, by failure reason.",
    "scanner.grab.seconds": "Wall-clock duration of one grab attempt.",
    "scanner.grab.attempts_per_grab": "Connection attempts consumed per logical grab.",
    "scanner.breaker.open": "Per-domain circuit breakers currently open.",
    "scanner.breaker.opened": "Circuit-breaker open transitions.",
    "scanner.breaker.closed": "Circuit-breaker close transitions.",
    "engine.pending_shards": "Shards not yet completed by the study engine.",
    "experiment.grabs": "Grabs attributed to each experiment.",
    "faults.injected": "Faults injected by the chaos plan, by kind.",
}


def _prom_name(name: str) -> str:
    """Flatten a dotted metric name to a valid Prometheus name."""
    flat = _NAME_BAD.sub("_", name.replace(".", "_").replace("-", "_"))
    prom = "repro_" + flat
    # A name can't start with a digit; the repro_ prefix guarantees
    # that here, but guard anyway for direct callers.
    if prom[0].isdigit():
        prom = "_" + prom
    return prom


def _escape_label_value(value) -> str:
    """Escape backslash, double-quote, and newline per the format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_name(name: str) -> str:
    clean = _LABEL_BAD.sub("_", str(name))
    if not clean or clean[0].isdigit():
        clean = "_" + clean
    return clean


def _prom_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_label_name(k)}="{_escape_label_value(v)}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _help_text(name: str) -> str:
    return METRIC_HELP.get(name, f"repro metric {name}.")


def _grouped(section: dict) -> list[tuple[str, list[tuple[dict, object]]]]:
    """Group a snapshot section by family: sorted families, sorted samples."""
    families: dict[str, list[tuple[dict, object]]] = {}
    for key, value in section.items():
        name, labels = parse_key(key)
        families.setdefault(name, []).append((labels, value))
    return [
        (name, sorted(samples, key=lambda s: sorted(s[0].items())))
        for name, samples in sorted(families.items())
    ]


def render_prometheus(snapshot: dict) -> str:
    """Prometheus text exposition of a metrics snapshot.

    Deterministic: for equal snapshots the output is byte-identical —
    kinds in a fixed order, families sorted by name, one ``# HELP`` +
    ``# TYPE`` pair per family, samples sorted by labels.
    """
    lines: list[str] = []

    def emit_header(name: str, prom: str, kind: str) -> None:
        lines.append(f"# HELP {prom} {_help_text(name)}")
        lines.append(f"# TYPE {prom} {kind}")

    for name, samples in _grouped(snapshot.get("counters", {})):
        prom = _prom_name(name) + "_total"
        emit_header(name, prom, "counter")
        for labels, value in samples:
            lines.append(f"{prom}{_prom_labels(labels)} {value}")
    for name, samples in _grouped(snapshot.get("gauges", {})):
        prom = _prom_name(name)
        emit_header(name, prom, "gauge")
        for labels, value in samples:
            lines.append(f"{prom}{_prom_labels(labels)} {value}")
    for name, samples in _grouped(snapshot.get("histograms", {})):
        prom = _prom_name(name)
        emit_header(name, prom, "histogram")
        for labels, hist in samples:
            cumulative = 0
            for bound, count in zip(hist["bounds"], hist["counts"]):
                cumulative += count
                lines.append(
                    f"{prom}_bucket{_prom_labels({**labels, 'le': bound})} "
                    f"{cumulative}"
                )
            cumulative += hist["counts"][-1]
            lines.append(
                f"{prom}_bucket{_prom_labels({**labels, 'le': '+Inf'})} "
                f"{cumulative}"
            )
            lines.append(
                f"{prom}_sum{_prom_labels(labels)} {round(hist['sum'], 6)}"
            )
            lines.append(f"{prom}_count{_prom_labels(labels)} {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- parsing the exposition back (tests + CI smoke) ------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


def _unescape_label_value(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_value(text: str):
    try:
        return int(text)
    except ValueError:
        return float(text)


def _sample_key(name: str, labels: dict) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return name + "{" + inner + "}"


def parse_prometheus(text: str) -> dict:
    """Parse an exposition back into a snapshot-shaped dict.

    The result is keyed by *Prometheus* names (the dotted originals
    are not recoverable): ``counters`` lose their ``_total`` suffix,
    histograms are reassembled from their ``_bucket``/``_sum``/
    ``_count`` series with de-cumulated counts.  Inverse of
    :func:`render_prometheus` modulo that renaming — see
    :func:`to_prom_snapshot` for comparing against a live registry.
    """
    types: dict[str, str] = {}
    raw: dict[str, list[tuple[dict, object]]] = {}
    for line_number, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"exposition line {line_number}: cannot parse {line!r}")
        labels = {
            m.group("name"): _unescape_label_value(m.group("value"))
            for m in _LABEL_RE.finditer(match.group("labels") or "")
        }
        raw.setdefault(match.group("name"), []).append(
            (labels, _parse_value(match.group("value")))
        )

    snapshot: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    histogram_families = {
        name for name, kind in types.items() if kind == "histogram"
    }
    histograms: dict[str, dict] = {}
    for name, samples in raw.items():
        family, series = name, None
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in histogram_families:
                family, series = name[: -len(suffix)], suffix[1:]
                break
        if series is not None:
            for labels, value in samples:
                labels = dict(labels)
                bound = labels.pop("le", None)
                entry = histograms.setdefault(
                    _sample_key(family, labels),
                    {"buckets": [], "sum": 0.0, "count": 0},
                )
                if series == "bucket":
                    entry["buckets"].append((bound, value))
                elif series == "sum":
                    entry["sum"] = value
                else:
                    entry["count"] = value
        elif types.get(name + "_total") == "counter" or types.get(name) == "counter":
            base = name[:-6] if name.endswith("_total") else name
            for labels, value in samples:
                snapshot["counters"][_sample_key(base, labels)] = value
        else:
            for labels, value in samples:
                snapshot["gauges"][_sample_key(name, labels)] = value

    for key, entry in histograms.items():
        finite = [
            (float(bound), count)
            for bound, count in entry["buckets"]
            if bound not in ("+Inf", "inf", None)
        ]
        finite.sort(key=lambda item: item[0])
        counts, previous = [], 0
        for _bound, cumulative in finite:
            counts.append(cumulative - previous)
            previous = cumulative
        # The +Inf bucket double-counts the overflow slot (see
        # render_prometheus): total = sum(finite) + overflow.
        overflow = entry["count"] - sum(counts) if entry["count"] else 0
        counts.append(max(overflow, 0))
        snapshot["histograms"][key] = {
            "bounds": [bound for bound, _ in finite],
            "counts": counts,
            "sum": entry["sum"],
            "count": entry["count"],
        }
    return snapshot


def to_prom_snapshot(snapshot: dict) -> dict:
    """Re-key a registry snapshot by Prometheus names.

    ``parse_prometheus(render_prometheus(s)) == to_prom_snapshot(s)``
    — the comparison form used by the exporter tests and the CI smoke
    job.
    """
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for key, value in snapshot.get("counters", {}).items():
        name, labels = parse_key(key)
        out["counters"][_sample_key(_prom_name(name), labels)] = value
    for key, value in snapshot.get("gauges", {}).items():
        name, labels = parse_key(key)
        out["gauges"][_sample_key(_prom_name(name), labels)] = value
    for key, hist in snapshot.get("histograms", {}).items():
        name, labels = parse_key(key)
        total = hist["count"]
        out["histograms"][_sample_key(_prom_name(name), labels)] = {
            "bounds": [float(bound) for bound in hist["bounds"]],
            "counts": list(hist["counts"]),
            "sum": round(hist["sum"], 6),
            "count": total,
        }
    return out


def _histogram_quantile(hist: dict, q: float) -> float:
    """Crude bucket-upper-bound quantile (good enough for a report)."""
    target = q * hist["count"]
    cumulative = 0
    for bound, count in zip(hist["bounds"], hist["counts"]):
        cumulative += count
        if cumulative >= target:
            return bound
    return float("inf")


def _resilience_sections(metrics: dict) -> list[str]:
    """Failure-reason breakdown plus retry/backoff and injected-fault
    tables (empty when the run had nothing to report)."""
    counters = metrics.get("counters", {})
    failures: dict[str, int] = {}
    retries: dict[str, int] = {}
    injected: dict[str, int] = {}
    attempts = 0
    breaker = {"opened": 0, "closed": 0}
    for key, value in counters.items():
        name, labels = parse_key(key)
        if name == "scanner.grab.failure":
            failures[labels.get("reason", "?")] = value
        elif name == "scanner.grab.retry":
            retries[labels.get("reason", "?")] = value
        elif name == "faults.injected":
            injected[labels.get("kind", "?")] = value
        elif name == "scanner.grab.attempt":
            attempts += value
        elif name == "scanner.breaker.opened":
            breaker["opened"] = value
        elif name == "scanner.breaker.closed":
            breaker["closed"] = value

    lines: list[str] = []
    if failures:
        lines.append("")
        lines.append("failure breakdown:")
        width = max(len(reason) for reason in failures)
        for reason, count in sorted(failures.items(), key=lambda kv: -kv[1]):
            share = f"  {count / attempts * 100:5.2f}% of grabs" if attempts else ""
            lines.append(f"  {reason:<{width}}  {count:>10,}{share}")

    attempts_hist = next(
        (
            hist for key, hist in metrics.get("histograms", {}).items()
            if parse_key(key)[0] == "scanner.grab.attempts_per_grab"
        ),
        None,
    )
    if retries or breaker["opened"] or (
        attempts_hist and attempts_hist.get("count")
    ):
        lines.append("")
        lines.append("retry/backoff:")
        total_retries = sum(retries.values())
        lines.append(f"  {total_retries:,} retries taken")
        width = max((len(reason) for reason in retries), default=0)
        for reason, count in sorted(retries.items(), key=lambda kv: -kv[1]):
            lines.append(f"    {reason:<{width}}  {count:>10,}")
        if attempts_hist and attempts_hist.get("count"):
            mean = attempts_hist["sum"] / attempts_hist["count"]
            lines.append(
                f"  {mean:.2f} mean attempts per grab "
                f"(over {attempts_hist['count']:,} grabs)"
            )
        if breaker["opened"]:
            lines.append(
                f"  circuit breaker: opened {breaker['opened']:,}×, "
                f"closed {breaker['closed']:,}×"
            )

    if injected:
        lines.append("")
        lines.append("injected faults (chaos plan):")
        width = max(len(kind) for kind in injected)
        for kind, count in sorted(injected.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {kind:<{width}}  {count:>10,}")
    return lines


def render_stats_report(manifest: dict, metrics: dict) -> str:
    """The ``repro stats`` human-readable view of one run."""
    lines: list[str] = []
    run = manifest.get("run", {})
    git = manifest.get("git", {}).get("describe") or "unknown"
    lines.append(
        f"run manifest: {manifest.get('label', '?')} "
        f"(schema {manifest.get('schema', '?')}, git {git}, "
        f"python {manifest.get('python', '?')})"
    )
    if run:
        lines.append(
            f"  {run.get('grabs', 0):,} grabs over {run.get('days', '?')} days — "
            f"{run.get('shards', '?')} shard(s) × {run.get('workers', '?')} worker(s), "
            f"{run.get('elapsed_seconds', 0.0):.2f}s "
            f"({run.get('grabs_per_sec', 0.0):,.1f} grabs/s)"
        )
        if run.get("failures"):
            lines.append(f"  {run['failures']:,} failed grabs")

    shards = manifest.get("shards", [])
    if shards:
        lines.append("")
        lines.append("per-shard timing:")
        for entry in shards:
            day_seconds = entry.get("day_seconds", [])
            days = " ".join(f"{s:.2f}" for s in day_seconds)
            lines.append(
                f"  shard {entry.get('shard_id', '?'):>2}: "
                f"{entry.get('elapsed_seconds', 0.0):7.2f}s  "
                f"{entry.get('grabs', 0):>8,} grabs"
                + (f"  [per-day: {days}]" if day_seconds else "")
            )

    experiments = manifest.get("experiments", {})
    if experiments:
        lines.append("")
        lines.append("per-experiment grabs:")
        width = max(len(name) for name in experiments)
        for name, count in experiments.items():
            lines.append(f"  {name:<{width}}  {count:>10,}")

    channels = manifest.get("channels", {})
    if channels:
        lines.append("")
        lines.append("records by channel:")
        width = max(len(name) for name in channels)
        for name, count in channels.items():
            if count:
                lines.append(f"  {name:<{width}}  {count:>10,}")

    caches = manifest.get("caches", {})
    if caches:
        lines.append("")
        lines.append("cache effectiveness:")
        width = max(len(name) for name in caches)
        for name, stats in caches.items():
            line = (
                f"  {name:<{width}}  {stats.get('hit_rate', 0.0) * 100:6.2f}% hits "
                f"({stats.get('hits', 0):,} hit / {stats.get('misses', 0):,} miss"
            )
            if stats.get("evictions"):
                line += f" / {stats['evictions']:,} evicted"
            lines.append(line + ")")

    lines.extend(_resilience_sections(metrics))

    counters = metrics.get("counters", {})
    interesting = [
        key for key in counters
        if not any(key.startswith(p) for p in (
            # crypto/x509 are cache internals; the scanner failure,
            # retry, and fault-injection families get curated tables
            # from _resilience_sections above.
            "crypto.", "x509.", "scanner.grab.failure",
            "scanner.grab.retry", "faults.injected",
        ))
    ]
    if interesting:
        lines.append("")
        lines.append("counters:")
        width = max(len(key) for key in interesting)
        for key in interesting:
            lines.append(f"  {key:<{width}}  {counters[key]:>12,}")

    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("timings:")
        width = max(len(key) for key in histograms)
        for key, hist in histograms.items():
            if not hist.get("count"):
                continue
            mean = hist["sum"] / hist["count"]
            p95 = _histogram_quantile(hist, 0.95)
            p95_text = f"{p95:.4f}" if p95 != float("inf") else ">max"
            lines.append(
                f"  {key:<{width}}  n={hist['count']:<9,} "
                f"mean={mean:.4f}s p95<={p95_text}s"
            )
    return "\n".join(lines)


__all__ = ["render_prometheus", "render_stats_report"]
