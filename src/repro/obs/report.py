"""Rendering telemetry: a human-readable report and a Prometheus
text-format exposition.

``repro stats <telemetry-dir>`` feeds a manifest (+ the sibling
metrics snapshot) through :func:`render_stats_report`; automation
scrapes :func:`render_prometheus` output (also written to
``metrics.prom`` at study time) — the standard ``# TYPE`` / sample
line format, with dotted metric names flattened to underscores under
a ``repro_`` prefix.
"""

from __future__ import annotations

from .metrics import parse_key


def _prom_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{str(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_prometheus(snapshot: dict) -> str:
    """Prometheus text exposition of a metrics snapshot."""
    lines: list[str] = []
    typed: set[str] = set()

    def emit_type(name: str, kind: str) -> None:
        if name not in typed:
            lines.append(f"# TYPE {name} {kind}")
            typed.add(name)

    for key, value in snapshot.get("counters", {}).items():
        name, labels = parse_key(key)
        prom = _prom_name(name) + "_total"
        emit_type(prom, "counter")
        lines.append(f"{prom}{_prom_labels(labels)} {value}")
    for key, value in snapshot.get("gauges", {}).items():
        name, labels = parse_key(key)
        prom = _prom_name(name)
        emit_type(prom, "gauge")
        lines.append(f"{prom}{_prom_labels(labels)} {value}")
    for key, hist in snapshot.get("histograms", {}).items():
        name, labels = parse_key(key)
        prom = _prom_name(name)
        emit_type(prom, "histogram")
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += count
            lines.append(
                f"{prom}_bucket{_prom_labels({**labels, 'le': bound})} {cumulative}"
            )
        cumulative += hist["counts"][-1]
        lines.append(
            f"{prom}_bucket{_prom_labels({**labels, 'le': '+Inf'})} {cumulative}"
        )
        lines.append(f"{prom}_sum{_prom_labels(labels)} {round(hist['sum'], 6)}")
        lines.append(f"{prom}_count{_prom_labels(labels)} {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def _histogram_quantile(hist: dict, q: float) -> float:
    """Crude bucket-upper-bound quantile (good enough for a report)."""
    target = q * hist["count"]
    cumulative = 0
    for bound, count in zip(hist["bounds"], hist["counts"]):
        cumulative += count
        if cumulative >= target:
            return bound
    return float("inf")


def _resilience_sections(metrics: dict) -> list[str]:
    """Failure-reason breakdown plus retry/backoff and injected-fault
    tables (empty when the run had nothing to report)."""
    counters = metrics.get("counters", {})
    failures: dict[str, int] = {}
    retries: dict[str, int] = {}
    injected: dict[str, int] = {}
    attempts = 0
    breaker = {"opened": 0, "closed": 0}
    for key, value in counters.items():
        name, labels = parse_key(key)
        if name == "scanner.grab.failure":
            failures[labels.get("reason", "?")] = value
        elif name == "scanner.grab.retry":
            retries[labels.get("reason", "?")] = value
        elif name == "faults.injected":
            injected[labels.get("kind", "?")] = value
        elif name == "scanner.grab.attempt":
            attempts += value
        elif name == "scanner.breaker.opened":
            breaker["opened"] = value
        elif name == "scanner.breaker.closed":
            breaker["closed"] = value

    lines: list[str] = []
    if failures:
        lines.append("")
        lines.append("failure breakdown:")
        width = max(len(reason) for reason in failures)
        for reason, count in sorted(failures.items(), key=lambda kv: -kv[1]):
            share = f"  {count / attempts * 100:5.2f}% of grabs" if attempts else ""
            lines.append(f"  {reason:<{width}}  {count:>10,}{share}")

    attempts_hist = next(
        (
            hist for key, hist in metrics.get("histograms", {}).items()
            if parse_key(key)[0] == "scanner.grab.attempts_per_grab"
        ),
        None,
    )
    if retries or breaker["opened"] or (
        attempts_hist and attempts_hist.get("count")
    ):
        lines.append("")
        lines.append("retry/backoff:")
        total_retries = sum(retries.values())
        lines.append(f"  {total_retries:,} retries taken")
        width = max((len(reason) for reason in retries), default=0)
        for reason, count in sorted(retries.items(), key=lambda kv: -kv[1]):
            lines.append(f"    {reason:<{width}}  {count:>10,}")
        if attempts_hist and attempts_hist.get("count"):
            mean = attempts_hist["sum"] / attempts_hist["count"]
            lines.append(
                f"  {mean:.2f} mean attempts per grab "
                f"(over {attempts_hist['count']:,} grabs)"
            )
        if breaker["opened"]:
            lines.append(
                f"  circuit breaker: opened {breaker['opened']:,}×, "
                f"closed {breaker['closed']:,}×"
            )

    if injected:
        lines.append("")
        lines.append("injected faults (chaos plan):")
        width = max(len(kind) for kind in injected)
        for kind, count in sorted(injected.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {kind:<{width}}  {count:>10,}")
    return lines


def render_stats_report(manifest: dict, metrics: dict) -> str:
    """The ``repro stats`` human-readable view of one run."""
    lines: list[str] = []
    run = manifest.get("run", {})
    git = manifest.get("git", {}).get("describe") or "unknown"
    lines.append(
        f"run manifest: {manifest.get('label', '?')} "
        f"(schema {manifest.get('schema', '?')}, git {git}, "
        f"python {manifest.get('python', '?')})"
    )
    if run:
        lines.append(
            f"  {run.get('grabs', 0):,} grabs over {run.get('days', '?')} days — "
            f"{run.get('shards', '?')} shard(s) × {run.get('workers', '?')} worker(s), "
            f"{run.get('elapsed_seconds', 0.0):.2f}s "
            f"({run.get('grabs_per_sec', 0.0):,.1f} grabs/s)"
        )
        if run.get("failures"):
            lines.append(f"  {run['failures']:,} failed grabs")

    shards = manifest.get("shards", [])
    if shards:
        lines.append("")
        lines.append("per-shard timing:")
        for entry in shards:
            day_seconds = entry.get("day_seconds", [])
            days = " ".join(f"{s:.2f}" for s in day_seconds)
            lines.append(
                f"  shard {entry.get('shard_id', '?'):>2}: "
                f"{entry.get('elapsed_seconds', 0.0):7.2f}s  "
                f"{entry.get('grabs', 0):>8,} grabs"
                + (f"  [per-day: {days}]" if day_seconds else "")
            )

    experiments = manifest.get("experiments", {})
    if experiments:
        lines.append("")
        lines.append("per-experiment grabs:")
        width = max(len(name) for name in experiments)
        for name, count in experiments.items():
            lines.append(f"  {name:<{width}}  {count:>10,}")

    channels = manifest.get("channels", {})
    if channels:
        lines.append("")
        lines.append("records by channel:")
        width = max(len(name) for name in channels)
        for name, count in channels.items():
            if count:
                lines.append(f"  {name:<{width}}  {count:>10,}")

    caches = manifest.get("caches", {})
    if caches:
        lines.append("")
        lines.append("cache effectiveness:")
        width = max(len(name) for name in caches)
        for name, stats in caches.items():
            line = (
                f"  {name:<{width}}  {stats.get('hit_rate', 0.0) * 100:6.2f}% hits "
                f"({stats.get('hits', 0):,} hit / {stats.get('misses', 0):,} miss"
            )
            if stats.get("evictions"):
                line += f" / {stats['evictions']:,} evicted"
            lines.append(line + ")")

    lines.extend(_resilience_sections(metrics))

    counters = metrics.get("counters", {})
    interesting = [
        key for key in counters
        if not any(key.startswith(p) for p in (
            # crypto/x509 are cache internals; the scanner failure,
            # retry, and fault-injection families get curated tables
            # from _resilience_sections above.
            "crypto.", "x509.", "scanner.grab.failure",
            "scanner.grab.retry", "faults.injected",
        ))
    ]
    if interesting:
        lines.append("")
        lines.append("counters:")
        width = max(len(key) for key in interesting)
        for key in interesting:
            lines.append(f"  {key:<{width}}  {counters[key]:>12,}")

    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("timings:")
        width = max(len(key) for key in histograms)
        for key, hist in histograms.items():
            if not hist.get("count"):
                continue
            mean = hist["sum"] / hist["count"]
            p95 = _histogram_quantile(hist, 0.95)
            p95_text = f"{p95:.4f}" if p95 != float("inf") else ">max"
            lines.append(
                f"  {key:<{width}}  n={hist['count']:<9,} "
                f"mean={mean:.4f}s p95<={p95_text}s"
            )
    return "\n".join(lines)


__all__ = ["render_prometheus", "render_stats_report"]
