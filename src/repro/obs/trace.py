"""Span-based tracing with a bounded ring-buffer sink.

Usage matches the common structured-tracing idiom::

    from repro.obs import trace

    with trace.span("handshake", domain="yahoo.com"):
        ...

Tracing is **off by default** and costs one flag check per ``span()``
call when disabled — cheap enough to leave in hot paths like the
per-connection grab.  Enabling it (the engine does when a telemetry
directory is requested) records finished spans into a fixed-capacity
ring buffer: a multi-week study can emit millions of spans, but only
the most recent ``capacity`` survive, which bounds both memory and the
pickled payload a shard worker ships back to the engine.

Span timestamps come from ``time.perf_counter`` — a per-process
monotonic clock.  Durations are always meaningful; absolute start
times are only comparable *within* one process, which the exported
records make explicit by carrying the recording process's id.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Iterable, Optional

DEFAULT_CAPACITY = 4096


class Span:
    """One in-flight (then finished) traced operation."""

    __slots__ = ("name", "attrs", "start", "duration", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.duration = 0.0

    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.duration = time.perf_counter() - self.start
        self._tracer._record(self)

    def to_dict(self) -> dict:
        record = {
            "name": self.name,
            "start_s": round(self.start, 6),
            "duration_s": round(self.duration, 6),
            "pid": os.getpid(),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """A ring-buffer span sink, disabled until :meth:`enable` is called."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.enabled = False
        self._buffer: deque = deque(maxlen=capacity)
        self.dropped = 0
        self.recorded = 0

    def enable(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity != self._buffer.maxlen:
            self._buffer = deque(self._buffer, maxlen=capacity)
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def span(self, name: str, **attrs):
        """A context manager timing one operation (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, attrs)

    def _record(self, span: Span) -> None:
        if len(self._buffer) == self._buffer.maxlen:
            self.dropped += 1
        self._buffer.append(span.to_dict())
        self.recorded += 1

    def drain(self) -> list[dict]:
        """Remove and return every buffered span record (oldest first)."""
        records = list(self._buffer)
        self._buffer.clear()
        return records

    def __len__(self) -> int:
        return len(self._buffer)


def export_jsonl(path: str, records: Iterable[dict]) -> int:
    """Write span records to a JSONL file; returns the number written."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    written = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True))
            fh.write("\n")
            written += 1
    return written


#: The process-local default tracer (what ``trace.span(...)`` uses).
TRACER = Tracer()


def span(name: str, **attrs):
    """Module-level shorthand for ``TRACER.span(...)``."""
    if not TRACER.enabled:
        return _NULL_SPAN
    return Span(TRACER, name, attrs)


def enable(capacity: Optional[int] = None) -> None:
    TRACER.enable(capacity)


def disable() -> None:
    TRACER.disable()


def drain() -> list[dict]:
    return TRACER.drain()


__all__ = [
    "Span",
    "Tracer",
    "TRACER",
    "span",
    "enable",
    "disable",
    "drain",
    "export_jsonl",
    "DEFAULT_CAPACITY",
]
