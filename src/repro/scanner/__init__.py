"""The ZMap/zgrab-style measurement toolchain."""

from .crossdomain import CrossDomainConfig, ProbeTarget, cross_domain_cache_probe
from .datastore import IndexStats, ScanIndex
from .grab import ZGrabber
from .records import (
    CrossDomainEdge,
    ResumptionProbeResult,
    ScanObservation,
    read_jsonl,
    write_jsonl,
)
from .resumption import ProbeConfig, resumption_probe
from .schedule import DailyScanCampaign, SweepConfig, sweep, thirty_minute_scan
from .study import StudyConfig, StudyDataset, load_dataset, run_study, save_dataset

__all__ = [
    "ZGrabber",
    "ScanIndex",
    "IndexStats",
    "ScanObservation",
    "ResumptionProbeResult",
    "CrossDomainEdge",
    "read_jsonl",
    "write_jsonl",
    "ProbeConfig",
    "resumption_probe",
    "SweepConfig",
    "sweep",
    "DailyScanCampaign",
    "thirty_minute_scan",
    "CrossDomainConfig",
    "ProbeTarget",
    "cross_domain_cache_probe",
    "StudyConfig",
    "StudyDataset",
    "run_study",
    "save_dataset",
    "load_dataset",
]
