"""The ZMap/zgrab-style measurement toolchain.

Layered as: grabs (:mod:`grab`) → scan patterns (:mod:`schedule`,
:mod:`resumption`, :mod:`crossdomain`) → pluggable experiments
(:mod:`experiments`) → sharded streaming engine (:mod:`engine`) →
study configuration/persistence (:mod:`study`) → storage & query
(:mod:`records`, :mod:`datastore`).
"""

from .crossdomain import CrossDomainConfig, ProbeTarget, cross_domain_cache_probe
from .datastore import (
    IndexStats,
    JsonlWriter,
    LazyRecordView,
    ScanIndex,
)
from .checkpoint import CheckpointMismatch, CheckpointStore
from .engine import ShardResult, StudyAborted, StudyEngine, StudyStats, run_shard
from .experiments import (
    EVERY_DAY,
    CrossDomainExperiment,
    DailySweepExperiment,
    Experiment,
    ExperimentRegistry,
    ResumptionProbeExperiment,
    StudyContext,
    SupportScanExperiment,
    default_registry,
    shard_of,
)
from .grab import ZGrabber
from .records import (
    CHANNELS,
    CrossDomainEdge,
    ResumptionProbeResult,
    ScanObservation,
    read_jsonl,
    write_jsonl,
)
from .resumption import ProbeConfig, resumption_probe
from .schedule import DailyScanCampaign, SweepConfig, sweep, thirty_minute_scan
from .study import (
    StudyConfig,
    StudyDataset,
    load_dataset,
    run_study,
    run_study_with_stats,
    save_dataset,
)

__all__ = [
    "ZGrabber",
    "ScanIndex",
    "IndexStats",
    "JsonlWriter",
    "LazyRecordView",
    "ScanObservation",
    "ResumptionProbeResult",
    "CrossDomainEdge",
    "CHANNELS",
    "read_jsonl",
    "write_jsonl",
    "ProbeConfig",
    "resumption_probe",
    "SweepConfig",
    "sweep",
    "DailyScanCampaign",
    "thirty_minute_scan",
    "CrossDomainConfig",
    "ProbeTarget",
    "cross_domain_cache_probe",
    "Experiment",
    "ExperimentRegistry",
    "StudyContext",
    "DailySweepExperiment",
    "SupportScanExperiment",
    "CrossDomainExperiment",
    "ResumptionProbeExperiment",
    "default_registry",
    "shard_of",
    "EVERY_DAY",
    "StudyEngine",
    "StudyStats",
    "StudyAborted",
    "ShardResult",
    "run_shard",
    "CheckpointStore",
    "CheckpointMismatch",
    "StudyConfig",
    "StudyDataset",
    "run_study",
    "run_study_with_stats",
    "save_dataset",
    "load_dataset",
]
