"""Per-shard study checkpoints: survive a kill, resume byte-identically.

Because each shard is a pure function of ``(study config, ecosystem
config, shard_id, shard_count)``, checkpointing at shard granularity is
enough for exact resume: a completed shard's streamed records plus its
:class:`~repro.scanner.engine.ShardResult` bookkeeping are saved under
``<stream_dir>/checkpoint/``, and a resumed run re-executes only the
missing shards before merging as usual.  The merge removes the
checkpoint directory along with the per-shard parts, so a finished
dataset directory is byte-identical whether or not the run was ever
interrupted.

Layout::

    <stream_dir>/checkpoint/run.json       # schema + config fingerprint
    <stream_dir>/checkpoint/shard-NN.json  # one per completed shard

``run.json`` carries a *fingerprint* of everything output-affecting
(study config, ecosystem config, shard count).  Resuming under a
different fingerprint raises :class:`CheckpointMismatch` instead of
silently merging shards from two different studies.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import asdict, is_dataclass
from typing import Optional

from ..faults.retry import RetryPolicy

SCHEMA = "repro-checkpoint/1"
RUN_NAME = "run.json"

#: StudyConfig fields excluded from the fingerprint: pure execution
#: knobs that never affect output bytes.  ``concurrency`` (event-loop
#: batch size) and ``oracle`` (blocking reference path) are
#: byte-equivalent by construction, so a resumed run may change them.
_EXECUTION_FIELDS = ("workers", "stream_dir", "concurrency", "oracle")


class CheckpointMismatch(ValueError):
    """The checkpoint on disk belongs to a different study configuration."""


def _normalize(value):
    """Canonicalize through JSON so tuples/lists and int/str keys compare
    equal between a live config and one round-tripped from disk."""
    return json.loads(json.dumps(value, sort_keys=True))


def study_config_to_dict(config) -> dict:
    """The output-affecting StudyConfig fields as a JSON-able dict."""
    data = asdict(config) if is_dataclass(config) else dict(vars(config))
    for name in _EXECUTION_FIELDS:
        data.pop(name, None)
    return data


def study_config_from_dict(data: dict, *, workers: int = 1,
                           stream_dir: Optional[str] = None,
                           concurrency: int = 1024, oracle: bool = False):
    """Rebuild a StudyConfig from :func:`study_config_to_dict` output."""
    from .study import StudyConfig  # local import: study imports engine

    kwargs = dict(data)
    retry = kwargs.pop("retry", None)
    if retry is not None and not isinstance(retry, RetryPolicy):
        retry = RetryPolicy(**retry)
    return StudyConfig(
        **kwargs, retry=retry, workers=workers, stream_dir=stream_dir,
        concurrency=concurrency, oracle=oracle,
    )


def fingerprint_digest(payload) -> str:
    """sha256 hex digest of ``payload``'s canonical JSON form.

    The same canonicalization as :func:`checkpoint_fingerprint` uses for
    resume validation; the analysis cache (``repro.analysis``) keys its
    per-chunk partials on these digests so a fingerprint computed before
    a kill/resume cycle still matches afterwards.
    """
    canonical = json.dumps(_normalize(payload), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def checkpoint_fingerprint(study_config, ecosystem_config, shards: int) -> dict:
    data = study_config_to_dict(study_config)
    data["shards"] = shards  # the resolved count, even if config said otherwise
    return _normalize({
        "study": data,
        "ecosystem": (
            asdict(ecosystem_config) if is_dataclass(ecosystem_config) else {}
        ),
        "shards": shards,
    })


class CheckpointStore:
    """Reads and writes the ``<stream_dir>/checkpoint/`` directory."""

    def __init__(self, stream_dir: str) -> None:
        self.stream_dir = stream_dir
        self.directory = os.path.join(stream_dir, "checkpoint")

    # -- run state ---------------------------------------------------------

    def exists(self) -> bool:
        return os.path.exists(os.path.join(self.directory, RUN_NAME))

    def reset(self, fingerprint: dict, extra: Optional[dict] = None) -> None:
        """Start a fresh checkpointed run (drops any stale state)."""
        shutil.rmtree(self.directory, ignore_errors=True)
        os.makedirs(self.directory, exist_ok=True)
        self._write_json(RUN_NAME, {
            "schema": SCHEMA,
            "fingerprint": fingerprint,
            "cli": extra or {},
        })

    def load_run_state(self) -> dict:
        path = os.path.join(self.directory, RUN_NAME)
        with open(path, "r", encoding="utf-8") as fh:
            state = json.load(fh)
        if state.get("schema") != SCHEMA:
            raise CheckpointMismatch(
                f"unsupported checkpoint schema {state.get('schema')!r} "
                f"in {path} (expected {SCHEMA!r})"
            )
        return state

    def validate(self, fingerprint: dict) -> dict:
        """Check ``fingerprint`` against the stored one; returns the state."""
        state = self.load_run_state()
        stored = state.get("fingerprint", {})
        if _normalize(fingerprint) != stored:
            differing = sorted(
                key for key in set(stored) | set(fingerprint)
                if stored.get(key) != _normalize(fingerprint).get(key)
            )
            raise CheckpointMismatch(
                "checkpoint in "
                f"{self.directory} was written by a different study "
                f"configuration (differs in: {', '.join(differing)}); "
                "resume with the original settings or start a fresh run"
            )
        return state

    def clear(self) -> None:
        shutil.rmtree(self.directory, ignore_errors=True)

    # -- shard results -----------------------------------------------------

    def completed_shards(self) -> list[int]:
        if not os.path.isdir(self.directory):
            return []
        out = []
        for name in sorted(os.listdir(self.directory)):
            if name.startswith("shard-") and name.endswith(".json"):
                out.append(int(name[len("shard-"):-len(".json")]))
        return out

    def save_shard(self, result) -> None:
        """Persist one completed ShardResult (streamed runs only)."""
        subdir = result.stream_subdir
        payload = {
            "schema": SCHEMA,
            "shard_id": result.shard_id,
            "shard_count": result.shard_count,
            "stream_subdir": (
                os.path.relpath(subdir, self.stream_dir) if subdir else None
            ),
            "meta": result.meta,
            "stats": asdict(result.stats),
            "metrics": result.metrics,
            "day_seconds": result.day_seconds,
            "elapsed_seconds": result.elapsed_seconds,
            "spans": result.spans,
            "events": result.events,
            "profile": result.profile,
        }
        os.makedirs(self.directory, exist_ok=True)
        self._write_json(f"shard-{result.shard_id:02d}.json", payload)

    def load_completed(self) -> dict:
        """All checkpointed shards as ``{shard_id: ShardResult}``."""
        from .engine import ShardResult, StudyStats  # local import cycle

        results = {}
        for shard_id in self.completed_shards():
            path = os.path.join(self.directory, f"shard-{shard_id:02d}.json")
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            meta = payload["meta"]
            if "day0_list" in meta:
                meta["day0_list"] = [tuple(item) for item in meta["day0_list"]]
            if "list_sizes" in meta:
                meta["list_sizes"] = {
                    key: tuple(value) for key, value in meta["list_sizes"].items()
                }
            if "as_names" in meta:
                meta["as_names"] = {
                    int(key): value for key, value in meta["as_names"].items()
                }
            subdir = payload.get("stream_subdir")
            results[shard_id] = ShardResult(
                shard_id=payload["shard_id"],
                shard_count=payload["shard_count"],
                channels=None,
                stream_subdir=(
                    os.path.join(self.stream_dir, subdir) if subdir else None
                ),
                meta=meta,
                stats=StudyStats(**payload["stats"]),
                metrics=payload["metrics"],
                day_seconds=payload["day_seconds"],
                elapsed_seconds=payload["elapsed_seconds"],
                spans=payload["spans"],
                # .get(): checkpoints from before the live plane lack these.
                events=payload.get("events", []),
                profile=payload.get("profile", {}),
            )
        return results

    # -- helpers -----------------------------------------------------------

    def _write_json(self, name: str, payload: dict) -> None:
        """Atomic write (tmp + rename) so a kill never leaves a torn file.

        Keys are written in insertion order, NOT sorted: shard meta
        contains dicts whose insertion order is scan order, and the
        merged ``meta.json`` must be byte-identical whether its shards
        came from checkpoints or live runs.  (Fingerprint comparison is
        dict equality, so ordering never affects validation.)
        """
        path = os.path.join(self.directory, name)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)


__all__ = [
    "SCHEMA",
    "CheckpointMismatch",
    "CheckpointStore",
    "checkpoint_fingerprint",
    "study_config_to_dict",
    "study_config_from_dict",
]
