"""Cross-domain session-cache probing (paper §5.1).

For each domain we establish a session, then offer its session ID to up
to five other domains in the same AS and up to five sharing one of its
IP addresses.  A domain that *resumes* a foreign session shares a
session cache with the origin — servers that don't recognize an ID
simply fall back to a full handshake, so the probe is harmless and
false positives are impossible (a forged resumption would fail the
Finished check against the saved master secret).

The resulting edges feed the union-find in :mod:`repro.core.groups`,
which grows groups transitively exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..crypto.rng import DeterministicRandom
from ..netsim.clock import MINUTE
from ..tls.ciphers import CipherSuite, MODERN_BROWSER_OFFER
from .grab import ZGrabber
from .records import CrossDomainEdge


@dataclass
class CrossDomainConfig:
    """Probe fan-out limits (the paper used five and five)."""

    max_same_as: int = 5
    max_same_ip: int = 5
    offer: tuple[CipherSuite, ...] = MODERN_BROWSER_OFFER
    window_seconds: float = 0.0   # optional pacing across a window


@dataclass(frozen=True)
class ProbeTarget:
    """Scanner-side knowledge of one domain: where it lives."""

    domain: str
    ip: str
    asn: Optional[int]


def cross_domain_cache_probe(
    grabber: ZGrabber,
    targets: list[ProbeTarget],
    rng: DeterministicRandom,
    config: Optional[CrossDomainConfig] = None,
    origins: Optional[list[ProbeTarget]] = None,
) -> list[CrossDomainEdge]:
    """Find session-cache sharing edges among ``targets``.

    ``origins`` restricts which targets *initiate* probes while peers
    are still drawn from all of ``targets`` — the sharded scan engine
    passes each shard's owned domains here, so every (origin, peer)
    pair is probed by exactly one shard and the edge lists concatenate
    without duplicates.
    """
    config = config or CrossDomainConfig()
    if origins is None:
        origins = targets
    by_ip: dict[str, list[ProbeTarget]] = {}
    by_as: dict[int, list[ProbeTarget]] = {}
    for target in targets:
        by_ip.setdefault(target.ip, []).append(target)
        if target.asn is not None:
            by_as.setdefault(target.asn, []).append(target)

    edges: list[CrossDomainEdge] = []
    ecosystem = grabber.ecosystem
    step = config.window_seconds / max(len(origins), 1)
    for origin in origins:
        if step:
            ecosystem.advance_to(ecosystem.clock.now() + step)
        result, _, _ = grabber.connect(
            origin.domain, offer=config.offer, offer_tickets=False
        )
        if result is None or not result.ok or not result.session_id:
            continue
        session = result.session
        session_id = result.session_id

        peers = _pick_peers(origin, by_ip, by_as, rng, config)
        for peer, same_ip in peers:
            probe, _, _ = grabber.connect(
                peer.domain,
                offer=config.offer,
                session_id=session_id,
                saved_session=session,
                offer_tickets=False,
            )
            if probe is not None and probe.ok and probe.resumed_via == "session_id":
                edges.append(
                    CrossDomainEdge(
                        origin=origin.domain,
                        acceptor=peer.domain,
                        via_same_ip=same_ip,
                        via_same_as=not same_ip,
                    )
                )
    return edges


def _pick_peers(
    origin: ProbeTarget,
    by_ip: dict[str, list[ProbeTarget]],
    by_as: dict[int, list[ProbeTarget]],
    rng: DeterministicRandom,
    config: CrossDomainConfig,
) -> list[tuple[ProbeTarget, bool]]:
    """Sample same-IP and same-AS peers, deduplicated, origin excluded."""
    picked: list[tuple[ProbeTarget, bool]] = []
    seen = {origin.domain}
    same_ip_pool = [t for t in by_ip.get(origin.ip, []) if t.domain != origin.domain]
    for peer in _sample(same_ip_pool, config.max_same_ip, rng):
        if peer.domain not in seen:
            seen.add(peer.domain)
            picked.append((peer, True))
    if origin.asn is not None:
        same_as_pool = [
            t for t in by_as.get(origin.asn, []) if t.domain not in seen
        ]
        for peer in _sample(same_as_pool, config.max_same_as, rng):
            seen.add(peer.domain)
            picked.append((peer, False))
    return picked


def _sample(pool: list, k: int, rng: DeterministicRandom) -> list:
    if len(pool) <= k:
        return list(pool)
    return rng.sample(pool, k)


__all__ = ["CrossDomainConfig", "ProbeTarget", "cross_domain_cache_probe"]
