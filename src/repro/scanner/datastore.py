"""Scan-record storage: streaming writers, lazy views, and a queryable index.

The paper reused Censys data "instead of running redundant scans" and
published its own data on scans.io.  This module provides the local
equivalent, in two halves:

* **Streaming storage** — :class:`JsonlWriter` appends records to disk
  as they are produced (the scan engine's spill path, so a
  million-domain study never holds its observations in memory), and
  :class:`LazyRecordView` is a re-iterable, sequence-like view over a
  written JSONL file that analyses can consume without materializing
  it.  A dataset directory is just one JSONL file per channel in
  :data:`repro.scanner.records.CHANNELS` plus a ``meta.json``.

* **Query index** — :class:`ScanIndex`, an indexed, queryable store
  over :class:`ScanObservation` records so analyses (and downstream
  users) can slice a study corpus by domain, day, IP, cipher family,
  or STEK identifier without re-reading JSONL files or rescanning.

The index is deliberately simple — in-memory dicts over immutable
records — because study corpora are hundreds of thousands of rows, not
billions.  Queries compose as keyword filters::

    index = ScanIndex(dataset.ticket_daily)
    index.query(domain="yahoo.com")
    index.query(day=5, kex_kind="ecdhe", success=True)
    index.query(stek_id="ab…")            # who shared this key?
"""

from __future__ import annotations

import json
import os
import shutil
from collections import defaultdict
from dataclasses import dataclass, fields
from typing import Iterable, Iterator, Optional

from .records import CHANNELS, ScanObservation, read_jsonl

_INDEXED_FIELDS = ("domain", "day", "ip", "kex_kind", "stek_id", "cipher")


# ---------------------------------------------------------------------------
# Streaming append writers + lazy views (the study's spill path)
# ---------------------------------------------------------------------------


class JsonlWriter:
    """Append-only JSONL writer for record objects with ``.to_json()``.

    The file is created (truncated) on construction so an empty channel
    still yields an empty file — a dataset directory always contains
    every channel, written or not.  Records are flushed through an
    ordinary buffered file handle; ``count`` tracks rows written.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self._fh = open(path, "w", encoding="utf-8")
        self.count = 0

    def append(self, record) -> None:
        self._fh.write(record.to_json())
        self._fh.write("\n")
        self.count += 1

    def append_many(self, records: Iterable) -> int:
        appended = 0
        for record in records:
            self.append(record)
            appended += 1
        return appended

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class LazyRecordView:
    """A re-iterable, list-like view over one channel's JSONL file.

    Iteration streams records off disk; nothing is cached except the
    row count (computed on first ``len``).  Supports the small slice of
    the list protocol the analysis layer actually uses — iteration,
    ``len``, truthiness, indexing/slicing, and equality against any
    sequence — so a streamed dataset is a drop-in replacement for an
    in-memory one.
    """

    def __init__(self, path: str, record_cls: type) -> None:
        self.path = path
        self.record_cls = record_cls
        self._count: Optional[int] = None

    def __iter__(self) -> Iterator:
        if not os.path.exists(self.path):
            return iter(())
        return read_jsonl(self.path, self.record_cls)

    def __len__(self) -> int:
        if self._count is None:
            count = 0
            if os.path.exists(self.path):
                with open(self.path, "r", encoding="utf-8") as fh:
                    for line in fh:
                        if line.strip():
                            count += 1
            self._count = count
        return self._count

    def __bool__(self) -> bool:
        if self._count is not None:
            return self._count > 0
        if not os.path.exists(self.path):
            return False
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                if line.strip():
                    return True
        return False

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.materialize()[index]
        if index < 0:
            return self.materialize()[index]
        for i, record in enumerate(self):
            if i == index:
                return record
        raise IndexError(index)

    def __eq__(self, other) -> bool:
        if isinstance(other, (list, tuple, LazyRecordView)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"LazyRecordView({self.path!r}, {self.record_cls.__name__})"

    def materialize(self) -> list:
        """Read the whole channel into a list (tests, small corpora)."""
        return list(self)


def channel_path(directory: str, channel: str) -> str:
    """The JSONL path for one channel inside a dataset directory."""
    return os.path.join(directory, f"{channel}.jsonl")


def open_channel_writers(directory: str) -> dict[str, JsonlWriter]:
    """One append writer per known channel, creating the directory."""
    os.makedirs(directory, exist_ok=True)
    return {name: JsonlWriter(channel_path(directory, name)) for name in CHANNELS}


def open_channel_views(directory: str) -> dict[str, LazyRecordView]:
    """One lazy view per known channel in a dataset directory."""
    return {
        name: LazyRecordView(channel_path(directory, name), record_cls)
        for name, record_cls in CHANNELS.items()
    }


def concatenate_channels(part_dirs: list[str], out_dir: str) -> None:
    """Merge shard part-directories into one dataset directory.

    Each channel's output file is the byte-for-byte concatenation of
    the shards' files in the order given — the merge step of the
    sharded scan engine.  Deterministic by construction: the bytes
    depend only on the per-shard files and their order, never on how
    many workers produced them.
    """
    os.makedirs(out_dir, exist_ok=True)
    for name in CHANNELS:
        with open(channel_path(out_dir, name), "wb") as out:
            for part in part_dirs:
                path = channel_path(part, name)
                if os.path.exists(path):
                    with open(path, "rb") as fh:
                        shutil.copyfileobj(fh, out)


def write_meta(directory: str, meta: dict) -> None:
    """Persist a dataset's ``meta.json`` (scalar + mapping fields)."""
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, "meta.json"), "w", encoding="utf-8") as fh:
        json.dump(meta, fh)


def read_meta(directory: str) -> dict:
    with open(os.path.join(directory, "meta.json"), "r", encoding="utf-8") as fh:
        return json.load(fh)


# ---------------------------------------------------------------------------
# Queryable in-memory index (the Censys analogue)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IndexStats:
    """Summary of an index's contents."""

    observations: int
    domains: int
    days: int
    success_rate: float


class ScanIndex:
    """In-memory inverted index over scan observations."""

    def __init__(self, observations: Iterable[ScanObservation] = ()) -> None:
        self._rows: list[ScanObservation] = []
        self._by: dict[str, dict[object, list[int]]] = {
            name: defaultdict(list) for name in _INDEXED_FIELDS
        }
        self.add_many(observations)

    # -- ingestion -------------------------------------------------------

    def add(self, observation: ScanObservation) -> None:
        row_id = len(self._rows)
        self._rows.append(observation)
        for name in _INDEXED_FIELDS:
            value = getattr(observation, name)
            if value is not None and value != "":
                self._by[name][value].append(row_id)

    def add_many(self, observations: Iterable[ScanObservation]) -> int:
        count = 0
        for observation in observations:
            self.add(observation)
            count += 1
        return count

    def __len__(self) -> int:
        return len(self._rows)

    # -- queries ----------------------------------------------------------

    def query(self, success: Optional[bool] = None, **filters) -> list[ScanObservation]:
        """Filter by any indexed field plus the ``success`` flag.

        Unknown filter names raise ``ValueError`` (catching typos beats
        silently returning everything).
        """
        unknown = set(filters) - set(_INDEXED_FIELDS)
        if unknown:
            raise ValueError(f"unknown filter fields: {sorted(unknown)}")
        candidate_ids: Optional[set[int]] = None
        for name, value in filters.items():
            ids = set(self._by[name].get(value, ()))
            candidate_ids = ids if candidate_ids is None else candidate_ids & ids
            if not candidate_ids:
                return []
        if candidate_ids is None:
            rows: Iterable[ScanObservation] = self._rows
        else:
            rows = (self._rows[i] for i in sorted(candidate_ids))
        if success is None:
            return list(rows)
        return [row for row in rows if row.success == success]

    def domains(self) -> list[str]:
        return sorted(self._by["domain"])

    def days(self) -> list[int]:
        return sorted(self._by["day"])

    def domains_with_stek(self, stek_id: str) -> set[str]:
        """Every domain that ever presented this STEK identifier —
        the §5.2 sharing question as a single lookup."""
        return {self._rows[i].domain for i in self._by["stek_id"].get(stek_id, ())}

    def stek_ids_for(self, domain: str) -> list[str]:
        """A domain's STEK identifiers in first-seen order."""
        seen: list[str] = []
        for row_id in self._by["domain"].get(domain, ()):
            stek_id = self._rows[row_id].stek_id
            if stek_id and stek_id not in seen:
                seen.append(stek_id)
        return seen

    def timeline(self, domain: str) -> list[tuple[int, Optional[str]]]:
        """(day, stek_id) pairs for a domain, day-ordered — the raw
        material of the §4.3 span estimator."""
        entries = [
            (self._rows[i].day, self._rows[i].stek_id)
            for i in self._by["domain"].get(domain, ())
            if self._rows[i].success
        ]
        entries.sort(key=lambda pair: pair[0])
        return entries

    def stats(self) -> IndexStats:
        ok = sum(1 for row in self._rows if row.success)
        return IndexStats(
            observations=len(self._rows),
            domains=len(self._by["domain"]),
            days=len(self._by["day"]),
            success_rate=ok / len(self._rows) if self._rows else 0.0,
        )

    def __iter__(self) -> Iterator[ScanObservation]:
        return iter(self._rows)


__all__ = [
    "ScanIndex",
    "IndexStats",
    "JsonlWriter",
    "LazyRecordView",
    "channel_path",
    "open_channel_writers",
    "open_channel_views",
    "concatenate_channels",
    "write_meta",
    "read_meta",
]
