"""A Censys-like queryable index over scan observations.

The paper reused Censys data "instead of running redundant scans" and
published its own data on scans.io.  This module provides the local
equivalent: an indexed, queryable store over :class:`ScanObservation`
records so analyses (and downstream users) can slice a study corpus by
domain, day, IP, cipher family, or STEK identifier without re-reading
JSONL files or rescanning.

The index is deliberately simple — in-memory dicts over immutable
records — because study corpora are hundreds of thousands of rows, not
billions.  Queries compose as keyword filters::

    index = ScanIndex(dataset.ticket_daily)
    index.query(domain="yahoo.com")
    index.query(day=5, kex_kind="ecdhe", success=True)
    index.query(stek_id="ab…")            # who shared this key?
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, fields
from typing import Iterable, Iterator, Optional

from .records import ScanObservation

_INDEXED_FIELDS = ("domain", "day", "ip", "kex_kind", "stek_id", "cipher")


@dataclass(frozen=True)
class IndexStats:
    """Summary of an index's contents."""

    observations: int
    domains: int
    days: int
    success_rate: float


class ScanIndex:
    """In-memory inverted index over scan observations."""

    def __init__(self, observations: Iterable[ScanObservation] = ()) -> None:
        self._rows: list[ScanObservation] = []
        self._by: dict[str, dict[object, list[int]]] = {
            name: defaultdict(list) for name in _INDEXED_FIELDS
        }
        self.add_many(observations)

    # -- ingestion -------------------------------------------------------

    def add(self, observation: ScanObservation) -> None:
        row_id = len(self._rows)
        self._rows.append(observation)
        for name in _INDEXED_FIELDS:
            value = getattr(observation, name)
            if value is not None and value != "":
                self._by[name][value].append(row_id)

    def add_many(self, observations: Iterable[ScanObservation]) -> int:
        count = 0
        for observation in observations:
            self.add(observation)
            count += 1
        return count

    def __len__(self) -> int:
        return len(self._rows)

    # -- queries ----------------------------------------------------------

    def query(self, success: Optional[bool] = None, **filters) -> list[ScanObservation]:
        """Filter by any indexed field plus the ``success`` flag.

        Unknown filter names raise ``ValueError`` (catching typos beats
        silently returning everything).
        """
        unknown = set(filters) - set(_INDEXED_FIELDS)
        if unknown:
            raise ValueError(f"unknown filter fields: {sorted(unknown)}")
        candidate_ids: Optional[set[int]] = None
        for name, value in filters.items():
            ids = set(self._by[name].get(value, ()))
            candidate_ids = ids if candidate_ids is None else candidate_ids & ids
            if not candidate_ids:
                return []
        if candidate_ids is None:
            rows: Iterable[ScanObservation] = self._rows
        else:
            rows = (self._rows[i] for i in sorted(candidate_ids))
        if success is None:
            return list(rows)
        return [row for row in rows if row.success == success]

    def domains(self) -> list[str]:
        return sorted(self._by["domain"])

    def days(self) -> list[int]:
        return sorted(self._by["day"])

    def domains_with_stek(self, stek_id: str) -> set[str]:
        """Every domain that ever presented this STEK identifier —
        the §5.2 sharing question as a single lookup."""
        return {self._rows[i].domain for i in self._by["stek_id"].get(stek_id, ())}

    def stek_ids_for(self, domain: str) -> list[str]:
        """A domain's STEK identifiers in first-seen order."""
        seen: list[str] = []
        for row_id in self._by["domain"].get(domain, ()):
            stek_id = self._rows[row_id].stek_id
            if stek_id and stek_id not in seen:
                seen.append(stek_id)
        return seen

    def timeline(self, domain: str) -> list[tuple[int, Optional[str]]]:
        """(day, stek_id) pairs for a domain, day-ordered — the raw
        material of the §4.3 span estimator."""
        entries = [
            (self._rows[i].day, self._rows[i].stek_id)
            for i in self._by["domain"].get(domain, ())
            if self._rows[i].success
        ]
        entries.sort(key=lambda pair: pair[0])
        return entries

    def stats(self) -> IndexStats:
        ok = sum(1 for row in self._rows if row.success)
        return IndexStats(
            observations=len(self._rows),
            domains=len(self._by["domain"]),
            days=len(self._by["day"]),
            success_rate=ok / len(self._rows) if self._rows else 0.0,
        )

    def __iter__(self) -> Iterator[ScanObservation]:
        return iter(self._rows)


__all__ = ["ScanIndex", "IndexStats"]
