"""The sharded, streaming scan engine.

:class:`StudyEngine` drives an :class:`ExperimentRegistry` over the
simulated study timeline.  The population is partitioned into
``shards`` deterministic shards (stable domain-name hash, see
:func:`repro.scanner.experiments.shard_of`); each shard runs the full
timeline against its *own* ecosystem view with its own
:class:`DeterministicRandom` fork keyed by ``(seed, shard_id)``, scans
only the domains it owns, and either accumulates records in memory or
streams them straight to JSONL (``stream_dir``).

The merge step concatenates per-shard record streams in shard order,
so the merged output is **bit-for-bit identical** regardless of
``workers`` — one process running shards serially and a process pool
running them concurrently produce the same bytes.  ``workers`` is pure
execution parallelism; ``shards`` is the only knob that affects
output.  With ``shards=1`` the engine runs the registry against the
caller's ecosystem on the legacy single-stream path.

Why per-shard ecosystem views reproduce a coherent study: the
ecosystem's own evolution (list churn, STEK rotation schedules, DNS)
is driven by its internal seeded RNGs and virtual time, independent of
scan traffic, so every shard's view agrees on the population and on
view-independent metadata.  Scan-dependent server state (issued
tickets, cached sessions) only matters for the domains a shard
actually scans — and each domain is scanned by exactly one shard on
every study day.
"""

from __future__ import annotations

import os
import shutil
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..crypto.rng import DeterministicRandom
from ..hosting.ecosystem import Ecosystem
from ..netsim.clock import DAY
from .datastore import (
    concatenate_channels,
    open_channel_views,
    open_channel_writers,
    write_meta,
)
from .experiments import ExperimentRegistry, StudyContext, default_registry
from .grab import ZGrabber
from .records import CHANNELS

ShardProgress = Callable[[int, int, int, int], None]


@dataclass
class StudyStats:
    """Observability summary returned alongside a study dataset."""

    days: int
    shards: int
    workers: int
    grabs: int = 0
    scans_by_experiment: dict[str, int] = field(default_factory=dict)
    records_by_channel: dict[str, int] = field(default_factory=dict)
    # Wall-clock of the whole run (including shard merge), stamped by
    # StudyEngine.run; benchmarks report grabs/elapsed_seconds.  Not
    # merged: per-shard elapsed times overlap under workers > 1.
    elapsed_seconds: float = 0.0

    @property
    def grabs_per_sec(self) -> float:
        return self.grabs / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    def merge(self, other: "StudyStats") -> None:
        self.grabs += other.grabs
        for name, count in other.scans_by_experiment.items():
            self.scans_by_experiment[name] = (
                self.scans_by_experiment.get(name, 0) + count
            )
        for name, count in other.records_by_channel.items():
            self.records_by_channel[name] = (
                self.records_by_channel.get(name, 0) + count
            )

    def render(self) -> str:
        lines = [
            f"study stats: {self.grabs:,} TLS grabs over {self.days} days "
            f"({self.shards} shard{'s' if self.shards != 1 else ''}, "
            f"{self.workers} worker{'s' if self.workers != 1 else ''})",
        ]
        if self.elapsed_seconds > 0:
            lines.append(
                f"  elapsed {self.elapsed_seconds:.2f}s "
                f"({self.grabs_per_sec:,.1f} grabs/s)"
            )
        width = max((len(n) for n in self.scans_by_experiment), default=0)
        for name, count in self.scans_by_experiment.items():
            lines.append(f"  {name:<{width}}  {count:>10,} grabs")
        return "\n".join(lines)


@dataclass
class ShardResult:
    """Everything one shard's run produced, ready to merge."""

    shard_id: int
    shard_count: int
    channels: Optional[dict[str, list]]    # None when streamed to disk
    stream_subdir: Optional[str]
    meta: dict
    stats: StudyStats


class _MemorySink:
    """Accumulates records per channel in plain lists."""

    def __init__(self) -> None:
        self.channels: dict[str, list] = {name: [] for name in CHANNELS}

    def emit(self, channel: str, records) -> int:
        bucket = self.channels[channel]
        before = len(bucket)
        bucket.extend(records)
        return len(bucket) - before

    def counts(self) -> dict[str, int]:
        return {name: len(rows) for name, rows in self.channels.items()}

    def close(self) -> None:
        pass


class _StreamingSink:
    """Spills records to per-channel JSONL append writers as produced."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.writers = open_channel_writers(directory)

    def emit(self, channel: str, records) -> int:
        return self.writers[channel].append_many(records)

    def counts(self) -> dict[str, int]:
        return {name: writer.count for name, writer in self.writers.items()}

    def close(self) -> None:
        for writer in self.writers.values():
            writer.close()


def run_shard(
    ecosystem: Ecosystem,
    config,
    shard_id: int = 0,
    shard_count: int = 1,
    stream_dir: Optional[str] = None,
    registry: Optional[ExperimentRegistry] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> ShardResult:
    """Run every registered experiment over one shard's timeline.

    This is the whole study when ``shard_count == 1``.  The caller owns
    ecosystem/shard pairing: ``ecosystem`` must be a fresh view for
    this shard (the engine rebuilds views per shard; see
    :func:`_shard_worker`).
    """
    registry = registry if registry is not None else default_registry(config)
    rng = DeterministicRandom(config.seed)
    if shard_count > 1:
        rng = rng.fork(f"shard:{shard_id}/{shard_count}")
    grabber = ZGrabber(ecosystem, rng.fork("grabber"))
    sink = _StreamingSink(stream_dir) if stream_dir else _MemorySink()
    stats = StudyStats(days=config.days, shards=shard_count, workers=1)

    ctx = StudyContext(
        ecosystem=ecosystem,
        grabber=grabber,
        rng=rng,
        config=config,
        emit=sink.emit,
        shard_id=shard_id,
        shard_count=shard_count,
    )
    ctx.meta["day0_list"] = ecosystem.alexa_list(0)
    ranks = ctx.meta.setdefault("ranks", {})

    schedules = [(experiment, experiment.schedule(config)) for experiment in registry]
    for day in range(config.days):
        day_start = day * DAY
        if ecosystem.clock.now() < day_start:
            ecosystem.advance_to(day_start)
        if progress is not None:
            progress(day, config.days)

        full_list = ecosystem.alexa_list()
        ctx.full_list_size = len(full_list)
        ctx.today = [
            (rank, name) for rank, name in full_list
            if name not in ecosystem.blacklist
        ]
        for rank, name in ctx.today:
            ranks.setdefault(name, rank)
        if shard_count > 1:
            ctx.today_owned = [
                (rank, name) for rank, name in ctx.today if ctx.owns(name)
            ]
        else:
            ctx.today_owned = ctx.today

        for experiment, scheduled_days in schedules:
            if day not in scheduled_days:
                continue
            grabs_before = grabber.grabs
            experiment.run_day(ctx, day)
            stats.scans_by_experiment[experiment.name] = (
                stats.scans_by_experiment.get(experiment.name, 0)
                + grabber.grabs - grabs_before
            )

    for experiment in registry:
        experiment.finalize(ctx)

    # End-of-study, view-independent metadata (identical in every shard).
    as_names = {}
    for autonomous_system in ecosystem.as_registry.all_systems():
        as_names[autonomous_system.asn] = autonomous_system.name
    ctx.meta["as_names"] = as_names
    if not ctx.meta.get("domain_asn"):
        domain_asn = ctx.meta.setdefault("domain_asn", {})
        domain_ip = ctx.meta.setdefault("domain_ip", {})
        for rank, name in ecosystem.alexa_list():
            try:
                addresses = ecosystem.dns.resolve_all(name)
            except KeyError:
                continue
            autonomous_system = ecosystem.as_registry.lookup(addresses[0])
            if autonomous_system is not None:
                domain_asn[name] = autonomous_system.asn
            domain_ip[name] = str(addresses[0])
    # A probe scheduled late in the study may run past the nominal end;
    # only advance if the clock is still behind it.
    if ecosystem.clock.now() < config.days * DAY:
        ecosystem.advance_to(config.days * DAY)
    ctx.meta["always_present"] = [
        d.name for d in ecosystem.always_present_domains(config.days - 1)
    ]

    stats.grabs = grabber.grabs
    stats.records_by_channel = sink.counts()
    sink.close()
    return ShardResult(
        shard_id=shard_id,
        shard_count=shard_count,
        channels=sink.channels if isinstance(sink, _MemorySink) else None,
        stream_subdir=stream_dir,
        meta=ctx.meta,
        stats=stats,
    )


def _shard_worker(args) -> ShardResult:
    """Process-pool entry point: rebuild the shard's view, run it.

    Rebuilding from ``EcosystemConfig`` (rather than pickling a live
    ecosystem) keeps the task payload tiny and guarantees every shard's
    view is the same deterministic function of the seed.
    """
    from ..hosting import build_ecosystem

    ecosystem_config, study_config, shard_id, shard_count, stream_dir = args
    ecosystem = build_ecosystem(ecosystem_config)
    return run_shard(
        ecosystem,
        study_config,
        shard_id=shard_id,
        shard_count=shard_count,
        stream_dir=stream_dir,
    )


class StudyEngine:
    """Drives a registry of experiments over shards and merges results."""

    def __init__(
        self,
        config,
        registry: Optional[ExperimentRegistry] = None,
    ) -> None:
        self.config = config
        self.registry = registry

    # -- public API --------------------------------------------------------

    def run(
        self,
        ecosystem: Ecosystem,
        progress: Optional[Callable[[int, int], None]] = None,
        shard_progress: Optional[ShardProgress] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        stream_dir: Optional[str] = None,
    ):
        """Run the study; returns ``(StudyDataset, StudyStats)``.

        ``shards`` partitions the population (output-affecting);
        ``workers`` only parallelizes shard execution.  ``stream_dir``
        switches the storage layer to streaming JSONL: records spill to
        disk as produced and the returned dataset holds lazy views.
        """
        from .study import StudyDataset  # local import to avoid a cycle

        run_start = time.perf_counter()
        config = self.config
        shards = shards if shards is not None else getattr(config, "shards", 1)
        workers = workers if workers is not None else getattr(config, "workers", 1)
        stream_dir = stream_dir if stream_dir is not None else getattr(
            config, "stream_dir", None
        )
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")

        if shards == 1:
            results = [run_shard(
                ecosystem,
                config,
                shard_id=0,
                shard_count=1,
                stream_dir=os.path.join(stream_dir, "shards", "00")
                if stream_dir else None,
                registry=self.registry,
                progress=progress,
            )]
        else:
            results = self._run_sharded(
                ecosystem, shards, workers, stream_dir, shard_progress
            )

        dataset, stats = self._merge(results, stream_dir, workers)
        stats.elapsed_seconds = time.perf_counter() - run_start
        return dataset, stats

    # -- sharded execution -------------------------------------------------

    def _run_sharded(
        self,
        ecosystem: Ecosystem,
        shards: int,
        workers: int,
        stream_dir: Optional[str],
        shard_progress: Optional[ShardProgress],
    ) -> list[ShardResult]:
        config = self.config

        def subdir(shard_id: int) -> Optional[str]:
            if stream_dir is None:
                return None
            return os.path.join(stream_dir, "shards", f"{shard_id:02d}")

        if workers == 1:
            from ..hosting import build_ecosystem

            results = []
            for shard_id in range(shards):
                view = build_ecosystem(ecosystem.config)

                def day_progress(day, days, _sid=shard_id):
                    if shard_progress is not None:
                        shard_progress(_sid, shards, day, days)

                results.append(run_shard(
                    view,
                    config,
                    shard_id=shard_id,
                    shard_count=shards,
                    stream_dir=subdir(shard_id),
                    registry=self.registry,
                    progress=day_progress,
                ))
            return results

        if self.registry is not None:
            raise ValueError(
                "custom experiment registries are not picklable across "
                "worker processes; run with workers=1 or register via "
                "default_registry"
            )
        tasks = [
            (ecosystem.config, config, shard_id, shards, subdir(shard_id))
            for shard_id in range(shards)
        ]
        results: list[Optional[ShardResult]] = [None] * shards
        with ProcessPoolExecutor(max_workers=min(workers, shards)) as pool:
            for result in pool.map(_shard_worker, tasks):
                results[result.shard_id] = result
                if shard_progress is not None:
                    shard_progress(
                        result.shard_id, shards, config.days, config.days
                    )
        return results  # type: ignore[return-value]

    # -- merge -------------------------------------------------------------

    def _merge(
        self,
        results: list[ShardResult],
        stream_dir: Optional[str],
        workers: int,
    ):
        from .study import StudyDataset

        config = self.config
        results = sorted(results, key=lambda r: r.shard_id)
        meta = results[0].meta  # view-independent fields agree across shards
        merged_meta = {
            "days": config.days,
            "day0_list": meta["day0_list"],
            "always_present": meta["always_present"],
            "ranks": meta["ranks"],
            "crossdomain_targets": meta.get("crossdomain_targets", []),
            "domain_asn": meta.get("domain_asn", {}),
            "domain_ip": meta.get("domain_ip", {}),
            "as_names": meta["as_names"],
            "list_sizes": meta.get("list_sizes", {}),
        }

        stats = StudyStats(
            days=config.days, shards=results[0].shard_count, workers=workers
        )
        for result in results:
            stats.merge(result.stats)

        dataset = StudyDataset(days=config.days)
        dataset.day0_list = merged_meta["day0_list"]
        dataset.always_present = merged_meta["always_present"]
        dataset.ranks = merged_meta["ranks"]
        dataset.crossdomain_targets = merged_meta["crossdomain_targets"]
        dataset.domain_asn = merged_meta["domain_asn"]
        dataset.domain_ip = merged_meta["domain_ip"]
        dataset.as_names = merged_meta["as_names"]
        dataset.list_sizes = merged_meta["list_sizes"]

        if stream_dir is not None:
            part_dirs = [r.stream_subdir for r in results]
            concatenate_channels(part_dirs, stream_dir)
            shutil.rmtree(os.path.join(stream_dir, "shards"), ignore_errors=True)
            write_meta(stream_dir, merged_meta)
            for name, view in open_channel_views(stream_dir).items():
                setattr(dataset, name, view)
        else:
            for name in CHANNELS:
                merged: list = []
                for result in results:
                    merged.extend(result.channels[name])
                setattr(dataset, name, merged)
        return dataset, stats


__all__ = [
    "StudyEngine",
    "StudyStats",
    "ShardResult",
    "run_shard",
]
