"""The sharded, streaming scan engine.

:class:`StudyEngine` drives an :class:`ExperimentRegistry` over the
simulated study timeline.  The population is partitioned into
``shards`` deterministic shards (stable domain-name hash, see
:func:`repro.scanner.experiments.shard_of`); each shard runs the full
timeline against its *own* ecosystem view with its own
:class:`DeterministicRandom` fork keyed by ``(seed, shard_id)``, scans
only the domains it owns, and either accumulates records in memory or
streams them straight to JSONL (``stream_dir``).

The merge step concatenates per-shard record streams in shard order,
so the merged output is **bit-for-bit identical** regardless of
``workers`` — one process running shards serially and a process pool
running them concurrently produce the same bytes.  ``workers`` is pure
execution parallelism; ``shards`` is the only knob that affects
output.  With ``shards=1`` the engine runs the registry against the
caller's ecosystem on the legacy single-stream path.

Why per-shard ecosystem views reproduce a coherent study: the
ecosystem's own evolution (list churn, STEK rotation schedules, DNS)
is driven by its internal seeded RNGs and virtual time, independent of
scan traffic, so every shard's view agrees on the population and on
view-independent metadata.  Scan-dependent server state (issued
tickets, cached sessions) only matters for the domains a shard
actually scans — and each domain is scanned by exactly one shard on
every study day.
"""

from __future__ import annotations

import os
import shutil
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..crypto.rng import DeterministicRandom
from ..faults.inject import install_chaos
from ..faults.plan import ImpairmentPlan
from ..hosting.ecosystem import Ecosystem
from ..netsim.clock import DAY
from ..obs import manifest as obs_manifest
from ..obs.events import EVENTS
from ..obs.metrics import (
    METRICS,
    cache_stats,
    merge_snapshots,
    parse_key,
    reset_process_caches,
)
from ..obs.profiling import (
    PROFILER,
    start_shard_profile,
    stop_shard_profile,
    write_profile_summary,
)
from ..obs.report import render_prometheus
from ..obs.trace import TRACER, export_jsonl
from .checkpoint import CheckpointMismatch, CheckpointStore, checkpoint_fingerprint
from .datastore import (
    concatenate_channels,
    open_channel_views,
    open_channel_writers,
    write_meta,
)
from .experiments import ExperimentRegistry, StudyContext, default_registry
from .grab import ZGrabber
from .records import CHANNELS

ShardProgress = Callable[[int, int, int, int], None]


class StudyAborted(RuntimeError):
    """A study stopped before the merge (shard failure or kill switch).

    ``checkpoint_dir`` (when the run streamed to disk) points at the
    partial checkpoint so the caller can surface ``--resume``.
    """

    def __init__(
        self,
        message: str,
        *,
        checkpoint_dir: Optional[str] = None,
        completed_shards: tuple = (),
        failed_shards: tuple = (),
    ) -> None:
        super().__init__(message)
        self.checkpoint_dir = checkpoint_dir
        self.completed_shards = list(completed_shards)
        self.failed_shards = list(failed_shards)


@dataclass
class StudyStats:
    """Observability summary returned alongside a study dataset."""

    days: int
    shards: int
    workers: int
    grabs: int = 0
    scans_by_experiment: dict[str, int] = field(default_factory=dict)
    records_by_channel: dict[str, int] = field(default_factory=dict)
    # Wall-clock of the whole run (including shard merge), stamped by
    # StudyEngine.run; benchmarks report grabs/elapsed_seconds.  Not
    # merged: per-shard elapsed times overlap under workers > 1.
    elapsed_seconds: float = 0.0

    @property
    def grabs_per_sec(self) -> float:
        return self.grabs / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    def merge(self, other: "StudyStats") -> None:
        self.grabs += other.grabs
        for name, count in other.scans_by_experiment.items():
            self.scans_by_experiment[name] = (
                self.scans_by_experiment.get(name, 0) + count
            )
        for name, count in other.records_by_channel.items():
            self.records_by_channel[name] = (
                self.records_by_channel.get(name, 0) + count
            )

    def render(self) -> str:
        lines = [
            f"study stats: {self.grabs:,} TLS grabs over {self.days} days "
            f"({self.shards} shard{'s' if self.shards != 1 else ''}, "
            f"{self.workers} worker{'s' if self.workers != 1 else ''})",
        ]
        if self.elapsed_seconds > 0:
            lines.append(
                f"  elapsed {self.elapsed_seconds:.2f}s "
                f"({self.grabs_per_sec:,.1f} grabs/s)"
            )
        width = max((len(n) for n in self.scans_by_experiment), default=0)
        for name, count in self.scans_by_experiment.items():
            lines.append(f"  {name:<{width}}  {count:>10,} grabs")
        return "\n".join(lines)


@dataclass
class ShardResult:
    """Everything one shard's run produced, ready to merge."""

    shard_id: int
    shard_count: int
    channels: Optional[dict[str, list]]    # None when streamed to disk
    stream_subdir: Optional[str]
    meta: dict
    stats: StudyStats
    #: Metrics delta for *this shard's* activity only (see
    #: MetricsRegistry.snapshot_delta) — merged in shard order by the
    #: engine so the totals are worker-count independent.
    metrics: dict = field(default_factory=dict)
    #: Wall-clock seconds per study day (len == config.days).
    day_seconds: list = field(default_factory=list)
    #: Wall-clock of the whole shard run.
    elapsed_seconds: float = 0.0
    #: Trace spans drained from this shard's process (ring-buffer tail).
    spans: list = field(default_factory=list)
    #: Structured events drained from this shard's process (see
    #: repro.obs.events) — empty unless the live plane's event log is on.
    events: list = field(default_factory=list)
    #: Profiling snapshot (phase timers, slowest grabs, pstats dump
    #: name) — empty unless the study ran with a profile_dir.
    profile: dict = field(default_factory=dict)


class _MemorySink:
    """Accumulates records per channel in plain lists."""

    def __init__(self) -> None:
        self.channels: dict[str, list] = {name: [] for name in CHANNELS}

    def emit(self, channel: str, records) -> int:
        bucket = self.channels[channel]
        before = len(bucket)
        bucket.extend(records)
        return len(bucket) - before

    def counts(self) -> dict[str, int]:
        return {name: len(rows) for name, rows in self.channels.items()}

    def close(self) -> None:
        pass


class _StreamingSink:
    """Spills records to per-channel JSONL append writers as produced."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.writers = open_channel_writers(directory)

    def emit(self, channel: str, records) -> int:
        return self.writers[channel].append_many(records)

    def counts(self) -> dict[str, int]:
        return {name: writer.count for name, writer in self.writers.items()}

    def close(self) -> None:
        for writer in self.writers.values():
            writer.close()


def run_shard(
    ecosystem: Ecosystem,
    config,
    shard_id: int = 0,
    shard_count: int = 1,
    stream_dir: Optional[str] = None,
    registry: Optional[ExperimentRegistry] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    live_push: Optional[Callable[[int, int, int, dict], None]] = None,
    events: bool = False,
    profile_dir: Optional[str] = None,
) -> ShardResult:
    """Run every registered experiment over one shard's timeline.

    This is the whole study when ``shard_count == 1``.  The caller owns
    ecosystem/shard pairing: ``ecosystem`` must be a fresh view for
    this shard (the engine rebuilds views per shard; see
    :func:`_shard_worker`).

    Live-plane hooks, all diagnostics-only (never output-affecting):
    ``live_push(day, days, day_grabs, metrics_delta)`` fires after each
    study day; ``events`` buffers structured events into the returned
    result; ``profile_dir`` runs the shard under cProfile and fills
    ``ShardResult.profile``.
    """
    registry = registry if registry is not None else default_registry(config)
    # Start every shard from cold value-keyed caches so cache hit/miss
    # counters are a function of the shard alone, not of which shards
    # this process happened to run earlier (workers=1 reuses one
    # process; workers=N does not).  Output-safe: the caches are keyed
    # by value, so clearing only costs recomputation.
    reset_process_caches()
    if events:
        EVENTS.enable()
        EVENTS.drain()  # discard leftovers from a reused process
        EVENTS.emit("shard.start", shard=shard_id, shards=shard_count)
    if profile_dir is not None:
        PROFILER.reset()
        PROFILER.enable()
    profile_handle = start_shard_profile(profile_dir)
    metrics_base = METRICS.snapshot()
    push_base = metrics_base
    shard_started = time.perf_counter()
    day_seconds: list = []
    chaos = getattr(config, "chaos", None)
    if chaos:
        # Compiled per shard (plans are cheap); decisions are pure
        # hashes of (seed, window, target, time), so every shard sees
        # the same schedule regardless of worker or process layout.
        install_chaos(ecosystem, ImpairmentPlan.from_profile(chaos))
    rng = DeterministicRandom(config.seed)
    if shard_count > 1:
        rng = rng.fork(f"shard:{shard_id}/{shard_count}")
    # ``oracle`` selects the blocking reference exchange and the
    # one-at-a-time sweep loop; the default is the event-driven fast
    # path (byte-identical output; see docs/SCALING.md).
    oracle = bool(getattr(config, "oracle", False))
    grabber = ZGrabber(
        ecosystem, rng.fork("grabber"), retry=getattr(config, "retry", None),
        fast=not oracle,
    )
    sink = _StreamingSink(stream_dir) if stream_dir else _MemorySink()
    stats = StudyStats(days=config.days, shards=shard_count, workers=1)

    ctx = StudyContext(
        ecosystem=ecosystem,
        grabber=grabber,
        rng=rng,
        config=config,
        emit=sink.emit,
        shard_id=shard_id,
        shard_count=shard_count,
        concurrency=None if oracle else getattr(config, "concurrency", 1024),
    )
    ctx.meta["day0_list"] = ecosystem.alexa_list(0)
    ranks = ctx.meta.setdefault("ranks", {})

    schedules = [(experiment, experiment.schedule(config)) for experiment in registry]
    for day in range(config.days):
        day_started = time.perf_counter()
        day_grabs_start = grabber.grabs
        day_start = day * DAY
        if ecosystem.clock.now() < day_start:
            with PROFILER.phase("ecosystem.advance"):
                ecosystem.advance_to(day_start)
        if progress is not None:
            progress(day, config.days)

        full_list = ecosystem.alexa_list()
        ctx.full_list_size = len(full_list)
        ctx.today = [
            (rank, name) for rank, name in full_list
            if name not in ecosystem.blacklist
        ]
        for rank, name in ctx.today:
            ranks.setdefault(name, rank)
        if shard_count > 1:
            ctx.today_owned = [
                (rank, name) for rank, name in ctx.today if ctx.owns(name)
            ]
        else:
            ctx.today_owned = ctx.today

        for experiment, scheduled_days in schedules:
            if day not in scheduled_days:
                continue
            grabs_before = grabber.grabs
            with TRACER.span(
                "experiment.day",
                experiment=experiment.name,
                day=day,
                shard=shard_id,
            ), PROFILER.phase(f"experiment.{experiment.name}"):
                experiment.run_day(ctx, day)
            day_grabs = grabber.grabs - grabs_before
            stats.scans_by_experiment[experiment.name] = (
                stats.scans_by_experiment.get(experiment.name, 0) + day_grabs
            )
            METRICS.counter(
                "experiment.grabs", experiment=experiment.name
            ).inc(day_grabs)
        day_seconds.append(round(time.perf_counter() - day_started, 6))
        day_total_grabs = grabber.grabs - day_grabs_start
        if events:
            EVENTS.emit(
                "shard.day", shard=shard_id, day=day, days=config.days,
                grabs=day_total_grabs, seconds=day_seconds[-1],
            )
        if live_push is not None:
            # Diagnostics-only: the delta feeds the parent's live
            # gauges; the merged output still comes from the full-run
            # delta below, so pushes never affect final metrics.
            delta = METRICS.snapshot_delta(push_base)
            push_base = METRICS.snapshot()
            live_push(day, config.days, day_total_grabs, delta)

    with PROFILER.phase("finalize"):
        for experiment in registry:
            experiment.finalize(ctx)

    # End-of-study, view-independent metadata (identical in every shard).
    as_names = {}
    for autonomous_system in ecosystem.as_registry.all_systems():
        as_names[autonomous_system.asn] = autonomous_system.name
    ctx.meta["as_names"] = as_names
    if not ctx.meta.get("domain_asn"):
        with PROFILER.phase("metadata"):
            domain_asn = ctx.meta.setdefault("domain_asn", {})
            domain_ip = ctx.meta.setdefault("domain_ip", {})
            for rank, name in ecosystem.alexa_list():
                try:
                    addresses = ecosystem.dns.resolve_all(name)
                except KeyError:
                    continue
                autonomous_system = ecosystem.as_registry.lookup(addresses[0])
                if autonomous_system is not None:
                    domain_asn[name] = autonomous_system.asn
                domain_ip[name] = str(addresses[0])
    # A probe scheduled late in the study may run past the nominal end;
    # only advance if the clock is still behind it.
    if ecosystem.clock.now() < config.days * DAY:
        ecosystem.advance_to(config.days * DAY)
    ctx.meta["always_present"] = [
        d.name for d in ecosystem.always_present_domains(config.days - 1)
    ]

    stats.grabs = grabber.grabs
    stats.records_by_channel = sink.counts()
    sink.close()
    pstats_name = stop_shard_profile(profile_handle, profile_dir, shard_id)
    profile: dict = {}
    if profile_dir is not None:
        PROFILER.disable()
        profile = PROFILER.snapshot()
        if pstats_name is not None:
            profile["pstats"] = pstats_name
    if events:
        EVENTS.emit(
            "shard.end", shard=shard_id, grabs=stats.grabs,
            retries=grabber.retries,
        )
    shard_events = EVENTS.drain() if events else []
    if events:
        EVENTS.disable()
    return ShardResult(
        shard_id=shard_id,
        shard_count=shard_count,
        channels=sink.channels if isinstance(sink, _MemorySink) else None,
        stream_subdir=stream_dir,
        meta=ctx.meta,
        stats=stats,
        metrics=METRICS.snapshot_delta(metrics_base),
        day_seconds=day_seconds,
        elapsed_seconds=round(time.perf_counter() - shard_started, 6),
        spans=TRACER.drain() if TRACER.enabled else [],
        events=shard_events,
        profile=profile,
    )


def _shard_worker(args) -> ShardResult:
    """Process-pool entry point: rebuild the shard's view, run it.

    Rebuilding from ``EcosystemConfig`` (rather than pickling a live
    ecosystem) keeps the task payload tiny and guarantees every shard's
    view is the same deterministic function of the seed.  ``spool_dir``
    carries the live plane's push protocol across the process boundary
    (see :class:`repro.obs.exporter.SpoolPush`).
    """
    from ..hosting import build_ecosystem

    (
        ecosystem_config, study_config, shard_id, shard_count, stream_dir,
        trace, spool_dir, events, profile_dir,
    ) = args
    if trace:
        TRACER.enable()
    live_push = None
    if spool_dir is not None:
        from ..obs.exporter import SpoolPush

        live_push = SpoolPush(spool_dir, shard_id).push
    ecosystem = build_ecosystem(ecosystem_config)
    return run_shard(
        ecosystem,
        study_config,
        shard_id=shard_id,
        shard_count=shard_count,
        stream_dir=stream_dir,
        live_push=live_push,
        events=events,
        profile_dir=profile_dir,
    )


class StudyEngine:
    """Drives a registry of experiments over shards and merges results."""

    def __init__(
        self,
        config,
        registry: Optional[ExperimentRegistry] = None,
    ) -> None:
        self.config = config
        self.registry = registry

    # -- public API --------------------------------------------------------

    def run(
        self,
        ecosystem: Ecosystem,
        progress: Optional[Callable[[int, int], None]] = None,
        shard_progress: Optional[ShardProgress] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        stream_dir: Optional[str] = None,
        telemetry_dir: Optional[str] = None,
        resume: bool = False,
        fail_fast: bool = False,
        live=None,
        profile_dir: Optional[str] = None,
    ):
        """Run the study; returns ``(StudyDataset, StudyStats)``.

        ``shards`` partitions the population (output-affecting);
        ``workers`` only parallelizes shard execution.  ``stream_dir``
        switches the storage layer to streaming JSONL: records spill to
        disk as produced and the returned dataset holds lazy views.
        ``telemetry_dir`` enables span tracing and, after the merge,
        writes a run manifest, merged metrics snapshot, Prometheus
        exposition, and trace JSONL there.  Telemetry never touches the
        dataset: pass a directory *outside* ``stream_dir``.

        Streamed runs checkpoint each completed shard under
        ``<stream_dir>/checkpoint/`` (see :mod:`.checkpoint`);
        ``resume=True`` re-executes only the shards the checkpoint is
        missing, after verifying the stored configuration fingerprint.
        Because shards are pure functions of (config, shard_id), a
        resumed run's merged dataset is byte-identical to an
        uninterrupted one, and the merge removes the checkpoint so the
        finished directory carries no trace of the interruption.  On a
        shard failure the engine raises :class:`StudyAborted` carrying
        the checkpoint path; ``fail_fast`` stops dispatching new shards
        immediately instead of letting siblings finish and checkpoint.

        ``live`` accepts a :class:`repro.obs.exporter.LivePlane` (or
        anything with its hook surface): the engine feeds it study /
        shard / day completions and metric deltas while running.  The
        caller owns the plane's lifecycle (start/stop) — on
        :class:`StudyAborted` the caller should invoke
        ``live.study_aborted``.  ``profile_dir`` runs every shard under
        cProfile and aggregates the dumps there after the merge.  Both
        are diagnostics-only: dataset bytes are identical with them on
        or off.
        """
        from .study import StudyDataset  # local import to avoid a cycle

        run_start = time.perf_counter()
        config = self.config
        shards = shards if shards is not None else getattr(config, "shards", 1)
        workers = workers if workers is not None else getattr(config, "workers", 1)
        stream_dir = stream_dir if stream_dir is not None else getattr(
            config, "stream_dir", None
        )
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if telemetry_dir is not None:
            if stream_dir is not None and (
                os.path.abspath(telemetry_dir) == os.path.abspath(stream_dir)
            ):
                raise ValueError(
                    "telemetry_dir must not be the dataset stream_dir "
                    "(telemetry lives next to the dataset, not inside it)"
                )
            TRACER.enable()

        store = CheckpointStore(stream_dir) if stream_dir is not None else None
        fingerprint = checkpoint_fingerprint(
            config, getattr(ecosystem, "config", None), shards
        )
        completed: dict[int, ShardResult] = {}
        if resume:
            if store is None:
                raise ValueError(
                    "resume requires a stream_dir: checkpoints live under "
                    "<stream_dir>/checkpoint/"
                )
            if not store.exists():
                raise CheckpointMismatch(
                    f"no checkpoint under {store.directory}; nothing to resume"
                )
            store.validate(fingerprint)
            completed = store.load_completed()
        elif store is not None:
            store.reset(fingerprint)
        todo = [
            shard_id for shard_id in range(shards) if shard_id not in completed
        ]

        if live is not None:
            live.study_started(
                shards=shards, days=config.days, workers=workers,
                resumed=bool(completed),
            )
            for shard_id in sorted(completed):
                live.record_shard(completed[shard_id], restored=True)
        events = live is not None and live.events_enabled

        if not todo:
            results = list(completed.values())
        elif shards == 1:
            live_push = None
            if live is not None:
                live_push = (
                    lambda day, days, grabs, delta:
                    live.day_completed(0, day, days, grabs, delta)
                )
            result = run_shard(
                ecosystem,
                config,
                shard_id=0,
                shard_count=1,
                stream_dir=os.path.join(stream_dir, "shards", "00")
                if stream_dir else None,
                registry=self.registry,
                progress=progress,
                live_push=live_push,
                events=events,
                profile_dir=profile_dir,
            )
            if store is not None:
                store.save_shard(result)
            if live is not None:
                live.record_shard(result, checkpointed=store is not None)
            results = [result]
        else:
            results = list(completed.values()) + self._run_sharded(
                ecosystem, shards, workers, stream_dir, shard_progress,
                trace=telemetry_dir is not None,
                todo=todo, store=store, fail_fast=fail_fast,
                live=live, events=events, profile_dir=profile_dir,
            )

        dataset, stats = self._merge(results, stream_dir, workers)
        if store is not None:
            store.clear()
        stats.elapsed_seconds = time.perf_counter() - run_start
        if profile_dir is not None:
            ordered = sorted(results, key=lambda r: r.shard_id)
            write_profile_summary(
                profile_dir, [result.profile for result in ordered]
            )
        if live is not None:
            live.study_finished(stats)
        if telemetry_dir is not None:
            try:
                self._write_telemetry(telemetry_dir, ecosystem, results, stats)
            finally:
                TRACER.disable()
        return dataset, stats

    # -- sharded execution -------------------------------------------------

    def _run_sharded(
        self,
        ecosystem: Ecosystem,
        shards: int,
        workers: int,
        stream_dir: Optional[str],
        shard_progress: Optional[ShardProgress],
        trace: bool = False,
        todo: Optional[list[int]] = None,
        store: Optional[CheckpointStore] = None,
        fail_fast: bool = False,
        live=None,
        events: bool = False,
        profile_dir: Optional[str] = None,
    ) -> list[ShardResult]:
        """Execute the shards in ``todo`` (default: all), checkpointing
        each completed shard as it lands.  Raises :class:`StudyAborted`
        if any shard fails; without ``fail_fast`` sibling shards still
        finish (and checkpoint) first, so a later ``--resume`` only
        repeats the broken shard."""
        config = self.config
        todo = list(range(shards)) if todo is None else list(todo)
        pending = METRICS.gauge("engine.pending_shards")
        pending.set(len(todo))

        def subdir(shard_id: int) -> Optional[str]:
            if stream_dir is None:
                return None
            return os.path.join(stream_dir, "shards", f"{shard_id:02d}")

        results: list[ShardResult] = []
        failures: list[tuple[int, BaseException]] = []

        def record(result: ShardResult) -> None:
            if store is not None:
                store.save_shard(result)
            results.append(result)
            pending.set(len(todo) - len(results) - len(failures))
            if live is not None:
                live.record_shard(result, checkpointed=store is not None)
            if shard_progress is not None:
                shard_progress(result.shard_id, shards, config.days, config.days)

        if workers == 1:
            from ..hosting import build_ecosystem

            for shard_id in todo:
                view = build_ecosystem(ecosystem.config)

                def day_progress(day, days, _sid=shard_id):
                    if shard_progress is not None:
                        shard_progress(_sid, shards, day, days)

                live_push = None
                if live is not None:
                    live_push = (
                        lambda day, days, grabs, delta, _sid=shard_id:
                        live.day_completed(_sid, day, days, grabs, delta)
                    )
                try:
                    result = run_shard(
                        view,
                        config,
                        shard_id=shard_id,
                        shard_count=shards,
                        stream_dir=subdir(shard_id),
                        registry=self.registry,
                        progress=day_progress,
                        live_push=live_push,
                        events=events,
                        profile_dir=profile_dir,
                    )
                except Exception as exc:
                    failures.append((shard_id, exc))
                    if fail_fast:
                        break
                    continue
                record(result)
            return self._finish_sharded(results, failures, store)

        if self.registry is not None:
            raise ValueError(
                "custom experiment registries are not picklable across "
                "worker processes; run with workers=1 or register via "
                "default_registry"
            )
        spool_dir: Optional[str] = None
        poller = None
        if live is not None:
            import tempfile

            from ..obs.exporter import SpoolPoller

            spool_dir = tempfile.mkdtemp(prefix="repro-obs-spool-")
            poller = SpoolPoller(spool_dir, live)
            poller.start()
        try:
            with ProcessPoolExecutor(max_workers=min(workers, len(todo))) as pool:
                futures = {
                    pool.submit(_shard_worker, (
                        ecosystem.config, config, shard_id, shards,
                        subdir(shard_id), trace, spool_dir, events,
                        profile_dir,
                    )): shard_id
                    for shard_id in todo
                }
                outstanding = set(futures)
                while outstanding:
                    finished, outstanding = wait(
                        outstanding, return_when=FIRST_COMPLETED
                    )
                    for future in finished:
                        exc = future.exception()
                        if exc is not None:
                            failures.append((futures[future], exc))
                            if fail_fast:
                                for leftover in outstanding:
                                    leftover.cancel()
                                outstanding = set()
                            continue
                        record(future.result())
        finally:
            if poller is not None:
                poller.stop()  # final drain included
            if spool_dir is not None:
                shutil.rmtree(spool_dir, ignore_errors=True)
        return self._finish_sharded(results, failures, store)

    @staticmethod
    def _finish_sharded(
        results: list[ShardResult],
        failures: list[tuple[int, BaseException]],
        store: Optional[CheckpointStore],
    ) -> list[ShardResult]:
        if not failures:
            return results
        failed_ids = sorted(shard_id for shard_id, _ in failures)
        causes = "; ".join(
            f"shard {shard_id}: {exc}" for shard_id, exc in failures
        )
        checkpoint_dir = store.directory if store is not None else None
        kept = (
            f"{len(store.completed_shards())} shard(s) checkpointed under "
            f"{checkpoint_dir}" if store is not None
            else "no stream_dir, so nothing was checkpointed"
        )
        raise StudyAborted(
            f"study aborted: {len(failed_ids)} shard(s) failed ({causes}); "
            f"{kept}",
            checkpoint_dir=checkpoint_dir,
            completed_shards=tuple(sorted(r.shard_id for r in results)),
            failed_shards=tuple(failed_ids),
        ) from failures[0][1]

    # -- merge -------------------------------------------------------------

    def _merge(
        self,
        results: list[ShardResult],
        stream_dir: Optional[str],
        workers: int,
    ):
        from .study import StudyDataset

        config = self.config
        results = sorted(results, key=lambda r: r.shard_id)
        meta = results[0].meta  # view-independent fields agree across shards
        merged_meta = {
            "days": config.days,
            "day0_list": meta["day0_list"],
            "always_present": meta["always_present"],
            "ranks": meta["ranks"],
            "crossdomain_targets": meta.get("crossdomain_targets", []),
            "domain_asn": meta.get("domain_asn", {}),
            "domain_ip": meta.get("domain_ip", {}),
            "as_names": meta["as_names"],
            "list_sizes": meta.get("list_sizes", {}),
        }

        stats = StudyStats(
            days=config.days, shards=results[0].shard_count, workers=workers
        )
        for result in results:
            stats.merge(result.stats)

        dataset = StudyDataset(days=config.days)
        dataset.day0_list = merged_meta["day0_list"]
        dataset.always_present = merged_meta["always_present"]
        dataset.ranks = merged_meta["ranks"]
        dataset.crossdomain_targets = merged_meta["crossdomain_targets"]
        dataset.domain_asn = merged_meta["domain_asn"]
        dataset.domain_ip = merged_meta["domain_ip"]
        dataset.as_names = merged_meta["as_names"]
        dataset.list_sizes = merged_meta["list_sizes"]

        if stream_dir is not None:
            part_dirs = [r.stream_subdir for r in results]
            concatenate_channels(part_dirs, stream_dir)
            shutil.rmtree(os.path.join(stream_dir, "shards"), ignore_errors=True)
            write_meta(stream_dir, merged_meta)
            for name, view in open_channel_views(stream_dir).items():
                setattr(dataset, name, view)
        else:
            for name in CHANNELS:
                merged: list = []
                for result in results:
                    merged.extend(result.channels[name])
                setattr(dataset, name, merged)
        return dataset, stats

    # -- telemetry ---------------------------------------------------------

    #: Cache metric families summarized in the manifest's ``caches``
    #: section (each contributes ``<name>.{hit,miss[,eviction]}``).
    CACHE_FAMILIES = (
        "crypto.aes.key_cache",
        "crypto.aes.stek_cipher",
        "crypto.ec.shared_memo",
        "tls.kex.params_cache",
        "x509.sig_memo",
    )

    def merged_metrics(self, results: list[ShardResult]) -> dict:
        """Merge per-shard metric deltas in shard order (deterministic)."""
        ordered = sorted(results, key=lambda r: r.shard_id)
        merged = merge_snapshots(r.metrics for r in ordered)
        # Engine-level gauges live in *this* process; overlay their
        # final readings so the exported snapshot doesn't depend on
        # which process happened to run which shard.
        parent = METRICS.snapshot()
        for key, value in parent["gauges"].items():
            if key.startswith("engine."):
                merged["gauges"][key] = value
        merged["gauges"] = dict(sorted(merged["gauges"].items()))
        return merged

    def _write_telemetry(
        self,
        telemetry_dir: str,
        ecosystem: Ecosystem,
        results: list[ShardResult],
        stats: StudyStats,
    ) -> None:
        """Write manifest.json / metrics.json / metrics.prom / trace.jsonl."""
        config = self.config
        ordered = sorted(results, key=lambda r: r.shard_id)
        merged = self.merged_metrics(ordered)

        counters = merged["counters"]
        failures = sum(
            value for key, value in counters.items()
            if key.startswith("scanner.grab.failure")
        )
        caches = {}
        for family in self.CACHE_FAMILIES:
            summary = cache_stats(merged, family)
            if summary is not None:
                caches[family] = summary

        manifest = obs_manifest.build_manifest(
            study_config=config,
            ecosystem_config=getattr(ecosystem, "config", None),
            run={
                "days": config.days,
                "shards": stats.shards,
                "workers": stats.workers,
                "grabs": stats.grabs,
                "failures": failures,
                "elapsed_seconds": round(stats.elapsed_seconds, 3),
                "grabs_per_sec": round(stats.grabs_per_sec, 1),
            },
            shards=[
                {
                    "shard_id": result.shard_id,
                    "elapsed_seconds": result.elapsed_seconds,
                    "day_seconds": result.day_seconds,
                    "grabs": result.stats.grabs,
                }
                for result in ordered
            ],
            experiments=dict(stats.scans_by_experiment),
            channels={
                name: count
                for name, count in stats.records_by_channel.items()
                if count
            },
            caches=caches,
        )
        obs_manifest.write_manifest(telemetry_dir, manifest)
        obs_manifest.write_metrics(telemetry_dir, merged)
        with open(
            os.path.join(telemetry_dir, obs_manifest.PROMETHEUS_NAME),
            "w",
            encoding="utf-8",
        ) as fh:
            fh.write(render_prometheus(merged))
        spans: list = []
        for result in ordered:
            spans.extend(result.spans)
        spans.extend(TRACER.drain())  # engine-process leftovers, if any
        export_jsonl(
            os.path.join(telemetry_dir, obs_manifest.TRACE_NAME), spans
        )


__all__ = [
    "StudyEngine",
    "StudyStats",
    "StudyAborted",
    "ShardResult",
    "run_shard",
]
