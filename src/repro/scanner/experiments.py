"""The pluggable experiment registry driving the measurement study.

Every measurement the paper reports — daily longitudinal sweeps,
10-connection support scans, 30-minute scans, 24-hour resumption
probes, the cross-domain cache probe — is one :class:`Experiment`
registered with an :class:`ExperimentRegistry`.  The study engine
(:mod:`repro.scanner.engine`) drives registered experiments over the
simulated timeline; nothing in the engine knows *which* experiments
exist, so resumption-style follow-up studies (Sy et al.'s tracking
probes, new cipher offers, new probe cadences) plug in as new
registrations instead of edits to a monolithic day loop.

An experiment implements three hooks:

* ``schedule(config)`` — the set of study days it acts on (any object
  supporting ``in``; :data:`EVERY_DAY` is a convenience sentinel);
* ``run_day(ctx, day)`` — perform the day's scanning through the
  :class:`StudyContext`, emitting records to ``ctx.emit`` and metadata
  to ``ctx.meta``;
* ``finalize(ctx)`` — optional end-of-study work.

Experiments see the world only through the context.  In a sharded run
each shard owns a stable subset of the population (``ctx.owns``) and
experiments scan only owned domains, which is what makes the shard
merge deterministic: a domain's entire observation stream comes from
exactly one shard, whichever worker executed it.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..crypto.rng import DeterministicRandom
from ..hosting.ecosystem import Ecosystem
from ..netsim.clock import HOUR
from ..tls.ciphers import (
    CipherSuite,
    DHE_ONLY_OFFER,
    ECDHE_FIRST_OFFER,
    MODERN_BROWSER_OFFER,
)
from .crossdomain import CrossDomainConfig, ProbeTarget, cross_domain_cache_probe
from .grab import ZGrabber
from .resumption import ProbeConfig, resumption_probe
from .schedule import SweepConfig, sweep, thirty_minute_scan


class _EveryDay:
    """Schedule sentinel: the experiment runs on every study day."""

    def __contains__(self, day: int) -> bool:
        return True

    def __repr__(self) -> str:
        return "EVERY_DAY"


EVERY_DAY = _EveryDay()


def shard_of(name: str, shard_count: int) -> int:
    """Stable shard assignment for a domain name.

    Keyed on the name (not the day's rank) so a domain is scanned by
    the same shard — hence the same ecosystem view — on every study
    day, preserving identifier-span continuity across days.
    """
    if shard_count <= 1:
        return 0
    return zlib.crc32(name.encode("utf-8")) % shard_count


@dataclass
class StudyContext:
    """Everything an experiment may touch during a shard's run.

    ``today`` is the full non-blacklisted ranked list for the current
    day; ``today_owned`` is the subset this shard scans.  ``emit``
    routes records to the shard's sink (in-memory lists or streaming
    JSONL writers); ``meta`` accumulates small view-independent
    metadata (ranks, list sizes, whois knowledge) merged from shard 0.
    """

    ecosystem: Ecosystem
    grabber: ZGrabber
    rng: DeterministicRandom
    config: "StudyConfig"  # noqa: F821 — import cycle; see study.py
    emit: Callable[[str, Iterable], int]
    shard_id: int = 0
    shard_count: int = 1
    today: list[tuple[int, str]] = field(default_factory=list)
    today_owned: list[tuple[int, str]] = field(default_factory=list)
    full_list_size: int = 0
    meta: dict = field(default_factory=dict)
    #: Event-loop admission batch size for sweeps; ``None`` selects the
    #: blocking reference path (``study --oracle``).  Execution-only:
    #: never changes dataset bytes, only buffering granularity.
    concurrency: Optional[int] = None

    def owns(self, name: str) -> bool:
        return shard_of(name, self.shard_count) == self.shard_id


class Experiment:
    """Base experiment: override ``schedule`` and ``run_day``."""

    name: str = "experiment"
    #: channels this experiment writes (informational / for stats)
    channels: tuple[str, ...] = ()

    def schedule(self, config) -> object:
        """Days this experiment acts on (must support ``day in ...``)."""
        return EVERY_DAY

    def run_day(self, ctx: StudyContext, day: int) -> None:
        raise NotImplementedError

    def finalize(self, ctx: StudyContext) -> None:
        """End-of-study hook (optional)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class ExperimentRegistry:
    """Ordered collection of experiments; order is execution order.

    Registration order is load-bearing for determinism: experiments
    sharing a study day run in the order they were registered, exactly
    as the paper's campaigns interleaved on the real timeline.
    """

    def __init__(self, experiments: Iterable[Experiment] = ()) -> None:
        self._experiments: list[Experiment] = []
        self._by_name: dict[str, Experiment] = {}
        for experiment in experiments:
            self.register(experiment)

    def register(self, experiment: Experiment) -> Experiment:
        if experiment.name in self._by_name:
            raise ValueError(f"duplicate experiment name {experiment.name!r}")
        self._experiments.append(experiment)
        self._by_name[experiment.name] = experiment
        return experiment

    def get(self, name: str) -> Experiment:
        return self._by_name[name]

    def names(self) -> list[str]:
        return [experiment.name for experiment in self._experiments]

    def __iter__(self):
        return iter(self._experiments)

    def __len__(self) -> int:
        return len(self._experiments)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name


# ---------------------------------------------------------------------------
# The paper's experiments, as registry entries
# ---------------------------------------------------------------------------


class DailySweepExperiment(Experiment):
    """One single-connection sweep per day (§4.3/§4.4 longitudinal scans)."""

    def __init__(
        self,
        name: str,
        channel: str,
        offer: tuple[CipherSuite, ...],
        window_seconds: float,
        offer_tickets: bool = True,
        label: str = "daily",
    ) -> None:
        self.name = name
        self.channels = (channel,)
        self.channel = channel
        self.offer = offer
        self.window_seconds = window_seconds
        self.offer_tickets = offer_tickets
        self.label = label

    def run_day(self, ctx: StudyContext, day: int) -> None:
        # Completed batches stream straight to the shard sink instead of
        # accumulating the whole day in memory (flat in population).
        sweep(
            ctx.grabber,
            ctx.today_owned,
            SweepConfig(
                offer=self.offer,
                connections_per_domain=1,
                window_seconds=self.window_seconds,
                offer_tickets=self.offer_tickets,
                label=self.label,
            ),
            concurrency=ctx.concurrency,
            sink=lambda batch: ctx.emit(self.channel, batch),
        )


class SupportScanExperiment(Experiment):
    """Table 1's 10-connection support scan plus the 30-minute scan.

    Also records the day's list sizes (full list, post-blacklist) under
    ``meta["list_sizes"][kind]`` — the Table 1 waterfall header.
    """

    def __init__(
        self,
        kind: str,
        day_field: str,
        offer: tuple[CipherSuite, ...],
        offer_tickets: bool = False,
        window_seconds: Optional[float] = None,
    ) -> None:
        self.name = f"support-{kind}"
        self.kind = kind
        self.day_field = day_field
        self.offer = offer
        self.offer_tickets = offer_tickets
        self.window_seconds = window_seconds  # None -> config.support_scan_window
        self.channels = (f"{kind}_support", f"{kind}_30min")

    def schedule(self, config) -> frozenset:
        if not config.run_support_scans:
            return frozenset()
        return frozenset((getattr(config, self.day_field),))

    def run_day(self, ctx: StudyContext, day: int) -> None:
        config = ctx.config
        window = (
            self.window_seconds
            if self.window_seconds is not None
            else config.support_scan_window
        )
        ctx.meta.setdefault("list_sizes", {})[self.kind] = (
            ctx.full_list_size,
            len(ctx.today),
        )
        sweep(
            ctx.grabber,
            ctx.today_owned,
            SweepConfig(
                offer=self.offer,
                offer_tickets=self.offer_tickets,
                connections_per_domain=config.support_scan_connections,
                window_seconds=window,
                label=f"{self.kind}-support",
            ),
            concurrency=ctx.concurrency,
            sink=lambda batch: ctx.emit(f"{self.kind}_support", batch),
        )
        thirty_minute_scan(
            ctx.grabber,
            ctx.today_owned,
            self.offer,
            concurrency=ctx.concurrency,
            sink=lambda batch: ctx.emit(f"{self.kind}_30min", batch),
        )


class CrossDomainExperiment(Experiment):
    """The §5.1 cross-domain session-cache probe.

    Builds the scanner's whois/DNS view of the *whole* day's list (the
    by-IP/by-AS peer pools must be global so a shard can offer its
    origins' sessions to peers in any shard), then probes only owned
    origins.  Edges are therefore partitioned by origin shard and the
    merge is plain concatenation.
    """

    name = "crossdomain"
    channels = ("cache_edges",)

    def schedule(self, config) -> frozenset:
        if not config.run_crossdomain:
            return frozenset()
        return frozenset((config.crossdomain_day,))

    def run_day(self, ctx: StudyContext, day: int) -> None:
        ecosystem = ctx.ecosystem
        targets = []
        domain_ip = ctx.meta.setdefault("domain_ip", {})
        domain_asn = ctx.meta.setdefault("domain_asn", {})
        for rank, name in ctx.today:
            try:
                addresses = ecosystem.dns.resolve_all(name)
            except KeyError:
                continue
            ip = addresses[0]
            autonomous_system = ecosystem.as_registry.lookup(ip)
            asn = autonomous_system.asn if autonomous_system else None
            targets.append(ProbeTarget(domain=name, ip=str(ip), asn=asn))
            domain_ip[name] = str(ip)
            if asn is not None:
                domain_asn[name] = asn
        ctx.meta["crossdomain_targets"] = [t.domain for t in targets]
        origins = [t for t in targets if ctx.owns(t.domain)]
        ctx.emit(
            "cache_edges",
            cross_domain_cache_probe(
                ctx.grabber,
                targets,
                ctx.rng.fork("crossdomain"),
                CrossDomainConfig(),
                origins=origins,
            ),
        )


class ResumptionProbeExperiment(Experiment):
    """The §4.1/§4.2 24-hour resumption-lifetime probes."""

    def __init__(self, mechanism: str, channel: str, day_field: str) -> None:
        self.name = f"probe-{mechanism}"
        self.mechanism = mechanism
        self.channel = channel
        self.channels = (channel,)
        self.day_field = day_field

    def schedule(self, config) -> frozenset:
        if not config.run_probes:
            return frozenset()
        return frozenset((getattr(config, self.day_field),))

    def run_day(self, ctx: StudyContext, day: int) -> None:
        candidates = ctx.today[: ctx.config.probe_domain_count]
        targets = [(rank, name) for rank, name in candidates if ctx.owns(name)]
        ctx.emit(
            self.channel,
            resumption_probe(
                ctx.grabber, targets, ProbeConfig(mechanism=self.mechanism)
            ),
        )


def default_registry(config) -> ExperimentRegistry:
    """The paper's full experiment schedule (T1–T7, F1–F8, probes).

    Registration order reproduces the original monolithic loop's
    per-day ordering: daily campaigns, support scans (DHE, ECDHE,
    ticket), cross-domain probe, session-ID probe, ticket probe.
    """
    registry = ExperimentRegistry()
    registry.register(DailySweepExperiment(
        "daily-ticket", "ticket_daily", MODERN_BROWSER_OFFER,
        window_seconds=2 * HOUR, offer_tickets=True, label="ticket",
    ))
    registry.register(DailySweepExperiment(
        "daily-dhe", "dhe_daily", DHE_ONLY_OFFER,
        window_seconds=1.5 * HOUR, offer_tickets=False, label="dhe",
    ))
    registry.register(DailySweepExperiment(
        "daily-ecdhe", "ecdhe_daily", ECDHE_FIRST_OFFER,
        window_seconds=1.5 * HOUR, offer_tickets=False, label="ecdhe",
    ))
    registry.register(SupportScanExperiment(
        "dhe", "dhe_support_day", DHE_ONLY_OFFER, window_seconds=5 * HOUR,
    ))
    registry.register(SupportScanExperiment(
        "ecdhe", "ecdhe_support_day", ECDHE_FIRST_OFFER, window_seconds=5 * HOUR,
    ))
    registry.register(SupportScanExperiment(
        "ticket", "ticket_support_day", MODERN_BROWSER_OFFER,
        offer_tickets=True, window_seconds=None,
    ))
    registry.register(CrossDomainExperiment())
    registry.register(ResumptionProbeExperiment(
        "session_id", "session_probes", "session_probe_day",
    ))
    registry.register(ResumptionProbeExperiment(
        "ticket", "ticket_probes", "ticket_probe_day",
    ))
    return registry


__all__ = [
    "EVERY_DAY",
    "shard_of",
    "StudyContext",
    "Experiment",
    "ExperimentRegistry",
    "DailySweepExperiment",
    "SupportScanExperiment",
    "CrossDomainExperiment",
    "ResumptionProbeExperiment",
    "default_registry",
]
