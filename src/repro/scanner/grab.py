"""zgrab-style single-connection TLS grabs.

:class:`ZGrabber` wraps DNS resolution, connection routing, the TLS
client handshake, and record extraction into one call that never
raises: every failure mode (NXDOMAIN, timeout, handshake failure,
certificate problems) becomes a :class:`ScanObservation` with
``success=False`` and an error string — exactly how an Internet-wide
scanner has to behave.

Failures carry a *reason* from the taxonomy below; with a
:class:`repro.faults.RetryPolicy` the grabber retries retryable
reasons with capped exponential backoff on the **virtual** clock and
trips a per-domain circuit breaker.  The default policy is a single
attempt with no breaker — byte-identical to the historical scanner.

Failure taxonomy (the ``reason`` label on ``scanner.grab.failure``):

* ``nxdomain``         — DNS says the name does not exist
* ``connect_timeout``  — transient no-response (netsim flat rate)
* ``no_backend``       — endpoint routable but no process serving it
* ``outage``           — chaos-plan outage window
* ``reset``/``truncate`` — injected mid-handshake faults
* ``handshake``        — the TLS handshake itself failed
* ``breaker_open``     — skipped: the domain's circuit breaker is open
"""

from __future__ import annotations

import time
from typing import Optional

from ..crypto.rng import DeterministicRandom
from ..faults.retry import DEFAULT_RETRY_POLICY, RETRYABLE_REASONS, CircuitBreaker
from ..hosting.ecosystem import Ecosystem
from ..netsim.dns import NXDomainError
from ..netsim.network import ConnectTimeout
from ..obs.events import EVENTS
from ..obs.metrics import DEFAULT_SECONDS_BUCKETS, METRICS
from ..obs.profiling import PROFILER
from ..obs.trace import TRACER
from ..tls.ciphers import CipherSuite, MODERN_BROWSER_OFFER
from ..tls.client import HandshakeResult, TLSClient
from ..tls.constants import KeyExchangeKind
from ..tls.fastpath import fast_handshake
from ..tls.server import TLSServer
from ..tls.session import SessionState
from ..tls.ticket import sniff_ticket_format, extract_key_name
from ..tls.wire import DecodeError
from .records import ScanObservation

_KEX_NAMES = {
    KeyExchangeKind.RSA: "rsa",
    KeyExchangeKind.DHE: "dhe",
    KeyExchangeKind.ECDHE: "ecdhe",
}

#: Every reason a grab can fail for (see module docstring).
FAILURE_REASONS = (
    "nxdomain",
    "connect_timeout",
    "no_backend",
    "outage",
    "reset",
    "truncate",
    "handshake",
    "breaker_open",
)

# Prebound instruments: connect() is the hot path (one call per grab),
# so the dict lookups happen once at import, not per connection.
_GRAB_TOTAL = METRICS.counter("scanner.grab.attempt")
_GRAB_FAILURE = {
    reason: METRICS.counter("scanner.grab.failure", reason=reason)
    for reason in FAILURE_REASONS
}
_GRAB_RETRY = {
    reason: METRICS.counter("scanner.grab.retry", reason=reason)
    for reason in sorted(RETRYABLE_REASONS)
}
_GRAB_SECONDS = METRICS.histogram(
    "scanner.grab.seconds", bounds=DEFAULT_SECONDS_BUCKETS
)
_GRAB_ATTEMPTS = METRICS.histogram(
    "scanner.grab.attempts_per_grab", bounds=(1.0, 2.0, 3.0, 4.0, 6.0, 8.0)
)
_BREAKER_OPEN = METRICS.gauge("scanner.breaker.open")
_BREAKER_OPENED = METRICS.counter("scanner.breaker.opened")
_BREAKER_CLOSED = METRICS.counter("scanner.breaker.closed")


class ZGrabber:
    """A scanning client bound to one ecosystem."""

    def __init__(
        self,
        ecosystem: Ecosystem,
        rng: DeterministicRandom,
        retry=None,
        fast: bool = True,
    ) -> None:
        self.ecosystem = ecosystem
        self._rng = rng
        #: Use the draw-identical fast handshake (repro.tls.fastpath)
        #: for plain scans; False forces the blocking oracle exchange.
        #: Output bytes are identical either way — the oracle is kept
        #: selectable for equivalence tests and `study --oracle`.
        self.fast = fast
        self.client = TLSClient(
            rng.fork("tls-client"),
            ecosystem.trust_store,
            ecosystem.clock.now,
            reuse_client_ephemerals=True,
        )
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        self._breaker = (
            CircuitBreaker(self.retry.breaker_threshold,
                           self.retry.breaker_cooldown_seconds)
            if self.retry.breaker_threshold > 0 else None
        )
        self._retries_left = self.retry.retry_budget
        #: Connection attempts (the StudyStats "grabs" counter).
        self.grabs = 0
        #: Attempts that never reached a completed handshake.
        self.failures = 0
        #: Retries taken (0 under the default single-attempt policy).
        self.retries = 0

    # -- low-level ---------------------------------------------------------

    def connect(
        self,
        domain: str,
        offer: tuple[CipherSuite, ...] = MODERN_BROWSER_OFFER,
        session_id: bytes = b"",
        ticket: bytes = b"",
        saved_session: Optional[SessionState] = None,
        offer_tickets: bool = True,
        capture: bool = False,
        ip=None,
        port: int = 443,
    ) -> tuple[Optional[HandshakeResult], str, str]:
        """Resolve, route, and handshake.  Returns (result, ip, error).

        ``port`` selects the TLS service (443 HTTPS, 465/993/995 for the
        mail protocols the §7.2 analysis cross-checks).  Retryable
        failures are re-attempted per the grabber's retry policy; the
        returned triple reflects the final attempt."""
        policy = self.retry
        clock = self.ecosystem.clock
        breaker = self._breaker
        if breaker is not None and not breaker.allow(domain, clock.now()):
            # Skipped grabs still count as grabs so record/stat parity
            # with the attempted schedule is preserved.
            self.grabs += 1
            self.failures += 1
            _GRAB_TOTAL.value += 1
            _GRAB_FAILURE["breaker_open"].value += 1
            return None, "", "breaker open"
        attempts = 0
        while True:
            attempts += 1
            result, address, error, reason = self._attempt(
                domain, offer, session_id, ticket, saved_session,
                offer_tickets, capture, ip, port,
            )
            if reason is None or attempts >= policy.max_attempts:
                break
            if reason not in RETRYABLE_REASONS or not self._take_retry_token():
                break
            self.retries += 1
            _GRAB_RETRY[reason].value += 1
            if EVENTS.enabled:
                EVENTS.emit(
                    "scanner.retry", level="warning",
                    domain=domain, reason=reason, attempt=attempts,
                )
            # Backoff advances *virtual* time through the ecosystem so
            # scheduled events (STEK rotations, churn) fire while the
            # scanner waits, just as during a real scan.
            self.ecosystem.advance_to(clock.now() + policy.backoff_delay(attempts))
        if breaker is not None:
            transition = breaker.record(domain, reason is None, clock.now())
            if transition == "opened":
                _BREAKER_OPENED.value += 1
                if EVENTS.enabled:
                    EVENTS.emit("breaker.opened", level="warning", domain=domain)
            elif transition == "closed":
                _BREAKER_CLOSED.value += 1
                if EVENTS.enabled:
                    EVENTS.emit("breaker.closed", domain=domain)
            _BREAKER_OPEN.set(breaker.open_count)
        if policy.enabled:
            _GRAB_ATTEMPTS.observe(float(attempts))
        return result, address, error

    def _take_retry_token(self) -> bool:
        if self._retries_left is None:
            return True
        if self._retries_left <= 0:
            return False
        self._retries_left -= 1
        return True

    def _attempt(
        self, domain, offer, session_id, ticket, saved_session,
        offer_tickets, capture, ip, port,
    ) -> tuple[Optional[HandshakeResult], str, str, Optional[str]]:
        """One attempt: (result, ip, error, failure_reason-or-None)."""
        self.grabs += 1
        _GRAB_TOTAL.value += 1
        started = time.perf_counter()
        with TRACER.span("handshake", domain=domain, port=port):
            try:
                address = (
                    ip if ip is not None
                    else self.ecosystem.dns.resolve(domain, self._rng)
                )
            except NXDomainError:
                self.failures += 1
                _GRAB_FAILURE["nxdomain"].value += 1
                elapsed = time.perf_counter() - started
                _GRAB_SECONDS.observe(elapsed)
                PROFILER.observe_grab(domain, elapsed)
                return None, "", "nxdomain", "nxdomain"
            try:
                server = self.ecosystem.network.connect(address, port, domain=domain)
            except ConnectTimeout as exc:
                self.failures += 1
                reason = getattr(exc, "reason", "connect_timeout")
                _GRAB_FAILURE[reason].value += 1
                elapsed = time.perf_counter() - started
                _GRAB_SECONDS.observe(elapsed)
                PROFILER.observe_grab(domain, elapsed)
                return None, str(address), f"connect: {exc}", reason
            # Fault-injected connections (ImpairedServer wrappers) and
            # captures need real record flights, so they take the
            # blocking oracle; everything else skips the unobservable
            # crypto with identical draws and side effects.
            if self.fast and not capture and isinstance(server, TLSServer):
                result = fast_handshake(
                    self.client,
                    server,
                    server_name=domain,
                    offer=offer,
                    session_id=session_id,
                    ticket=ticket,
                    saved_session=saved_session,
                    offer_tickets=offer_tickets,
                )
            else:
                result = self.client.connect(
                    server,
                    server_name=domain,
                    offer=offer,
                    session_id=session_id,
                    ticket=ticket,
                    saved_session=saved_session,
                    offer_tickets=offer_tickets,
                    capture=capture,
                )
        reason = None
        if not result.ok:
            self.failures += 1
            reason = getattr(server, "injected_fault", None) or "handshake"
            _GRAB_FAILURE[reason].value += 1
        elapsed = time.perf_counter() - started
        _GRAB_SECONDS.observe(elapsed)
        PROFILER.observe_grab(domain, elapsed)
        return result, str(address), result.error, reason

    # -- observation construction -------------------------------------------

    def grab(
        self,
        domain: str,
        rank: int = 0,
        offer: tuple[CipherSuite, ...] = MODERN_BROWSER_OFFER,
        offer_tickets: bool = True,
    ) -> ScanObservation:
        """One fresh-connection grab, recorded as a ScanObservation."""
        clock = self.ecosystem.clock
        observation = ScanObservation(
            domain=domain,
            day=clock.day_index,
            timestamp=clock.now(),
            rank=rank,
        )
        result, address, error = self.connect(
            domain, offer=offer, offer_tickets=offer_tickets
        )
        observation.ip = address
        if result is None or not result.ok:
            observation.error = error or "handshake failed"
            return observation
        self._fill_from_result(observation, result)
        return observation

    @staticmethod
    def _fill_from_result(observation: ScanObservation, result: HandshakeResult) -> None:
        observation.success = True
        assert result.cipher_suite is not None
        observation.cipher = result.cipher_suite.name
        observation.kex_kind = _KEX_NAMES[result.cipher_suite.kex]
        observation.forward_secret = result.cipher_suite.forward_secret
        observation.cert_trusted = result.certificate_trusted
        observation.cert_error = result.certificate_error
        observation.session_id_set = bool(result.session_id)
        observation.resumed = result.resumed
        observation.resumed_via = result.resumed_via
        observation.ticket_extension = result.server_supports_tickets
        if result.new_ticket is not None:
            observation.ticket_issued = True
            observation.ticket_hint = result.new_ticket.lifetime_hint_seconds
            ticket = result.new_ticket.ticket
            try:
                ticket_format = sniff_ticket_format(ticket)
                observation.ticket_format = ticket_format.value
                observation.stek_id = extract_key_name(ticket, ticket_format).hex()
            except DecodeError:
                observation.ticket_format = "unknown"
        if result.server_kex_public:
            observation.kex_public = result.server_kex_public.hex()


__all__ = ["ZGrabber", "FAILURE_REASONS"]
