"""zgrab-style single-connection TLS grabs.

:class:`ZGrabber` wraps DNS resolution, connection routing, the TLS
client handshake, and record extraction into one call that never
raises: every failure mode (NXDOMAIN, timeout, handshake failure,
certificate problems) becomes a :class:`ScanObservation` with
``success=False`` and an error string — exactly how an Internet-wide
scanner has to behave.
"""

from __future__ import annotations

import time
from typing import Optional

from ..crypto.rng import DeterministicRandom
from ..hosting.ecosystem import Ecosystem
from ..netsim.dns import NXDomainError
from ..netsim.network import ConnectTimeout
from ..obs.metrics import DEFAULT_SECONDS_BUCKETS, METRICS
from ..obs.trace import TRACER
from ..tls.ciphers import CipherSuite, MODERN_BROWSER_OFFER
from ..tls.client import HandshakeResult, TLSClient
from ..tls.constants import KeyExchangeKind
from ..tls.session import SessionState
from ..tls.ticket import sniff_ticket_format, extract_key_name
from ..tls.wire import DecodeError
from .records import ScanObservation

_KEX_NAMES = {
    KeyExchangeKind.RSA: "rsa",
    KeyExchangeKind.DHE: "dhe",
    KeyExchangeKind.ECDHE: "ecdhe",
}

# Prebound instruments: connect() is the hot path (one call per grab),
# so the dict lookups happen once at import, not per connection.
_GRAB_TOTAL = METRICS.counter("scanner.grab.attempt")
_GRAB_NXDOMAIN = METRICS.counter("scanner.grab.failure", reason="nxdomain")
_GRAB_TIMEOUT = METRICS.counter("scanner.grab.failure", reason="connect_timeout")
_GRAB_HANDSHAKE = METRICS.counter("scanner.grab.failure", reason="handshake")
_GRAB_SECONDS = METRICS.histogram(
    "scanner.grab.seconds", bounds=DEFAULT_SECONDS_BUCKETS
)


class ZGrabber:
    """A scanning client bound to one ecosystem."""

    def __init__(self, ecosystem: Ecosystem, rng: DeterministicRandom) -> None:
        self.ecosystem = ecosystem
        self._rng = rng
        self.client = TLSClient(
            rng.fork("tls-client"),
            ecosystem.trust_store,
            ecosystem.clock.now,
            reuse_client_ephemerals=True,
        )
        #: Connection attempts (the StudyStats "grabs" counter).
        self.grabs = 0
        #: Attempts that never reached a completed handshake.
        self.failures = 0

    # -- low-level ---------------------------------------------------------

    def connect(
        self,
        domain: str,
        offer: tuple[CipherSuite, ...] = MODERN_BROWSER_OFFER,
        session_id: bytes = b"",
        ticket: bytes = b"",
        saved_session: Optional[SessionState] = None,
        offer_tickets: bool = True,
        capture: bool = False,
        ip=None,
        port: int = 443,
    ) -> tuple[Optional[HandshakeResult], str, str]:
        """Resolve, route, and handshake.  Returns (result, ip, error).

        ``port`` selects the TLS service (443 HTTPS, 465/993/995 for the
        mail protocols the §7.2 analysis cross-checks)."""
        self.grabs += 1
        _GRAB_TOTAL.value += 1
        started = time.perf_counter()
        with TRACER.span("handshake", domain=domain, port=port):
            try:
                address = (
                    ip if ip is not None
                    else self.ecosystem.dns.resolve(domain, self._rng)
                )
            except NXDomainError:
                self.failures += 1
                _GRAB_NXDOMAIN.value += 1
                _GRAB_SECONDS.observe(time.perf_counter() - started)
                return None, "", "nxdomain"
            try:
                server = self.ecosystem.network.connect(address, port)
            except ConnectTimeout as exc:
                self.failures += 1
                _GRAB_TIMEOUT.value += 1
                _GRAB_SECONDS.observe(time.perf_counter() - started)
                return None, str(address), f"connect: {exc}"
            result = self.client.connect(
                server,
                server_name=domain,
                offer=offer,
                session_id=session_id,
                ticket=ticket,
                saved_session=saved_session,
                offer_tickets=offer_tickets,
                capture=capture,
            )
        if not result.ok:
            self.failures += 1
            _GRAB_HANDSHAKE.value += 1
        _GRAB_SECONDS.observe(time.perf_counter() - started)
        return result, str(address), result.error

    # -- observation construction -------------------------------------------

    def grab(
        self,
        domain: str,
        rank: int = 0,
        offer: tuple[CipherSuite, ...] = MODERN_BROWSER_OFFER,
        offer_tickets: bool = True,
    ) -> ScanObservation:
        """One fresh-connection grab, recorded as a ScanObservation."""
        clock = self.ecosystem.clock
        observation = ScanObservation(
            domain=domain,
            day=clock.day_index,
            timestamp=clock.now(),
            rank=rank,
        )
        result, address, error = self.connect(
            domain, offer=offer, offer_tickets=offer_tickets
        )
        observation.ip = address
        if result is None or not result.ok:
            observation.error = error or "handshake failed"
            return observation
        self._fill_from_result(observation, result)
        return observation

    @staticmethod
    def _fill_from_result(observation: ScanObservation, result: HandshakeResult) -> None:
        observation.success = True
        assert result.cipher_suite is not None
        observation.cipher = result.cipher_suite.name
        observation.kex_kind = _KEX_NAMES[result.cipher_suite.kex]
        observation.forward_secret = result.cipher_suite.forward_secret
        observation.cert_trusted = result.certificate_trusted
        observation.cert_error = result.certificate_error
        observation.session_id_set = bool(result.session_id)
        observation.resumed = result.resumed
        observation.resumed_via = result.resumed_via
        observation.ticket_extension = result.server_supports_tickets
        if result.new_ticket is not None:
            observation.ticket_issued = True
            observation.ticket_hint = result.new_ticket.lifetime_hint_seconds
            ticket = result.new_ticket.ticket
            try:
                ticket_format = sniff_ticket_format(ticket)
                observation.ticket_format = ticket_format.value
                observation.stek_id = extract_key_name(ticket, ticket_format).hex()
            except DecodeError:
                observation.ticket_format = "unknown"
        if result.server_kex_public:
            observation.kex_public = result.server_kex_public.hex()


__all__ = ["ZGrabber"]
