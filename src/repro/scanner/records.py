"""Scan-record schema and JSONL serialization.

One :class:`ScanObservation` is what a zgrab-style TLS grab writes per
connection: negotiation outcome, certificate trust, session-ID and
ticket metadata (including the cleartext STEK identifier), and the
server's key-exchange public value.  These records are the *only*
input the analysis layer consumes — the analyses never peek at the
simulation's ground truth.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Iterable, Iterator, Optional


@dataclass
class ScanObservation:
    """One TLS connection attempt's observable outcome."""

    domain: str
    day: int                      # study day index of the attempt
    timestamp: float              # simulation time (seconds)
    rank: int = 0                 # Alexa rank at scan time
    ip: str = ""
    success: bool = False
    error: str = ""
    # Negotiation.
    cipher: Optional[str] = None
    kex_kind: Optional[str] = None        # "rsa" | "dhe" | "ecdhe"
    forward_secret: bool = False
    cert_trusted: bool = False
    cert_error: str = ""
    # Session-ID resumption signals.
    session_id_set: bool = False          # server sent a session ID
    resumed: bool = False
    resumed_via: Optional[str] = None     # "session_id" | "ticket"
    # Ticket signals.
    ticket_extension: bool = False        # server echoed the extension
    ticket_issued: bool = False
    ticket_hint: Optional[int] = None
    ticket_format: Optional[str] = None
    stek_id: Optional[str] = None         # hex STEK identifier
    # Key-exchange reuse signal.
    kex_public: Optional[str] = None      # hex server (EC)DHE value

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "ScanObservation":
        data = json.loads(line)
        return cls(**data)


@dataclass
class ResumptionProbeResult:
    """Outcome of one domain's 24-hour resumption-lifetime probe (§4.1/4.2)."""

    domain: str
    rank: int = 0
    mechanism: str = "session_id"        # or "ticket"
    handshake_ok: bool = False
    issued: bool = False                 # server set an ID / issued a ticket
    resumed_at_1s: bool = False
    max_success_delay: Optional[float] = None   # seconds; None = never resumed
    hit_probe_ceiling: bool = False      # still resuming at the 24 h cutoff
    ticket_hint: Optional[int] = None
    attempts: int = 0

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "ResumptionProbeResult":
        return cls(**json.loads(line))


@dataclass
class CrossDomainEdge:
    """Domain ``b`` accepted a session that originated at domain ``a``."""

    origin: str
    acceptor: str
    via_same_ip: bool = False
    via_same_as: bool = False

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "CrossDomainEdge":
        return cls(**json.loads(line))


#: Channel name -> record class for every record stream a study produces.
#: The channel name is also the JSONL basename inside a dataset directory,
#: so the scanner (streaming writers), the dataset (lazy views), and
#: persistence (save/load) all agree on one layout.
CHANNELS: dict[str, type] = {
    "ticket_daily": ScanObservation,
    "dhe_daily": ScanObservation,
    "ecdhe_daily": ScanObservation,
    "ticket_support": ScanObservation,
    "dhe_support": ScanObservation,
    "ecdhe_support": ScanObservation,
    "ticket_30min": ScanObservation,
    "dhe_30min": ScanObservation,
    "ecdhe_30min": ScanObservation,
    "session_probes": ResumptionProbeResult,
    "ticket_probes": ResumptionProbeResult,
    "cache_edges": CrossDomainEdge,
}


def write_jsonl(path, records: Iterable) -> int:
    """Write records (anything with ``.to_json()``) to a JSONL file."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(record.to_json())
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path, record_cls) -> Iterator:
    """Stream records back from a JSONL file."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield record_cls.from_json(line)


__all__ = [
    "ScanObservation",
    "ResumptionProbeResult",
    "CrossDomainEdge",
    "CHANNELS",
    "write_jsonl",
    "read_jsonl",
]
