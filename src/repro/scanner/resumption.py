"""Resumption-lifetime probes (paper §4.1 and §4.2).

For each domain: complete one full handshake, then attempt to resume
the *original* session one second later and every five minutes
afterwards, until the site fails to resume or 24 hours elapse.  For
session tickets, reissued tickets are ignored — the probe keeps
offering the ticket from the first connection, exactly as the paper
does.

Probes for all domains run interleaved on one virtual timeline — one
continuation per domain on a :class:`repro.netsim.eventloop.EventLoop`
— the way the real measurement ran concurrently against every site, so
a 24-hour experiment costs 24 virtual hours total rather than 24 hours
per domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..netsim.clock import HOUR, MINUTE
from ..netsim.eventloop import EventLoop, Wait
from ..tls.ciphers import CipherSuite, MODERN_BROWSER_OFFER
from ..tls.session import SessionState
from .grab import ZGrabber
from .records import ResumptionProbeResult


@dataclass
class ProbeConfig:
    """Probe cadence (defaults mirror the paper's §4.1/§4.2 method)."""

    mechanism: str = "session_id"        # or "ticket"
    first_retry_seconds: float = 1.0
    interval_seconds: float = 5 * MINUTE
    max_duration_seconds: float = 24 * HOUR
    stagger_seconds: float = 10 * MINUTE  # initial handshakes spread
    offer: tuple[CipherSuite, ...] = MODERN_BROWSER_OFFER
    connect_retries: int = 3              # tolerate transient failures


@dataclass
class _ProbeState:
    domain: str
    rank: int
    result: ResumptionProbeResult
    session: Optional[SessionState] = None
    session_id: bytes = b""
    ticket: bytes = b""
    started_at: float = 0.0
    attempt_count: int = 0


def _attempt_connect(grabber: ZGrabber, state: _ProbeState, config: ProbeConfig):
    """One resumption attempt with transient-failure retries."""
    for _ in range(config.connect_retries):
        result, _, error = grabber.connect(
            state.domain,
            offer=config.offer,
            session_id=state.session_id if config.mechanism == "session_id" else b"",
            ticket=state.ticket if config.mechanism == "ticket" else b"",
            saved_session=state.session,
            offer_tickets=config.mechanism == "ticket",
        )
        if result is not None:
            return result
        if error == "nxdomain":
            return None
    return None


def resumption_probe(
    grabber: ZGrabber,
    domains: list[tuple[int, str]],
    config: Optional[ProbeConfig] = None,
) -> list[ResumptionProbeResult]:
    """Run the 24-hour resumption-lifetime experiment for ``domains``."""
    config = config or ProbeConfig()
    if config.mechanism not in ("session_id", "ticket"):
        raise ValueError(f"unknown mechanism {config.mechanism!r}")
    ecosystem = grabber.ecosystem
    start = ecosystem.clock.now()
    loop = EventLoop(ecosystem.clock.now, ecosystem.advance_to)

    def probe_task(state: _ProbeState):
        # Phase 0: the initial full handshake; then one resumption
        # attempt per wake-up until failure or the 24-hour ceiling.
        _run_initial_handshake(grabber, state, config)
        if not _probe_continues(state, config):
            return
        state.started_at = ecosystem.clock.now()
        yield Wait.until(state.started_at + config.first_retry_seconds)
        while True:
            elapsed = ecosystem.clock.now() - state.started_at
            if elapsed > config.max_duration_seconds:
                state.result.hit_probe_ceiling = True
                return
            if not _run_resumption_attempt(grabber, state, config, elapsed):
                return
            next_due = ecosystem.clock.now() + config.interval_seconds
            if next_due - state.started_at > config.max_duration_seconds:
                state.result.hit_probe_ceiling = True
                return
            yield Wait.until(next_due)

    states: list[_ProbeState] = []
    stagger = config.stagger_seconds / max(len(domains), 1)
    for index, (rank, name) in enumerate(domains):
        state = _ProbeState(
            domain=name,
            rank=rank,
            result=ResumptionProbeResult(
                domain=name, rank=rank, mechanism=config.mechanism
            ),
        )
        states.append(state)
        loop.spawn(probe_task(state), at=start + index * stagger,
                   label=f"probe:{name}")
    loop.run()
    return [state.result for state in states]


def _run_initial_handshake(grabber: ZGrabber, state: _ProbeState, config: ProbeConfig) -> None:
    result = _attempt_connect_initial(grabber, state, config)
    if result is None or not result.ok:
        return
    state.result.handshake_ok = True
    state.session = result.session
    if config.mechanism == "session_id":
        state.session_id = result.session_id
        state.result.issued = bool(result.session_id)
    else:
        if result.new_ticket is not None:
            state.ticket = result.new_ticket.ticket
            state.result.issued = True
            state.result.ticket_hint = result.new_ticket.lifetime_hint_seconds


def _attempt_connect_initial(grabber: ZGrabber, state: _ProbeState, config: ProbeConfig):
    for _ in range(config.connect_retries):
        result, _, error = grabber.connect(
            state.domain,
            offer=config.offer,
            offer_tickets=config.mechanism == "ticket",
        )
        if result is not None:
            return result
        if error == "nxdomain":
            return None
    return None


def _probe_continues(state: _ProbeState, config: ProbeConfig) -> bool:
    return state.result.handshake_ok and state.result.issued


def _run_resumption_attempt(
    grabber: ZGrabber, state: _ProbeState, config: ProbeConfig, elapsed: float
) -> bool:
    state.result.attempts += 1
    result = _attempt_connect(grabber, state, config)
    if result is None or not result.ok:
        # Persistent connect failure: treat as end of probe (the paper's
        # "site failed to resume" condition includes unreachable sites).
        return False
    if result.resumed:
        state.result.max_success_delay = elapsed
        if elapsed <= config.first_retry_seconds + 1:
            state.result.resumed_at_1s = True
        return True
    return False


__all__ = ["ProbeConfig", "resumption_probe"]
