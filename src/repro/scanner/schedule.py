"""Scan scheduling: daily sweeps and multi-connection support scans.

The paper's longitudinal measurements are daily single-connection
sweeps over the Top Million (one per cipher offer); its support and
sharing measurements are 10-connection scans within a few-hour window
plus a single-connection scan in a 30-minute window.  Both patterns
live here, spreading connections across a virtual time window so
server-side rotations and cache expiries interleave realistically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..netsim.clock import HOUR, MINUTE
from ..netsim.eventloop import EventLoop, Wait
from ..tls.ciphers import CipherSuite, MODERN_BROWSER_OFFER
from .grab import ZGrabber
from .records import ScanObservation


@dataclass
class SweepConfig:
    """One pass over a domain list."""

    offer: tuple[CipherSuite, ...] = MODERN_BROWSER_OFFER
    connections_per_domain: int = 1
    window_seconds: float = 4 * HOUR
    offer_tickets: bool = True
    label: str = "sweep"


def sweep(
    grabber: ZGrabber,
    domains: Sequence[tuple[int, str]],
    config: SweepConfig,
    *,
    concurrency: Optional[int] = None,
    sink: Optional[Callable[[list[ScanObservation]], object]] = None,
) -> list[ScanObservation]:
    """Scan ``domains`` (rank, name) within the configured time window.

    Connections are issued in domain order with the window divided
    evenly; for multi-connection scans, each domain's connections are
    spaced across the whole window (the paper's 10 connections over six
    hours), not fired back-to-back.

    With ``concurrency`` set, grabs are admitted onto a
    :class:`~repro.netsim.eventloop.EventLoop` in batches of that many
    in-flight tasks; ``concurrency=None`` is the blocking reference
    loop.  Both orders are identical — every grab is scheduled at its
    window tick, and the loop resumes tasks in ``(due, admission)``
    order — so batch size never changes output bytes, only how many
    observations are buffered before each flush (memory).

    ``sink`` receives observation batches as they complete (the
    streaming engine's per-shard emit); without it, all observations
    are returned as one list.
    """
    ecosystem = grabber.ecosystem
    observations: list[ScanObservation] = []
    flush = sink if sink is not None else observations.extend
    if not domains:
        if sink is not None:
            flush([])
        return observations
    total = len(domains) * config.connections_per_domain
    step = config.window_seconds / max(total, 1)
    start = ecosystem.clock.now()
    schedule = (
        (tick, rank, name)
        for tick, (rank, name) in enumerate(
            (pair for _ in range(config.connections_per_domain) for pair in domains)
        )
    )
    if concurrency is None:
        # Blocking reference loop (the oracle path): one grab at a time,
        # clock advanced to each grab's window tick.
        batch: list[ScanObservation] = []
        for tick, rank, name in schedule:
            ecosystem.advance_to(max(start + tick * step, ecosystem.clock.now()))
            batch.append(
                grabber.grab(
                    name,
                    rank=rank,
                    offer=config.offer,
                    offer_tickets=config.offer_tickets,
                )
            )
        flush(batch)
        return observations

    window = max(1, int(concurrency))
    loop = EventLoop(ecosystem.clock.now, ecosystem.advance_to)
    batch = []

    def one_grab(due: float, rank: int, name: str):
        """Continuation for one scheduled grab: park until its window
        tick, then run the (fast-path) grab to completion."""
        yield Wait.until(due)
        batch.append(
            grabber.grab(
                name,
                rank=rank,
                offer=config.offer,
                offer_tickets=config.offer_tickets,
            )
        )

    exhausted = False
    while not exhausted:
        admitted = 0
        for tick, rank, name in schedule:
            loop.spawn(one_grab(start + tick * step, rank, name))
            admitted += 1
            if admitted >= window:
                break
        else:
            exhausted = True
        if admitted:
            loop.run()
            flush(batch)
            batch = []
    return observations


@dataclass
class DailyScanCampaign:
    """A multi-day, once-a-day sweep (the §4.3/§4.4 longitudinal scans).

    Each day the campaign pulls the *current* Alexa list (churn and
    all), scans it, and stores the observations.  Analyses later
    restrict to always-present domains, exactly like the paper.
    """

    grabber: ZGrabber
    offer: tuple[CipherSuite, ...] = MODERN_BROWSER_OFFER
    window_seconds: float = 3 * HOUR
    offer_tickets: bool = True
    label: str = "daily"
    #: With ``accumulate=False`` the campaign only returns each day's
    #: observations (streaming callers persist them elsewhere) instead
    #: of holding the whole study in ``observations``.
    accumulate: bool = True
    observations: list[ScanObservation] = field(default_factory=list)

    def run_day(self, domains: Optional[Sequence[tuple[int, str]]] = None) -> list[ScanObservation]:
        """Scan once for the current day; returns the day's observations."""
        ecosystem = self.grabber.ecosystem
        if domains is None:
            domains = ecosystem.alexa_list()
        config = SweepConfig(
            offer=self.offer,
            connections_per_domain=1,
            window_seconds=self.window_seconds,
            offer_tickets=self.offer_tickets,
            label=self.label,
        )
        day_observations = sweep(self.grabber, domains, config)
        if self.accumulate:
            self.observations.extend(day_observations)
        return day_observations


def thirty_minute_scan(
    grabber: ZGrabber,
    domains: Sequence[tuple[int, str]],
    offer: tuple[CipherSuite, ...] = MODERN_BROWSER_OFFER,
    *,
    concurrency: Optional[int] = None,
    sink: Optional[Callable[[list[ScanObservation]], object]] = None,
) -> list[ScanObservation]:
    """The paper's single-connection scan in a 30-minute window (§5.2)."""
    return sweep(
        grabber,
        domains,
        SweepConfig(
            offer=offer,
            connections_per_domain=1,
            window_seconds=30 * MINUTE,
            label="30min",
        ),
        concurrency=concurrency,
        sink=sink,
    )


__all__ = ["SweepConfig", "sweep", "DailyScanCampaign", "thirty_minute_scan"]
