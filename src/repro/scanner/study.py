"""Orchestration of the full nine-week measurement study.

:func:`run_study` drives every experiment the paper reports against a
synthetic ecosystem, on one virtual timeline:

* daily single-connection sweeps with three cipher offers — modern
  (ticket/STEK tracking), DHE-only, and ECDHE-first (§4.3, §4.4);
* 10-connection support scans in a six-hour window plus 30-minute
  single-connection scans (Table 1, §5.2, §5.3);
* 24-hour session-ID and session-ticket resumption probes (§4.1, §4.2);
* the cross-domain session-cache probe (§5.1).

The result is a :class:`StudyDataset` of pure scan records — the
analysis layer never sees the simulation's internals.  Datasets
serialize to a directory of JSONL files so expensive scans can be
reused across benchmark runs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Optional

from ..crypto.rng import DeterministicRandom
from ..hosting.ecosystem import Ecosystem
from ..netsim.clock import DAY, HOUR
from ..tls.ciphers import DHE_ONLY_OFFER, ECDHE_FIRST_OFFER, MODERN_BROWSER_OFFER
from .crossdomain import CrossDomainConfig, ProbeTarget, cross_domain_cache_probe
from .grab import ZGrabber
from .records import (
    CrossDomainEdge,
    ResumptionProbeResult,
    ScanObservation,
    read_jsonl,
    write_jsonl,
)
from .resumption import ProbeConfig, resumption_probe
from .schedule import DailyScanCampaign, SweepConfig, sweep, thirty_minute_scan


@dataclass
class StudyConfig:
    """Which experiments run, and when, within the study window."""

    days: int = 63
    seed: int = 101
    probe_domain_count: int = 400      # top-ranked domains for 24 h probes
    support_scan_connections: int = 10
    support_scan_window: float = 6 * HOUR
    dhe_support_day: int = 43          # paper: April 14, 2016
    ecdhe_support_day: int = 44        # April 15
    ticket_support_day: int = 46       # April 17
    crossdomain_day: int = 50
    session_probe_day: int = 56        # April 27
    ticket_probe_day: int = 58         # April 29
    run_probes: bool = True
    run_crossdomain: bool = True
    run_support_scans: bool = True


@dataclass
class StudyDataset:
    """Everything the nine-week study observed."""

    days: int
    day0_list: list[tuple[int, str]] = field(default_factory=list)
    always_present: list[str] = field(default_factory=list)
    ranks: dict[str, int] = field(default_factory=dict)
    # Daily longitudinal sweeps.
    ticket_daily: list[ScanObservation] = field(default_factory=list)
    dhe_daily: list[ScanObservation] = field(default_factory=list)
    ecdhe_daily: list[ScanObservation] = field(default_factory=list)
    # 10-connection support scans + 30-minute single scans.
    ticket_support: list[ScanObservation] = field(default_factory=list)
    dhe_support: list[ScanObservation] = field(default_factory=list)
    ecdhe_support: list[ScanObservation] = field(default_factory=list)
    ticket_30min: list[ScanObservation] = field(default_factory=list)
    dhe_30min: list[ScanObservation] = field(default_factory=list)
    ecdhe_30min: list[ScanObservation] = field(default_factory=list)
    # 24-hour resumption probes.
    session_probes: list[ResumptionProbeResult] = field(default_factory=list)
    ticket_probes: list[ResumptionProbeResult] = field(default_factory=list)
    # Cross-domain cache edges.
    cache_edges: list[CrossDomainEdge] = field(default_factory=list)
    crossdomain_targets: list[str] = field(default_factory=list)
    # Scanner-side AS knowledge (domain -> asn), from "whois" lookups.
    domain_asn: dict[str, int] = field(default_factory=dict)
    domain_ip: dict[str, str] = field(default_factory=dict)
    as_names: dict[int, str] = field(default_factory=dict)
    # Bookkeeping for Table 1: list size and post-blacklist size on the
    # day each support scan ran, keyed by scan label.
    list_sizes: dict[str, tuple[int, int]] = field(default_factory=dict)


def run_study(
    ecosystem: Ecosystem,
    config: Optional[StudyConfig] = None,
    progress=None,
) -> StudyDataset:
    """Run the full measurement study against ``ecosystem``."""
    config = config or StudyConfig()
    rng = DeterministicRandom(config.seed)
    grabber = ZGrabber(ecosystem, rng.fork("grabber"))
    dataset = StudyDataset(days=config.days)
    dataset.day0_list = ecosystem.alexa_list(0)

    ticket_campaign = DailyScanCampaign(
        grabber, offer=MODERN_BROWSER_OFFER, window_seconds=2 * HOUR, label="ticket"
    )
    dhe_campaign = DailyScanCampaign(
        grabber, offer=DHE_ONLY_OFFER, window_seconds=1.5 * HOUR,
        offer_tickets=False, label="dhe",
    )
    ecdhe_campaign = DailyScanCampaign(
        grabber, offer=ECDHE_FIRST_OFFER, window_seconds=1.5 * HOUR,
        offer_tickets=False, label="ecdhe",
    )

    for day in range(config.days):
        day_start = day * DAY
        if ecosystem.clock.now() < day_start:
            ecosystem.advance_to(day_start)
        if progress is not None:
            progress(day, config.days)

        full_list = ecosystem.alexa_list()
        today = [(r, n) for r, n in full_list if n not in ecosystem.blacklist]
        for rank, name in today:
            dataset.ranks.setdefault(name, rank)
        ticket_campaign.run_day(today)
        dhe_campaign.run_day(today)
        ecdhe_campaign.run_day(today)

        if config.run_support_scans and day == config.dhe_support_day:
            dataset.list_sizes["dhe"] = (len(full_list), len(today))
            dataset.dhe_support = sweep(grabber, today, SweepConfig(
                offer=DHE_ONLY_OFFER, offer_tickets=False,
                connections_per_domain=config.support_scan_connections,
                window_seconds=5 * HOUR, label="dhe-support",
            ))
            dataset.dhe_30min = thirty_minute_scan(grabber, today, DHE_ONLY_OFFER)
        if config.run_support_scans and day == config.ecdhe_support_day:
            dataset.list_sizes["ecdhe"] = (len(full_list), len(today))
            dataset.ecdhe_support = sweep(grabber, today, SweepConfig(
                offer=ECDHE_FIRST_OFFER, offer_tickets=False,
                connections_per_domain=config.support_scan_connections,
                window_seconds=5 * HOUR, label="ecdhe-support",
            ))
            dataset.ecdhe_30min = thirty_minute_scan(grabber, today, ECDHE_FIRST_OFFER)
        if config.run_support_scans and day == config.ticket_support_day:
            dataset.list_sizes["ticket"] = (len(full_list), len(today))
            dataset.ticket_support = sweep(grabber, today, SweepConfig(
                offer=MODERN_BROWSER_OFFER,
                connections_per_domain=config.support_scan_connections,
                window_seconds=config.support_scan_window, label="ticket-support",
            ))
            dataset.ticket_30min = thirty_minute_scan(grabber, today)

        if config.run_crossdomain and day == config.crossdomain_day:
            _run_crossdomain(ecosystem, grabber, rng, dataset, today)

        if config.run_probes and day == config.session_probe_day:
            targets = today[: config.probe_domain_count]
            dataset.session_probes = resumption_probe(
                grabber, targets, ProbeConfig(mechanism="session_id")
            )
        if config.run_probes and day == config.ticket_probe_day:
            targets = today[: config.probe_domain_count]
            dataset.ticket_probes = resumption_probe(
                grabber, targets, ProbeConfig(mechanism="ticket")
            )

    for autonomous_system in ecosystem.as_registry.all_systems():
        dataset.as_names[autonomous_system.asn] = autonomous_system.name
    if not dataset.domain_asn:
        for rank, name in ecosystem.alexa_list():
            try:
                addresses = ecosystem.dns.resolve_all(name)
            except KeyError:
                continue
            autonomous_system = ecosystem.as_registry.lookup(addresses[0])
            if autonomous_system is not None:
                dataset.domain_asn[name] = autonomous_system.asn
            dataset.domain_ip[name] = str(addresses[0])

    dataset.ticket_daily = ticket_campaign.observations
    dataset.dhe_daily = dhe_campaign.observations
    dataset.ecdhe_daily = ecdhe_campaign.observations
    # A probe scheduled late in the study may run past the nominal end;
    # only advance if the clock is still behind it.
    if ecosystem.clock.now() < config.days * DAY:
        ecosystem.advance_to(config.days * DAY)
    dataset.always_present = [
        d.name for d in ecosystem.always_present_domains(config.days - 1)
    ]
    return dataset


def _run_crossdomain(
    ecosystem: Ecosystem,
    grabber: ZGrabber,
    rng: DeterministicRandom,
    dataset: StudyDataset,
    today: list[tuple[int, str]],
) -> None:
    """Build probe targets from observed IPs + whois, then probe."""
    targets = []
    for rank, name in today:
        try:
            addresses = ecosystem.dns.resolve_all(name)
        except KeyError:
            continue
        ip = addresses[0]
        autonomous_system = ecosystem.as_registry.lookup(ip)
        asn = autonomous_system.asn if autonomous_system else None
        targets.append(ProbeTarget(domain=name, ip=str(ip), asn=asn))
        dataset.domain_ip[name] = str(ip)
        if asn is not None:
            dataset.domain_asn[name] = asn
    dataset.crossdomain_targets = [t.domain for t in targets]
    dataset.cache_edges = cross_domain_cache_probe(
        grabber, targets, rng.fork("crossdomain"), CrossDomainConfig()
    )


# ---------------------------------------------------------------------------
# Dataset persistence (JSONL directory)
# ---------------------------------------------------------------------------

_OBSERVATION_FIELDS = (
    "ticket_daily", "dhe_daily", "ecdhe_daily",
    "ticket_support", "dhe_support", "ecdhe_support",
    "ticket_30min", "dhe_30min", "ecdhe_30min",
)


def save_dataset(dataset: StudyDataset, directory: str) -> None:
    """Persist a dataset as JSONL files plus a meta.json."""
    os.makedirs(directory, exist_ok=True)
    for name in _OBSERVATION_FIELDS:
        write_jsonl(os.path.join(directory, f"{name}.jsonl"), getattr(dataset, name))
    write_jsonl(os.path.join(directory, "session_probes.jsonl"), dataset.session_probes)
    write_jsonl(os.path.join(directory, "ticket_probes.jsonl"), dataset.ticket_probes)
    write_jsonl(os.path.join(directory, "cache_edges.jsonl"), dataset.cache_edges)
    meta = {
        "days": dataset.days,
        "day0_list": dataset.day0_list,
        "always_present": dataset.always_present,
        "ranks": dataset.ranks,
        "crossdomain_targets": dataset.crossdomain_targets,
        "domain_asn": dataset.domain_asn,
        "domain_ip": dataset.domain_ip,
        "as_names": dataset.as_names,
        "list_sizes": dataset.list_sizes,
    }
    with open(os.path.join(directory, "meta.json"), "w", encoding="utf-8") as fh:
        json.dump(meta, fh)


def load_dataset(directory: str) -> StudyDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    with open(os.path.join(directory, "meta.json"), "r", encoding="utf-8") as fh:
        meta = json.load(fh)
    dataset = StudyDataset(days=meta["days"])
    dataset.day0_list = [tuple(item) for item in meta["day0_list"]]
    dataset.always_present = meta["always_present"]
    dataset.ranks = meta["ranks"]
    dataset.crossdomain_targets = meta["crossdomain_targets"]
    dataset.domain_asn = meta["domain_asn"]
    dataset.domain_ip = meta["domain_ip"]
    dataset.as_names = {int(k): v for k, v in meta.get("as_names", {}).items()}
    dataset.list_sizes = {
        k: tuple(v) for k, v in meta.get("list_sizes", {}).items()
    }
    for name in _OBSERVATION_FIELDS:
        path = os.path.join(directory, f"{name}.jsonl")
        setattr(dataset, name, list(read_jsonl(path, ScanObservation)))
    dataset.session_probes = list(
        read_jsonl(os.path.join(directory, "session_probes.jsonl"), ResumptionProbeResult)
    )
    dataset.ticket_probes = list(
        read_jsonl(os.path.join(directory, "ticket_probes.jsonl"), ResumptionProbeResult)
    )
    dataset.cache_edges = list(
        read_jsonl(os.path.join(directory, "cache_edges.jsonl"), CrossDomainEdge)
    )
    return dataset


__all__ = ["StudyConfig", "StudyDataset", "run_study", "save_dataset", "load_dataset"]
