"""Orchestration of the full nine-week measurement study.

:func:`run_study` drives every experiment the paper reports against a
synthetic ecosystem, on one virtual timeline:

* daily single-connection sweeps with three cipher offers — modern
  (ticket/STEK tracking), DHE-only, and ECDHE-first (§4.3, §4.4);
* 10-connection support scans in a six-hour window plus 30-minute
  single-connection scans (Table 1, §5.2, §5.3);
* 24-hour session-ID and session-ticket resumption probes (§4.1, §4.2);
* the cross-domain session-cache probe (§5.1).

The experiments themselves live in :mod:`repro.scanner.experiments`
(a pluggable registry) and the day loop in
:mod:`repro.scanner.engine` (a sharded, streaming scan engine); this
module owns the configuration, the dataset container, and persistence.

The result is a :class:`StudyDataset` of pure scan records — the
analysis layer never sees the simulation's internals.  Datasets
serialize to a directory of JSONL files (one per channel in
:data:`repro.scanner.records.CHANNELS` plus ``meta.json``) so
expensive scans can be reused across benchmark runs; with
``stream_dir`` set, the study *writes* that directory incrementally as
it scans and the returned dataset holds lazy views instead of lists.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from ..faults.plan import ImpairmentPlan
from ..faults.retry import RetryPolicy
from ..hosting.ecosystem import Ecosystem
from ..netsim.clock import HOUR
from .datastore import (
    JsonlWriter,
    LazyRecordView,
    channel_path,
    open_channel_views,
    read_meta,
    write_meta,
)
from .engine import StudyEngine, StudyStats
from .records import CHANNELS

#: Dataset record fields are plain lists for in-memory studies and
#: :class:`LazyRecordView` for streamed/loaded ones; both behave alike.
RecordRows = Union[list, LazyRecordView]


@dataclass
class StudyConfig:
    """Which experiments run, and when, within the study window."""

    days: int = 63
    seed: int = 101
    probe_domain_count: int = 400      # top-ranked domains for 24 h probes
    support_scan_connections: int = 10
    support_scan_window: float = 6 * HOUR
    dhe_support_day: int = 43          # paper: April 14, 2016
    ecdhe_support_day: int = 44        # April 15
    ticket_support_day: int = 46       # April 17
    crossdomain_day: int = 50
    session_probe_day: int = 56        # April 27
    ticket_probe_day: int = 58         # April 29
    run_probes: bool = True
    run_crossdomain: bool = True
    run_support_scans: bool = True
    # Execution knobs (see repro.scanner.engine).  ``shards`` is the
    # deterministic population partition and affects output byte-for-byte;
    # ``workers`` only parallelizes shard execution and never does.
    shards: int = 1
    workers: int = 1
    stream_dir: Optional[str] = None
    # Event-driven scan core (see docs/SCALING.md).  ``concurrency`` is
    # the event-loop admission batch size per shard — execution-only,
    # like ``workers``: it bounds buffered observations per flush and
    # never changes output bytes.  ``oracle`` selects the blocking
    # reference path (full record serialization + real crypto per
    # connection) that the fast event-driven path is pinned against.
    concurrency: int = 1024
    oracle: bool = False
    # Resilience knobs (see repro.faults).  ``chaos`` is a repro-chaos/1
    # profile dict compiled per shard into an ImpairmentPlan; ``retry``
    # is the grabber's RetryPolicy.  Both default to "off": no plan, one
    # attempt, no breaker — the historical scanner behavior, so the
    # golden-digest corpus is unchanged.
    chaos: Optional[dict] = None
    retry: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError(f"days must be positive, got {self.days}")
        if self.chaos is not None:
            # Compile once to fail fast on a malformed profile (shards
            # recompile their own copy; plans are cheap).
            ImpairmentPlan.from_profile(self.chaos)
        if isinstance(self.retry, dict):  # checkpoint round-trips
            self.retry = RetryPolicy(**self.retry)
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.concurrency < 1:
            raise ValueError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        scheduled: list[tuple[str, int]] = []
        if self.run_support_scans:
            scheduled += [
                ("dhe_support_day", self.dhe_support_day),
                ("ecdhe_support_day", self.ecdhe_support_day),
                ("ticket_support_day", self.ticket_support_day),
            ]
        if self.run_crossdomain:
            scheduled.append(("crossdomain_day", self.crossdomain_day))
        if self.run_probes:
            scheduled += [
                ("session_probe_day", self.session_probe_day),
                ("ticket_probe_day", self.ticket_probe_day),
            ]
        out_of_range = [
            f"{name}={day}" for name, day in scheduled
            if not 0 <= day < self.days
        ]
        if out_of_range:
            raise ValueError(
                f"experiment days outside range(days={self.days}): "
                f"{', '.join(out_of_range)} — the experiment would silently "
                "never run; adjust the day or disable the experiment"
            )


@dataclass
class StudyDataset:
    """Everything the nine-week study observed."""

    days: int
    day0_list: list[tuple[int, str]] = field(default_factory=list)
    always_present: list[str] = field(default_factory=list)
    ranks: dict[str, int] = field(default_factory=dict)
    # Daily longitudinal sweeps.
    ticket_daily: RecordRows = field(default_factory=list)
    dhe_daily: RecordRows = field(default_factory=list)
    ecdhe_daily: RecordRows = field(default_factory=list)
    # 10-connection support scans + 30-minute single scans.
    ticket_support: RecordRows = field(default_factory=list)
    dhe_support: RecordRows = field(default_factory=list)
    ecdhe_support: RecordRows = field(default_factory=list)
    ticket_30min: RecordRows = field(default_factory=list)
    dhe_30min: RecordRows = field(default_factory=list)
    ecdhe_30min: RecordRows = field(default_factory=list)
    # 24-hour resumption probes.
    session_probes: RecordRows = field(default_factory=list)
    ticket_probes: RecordRows = field(default_factory=list)
    # Cross-domain cache edges.
    cache_edges: RecordRows = field(default_factory=list)
    crossdomain_targets: list[str] = field(default_factory=list)
    # Scanner-side AS knowledge (domain -> asn), from "whois" lookups.
    domain_asn: dict[str, int] = field(default_factory=dict)
    domain_ip: dict[str, str] = field(default_factory=dict)
    as_names: dict[int, str] = field(default_factory=dict)
    # Bookkeeping for Table 1: list size and post-blacklist size on the
    # day each support scan ran, keyed by scan label.
    list_sizes: dict[str, tuple[int, int]] = field(default_factory=dict)

    def meta(self) -> dict:
        """The JSON-serializable non-record fields (``meta.json``)."""
        return {
            "days": self.days,
            "day0_list": self.day0_list,
            "always_present": self.always_present,
            "ranks": self.ranks,
            "crossdomain_targets": self.crossdomain_targets,
            "domain_asn": self.domain_asn,
            "domain_ip": self.domain_ip,
            "as_names": self.as_names,
            "list_sizes": self.list_sizes,
        }


# Kept for backwards compatibility with callers that enumerated the
# scan-observation fields; CHANNELS is the authoritative layout now.
_OBSERVATION_FIELDS = tuple(
    name for name, cls in CHANNELS.items()
    if cls.__name__ == "ScanObservation"
)


def run_study(
    ecosystem: Ecosystem,
    config: Optional[StudyConfig] = None,
    progress=None,
    *,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    stream_dir: Optional[str] = None,
    telemetry_dir: Optional[str] = None,
    shard_progress: Optional[Callable[[int, int, int, int], None]] = None,
    resume: bool = False,
    fail_fast: bool = False,
    live=None,
    profile_dir: Optional[str] = None,
) -> StudyDataset:
    """Run the full measurement study against ``ecosystem``.

    Keyword overrides take precedence over the matching
    :class:`StudyConfig` fields.  With ``shards > 1`` the population
    is partitioned deterministically and the passed ecosystem is used
    only as the template for per-shard views (it is left untouched);
    output is byte-identical for any ``workers`` value.  ``resume``
    continues a killed streamed run from its ``stream_dir`` checkpoint
    (see :mod:`repro.scanner.checkpoint`); ``fail_fast`` aborts the
    whole study on the first shard failure instead of letting sibling
    shards finish and checkpoint.
    """
    dataset, _ = run_study_with_stats(
        ecosystem,
        config,
        progress,
        workers=workers,
        shards=shards,
        stream_dir=stream_dir,
        telemetry_dir=telemetry_dir,
        shard_progress=shard_progress,
        resume=resume,
        fail_fast=fail_fast,
        live=live,
        profile_dir=profile_dir,
    )
    return dataset


def run_study_with_stats(
    ecosystem: Ecosystem,
    config: Optional[StudyConfig] = None,
    progress=None,
    *,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    stream_dir: Optional[str] = None,
    telemetry_dir: Optional[str] = None,
    shard_progress: Optional[Callable[[int, int, int, int], None]] = None,
    resume: bool = False,
    fail_fast: bool = False,
    live=None,
    profile_dir: Optional[str] = None,
) -> tuple[StudyDataset, StudyStats]:
    """Like :func:`run_study` but also returns a :class:`StudyStats`.

    ``telemetry_dir`` additionally writes a run manifest, merged
    metrics, and trace spans there (see :mod:`repro.obs`); it must not
    point into the dataset directory.  ``live`` feeds a running
    :class:`repro.obs.exporter.LivePlane` (progress, live metrics,
    events) and ``profile_dir`` collects per-shard cProfile dumps —
    both diagnostics-only, never affecting dataset bytes.
    """
    config = config or StudyConfig()
    engine = StudyEngine(config)
    return engine.run(
        ecosystem,
        progress=progress,
        shard_progress=shard_progress,
        workers=workers,
        shards=shards,
        stream_dir=stream_dir,
        telemetry_dir=telemetry_dir,
        resume=resume,
        fail_fast=fail_fast,
        live=live,
        profile_dir=profile_dir,
    )


# ---------------------------------------------------------------------------
# Dataset persistence (JSONL directory)
# ---------------------------------------------------------------------------


def save_dataset(dataset: StudyDataset, directory: str) -> None:
    """Persist a dataset as JSONL files plus a meta.json.

    Thin wrapper over the datastore layout the streaming engine writes
    directly: saving a stream-backed dataset to its own directory only
    refreshes ``meta.json`` (the channel files are already in place).
    """
    os.makedirs(directory, exist_ok=True)
    for name in CHANNELS:
        rows = getattr(dataset, name)
        target = channel_path(directory, name)
        if (
            isinstance(rows, LazyRecordView)
            and os.path.exists(rows.path)
            and os.path.exists(target)
            and os.path.samefile(rows.path, target)
        ):
            continue
        with JsonlWriter(target) as writer:
            writer.append_many(rows)
    write_meta(directory, dataset.meta())


def load_dataset(directory: str) -> StudyDataset:
    """Load a dataset previously written by :func:`save_dataset`.

    Record channels come back as :class:`LazyRecordView` objects backed
    by the directory's JSONL files — nothing is materialized until an
    analysis iterates it.
    """
    meta = read_meta(directory)
    dataset = StudyDataset(days=meta["days"])
    dataset.day0_list = [tuple(item) for item in meta["day0_list"]]
    dataset.always_present = meta["always_present"]
    dataset.ranks = meta["ranks"]
    dataset.crossdomain_targets = meta["crossdomain_targets"]
    dataset.domain_asn = meta["domain_asn"]
    dataset.domain_ip = meta["domain_ip"]
    dataset.as_names = {int(k): v for k, v in meta.get("as_names", {}).items()}
    dataset.list_sizes = {
        k: tuple(v) for k, v in meta.get("list_sizes", {}).items()
    }
    for name, view in open_channel_views(directory).items():
        setattr(dataset, name, view)
    return dataset


__all__ = [
    "StudyConfig",
    "StudyDataset",
    "StudyStats",
    "run_study",
    "run_study_with_stats",
    "save_dataset",
    "load_dataset",
]
