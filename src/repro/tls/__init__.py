"""A from-scratch TLS 1.2 protocol model with the paper's crypto shortcuts.

The public surface:

* :class:`~repro.tls.server.TLSServer` / :class:`~repro.tls.server.ServerConfig`
  — a server process with configurable session cache, STEK store,
  ticket policy, and (EC)DHE reuse policy.
* :class:`~repro.tls.client.TLSClient` — the scanning client.
* :mod:`repro.tls.ticket` — RFC 5077 tickets and STEKs.
* :mod:`repro.tls.session` — session state and shared session caches.
"""

from .ciphers import (
    ALL_SUITES,
    DHE_ONLY_OFFER,
    ECDHE_FIRST_OFFER,
    MODERN_BROWSER_OFFER,
    CipherSuite,
)
from .client import HandshakeResult, TLSClient
from .constants import KeyExchangeKind, ProtocolVersion
from .errors import CertificateError, HandshakeFailure, TLSError
from .keyexchange import KexReusePolicy, ReuseMode
from .server import ServerConfig, TLSServer, TicketPolicy
from .session import SessionCache, SessionState
from .ticket import STEK, STEKStore, TicketFormat, extract_key_name, generate_stek

__all__ = [
    "ALL_SUITES",
    "MODERN_BROWSER_OFFER",
    "DHE_ONLY_OFFER",
    "ECDHE_FIRST_OFFER",
    "CipherSuite",
    "TLSClient",
    "HandshakeResult",
    "KeyExchangeKind",
    "ProtocolVersion",
    "TLSError",
    "HandshakeFailure",
    "CertificateError",
    "KexReusePolicy",
    "ReuseMode",
    "TLSServer",
    "ServerConfig",
    "TicketPolicy",
    "SessionCache",
    "SessionState",
    "STEK",
    "STEKStore",
    "TicketFormat",
    "generate_stek",
    "extract_key_name",
]
