"""Cipher-suite registry.

Each suite records its IANA codepoint, key-exchange family, bulk-cipher
key size, and human name.  The study's central distinction is whether
the key exchange is forward secret (DHE/ECDHE) or not (static RSA), so
suites carry that bit explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from .constants import KeyExchangeKind


@dataclass(frozen=True)
class CipherSuite:
    """A negotiable TLS cipher suite."""

    code: int
    name: str
    kex: KeyExchangeKind
    key_bytes: int
    mac_key_bytes: int = 32

    @property
    def forward_secret(self) -> bool:
        """Whether the key exchange is nominally forward secret."""
        return self.kex in (KeyExchangeKind.DHE, KeyExchangeKind.ECDHE)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


TLS_RSA_WITH_AES_128_CBC_SHA = CipherSuite(
    0x002F, "TLS_RSA_WITH_AES_128_CBC_SHA", KeyExchangeKind.RSA, 16
)
TLS_RSA_WITH_AES_256_CBC_SHA = CipherSuite(
    0x0035, "TLS_RSA_WITH_AES_256_CBC_SHA", KeyExchangeKind.RSA, 32
)
TLS_DHE_RSA_WITH_AES_128_CBC_SHA = CipherSuite(
    0x0033, "TLS_DHE_RSA_WITH_AES_128_CBC_SHA", KeyExchangeKind.DHE, 16
)
TLS_DHE_RSA_WITH_AES_256_CBC_SHA = CipherSuite(
    0x0039, "TLS_DHE_RSA_WITH_AES_256_CBC_SHA", KeyExchangeKind.DHE, 32
)
TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA = CipherSuite(
    0xC013, "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA", KeyExchangeKind.ECDHE, 16
)
TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA = CipherSuite(
    0xC014, "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA", KeyExchangeKind.ECDHE, 32
)
TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256 = CipherSuite(
    0xC02F, "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256", KeyExchangeKind.ECDHE, 16
)

ALL_SUITES = (
    TLS_RSA_WITH_AES_128_CBC_SHA,
    TLS_RSA_WITH_AES_256_CBC_SHA,
    TLS_DHE_RSA_WITH_AES_128_CBC_SHA,
    TLS_DHE_RSA_WITH_AES_256_CBC_SHA,
    TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
    TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA,
    TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
)

SUITES_BY_CODE = {suite.code: suite for suite in ALL_SUITES}
SUITES_BY_NAME = {suite.name: suite for suite in ALL_SUITES}

RSA_SUITES = tuple(s for s in ALL_SUITES if s.kex == KeyExchangeKind.RSA)
DHE_SUITES = tuple(s for s in ALL_SUITES if s.kex == KeyExchangeKind.DHE)
ECDHE_SUITES = tuple(s for s in ALL_SUITES if s.kex == KeyExchangeKind.ECDHE)

# The scanner's "modern browser" offer: ECDHE first, then DHE, then RSA —
# mirroring contemporary Chrome/Firefox preference order.
MODERN_BROWSER_OFFER = (
    TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
    TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
    TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA,
    TLS_DHE_RSA_WITH_AES_128_CBC_SHA,
    TLS_DHE_RSA_WITH_AES_256_CBC_SHA,
    TLS_RSA_WITH_AES_128_CBC_SHA,
    TLS_RSA_WITH_AES_256_CBC_SHA,
)

# The paper's special-purpose scan offers (§4.4): DHE-only, and
# ECDHE-first-with-RSA-fallback.
DHE_ONLY_OFFER = DHE_SUITES
ECDHE_FIRST_OFFER = ECDHE_SUITES + RSA_SUITES


def select_suite(
    client_offer: tuple[CipherSuite, ...] | list[CipherSuite],
    server_supported: tuple[CipherSuite, ...] | list[CipherSuite],
    server_preference: bool = True,
) -> CipherSuite | None:
    """Negotiate a suite, honoring server preference order like OpenSSL.

    Returns ``None`` when there is no overlap (handshake failure).
    """
    client_codes = {suite.code for suite in client_offer}
    if server_preference:
        for suite in server_supported:
            if suite.code in client_codes:
                return suite
        return None
    server_codes = {suite.code for suite in server_supported}
    for suite in client_offer:
        if suite.code in server_codes:
            return suite
    return None


__all__ = [
    "CipherSuite",
    "ALL_SUITES",
    "SUITES_BY_CODE",
    "SUITES_BY_NAME",
    "RSA_SUITES",
    "DHE_SUITES",
    "ECDHE_SUITES",
    "MODERN_BROWSER_OFFER",
    "DHE_ONLY_OFFER",
    "ECDHE_FIRST_OFFER",
    "select_suite",
    "TLS_RSA_WITH_AES_128_CBC_SHA",
    "TLS_RSA_WITH_AES_256_CBC_SHA",
    "TLS_DHE_RSA_WITH_AES_128_CBC_SHA",
    "TLS_DHE_RSA_WITH_AES_256_CBC_SHA",
    "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA",
    "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA",
    "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256",
]
