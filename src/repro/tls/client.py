"""The TLS 1.2 client used by the measurement toolchain.

The client drives a server's flight-oriented exchange API with real
serialized records, validates certificates against a trust store, and
returns a :class:`HandshakeResult` capturing everything the paper's
scanner records per connection:

* negotiated cipher suite and key-exchange family,
* the server's (EC)DHE public value (the §4.4 reuse signal),
* the session ID and whether the server honored a resumption offer,
* any issued session ticket with its lifetime hint and STEK identifier,
* the certificate and whether it chains to the trust store,
* the client-side session state needed to attempt later resumptions,
* a full capture of the records exchanged (for the passive adversary).

Failures come back as ``ok=False`` results with an error string — a
scanner must keep scanning when a server misbehaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, Protocol

from ..crypto import dh, ec
from ..crypto.mac import sha256, constant_time_equal
from ..crypto.prf import derive_master_secret, verify_data
from ..crypto.rng import DeterministicRandom
from ..netsim.eventloop import Wait
from ..obs.metrics import METRICS
from ..x509 import TrustStore, X509Certificate
from .ciphers import CipherSuite, KeyExchangeKind, MODERN_BROWSER_OFFER
from .constants import ExtensionType, ProtocolVersion
from .errors import HandshakeFailure, TLSError
from .extensions import (
    encode_point_formats,
    encode_server_name,
    encode_session_ticket,
    encode_supported_groups,
    has_extension,
)
from .keyexchange import verify_kex_signature
from .messages import (
    Certificate,
    ClientHello,
    ClientKeyExchange,
    Finished,
    NewSessionTicket,
    ServerHello,
    ServerHelloDone,
    ServerKeyExchangeDHE,
    ServerKeyExchangeECDHE,
    parse_handshake,
    serialize_handshake,
)
from .record import RecordCipher, handshake_record, new_record_cipher, parse_records, serialize_records
from .session import SessionState, derive_connection_keys
from .wire import DecodeError


class ServerExchange(Protocol):
    """The flight-oriented exchange surface a client connects to."""

    def accept(self, client_hello_bytes: bytes) -> tuple[bytes, object]: ...
    def finish_full(self, conn: object, client_flight: bytes) -> bytes: ...
    def finish_abbreviated(self, conn: object, client_finished_bytes: bytes) -> None: ...
    def handle_application_record(self, conn: object, record_bytes: bytes) -> bytes: ...


@dataclass
class CapturedFlight:
    """One direction's bytes, as a passive on-path observer sees them."""

    from_client: bool
    data: bytes


@dataclass
class HandshakeResult:
    """Everything one scanned connection tells us."""

    ok: bool
    error: str = ""
    domain: str = ""
    cipher_suite: Optional[CipherSuite] = None
    resumed: bool = False
    resumed_via: Optional[str] = None  # "session_id" | "ticket"
    session_id: bytes = b""
    offered_session_id: bytes = b""
    new_ticket: Optional[NewSessionTicket] = None
    server_supports_tickets: bool = False
    server_kex_kind: Optional[KeyExchangeKind] = None
    server_kex_public: bytes = b""  # raw DH Ys / EC point — the reuse signal
    certificate: Optional[X509Certificate] = None
    certificate_trusted: bool = False
    certificate_error: str = ""
    session: Optional[SessionState] = None
    client_random: bytes = b""
    server_random: bytes = b""
    captured: list[CapturedFlight] = field(default_factory=list)
    # Internal handles for follow-up application-data exchanges.
    _server: Optional[ServerExchange] = None
    _server_conn: object = None
    _record_cipher: Optional[RecordCipher] = None

    @property
    def forward_secret_kex(self) -> bool:
        """Did this connection use a nominally forward-secret exchange?"""
        return self.cipher_suite is not None and self.cipher_suite.forward_secret


class TLSClient:
    """A scanning TLS client with a trust store and deterministic randomness."""

    def __init__(
        self,
        rng: DeterministicRandom,
        trust_store: Optional[TrustStore] = None,
        now_fn=None,
        reuse_client_ephemerals: bool = False,
    ) -> None:
        self._rng = rng
        self.trust_store = trust_store
        self._now = now_fn or (lambda: 0.0)
        # Scanner-side optimization: reuse *our own* (EC)DHE keypair
        # across connections.  Client-side reuse affects none of the
        # server-observable signals the study measures (the server's
        # value, tickets, session IDs) but collapses one scalar
        # multiplication per connection — and lets the shared-secret
        # memo absorb another whenever the scanned server reuses too.
        self.reuse_client_ephemerals = reuse_client_ephemerals
        self._ec_keypairs: dict[str, ec.ECKeyPair] = {}
        self._dh_keypairs: dict[int, dh.DHKeyPair] = {}

    # -- public API -------------------------------------------------------

    def connect(
        self,
        server: ServerExchange,
        server_name: str = "",
        offer: tuple[CipherSuite, ...] = MODERN_BROWSER_OFFER,
        session_id: bytes = b"",
        ticket: bytes = b"",
        saved_session: Optional[SessionState] = None,
        offer_tickets: bool = True,
        capture: bool = False,
    ) -> HandshakeResult:
        """Perform one TLS connection, optionally offering resumption.

        ``session_id``/``ticket`` offer resumption of ``saved_session``
        (which must be provided when either is non-empty, since an
        honoring server never re-sends the master secret).
        """
        if (session_id or ticket) and saved_session is None:
            raise ValueError("resumption offers require the saved session state")
        result = HandshakeResult(ok=False, domain=server_name,
                                 offered_session_id=session_id)
        try:
            # Drive the continuation to completion inline: the simulated
            # network has zero latency, so every Wait is already due.
            # An event loop interleaving many clients drives the same
            # generator through its heap instead (see netsim.eventloop).
            for _wait in self.handshake_steps(
                server, server_name, offer, session_id, ticket,
                saved_session, offer_tickets, capture, result,
            ):
                pass
        except (TLSError, DecodeError, ValueError) as exc:
            result.ok = False
            if not result.error:
                result.error = f"{type(exc).__name__}: {exc}"
        return result

    def exchange_data(self, result: HandshakeResult, request: bytes) -> bytes:
        """Send one encrypted request over an established connection."""
        if not result.ok or result._record_cipher is None or result._server is None:
            raise TLSError("connection not established")
        record = result._record_cipher.protect(request)
        request_bytes = serialize_records([record])
        result.captured.append(CapturedFlight(from_client=True, data=request_bytes))
        response_bytes = result._server.handle_application_record(
            result._server_conn, request_bytes
        )
        result.captured.append(CapturedFlight(from_client=False, data=response_bytes))
        records = parse_records(response_bytes)
        return result._record_cipher.unprotect(records[0])

    # -- continuation API ----------------------------------------------------

    def handshake_steps(
        self,
        server: ServerExchange,
        server_name: str,
        offer: tuple[CipherSuite, ...],
        session_id: bytes,
        ticket: bytes,
        saved_session: Optional[SessionState],
        offer_tickets: bool,
        capture: bool,
        result: HandshakeResult,
    ) -> Generator[Wait, None, None]:
        """The handshake as a resumable continuation.

        This is the protocol-shim contract the event-driven scan core
        schedules (docs/SCALING.md): a generator that yields a
        :class:`~repro.netsim.eventloop.Wait` wherever bytes are on
        the wire — once after each flight this client sends — and
        mutates ``result`` as the exchange progresses.  Between
        yields the step runs to completion synchronously; all
        randomness comes from the client/server RNG streams in a
        fixed per-step order, so driving the generator inline
        (:meth:`connect`) or interleaved with thousands of others on
        an :class:`~repro.netsim.eventloop.EventLoop` produces
        byte-identical results.  Protocol errors raise through the
        generator; :meth:`connect` converts them to ``result.error``.
        A TLS 1.3 or STARTTLS shim plugs in by implementing the same
        shape: yield per flight, never consult wall-clock time, and
        draw randomness only from the deterministic streams.
        """
        client_random = self._rng.random_bytes(32)
        result.client_random = client_random
        extensions = []
        if server_name:
            extensions.append(encode_server_name(server_name))
        extensions.append(encode_supported_groups(sorted(ec.NAMED_CURVE_IDS.values())))
        extensions.append(encode_point_formats())
        if ticket:
            extensions.append(encode_session_ticket(ticket))
        elif offer_tickets:
            extensions.append(encode_session_ticket(b""))

        client_hello = ClientHello(
            version=ProtocolVersion.TLS12,
            random=client_random,
            session_id=session_id,
            cipher_suites=list(offer),
            extensions=extensions,
        )
        ch_bytes = serialize_records(
            [handshake_record(serialize_handshake(client_hello))]
        )
        transcript = serialize_handshake(client_hello)
        if capture:
            result.captured.append(CapturedFlight(from_client=True, data=ch_bytes))

        yield Wait(0.0)  # ClientHello in flight
        flight, server_conn = server.accept(ch_bytes)
        if capture:
            result.captured.append(CapturedFlight(from_client=False, data=flight))
        records = parse_records(flight)
        payload = b"".join(r.payload for r in records)

        message, payload = parse_handshake(payload)
        if not isinstance(message, ServerHello):
            raise HandshakeFailure("expected ServerHello")
        server_hello = message
        result.server_random = server_hello.random
        result.cipher_suite = server_hello.cipher_suite
        result.session_id = server_hello.session_id
        result.server_supports_tickets = has_extension(
            server_hello.extensions, ExtensionType.SESSION_TICKET
        )
        kex_hint = {
            KeyExchangeKind.DHE: "dhe",
            KeyExchangeKind.ECDHE: "ecdhe",
        }.get(server_hello.cipher_suite.kex)
        transcript += serialize_handshake(server_hello)

        # Collect the rest of the server's first flight.
        messages = []
        while payload:
            message, payload = parse_handshake(payload, kex_hint=kex_hint)
            messages.append(message)

        if messages and isinstance(messages[-1], Finished):
            yield from self._finish_abbreviated(
                server, server_conn, server_hello, messages, saved_session,
                session_id, ticket, transcript, capture, result, client_random,
            )
        else:
            yield from self._finish_full(
                server, server_conn, server_hello, messages, server_name,
                transcript, capture, result, client_random, offer_tickets,
            )

    def _finish_abbreviated(
        self,
        server: ServerExchange,
        server_conn: object,
        server_hello: ServerHello,
        messages: list,
        saved_session: Optional[SessionState],
        offered_session_id: bytes,
        offered_ticket: bytes,
        transcript: bytes,
        capture: bool,
        result: HandshakeResult,
        client_random: bytes,
    ) -> Generator[Wait, None, None]:
        if saved_session is None:
            raise HandshakeFailure("server resumed a session we did not offer")
        session = saved_session
        for message in messages[:-1]:
            if isinstance(message, NewSessionTicket):
                result.new_ticket = message
                transcript += serialize_handshake(message)
            else:
                raise HandshakeFailure(
                    f"unexpected {type(message).__name__} in abbreviated flight"
                )
        server_finished = messages[-1]
        expected = verify_data(
            session.master_secret, b"server finished", sha256(transcript)
        )
        if not constant_time_equal(server_finished.verify_data, expected):
            raise HandshakeFailure("server Finished verification failed")
        transcript += serialize_handshake(server_finished)

        finished = Finished(
            verify_data=verify_data(
                session.master_secret, b"client finished", sha256(transcript)
            )
        )
        finished_bytes = serialize_records(
            [handshake_record(serialize_handshake(finished))]
        )
        if capture:
            result.captured.append(CapturedFlight(from_client=True, data=finished_bytes))
        yield Wait(0.0)  # client Finished in flight
        server.finish_abbreviated(server_conn, finished_bytes)

        result.ok = True
        result.resumed = True
        result.resumed_via = "ticket" if offered_ticket else "session_id"
        METRICS.counter(
            "tls.client.handshake",
            kind="abbreviated",
            kex=session.cipher_suite.kex.name.lower(),
        ).inc()
        result.session = session
        keys = derive_connection_keys(session, client_random, server_hello.random)
        result._record_cipher = new_record_cipher(
            keys, is_client=True, suite=session.cipher_suite
        )
        result._server = server
        result._server_conn = server_conn

    def _finish_full(
        self,
        server: ServerExchange,
        server_conn: object,
        server_hello: ServerHello,
        messages: list,
        server_name: str,
        transcript: bytes,
        capture: bool,
        result: HandshakeResult,
        client_random: bytes,
        offer_tickets: bool,
    ) -> Generator[Wait, None, None]:
        certificate_msg = None
        kex_message = None
        saw_done = False
        for message in messages:
            if isinstance(message, Certificate):
                certificate_msg = message
            elif isinstance(message, (ServerKeyExchangeDHE, ServerKeyExchangeECDHE)):
                kex_message = message
            elif isinstance(message, ServerHelloDone):
                saw_done = True
            else:
                raise HandshakeFailure(
                    f"unexpected {type(message).__name__} in server flight"
                )
            transcript += serialize_handshake(message)
        if certificate_msg is None or not saw_done:
            raise HandshakeFailure("incomplete server flight")
        if not certificate_msg.chain:
            raise HandshakeFailure("empty certificate chain")
        certificate = X509Certificate.parse(certificate_msg.chain[0])
        result.certificate = certificate
        if self.trust_store is not None:
            validation = self.trust_store.validate(
                certificate, server_name or None, self._now()
            )
            result.certificate_trusted = bool(validation)
            result.certificate_error = validation.reason
        suite = server_hello.cipher_suite
        result.server_kex_kind = suite.kex

        if suite.kex == KeyExchangeKind.RSA:
            premaster, exchange_data = self._rsa_premaster(certificate)
        else:
            if kex_message is None:
                raise HandshakeFailure("missing ServerKeyExchange for (EC)DHE suite")
            if not verify_kex_signature(
                kex_message, certificate.public_key, client_random, server_hello.random
            ):
                raise HandshakeFailure("ServerKeyExchange signature invalid")
            if isinstance(kex_message, ServerKeyExchangeDHE):
                premaster, exchange_data, public = self._dhe_premaster(kex_message)
            else:
                premaster, exchange_data, public = self._ecdhe_premaster(kex_message)
            result.server_kex_public = public

        cke = ClientKeyExchange(exchange_data=exchange_data)
        transcript += serialize_handshake(cke)
        master = derive_master_secret(premaster, client_random, server_hello.random)
        finished = Finished(
            verify_data=verify_data(master, b"client finished", sha256(transcript))
        )
        transcript += serialize_handshake(finished)
        flight = serialize_records(
            [handshake_record(serialize_handshake(cke) + serialize_handshake(finished))]
        )
        if capture:
            result.captured.append(CapturedFlight(from_client=True, data=flight))

        yield Wait(0.0)  # ClientKeyExchange + Finished in flight
        reply = server.finish_full(server_conn, flight)
        if capture:
            result.captured.append(CapturedFlight(from_client=False, data=reply))
        records = parse_records(reply)
        payload = b"".join(r.payload for r in records)
        server_finished = None
        while payload:
            message, payload = parse_handshake(payload)
            if isinstance(message, NewSessionTicket):
                result.new_ticket = message
                transcript += serialize_handshake(message)
            elif isinstance(message, Finished):
                server_finished = message
            else:
                raise HandshakeFailure(
                    f"unexpected {type(message).__name__} in final flight"
                )
        if server_finished is None:
            raise HandshakeFailure("missing server Finished")
        expected = verify_data(master, b"server finished", sha256(transcript))
        if not constant_time_equal(server_finished.verify_data, expected):
            raise HandshakeFailure("server Finished verification failed")

        result.ok = True
        METRICS.counter(
            "tls.client.handshake", kind="full", kex=suite.kex.name.lower()
        ).inc()
        result.session = SessionState(
            master_secret=master,
            cipher_suite=suite,
            version=ProtocolVersion.TLS12,
            created_at=self._now(),
            domain=server_name,
        )
        keys = derive_connection_keys(result.session, client_random, server_hello.random)
        result._record_cipher = new_record_cipher(keys, is_client=True, suite=suite)
        result._server = server
        result._server_conn = server_conn

    def _rsa_premaster(self, certificate: X509Certificate) -> tuple[bytes, bytes]:
        premaster = self._rng.random_bytes(48)
        value = int.from_bytes(premaster, "big")
        if value >= certificate.public_key.n:
            # 48 bytes always fits below a >=512-bit modulus; guard anyway.
            raise HandshakeFailure("server RSA key too small for premaster")
        ciphertext = pow(value, certificate.public_key.e, certificate.public_key.n)
        size = (certificate.public_key.n.bit_length() + 7) // 8
        return premaster, ciphertext.to_bytes(size, "big")

    def _dhe_premaster(
        self, kex: ServerKeyExchangeDHE
    ) -> tuple[bytes, bytes, bytes]:
        group = dh.DHGroup("negotiated", kex.dh_p, kex.dh_g)
        dh.validate_public_value(group, kex.dh_public)
        if self.reuse_client_ephemerals:
            keypair = self._dh_keypairs.get(kex.dh_p)
            if keypair is None:
                keypair = dh.generate_keypair(group, self._rng)
                self._dh_keypairs[kex.dh_p] = keypair
        else:
            keypair = dh.generate_keypair(group, self._rng)
        premaster = keypair.shared_secret_bytes(kex.dh_public)
        exchange_data = dh.int_to_group_bytes(group, keypair.public)
        server_public = dh.int_to_group_bytes(group, kex.dh_public)
        return premaster, exchange_data, server_public

    def _ecdhe_premaster(
        self, kex: ServerKeyExchangeECDHE
    ) -> tuple[bytes, bytes, bytes]:
        curve_name = ec.NAMED_CURVE_BY_ID.get(kex.named_curve)
        if curve_name is None:
            raise HandshakeFailure(f"unknown named curve {kex.named_curve}")
        curve = ec.CURVES_BY_NAME[curve_name]
        server_point = ec.decode_point(curve, kex.point)
        if self.reuse_client_ephemerals:
            keypair = self._ec_keypairs.get(curve.name)
            if keypair is None:
                keypair = ec.generate_keypair(curve, self._rng)
                self._ec_keypairs[curve.name] = keypair
        else:
            keypair = ec.generate_keypair(curve, self._rng)
        premaster = keypair.shared_secret_bytes(server_point)
        exchange_data = ec.encode_point(curve, keypair.public)
        return premaster, exchange_data, kex.point


__all__ = [
    "TLSClient",
    "HandshakeResult",
    "CapturedFlight",
    "ServerExchange",
]
