"""Protocol constants: versions, message types, alerts, extensions.

Wire values follow the IANA TLS registries so that serialized
handshakes look like the real protocol the paper's scanner spoke.
"""

from __future__ import annotations

from enum import IntEnum


class ProtocolVersion(IntEnum):
    """TLS protocol versions as (major << 8 | minor)."""

    SSL30 = 0x0300
    TLS10 = 0x0301
    TLS11 = 0x0302
    TLS12 = 0x0303

    @property
    def wire(self) -> bytes:
        return self.value.to_bytes(2, "big")


class ContentType(IntEnum):
    """Record-layer content types (RFC 5246 §6.2.1)."""

    CHANGE_CIPHER_SPEC = 20
    ALERT = 21
    HANDSHAKE = 22
    APPLICATION_DATA = 23


class HandshakeType(IntEnum):
    """Handshake message types (RFC 5246 §7.4, RFC 5077 §3.3)."""

    HELLO_REQUEST = 0
    CLIENT_HELLO = 1
    SERVER_HELLO = 2
    NEW_SESSION_TICKET = 4
    CERTIFICATE = 11
    SERVER_KEY_EXCHANGE = 12
    CERTIFICATE_REQUEST = 13
    SERVER_HELLO_DONE = 14
    CERTIFICATE_VERIFY = 15
    CLIENT_KEY_EXCHANGE = 16
    FINISHED = 20


class AlertLevel(IntEnum):
    WARNING = 1
    FATAL = 2


class AlertDescription(IntEnum):
    """Alert codes the simulated endpoints actually emit."""

    CLOSE_NOTIFY = 0
    UNEXPECTED_MESSAGE = 10
    BAD_RECORD_MAC = 20
    DECODE_ERROR = 50
    HANDSHAKE_FAILURE = 40
    ILLEGAL_PARAMETER = 47
    UNRECOGNIZED_NAME = 112
    INTERNAL_ERROR = 80
    CERTIFICATE_UNKNOWN = 46
    DECRYPT_ERROR = 51


class ExtensionType(IntEnum):
    """Extension codepoints (IANA TLS ExtensionType registry)."""

    SERVER_NAME = 0
    SUPPORTED_GROUPS = 10
    EC_POINT_FORMATS = 11
    SESSION_TICKET = 35
    RENEGOTIATION_INFO = 0xFF01


class KeyExchangeKind(IntEnum):
    """The three key-exchange families the study distinguishes."""

    RSA = 0
    DHE = 1
    ECDHE = 2


RANDOM_LENGTH = 32
SESSION_ID_LENGTH = 32
VERIFY_DATA_LENGTH = 12
MASTER_SECRET_LENGTH = 48
STEK_KEY_NAME_LENGTH = 16

# RFC 5246 suggests a 24-hour upper bound on session lifetimes.
RFC5246_MAX_SESSION_LIFETIME_SECONDS = 24 * 3600


__all__ = [
    "ProtocolVersion",
    "ContentType",
    "HandshakeType",
    "AlertLevel",
    "AlertDescription",
    "ExtensionType",
    "KeyExchangeKind",
    "RANDOM_LENGTH",
    "SESSION_ID_LENGTH",
    "VERIFY_DATA_LENGTH",
    "MASTER_SECRET_LENGTH",
    "STEK_KEY_NAME_LENGTH",
    "RFC5246_MAX_SESSION_LIFETIME_SECONDS",
]
