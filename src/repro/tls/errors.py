"""TLS error taxonomy shared by client, server, and scanner."""

from __future__ import annotations

from .constants import AlertDescription, AlertLevel


class TLSError(Exception):
    """Base class for all TLS-layer failures."""


class HandshakeFailure(TLSError):
    """The handshake could not complete (no common cipher, bad state…)."""

    def __init__(self, message: str, alert: AlertDescription = AlertDescription.HANDSHAKE_FAILURE):
        super().__init__(message)
        self.alert = alert


class CertificateError(TLSError):
    """The presented certificate failed client-side validation."""


class AlertReceived(TLSError):
    """The peer sent a fatal alert."""

    def __init__(self, level: AlertLevel, description: AlertDescription):
        super().__init__(f"alert {description.name} (level {level.name})")
        self.level = level
        self.description = description


__all__ = ["TLSError", "HandshakeFailure", "CertificateError", "AlertReceived"]
