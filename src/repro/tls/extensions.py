"""TLS hello extensions (RFC 6066, RFC 4492, RFC 5077).

Extensions are carried as ``(type, opaque-data)`` pairs in both hello
messages; this module provides the codecs for the ones the measurement
toolchain relies on: SNI (to reach name-based virtual hosts / SSL
terminators), the session-ticket extension (RFC 5077 §3.2), and the
supported-groups / point-format extensions that gate ECDHE.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .constants import ExtensionType
from .wire import ByteReader, ByteWriter, DecodeError

Extension = tuple[int, bytes]

# Hellos in the simulation draw from a handful of fixed extension
# blocks (client offers per probe profile, server echoes), so encoding
# memoizes on the extension tuple — extensions are (int, bytes) pairs,
# hence hashable by value.
_ENCODE_MEMO: dict[tuple[Extension, ...], bytes] = {}
_ENCODE_MEMO_MAX = 1024


def encode_extensions(extensions: list[Extension]) -> bytes:
    """Serialize an extension list (with its outer 2-byte length)."""
    key = tuple(extensions)
    encoded = _ENCODE_MEMO.get(key)
    if encoded is None:
        inner = ByteWriter()
        for ext_type, data in extensions:
            inner.u16(ext_type).vec16(data)
        encoded = ByteWriter().vec16(inner.getvalue()).getvalue()
        if len(_ENCODE_MEMO) >= _ENCODE_MEMO_MAX:
            _ENCODE_MEMO.clear()
        _ENCODE_MEMO[key] = encoded
    return encoded


def decode_extensions(reader: ByteReader) -> list[Extension]:
    """Parse an extension list; absent extensions yield an empty list."""
    if reader.remaining == 0:
        return []
    block = ByteReader(reader.vec16())
    extensions: list[Extension] = []
    seen: set[int] = set()
    while block.remaining:
        ext_type = block.u16()
        data = block.vec16()
        if ext_type in seen:
            raise DecodeError(f"duplicate extension {ext_type}")
        seen.add(ext_type)
        extensions.append((ext_type, data))
    return extensions


def find_extension(extensions: list[Extension], ext_type: int) -> Optional[bytes]:
    """Return the body of extension ``ext_type``, or None if absent."""
    for etype, data in extensions:
        if etype == ext_type:
            return data
    return None


def has_extension(extensions: list[Extension], ext_type: int) -> bool:
    return find_extension(extensions, ext_type) is not None


# --- server_name (RFC 6066 §3) ---------------------------------------

def encode_server_name(hostname: str) -> Extension:
    """Build an SNI extension for a single DNS hostname."""
    name = hostname.encode("idna") if any(ord(c) > 127 for c in hostname) else hostname.encode("ascii")
    entry = ByteWriter().u8(0).vec16(name).getvalue()  # name_type 0 = host_name
    body = ByteWriter().vec16(entry).getvalue()
    return (ExtensionType.SERVER_NAME, body)


def decode_server_name(data: bytes) -> str:
    """Extract the (single) DNS hostname from an SNI extension."""
    reader = ByteReader(data)
    names = ByteReader(reader.vec16())
    name_type = names.u8()
    if name_type != 0:
        raise DecodeError("unsupported SNI name type")
    host = names.vec16()
    return host.decode("ascii")


# --- session_ticket (RFC 5077 §3.2) -----------------------------------

def encode_session_ticket(ticket: bytes = b"") -> Extension:
    """The session-ticket extension body is the raw ticket (or empty)."""
    return (ExtensionType.SESSION_TICKET, ticket)


def decode_session_ticket(data: bytes) -> bytes:
    return data


# --- supported_groups (RFC 4492 §5.1.1) --------------------------------

def encode_supported_groups(curve_ids: Iterable[int]) -> Extension:
    inner = ByteWriter()
    for curve_id in curve_ids:
        inner.u16(curve_id)
    body = ByteWriter().vec16(inner.getvalue()).getvalue()
    return (ExtensionType.SUPPORTED_GROUPS, body)


def decode_supported_groups(data: bytes) -> list[int]:
    reader = ByteReader(data)
    inner = ByteReader(reader.vec16())
    if inner.remaining % 2:
        raise DecodeError("odd supported-groups length")
    return [inner.u16() for _ in range(inner.remaining // 2)]


# --- ec_point_formats (RFC 4492 §5.1.2) --------------------------------

UNCOMPRESSED_POINT_FORMAT = 0


def encode_point_formats(formats: Iterable[int] = (UNCOMPRESSED_POINT_FORMAT,)) -> Extension:
    inner = bytes(formats)
    return (ExtensionType.EC_POINT_FORMATS, ByteWriter().vec8(inner).getvalue())


def decode_point_formats(data: bytes) -> list[int]:
    return list(ByteReader(data).vec8())


__all__ = [
    "Extension",
    "encode_extensions",
    "decode_extensions",
    "find_extension",
    "has_extension",
    "encode_server_name",
    "decode_server_name",
    "encode_session_ticket",
    "decode_session_ticket",
    "encode_supported_groups",
    "decode_supported_groups",
    "encode_point_formats",
    "decode_point_formats",
    "UNCOMPRESSED_POINT_FORMAT",
]
