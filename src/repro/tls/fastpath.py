"""Draw-identical fast handshakes for the event-driven scan core.

The blocking client/server exchange serializes real records, runs the
PRF, computes shared secrets, and signs key-exchange parameters on
every connection.  None of those bytes reach the study dataset: a
:class:`~repro.scanner.records.ScanObservation` records *decisions*
(negotiated suite, resumption outcome, ticket/STEK identity, the
server's key-exchange public value, certificate validity) — not
transcripts.  This module replays exactly those decisions against the
same server-side state (session caches, STEK stores, ephemeral-key
caches) while skipping the unobservable crypto.

The one invariant that makes this safe is **draw identity**: every
:class:`~repro.crypto.rng.DeterministicRandom` stream (client,
per-server, network, grabber) must consume *the same draws in the same
order* as the blocking path, because any skipped or reordered draw
changes every subsequent random value and therefore dataset bytes.
The per-connection draw order replicated here (audited against
``client.py``/``server.py``; the golden-digest and oracle-equivalence
tests enforce it):

* client stream — ``client_random`` (32 B); then, full handshakes
  only: RSA premaster (48 B) or first-use (EC)DHE keypair generation.
* server stream — nothing on negotiation failure (strict SNI, no
  common cipher); otherwise ``server_random`` (32 B), then
  abbreviated: fresh session ID iff issuing on a ticket resume, then
  the reissued ticket's seal IV; full: fresh session ID, ephemeral
  keypair regeneration per the reuse policy, then the new ticket's
  seal IV.

Master secrets are replaced by one placeholder value: they never
appear in dataset bytes, Finished verification succeeds identically
(both sides derive from the same session state), and sealed tickets
keep their exact wire length (the state is still really sealed, so
STEK identities and ticket formats stay observable).  Connections that
need real transcripts — captures for the passive adversary, or
fault-injected flights whose error strings depend on record structure
— are delegated to the blocking oracle by the grabber.
"""

from __future__ import annotations

from typing import Optional

from ..crypto import dh, ec
from ..obs.metrics import METRICS
from .ciphers import CipherSuite, MODERN_BROWSER_OFFER, select_suite
from .client import HandshakeResult, TLSClient
from .constants import (
    AlertDescription,
    KeyExchangeKind,
    ProtocolVersion,
    SESSION_ID_LENGTH,
)
from .errors import HandshakeFailure, TLSError
from .messages import NewSessionTicket
from .server import TLSServer
from .session import SessionState
from .wire import DecodeError

#: Stand-in master secret (48 bytes, like the PRF output).  Used
#: consistently on both sides of every fast connection, so resumption
#: Finished checks pass exactly when they would with the real value.
PLACEHOLDER_MASTER = b"repro-fastpath-placeholder-master".ljust(48, b"\x00")

_KEX_NAME = {
    KeyExchangeKind.RSA: "rsa",
    KeyExchangeKind.DHE: "dhe",
    KeyExchangeKind.ECDHE: "ecdhe",
}

# Prebound instruments (one dict lookup per import, not per grab) —
# the same label sets the blocking path emits.
_SERVER_HS = {
    (kind, kex): METRICS.counter("tls.server.handshake", kind=kind, kex=kex)
    for kind in ("full", "abbreviated")
    for kex in _KEX_NAME.values()
}
_CLIENT_HS = {
    (kind, kex): METRICS.counter("tls.client.handshake", kind=kind, kex=kex)
    for kind in ("full", "abbreviated")
    for kex in _KEX_NAME.values()
}
_FAIL_SNI = METRICS.counter("tls.server.handshake_failure", reason="sni")
_FAIL_NO_CIPHER = METRICS.counter("tls.server.handshake_failure", reason="no_cipher")


def fast_handshake(
    client: TLSClient,
    server: TLSServer,
    server_name: str = "",
    offer: tuple[CipherSuite, ...] = MODERN_BROWSER_OFFER,
    session_id: bytes = b"",
    ticket: bytes = b"",
    saved_session: Optional[SessionState] = None,
    offer_tickets: bool = True,
) -> HandshakeResult:
    """One TLS connection on the fast path; mirrors ``TLSClient.connect``.

    Returns the same :class:`HandshakeResult` (minus capture/record
    handles) the blocking exchange would, with the same RNG draws,
    cache side effects, counters, and error strings.
    """
    if (session_id or ticket) and saved_session is None:
        raise ValueError("resumption offers require the saved session state")
    result = HandshakeResult(ok=False, domain=server_name,
                             offered_session_id=session_id)
    try:
        _exchange(client, server, server_name, offer, session_id, ticket,
                  saved_session, offer_tickets, result)
    except (TLSError, DecodeError, ValueError) as exc:
        result.ok = False
        if not result.error:
            result.error = f"{type(exc).__name__}: {exc}"
    return result


def _exchange(
    client: TLSClient,
    server: TLSServer,
    server_name: str,
    offer: tuple[CipherSuite, ...],
    session_id: bytes,
    ticket: bytes,
    saved_session: Optional[SessionState],
    offer_tickets: bool,
    result: HandshakeResult,
) -> None:
    crng = client._rng
    result.client_random = crng.random_bytes(32)

    # -- server: ClientHello processing (decisions, no wire) ---------------
    config = server.config
    now = server._now()
    certificate, _private_key = config.certificate_for(server_name)
    if (
        config.strict_sni
        and server_name
        and not certificate.matches_hostname(server_name)
    ):
        server.failed_handshakes += 1
        _FAIL_SNI.value += 1
        raise HandshakeFailure(f"unrecognized server name {server_name!r}",
                               AlertDescription.UNRECOGNIZED_NAME)
    suite = select_suite(
        list(offer), config.supported_suites, config.server_cipher_preference
    )
    if suite is None:
        server.failed_handshakes += 1
        _FAIL_NO_CIPHER.value += 1
        raise HandshakeFailure("no mutually supported cipher suite")

    srng = server._rng
    result.server_random = srng.random_bytes(32)
    session, via = server.resume_lookup(ticket, session_id, now)
    if session is not None:
        _abbreviated(client, server, session, via, session_id, ticket,
                     saved_session, offer_tickets, now, result)
    else:
        _full(client, server, suite, certificate, server_name, ticket,
              offer_tickets, now, result)


def _abbreviated(
    client: TLSClient,
    server: TLSServer,
    session: SessionState,
    via: str,
    offered_session_id: bytes,
    ticket: bytes,
    saved_session: Optional[SessionState],
    offer_tickets: bool,
    now: float,
    result: HandshakeResult,
) -> None:
    config = server.config
    policy = config.ticket_policy
    client_offers_tickets = bool(ticket) or offer_tickets
    reissue = (
        via == "ticket"
        and config.stek_store is not None
        and policy.reissue_on_resume
        and client_offers_tickets
    )
    if via == "session_id":
        new_session_id = offered_session_id
    elif config.issue_session_ids:
        new_session_id = server._rng.random_bytes(SESSION_ID_LENGTH)
    else:
        new_session_id = b""
    fresh_ticket: Optional[bytes] = None
    if reissue:
        assert config.stek_store is not None
        fresh_ticket = config.stek_store.issue(session, server._rng, now=now)

    # Finished exchange: both sides hold the same master secret by
    # construction (the ticket/cache state came from the session the
    # client saved), so verification succeeds — effects only.
    kex_name = _KEX_NAME[session.cipher_suite.kex]
    server.resumptions += 1
    _SERVER_HS[("abbreviated", kex_name)].value += 1

    result.cipher_suite = session.cipher_suite
    result.session_id = new_session_id
    result.server_supports_tickets = reissue
    if fresh_ticket is not None:
        result.new_ticket = NewSessionTicket(
            lifetime_hint_seconds=policy.lifetime_hint_seconds,
            ticket=fresh_ticket,
        )
    result.ok = True
    result.resumed = True
    result.resumed_via = "ticket" if ticket else "session_id"
    _CLIENT_HS[("abbreviated", kex_name)].value += 1
    result.session = saved_session


def _full(
    client: TLSClient,
    server: TLSServer,
    suite: CipherSuite,
    certificate,
    server_name: str,
    ticket: bytes,
    offer_tickets: bool,
    now: float,
    result: HandshakeResult,
) -> None:
    config = server.config
    srng = server._rng
    will_issue_ticket = (
        config.stek_store is not None and (bool(ticket) or offer_tickets)
    )
    new_session_id = (
        srng.random_bytes(SESSION_ID_LENGTH) if config.issue_session_ids else b""
    )
    if suite.kex == KeyExchangeKind.DHE:
        keypair = server.kex_cache.get_dh(config.dh_group, srng, now)
        server_kex_public = dh.int_to_group_bytes(config.dh_group, keypair.public)
    elif suite.kex == KeyExchangeKind.ECDHE:
        keypair = server.kex_cache.get_ec(config.curve, srng, now)
        server_kex_public = ec.encode_point(config.curve, keypair.public)
    else:
        server_kex_public = b""

    # -- client: certificate + key exchange --------------------------------
    result.certificate = certificate
    if client.trust_store is not None:
        validation = client.trust_store.validate(
            certificate, server_name or None, client._now()
        )
        result.certificate_trusted = bool(validation)
        result.certificate_error = validation.reason
    result.server_kex_kind = suite.kex
    if suite.kex == KeyExchangeKind.RSA:
        premaster = client._rng.random_bytes(48)
        if int.from_bytes(premaster, "big") >= certificate.public_key.n:
            raise HandshakeFailure("server RSA key too small for premaster")
    elif suite.kex == KeyExchangeKind.DHE:
        if not 1 < keypair.public < config.dh_group.prime - 1:
            # The blocking client validates through a "negotiated" group
            # built from the wire parameters; replicate its message.
            raise dh.InvalidPublicValue("public value out of range for negotiated")
        if client.reuse_client_ephemerals:
            if config.dh_group.prime not in client._dh_keypairs:
                client._dh_keypairs[config.dh_group.prime] = dh.generate_keypair(
                    config.dh_group, client._rng
                )
        else:
            # generate_keypair's only draw; the pow() result is unobserved.
            client._rng.randrange(2, config.dh_group.prime - 1)
        result.server_kex_public = server_kex_public
    elif suite.kex == KeyExchangeKind.ECDHE:
        if client.reuse_client_ephemerals:
            if config.curve.name not in client._ec_keypairs:
                client._ec_keypairs[config.curve.name] = ec.generate_keypair(
                    config.curve, client._rng
                )
        else:
            client._rng.randrange(1, config.curve.n)
        result.server_kex_public = server_kex_public

    # -- server: session establishment + ticket issuance -------------------
    session = SessionState(
        master_secret=PLACEHOLDER_MASTER,
        cipher_suite=suite,
        version=ProtocolVersion.TLS12,
        created_at=now,
        domain=server_name,
    )
    if config.session_cache is not None and new_session_id:
        config.session_cache.store(new_session_id, session, now)
    new_ticket: Optional[bytes] = None
    if will_issue_ticket:
        assert config.stek_store is not None
        new_ticket = config.stek_store.issue(session, srng, now=now)
    kex_name = _KEX_NAME[suite.kex]
    server.full_handshakes += 1
    _SERVER_HS[("full", kex_name)].value += 1

    # -- client: record the outcome ----------------------------------------
    result.cipher_suite = suite
    result.session_id = new_session_id
    result.server_supports_tickets = will_issue_ticket
    if new_ticket is not None:
        result.new_ticket = NewSessionTicket(
            lifetime_hint_seconds=config.ticket_policy.lifetime_hint_seconds,
            ticket=new_ticket,
        )
    result.ok = True
    _CLIENT_HS[("full", kex_name)].value += 1
    result.session = session


__all__ = ["fast_handshake", "PLACEHOLDER_MASTER"]
