"""Server-side key exchange: (EC)DHE parameter generation, signing, reuse.

RFC 5246 says servers *should* generate a fresh Diffie-Hellman value
per handshake, but real stacks cached them for performance (OpenSSL's
``SSL_OP_SINGLE_DH_USE`` was off by default until CVE-2016-0701).
:class:`EphemeralKeyCache` models the reuse policies the paper
measures: fresh per handshake, rotate after a time threshold, or keep
one value for the whole process lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Union

from ..crypto import dh, ec
from ..crypto.rng import DeterministicRandom
from ..crypto.rsa import RSAPrivateKey, RSAPublicKey
from .messages import ServerKeyExchangeDHE, ServerKeyExchangeECDHE


class ReuseMode(Enum):
    """How a server manages its ephemeral key-exchange value."""

    FRESH = "fresh"              # new value every handshake (RFC-compliant)
    TIMED = "timed"              # reuse until older than a threshold
    PROCESS_LIFETIME = "process" # reuse until the process restarts


@dataclass(frozen=True)
class KexReusePolicy:
    """An ephemeral-value reuse policy.

    ``lifetime_seconds`` only applies to :attr:`ReuseMode.TIMED`.
    """

    mode: ReuseMode = ReuseMode.FRESH
    lifetime_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.mode is ReuseMode.TIMED and self.lifetime_seconds <= 0:
            raise ValueError("TIMED reuse needs a positive lifetime")


KeyPair = Union[dh.DHKeyPair, ec.ECKeyPair]


class EphemeralKeyCache:
    """Caches server (EC)DHE keypairs according to a reuse policy.

    Finite-field and elliptic-curve values are cached in independent
    slots (real stacks cache ``DH`` and ``ECDH`` state separately), so a
    scanner alternating DHE-only and ECDHE-only scans observes each
    family's reuse behavior without cross-eviction.

    The cache object itself may be *shared* between server processes —
    that is how hosting providers in the simulation end up presenting
    one Diffie-Hellman value across dozens of domains (paper §5.3).
    """

    def __init__(
        self,
        policy: KexReusePolicy,
        ec_policy: Optional[KexReusePolicy] = None,
    ) -> None:
        # Real servers configure DH and ECDH reuse independently (a
        # stack may pin one DHE value for weeks while generating fresh
        # ECDHE scalars); ``ec_policy`` defaults to ``policy``.
        self.dh_policy = policy
        self.ec_policy = ec_policy if ec_policy is not None else policy
        self._cached_dh: Optional[dh.DHKeyPair] = None
        self._dh_generated_at: float = float("-inf")
        self._cached_ec: Optional[ec.ECKeyPair] = None
        self._ec_generated_at: float = float("-inf")
        self.generations = 0

    @property
    def policy(self) -> KexReusePolicy:
        """The finite-field policy (kept for backward compatibility)."""
        return self.dh_policy

    @staticmethod
    def _stale(policy: KexReusePolicy, cached, generated_at: float, now: float) -> bool:
        if cached is None:
            return True
        if policy.mode is ReuseMode.FRESH:
            return True
        if policy.mode is ReuseMode.TIMED:
            return now - generated_at >= policy.lifetime_seconds
        return False  # PROCESS_LIFETIME: only restart() invalidates

    def get_dh(self, group: dh.DHGroup, rng: DeterministicRandom, now: float) -> dh.DHKeyPair:
        """Return the cached or a fresh finite-field keypair."""
        if (
            self._stale(self.dh_policy, self._cached_dh, self._dh_generated_at, now)
            or self._cached_dh.group is not group
        ):
            self._cached_dh = dh.generate_keypair(group, rng)
            self._dh_generated_at = now
            self.generations += 1
        return self._cached_dh

    def get_ec(self, curve: ec.Curve, rng: DeterministicRandom, now: float) -> ec.ECKeyPair:
        """Return the cached or a fresh elliptic-curve keypair."""
        if (
            self._stale(self.ec_policy, self._cached_ec, self._ec_generated_at, now)
            or self._cached_ec.curve is not curve
        ):
            self._cached_ec = ec.generate_keypair(curve, rng)
            self._ec_generated_at = now
            self.generations += 1
        return self._cached_ec

    def restart(self) -> None:
        """Drop the cached values (models a server process restart)."""
        self._cached_dh = None
        self._cached_ec = None
        self._dh_generated_at = float("-inf")
        self._ec_generated_at = float("-inf")

    @property
    def current_dh(self) -> Optional[dh.DHKeyPair]:
        """The live DHE secret — what a memory compromise leaks."""
        return self._cached_dh

    @property
    def current_ec(self) -> Optional[ec.ECKeyPair]:
        """The live ECDHE secret — what a memory compromise leaks."""
        return self._cached_ec


def _signed_blob(client_random: bytes, server_random: bytes, params: bytes) -> bytes:
    # RFC 5246 §7.4.3: the signature covers both randoms and the params.
    return client_random + server_random + params


def build_dhe_kex(
    keypair: dh.DHKeyPair,
    signing_key: RSAPrivateKey,
    client_random: bytes,
    server_random: bytes,
) -> ServerKeyExchangeDHE:
    """Construct a signed DHE ServerKeyExchange message."""
    message = ServerKeyExchangeDHE(
        dh_p=keypair.group.prime,
        dh_g=keypair.group.generator,
        dh_public=keypair.public,
        signature=b"",
    )
    blob = _signed_blob(client_random, server_random, message.params_bytes())
    signature = signing_key.sign(blob)
    sig_bytes = signature.to_bytes((signing_key.n.bit_length() + 7) // 8, "big")
    return ServerKeyExchangeDHE(
        dh_p=message.dh_p,
        dh_g=message.dh_g,
        dh_public=message.dh_public,
        signature=sig_bytes,
    )


def build_ecdhe_kex(
    keypair: ec.ECKeyPair,
    signing_key: RSAPrivateKey,
    client_random: bytes,
    server_random: bytes,
) -> ServerKeyExchangeECDHE:
    """Construct a signed ECDHE ServerKeyExchange message."""
    curve_id = ec.NAMED_CURVE_IDS[keypair.curve.name]
    point = ec.encode_point(keypair.curve, keypair.public)
    message = ServerKeyExchangeECDHE(named_curve=curve_id, point=point, signature=b"")
    blob = _signed_blob(client_random, server_random, message.params_bytes())
    signature = signing_key.sign(blob)
    sig_bytes = signature.to_bytes((signing_key.n.bit_length() + 7) // 8, "big")
    return ServerKeyExchangeECDHE(named_curve=curve_id, point=point, signature=sig_bytes)


def verify_kex_signature(
    message: Union[ServerKeyExchangeDHE, ServerKeyExchangeECDHE],
    server_key: RSAPublicKey,
    client_random: bytes,
    server_random: bytes,
) -> bool:
    """Client-side verification of the ServerKeyExchange signature."""
    blob = _signed_blob(client_random, server_random, message.params_bytes())
    return server_key.verify(blob, int.from_bytes(message.signature, "big"))


__all__ = [
    "ReuseMode",
    "KexReusePolicy",
    "EphemeralKeyCache",
    "build_dhe_kex",
    "build_ecdhe_kex",
    "verify_kex_signature",
]
