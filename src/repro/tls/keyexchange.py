"""Server-side key exchange: (EC)DHE parameter generation, signing, reuse.

RFC 5246 says servers *should* generate a fresh Diffie-Hellman value
per handshake, but real stacks cached them for performance (OpenSSL's
``SSL_OP_SINGLE_DH_USE`` was off by default until CVE-2016-0701).
:class:`EphemeralKeyCache` models the reuse policies the paper
measures: fresh per handshake, rotate after a time threshold, or keep
one value for the whole process lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Union

from ..crypto import dh, ec
from ..crypto.rng import DeterministicRandom
from ..obs.metrics import METRICS, register_process_cache
from ..crypto.rsa import RSAPrivateKey, RSAPublicKey
from .messages import ServerKeyExchangeDHE, ServerKeyExchangeECDHE


class ReuseMode(Enum):
    """How a server manages its ephemeral key-exchange value."""

    FRESH = "fresh"              # new value every handshake (RFC-compliant)
    TIMED = "timed"              # reuse until older than a threshold
    PROCESS_LIFETIME = "process" # reuse until the process restarts


@dataclass(frozen=True)
class KexReusePolicy:
    """An ephemeral-value reuse policy.

    ``lifetime_seconds`` only applies to :attr:`ReuseMode.TIMED`.
    """

    mode: ReuseMode = ReuseMode.FRESH
    lifetime_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.mode is ReuseMode.TIMED and self.lifetime_seconds <= 0:
            raise ValueError("TIMED reuse needs a positive lifetime")


KeyPair = Union[dh.DHKeyPair, ec.ECKeyPair]


class EphemeralKeyCache:
    """Caches server (EC)DHE keypairs according to a reuse policy.

    Finite-field and elliptic-curve values are cached in independent
    slots (real stacks cache ``DH`` and ``ECDH`` state separately), so a
    scanner alternating DHE-only and ECDHE-only scans observes each
    family's reuse behavior without cross-eviction.

    The cache object itself may be *shared* between server processes —
    that is how hosting providers in the simulation end up presenting
    one Diffie-Hellman value across dozens of domains (paper §5.3).
    """

    def __init__(
        self,
        policy: KexReusePolicy,
        ec_policy: Optional[KexReusePolicy] = None,
    ) -> None:
        # Real servers configure DH and ECDH reuse independently (a
        # stack may pin one DHE value for weeks while generating fresh
        # ECDHE scalars); ``ec_policy`` defaults to ``policy``.
        self.dh_policy = policy
        self.ec_policy = ec_policy if ec_policy is not None else policy
        self._cached_dh: Optional[dh.DHKeyPair] = None
        self._dh_generated_at: float = float("-inf")
        self._cached_ec: Optional[ec.ECKeyPair] = None
        self._ec_generated_at: float = float("-inf")
        self.generations = 0

    @property
    def policy(self) -> KexReusePolicy:
        """The finite-field policy (kept for backward compatibility)."""
        return self.dh_policy

    @staticmethod
    def _stale(policy: KexReusePolicy, cached, generated_at: float, now: float) -> bool:
        if cached is None:
            return True
        if policy.mode is ReuseMode.FRESH:
            return True
        if policy.mode is ReuseMode.TIMED:
            return now - generated_at >= policy.lifetime_seconds
        return False  # PROCESS_LIFETIME: only restart() invalidates

    def get_dh(self, group: dh.DHGroup, rng: DeterministicRandom, now: float) -> dh.DHKeyPair:
        """Return the cached or a fresh finite-field keypair."""
        if (
            self._stale(self.dh_policy, self._cached_dh, self._dh_generated_at, now)
            or self._cached_dh.group is not group
        ):
            self._cached_dh = dh.generate_keypair(group, rng)
            self._dh_generated_at = now
            self.generations += 1
        return self._cached_dh

    def get_ec(self, curve: ec.Curve, rng: DeterministicRandom, now: float) -> ec.ECKeyPair:
        """Return the cached or a fresh elliptic-curve keypair."""
        if (
            self._stale(self.ec_policy, self._cached_ec, self._ec_generated_at, now)
            or self._cached_ec.curve is not curve
        ):
            self._cached_ec = ec.generate_keypair(curve, rng)
            self._ec_generated_at = now
            self.generations += 1
        return self._cached_ec

    def restart(self) -> None:
        """Drop the cached values (models a server process restart)."""
        self._cached_dh = None
        self._cached_ec = None
        self._dh_generated_at = float("-inf")
        self._ec_generated_at = float("-inf")

    @property
    def current_dh(self) -> Optional[dh.DHKeyPair]:
        """The live DHE secret — what a memory compromise leaks."""
        return self._cached_dh

    @property
    def current_ec(self) -> Optional[ec.ECKeyPair]:
        """The live ECDHE secret — what a memory compromise leaks."""
        return self._cached_ec


def _signed_blob(client_random: bytes, server_random: bytes, params: bytes) -> bytes:
    # RFC 5246 §7.4.3: the signature covers both randoms and the params.
    return client_random + server_random + params


# Params encodings keyed by keypair *value*.  The signature itself can
# never be cached — it covers both per-handshake randoms — but the
# params half of the signed blob depends only on the ephemeral keypair,
# so under any reuse policy the encoding is computed once per
# EphemeralKeyCache epoch and shared by every handshake in it.
_PARAMS_CACHE: dict[tuple, bytes] = {}
_PARAMS_CACHE_MAX = 4096
register_process_cache(_PARAMS_CACHE.clear)

_PARAMS_HIT = METRICS.counter("tls.kex.params_cache.hit")
_PARAMS_MISS = METRICS.counter("tls.kex.params_cache.miss")


def _cached_params(key: tuple, build) -> bytes:
    params = _PARAMS_CACHE.get(key)
    if params is None:
        _PARAMS_MISS.value += 1
        params = build()
        if len(_PARAMS_CACHE) >= _PARAMS_CACHE_MAX:
            _PARAMS_CACHE.clear()
        _PARAMS_CACHE[key] = params
    else:
        _PARAMS_HIT.value += 1
    return params


def build_dhe_kex(
    keypair: dh.DHKeyPair,
    signing_key: RSAPrivateKey,
    client_random: bytes,
    server_random: bytes,
) -> ServerKeyExchangeDHE:
    """Construct a signed DHE ServerKeyExchange message."""
    prime, generator = keypair.group.prime, keypair.group.generator
    params = _cached_params(
        ("dhe", prime, generator, keypair.public),
        lambda: ServerKeyExchangeDHE(
            dh_p=prime, dh_g=generator, dh_public=keypair.public, signature=b""
        ).params_bytes(),
    )
    signature = signing_key.sign(_signed_blob(client_random, server_random, params))
    message = ServerKeyExchangeDHE(
        dh_p=prime,
        dh_g=generator,
        dh_public=keypair.public,
        signature=signature.to_bytes(signing_key.byte_length, "big"),
    )
    message._params = params
    return message


def build_ecdhe_kex(
    keypair: ec.ECKeyPair,
    signing_key: RSAPrivateKey,
    client_random: bytes,
    server_random: bytes,
) -> ServerKeyExchangeECDHE:
    """Construct a signed ECDHE ServerKeyExchange message."""
    curve_id = ec.NAMED_CURVE_IDS[keypair.curve.name]
    cache_key = ("ecdhe", keypair.curve.name, keypair.public)
    cached = _PARAMS_CACHE.get(cache_key)
    if cached is None:
        point = ec.encode_point(keypair.curve, keypair.public)
        params = _cached_params(
            cache_key,
            ServerKeyExchangeECDHE(
                named_curve=curve_id, point=point, signature=b""
            ).params_bytes,
        )
    else:
        _PARAMS_HIT.value += 1
        params = cached
        # Recover the point encoding from the cached params rather than
        # re-encoding: params = curve_type(1) + named_curve(2) + vec8.
        point = params[4:]
    signature = signing_key.sign(_signed_blob(client_random, server_random, params))
    message = ServerKeyExchangeECDHE(
        named_curve=curve_id,
        point=point,
        signature=signature.to_bytes(signing_key.byte_length, "big"),
    )
    message._params = params
    return message


def verify_kex_signature(
    message: Union[ServerKeyExchangeDHE, ServerKeyExchangeECDHE],
    server_key: RSAPublicKey,
    client_random: bytes,
    server_random: bytes,
) -> bool:
    """Client-side verification of the ServerKeyExchange signature."""
    blob = _signed_blob(client_random, server_random, message.params_bytes())
    return server_key.verify(blob, int.from_bytes(message.signature, "big"))


__all__ = [
    "ReuseMode",
    "KexReusePolicy",
    "EphemeralKeyCache",
    "build_dhe_kex",
    "build_ecdhe_kex",
    "verify_kex_signature",
]
