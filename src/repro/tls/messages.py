"""TLS handshake message structures and their wire codecs (RFC 5246 §7.4).

Every message serializes to and parses from real handshake framing
(1-byte type, 3-byte length, body).  Certificates travel as opaque
byte strings at this layer — the X.509 model in :mod:`repro.x509`
interprets them — so the dependency points the same way as in real
stacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .constants import (
    HandshakeType,
    ProtocolVersion,
    RANDOM_LENGTH,
    VERIFY_DATA_LENGTH,
)
from .ciphers import CipherSuite, SUITES_BY_CODE
from .extensions import Extension, decode_extensions, encode_extensions
from .wire import ByteReader, ByteWriter, DecodeError


@dataclass
class ClientHello:
    """ClientHello (RFC 5246 §7.4.1.2)."""

    version: ProtocolVersion
    random: bytes
    session_id: bytes
    cipher_suites: list[CipherSuite]
    extensions: list[Extension] = field(default_factory=list)
    compression_methods: bytes = b"\x00"
    # Suites offered with codepoints we do not implement are preserved
    # so negotiation statistics remain faithful.
    unknown_cipher_codes: list[int] = field(default_factory=list)

    handshake_type = HandshakeType.CLIENT_HELLO

    def serialize_body(self) -> bytes:
        if len(self.random) != RANDOM_LENGTH:
            raise ValueError("client random must be 32 bytes")
        writer = ByteWriter()
        writer.u16(self.version)
        writer.raw(self.random)
        writer.vec8(self.session_id)
        suites = ByteWriter()
        for suite in self.cipher_suites:
            suites.u16(suite.code)
        for code in self.unknown_cipher_codes:
            suites.u16(code)
        writer.vec16(suites.getvalue())
        writer.vec8(self.compression_methods)
        writer.raw(encode_extensions(self.extensions))
        return writer.getvalue()

    @classmethod
    def parse_body(cls, body: bytes) -> "ClientHello":
        reader = ByteReader(body)
        version = ProtocolVersion(reader.u16())
        random = reader.raw(RANDOM_LENGTH)
        session_id = reader.vec8()
        if len(session_id) > 32:
            raise DecodeError("session id longer than 32 bytes")
        suite_block = ByteReader(reader.vec16())
        suites: list[CipherSuite] = []
        unknown: list[int] = []
        while suite_block.remaining:
            code = suite_block.u16()
            suite = SUITES_BY_CODE.get(code)
            if suite is None:
                unknown.append(code)
            else:
                suites.append(suite)
        compression = reader.vec8()
        extensions = decode_extensions(reader)
        reader.expect_end()
        return cls(
            version=version,
            random=random,
            session_id=session_id,
            cipher_suites=suites,
            extensions=extensions,
            compression_methods=compression,
            unknown_cipher_codes=unknown,
        )


@dataclass
class ServerHello:
    """ServerHello (RFC 5246 §7.4.1.3)."""

    version: ProtocolVersion
    random: bytes
    session_id: bytes
    cipher_suite: CipherSuite
    extensions: list[Extension] = field(default_factory=list)
    compression_method: int = 0

    handshake_type = HandshakeType.SERVER_HELLO

    def serialize_body(self) -> bytes:
        writer = ByteWriter()
        writer.u16(self.version)
        writer.raw(self.random)
        writer.vec8(self.session_id)
        writer.u16(self.cipher_suite.code)
        writer.u8(self.compression_method)
        writer.raw(encode_extensions(self.extensions))
        return writer.getvalue()

    @classmethod
    def parse_body(cls, body: bytes) -> "ServerHello":
        reader = ByteReader(body)
        version = ProtocolVersion(reader.u16())
        random = reader.raw(RANDOM_LENGTH)
        session_id = reader.vec8()
        code = reader.u16()
        suite = SUITES_BY_CODE.get(code)
        if suite is None:
            raise DecodeError(f"server selected unknown cipher suite {code:#06x}")
        compression = reader.u8()
        extensions = decode_extensions(reader)
        reader.expect_end()
        return cls(
            version=version,
            random=random,
            session_id=session_id,
            cipher_suite=suite,
            extensions=extensions,
            compression_method=compression,
        )


@dataclass
class Certificate:
    """Certificate chain message; entries are opaque DER-like blobs."""

    chain: list[bytes]

    handshake_type = HandshakeType.CERTIFICATE

    def serialize_body(self) -> bytes:
        inner = ByteWriter()
        for cert in self.chain:
            inner.vec24(cert)
        return ByteWriter().vec24(inner.getvalue()).getvalue()

    @classmethod
    def parse_body(cls, body: bytes) -> "Certificate":
        reader = ByteReader(body)
        inner = ByteReader(reader.vec24())
        reader.expect_end()
        chain = []
        while inner.remaining:
            chain.append(inner.vec24())
        return cls(chain=chain)


@dataclass
class ServerKeyExchangeDHE:
    """ServerKeyExchange for DHE (RFC 5246 §7.4.3): p, g, Ys + signature."""

    dh_p: int
    dh_g: int
    dh_public: int
    signature: bytes
    # Memoized params encoding — an ephemeral-reusing server re-sends
    # identical ServerDHParams for many handshakes, so builders stamp
    # the cached encoding rather than re-serializing three bignums.
    # init=False keeps dataclasses.replace() from carrying a stale memo
    # onto a field-modified copy.
    _params: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)

    handshake_type = HandshakeType.SERVER_KEY_EXCHANGE
    kex_name = "dhe"

    def params_bytes(self) -> bytes:
        """The ServerDHParams that the signature covers."""
        if self._params is None:
            writer = ByteWriter()
            writer.vec16(_int_bytes(self.dh_p))
            writer.vec16(_int_bytes(self.dh_g))
            writer.vec16(_int_bytes(self.dh_public))
            self._params = writer.getvalue()
        return self._params

    def serialize_body(self) -> bytes:
        return self.params_bytes() + ByteWriter().vec16(self.signature).getvalue()

    @classmethod
    def parse_body(cls, body: bytes) -> "ServerKeyExchangeDHE":
        reader = ByteReader(body)
        dh_p = int.from_bytes(reader.vec16(), "big")
        dh_g = int.from_bytes(reader.vec16(), "big")
        dh_public = int.from_bytes(reader.vec16(), "big")
        signature = reader.vec16()
        reader.expect_end()
        return cls(dh_p=dh_p, dh_g=dh_g, dh_public=dh_public, signature=signature)


@dataclass
class ServerKeyExchangeECDHE:
    """ServerKeyExchange for ECDHE (RFC 4492 §5.4): named curve + point."""

    named_curve: int
    point: bytes  # uncompressed SEC1 encoding
    signature: bytes
    _params: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)

    handshake_type = HandshakeType.SERVER_KEY_EXCHANGE
    kex_name = "ecdhe"
    CURVE_TYPE_NAMED = 3

    def params_bytes(self) -> bytes:
        if self._params is None:
            writer = ByteWriter()
            writer.u8(self.CURVE_TYPE_NAMED)
            writer.u16(self.named_curve)
            writer.vec8(self.point)
            self._params = writer.getvalue()
        return self._params

    def serialize_body(self) -> bytes:
        return self.params_bytes() + ByteWriter().vec16(self.signature).getvalue()

    @classmethod
    def parse_body(cls, body: bytes) -> "ServerKeyExchangeECDHE":
        reader = ByteReader(body)
        curve_type = reader.u8()
        if curve_type != cls.CURVE_TYPE_NAMED:
            raise DecodeError("only named curves are supported")
        named_curve = reader.u16()
        point = reader.vec8()
        signature = reader.vec16()
        reader.expect_end()
        return cls(named_curve=named_curve, point=point, signature=signature)


@dataclass
class ServerHelloDone:
    """Empty ServerHelloDone marker."""

    handshake_type = HandshakeType.SERVER_HELLO_DONE

    def serialize_body(self) -> bytes:
        return b""

    @classmethod
    def parse_body(cls, body: bytes) -> "ServerHelloDone":
        if body:
            raise DecodeError("ServerHelloDone must be empty")
        return cls()


@dataclass
class ClientKeyExchange:
    """ClientKeyExchange; payload interpretation depends on the suite."""

    exchange_data: bytes

    handshake_type = HandshakeType.CLIENT_KEY_EXCHANGE

    def serialize_body(self) -> bytes:
        return ByteWriter().vec16(self.exchange_data).getvalue()

    @classmethod
    def parse_body(cls, body: bytes) -> "ClientKeyExchange":
        reader = ByteReader(body)
        data = reader.vec16()
        reader.expect_end()
        return cls(exchange_data=data)


@dataclass
class NewSessionTicket:
    """NewSessionTicket (RFC 5077 §3.3): lifetime hint + opaque ticket."""

    lifetime_hint_seconds: int
    ticket: bytes

    handshake_type = HandshakeType.NEW_SESSION_TICKET

    def serialize_body(self) -> bytes:
        return ByteWriter().u32(self.lifetime_hint_seconds).vec16(self.ticket).getvalue()

    @classmethod
    def parse_body(cls, body: bytes) -> "NewSessionTicket":
        reader = ByteReader(body)
        hint = reader.u32()
        ticket = reader.vec16()
        reader.expect_end()
        return cls(lifetime_hint_seconds=hint, ticket=ticket)


@dataclass
class Finished:
    """Finished (RFC 5246 §7.4.9): 12-byte verify_data."""

    verify_data: bytes

    handshake_type = HandshakeType.FINISHED

    def serialize_body(self) -> bytes:
        if len(self.verify_data) != VERIFY_DATA_LENGTH:
            raise ValueError("verify_data must be 12 bytes")
        return self.verify_data

    @classmethod
    def parse_body(cls, body: bytes) -> "Finished":
        if len(body) != VERIFY_DATA_LENGTH:
            raise DecodeError("Finished body must be 12 bytes")
        return cls(verify_data=body)


HandshakeMessage = Union[
    ClientHello,
    ServerHello,
    Certificate,
    ServerKeyExchangeDHE,
    ServerKeyExchangeECDHE,
    ServerHelloDone,
    ClientKeyExchange,
    NewSessionTicket,
    Finished,
]


def _int_bytes(value: int) -> bytes:
    return value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")


def serialize_handshake(message: HandshakeMessage) -> bytes:
    """Frame a handshake message: type(1) + length(3) + body."""
    body = message.serialize_body()
    return ByteWriter().u8(message.handshake_type).u24(len(body)).raw(body).getvalue()


def parse_handshake(
    data: bytes, kex_hint: Optional[str] = None
) -> tuple[HandshakeMessage, bytes]:
    """Parse one framed handshake message; returns (message, remainder).

    ``kex_hint`` disambiguates ServerKeyExchange, whose body layout
    depends on the negotiated suite ("dhe" or "ecdhe").
    """
    reader = ByteReader(data)
    msg_type = reader.u8()
    body = reader.vec24()
    remainder = reader.rest()
    parsers = {
        HandshakeType.CLIENT_HELLO: ClientHello.parse_body,
        HandshakeType.SERVER_HELLO: ServerHello.parse_body,
        HandshakeType.CERTIFICATE: Certificate.parse_body,
        HandshakeType.SERVER_HELLO_DONE: ServerHelloDone.parse_body,
        HandshakeType.CLIENT_KEY_EXCHANGE: ClientKeyExchange.parse_body,
        HandshakeType.NEW_SESSION_TICKET: NewSessionTicket.parse_body,
        HandshakeType.FINISHED: Finished.parse_body,
    }
    if msg_type == HandshakeType.SERVER_KEY_EXCHANGE:
        if kex_hint == "dhe":
            return ServerKeyExchangeDHE.parse_body(body), remainder
        if kex_hint == "ecdhe":
            return ServerKeyExchangeECDHE.parse_body(body), remainder
        raise DecodeError("ServerKeyExchange requires a kex hint")
    try:
        parser = parsers[HandshakeType(msg_type)]
    except (ValueError, KeyError) as exc:
        raise DecodeError(f"unsupported handshake type {msg_type}") from exc
    return parser(body), remainder


__all__ = [
    "ClientHello",
    "ServerHello",
    "Certificate",
    "ServerKeyExchangeDHE",
    "ServerKeyExchangeECDHE",
    "ServerHelloDone",
    "ClientKeyExchange",
    "NewSessionTicket",
    "Finished",
    "HandshakeMessage",
    "serialize_handshake",
    "parse_handshake",
]
