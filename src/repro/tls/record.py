"""TLS record layer: framing and application-data protection.

Handshake flights travel in cleartext handshake records; application
data is protected with the connection keys derived from the session
master secret, using the construction the negotiated suite implies:

* ``*_CBC_*`` suites — TLS 1.2's MAC-then-encrypt CBC with explicit
  per-record IVs (:class:`CBCRecordCipher`);
* GCM suites — an AES-CTR + HMAC stand-in for AES-GCM
  (:class:`RecordCipher`; same key schedule and nonce discipline, the
  one documented substitution at this layer).

Either way the measurement-relevant property holds exactly: recorded
application data is unreadable without the session keys and
recoverable *with* them — the nation-state module decrypts captured
records offline from recovered master secrets.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Optional

from ..crypto.mac import hmac_sha256, constant_time_equal
from ..crypto.modes import PaddingError, cbc_decrypt, cbc_encrypt, ctr_xor
from .ciphers import CipherSuite
from .constants import ContentType, ProtocolVersion
from .session import ConnectionKeys
from .wire import ByteReader, ByteWriter, DecodeError

MAX_FRAGMENT_LENGTH = 1 << 14


@dataclass(frozen=True)
class TLSRecord:
    """One record-layer frame."""

    content_type: ContentType
    version: ProtocolVersion
    payload: bytes

    def serialize(self) -> bytes:
        if len(self.payload) > MAX_FRAGMENT_LENGTH + 2048:
            raise ValueError("record payload too large")
        return (
            ByteWriter()
            .u8(self.content_type)
            .u16(self.version)
            .vec16(self.payload)
            .getvalue()
        )


def serialize_records(records: list[TLSRecord]) -> bytes:
    return b"".join(record.serialize() for record in records)


def parse_records(data: bytes) -> list[TLSRecord]:
    """Parse a byte stream into records (strict: no trailing bytes)."""
    reader = ByteReader(data)
    records = []
    while reader.remaining:
        try:
            content_type = ContentType(reader.u8())
        except ValueError as exc:
            raise DecodeError("unknown record content type") from exc
        version = ProtocolVersion(reader.u16())
        payload = reader.vec16()
        records.append(TLSRecord(content_type=content_type, version=version, payload=payload))
    return records


def handshake_record(payload: bytes, version: ProtocolVersion = ProtocolVersion.TLS12) -> TLSRecord:
    return TLSRecord(ContentType.HANDSHAKE, version, payload)


class RecordCipher:
    """Directional application-data protection for one connection.

    Each record is encrypted with AES-CTR under the direction's write
    key; the nonce mixes the write IV with the record sequence number,
    and an HMAC-SHA-256 tag (truncated to 16 bytes) authenticates the
    ciphertext.
    """

    TAG_LENGTH = 16

    def __init__(self, keys: ConnectionKeys, is_client: bool) -> None:
        if is_client:
            self._write_key, self._write_iv = keys.client_write_key, keys.client_write_iv
            self._write_mac = keys.client_mac_key
            self._read_key, self._read_iv = keys.server_write_key, keys.server_write_iv
            self._read_mac = keys.server_mac_key
        else:
            self._write_key, self._write_iv = keys.server_write_key, keys.server_write_iv
            self._write_mac = keys.server_mac_key
            self._read_key, self._read_iv = keys.client_write_key, keys.client_write_iv
            self._read_mac = keys.client_mac_key
        self._write_seq = 0
        self._read_seq = 0

    @staticmethod
    def _nonce(iv: bytes, seq: int) -> bytes:
        value = int.from_bytes(iv, "big") ^ seq
        return value.to_bytes(16, "big")

    def protect(self, plaintext: bytes) -> TLSRecord:
        """Encrypt + authenticate one application-data record."""
        nonce = self._nonce(self._write_iv, self._write_seq)
        ciphertext = ctr_xor(self._write_key, nonce, plaintext)
        tag = hmac_sha256(
            self._write_mac, self._write_seq.to_bytes(8, "big") + ciphertext
        )[: self.TAG_LENGTH]
        self._write_seq += 1
        return TLSRecord(
            ContentType.APPLICATION_DATA, ProtocolVersion.TLS12, ciphertext + tag
        )

    def unprotect(self, record: TLSRecord) -> bytes:
        """Verify and decrypt one application-data record."""
        if record.content_type is not ContentType.APPLICATION_DATA:
            raise DecodeError("not an application-data record")
        if len(record.payload) < self.TAG_LENGTH:
            raise DecodeError("record too short for its tag")
        ciphertext = record.payload[: -self.TAG_LENGTH]
        tag = record.payload[-self.TAG_LENGTH :]
        expected = hmac_sha256(
            self._read_mac, self._read_seq.to_bytes(8, "big") + ciphertext
        )[: self.TAG_LENGTH]
        if not constant_time_equal(tag, expected):
            raise DecodeError("bad record MAC")
        nonce = self._nonce(self._read_iv, self._read_seq)
        self._read_seq += 1
        return ctr_xor(self._read_key, nonce, ciphertext)


class CBCRecordCipher:
    """TLS 1.2 MAC-then-encrypt CBC protection (RFC 5246 §6.2.3.2).

    Used for the ``*_CBC_*`` suites: the record MAC (HMAC-SHA-256 here,
    where the historical suites used SHA-1 — a documented width
    substitution) covers the sequence number and plaintext; plaintext
    plus MAC are CBC-encrypted under a per-record explicit IV, which is
    prepended to the ciphertext exactly as TLS 1.2 does.

    The explicit IV is derived deterministically from the write IV and
    sequence number (real stacks draw it from their CSPRNG; determinism
    keeps simulations replayable and is unobservable to the analyses).
    """

    MAC_LENGTH = 32

    def __init__(self, keys: ConnectionKeys, is_client: bool) -> None:
        if is_client:
            self._write_key, self._write_iv = keys.client_write_key, keys.client_write_iv
            self._write_mac = keys.client_mac_key
            self._read_key, self._read_iv = keys.server_write_key, keys.server_write_iv
            self._read_mac = keys.server_mac_key
        else:
            self._write_key, self._write_iv = keys.server_write_key, keys.server_write_iv
            self._write_mac = keys.server_mac_key
            self._read_key, self._read_iv = keys.client_write_key, keys.client_write_iv
            self._read_mac = keys.client_mac_key
        self._write_seq = 0
        self._read_seq = 0

    @staticmethod
    def _explicit_iv(write_iv: bytes, seq: int) -> bytes:
        return hmac_sha256(write_iv, b"explicit-iv" + seq.to_bytes(8, "big"))[:16]

    @staticmethod
    def _mac_input(seq: int, plaintext: bytes) -> bytes:
        header = bytes([ContentType.APPLICATION_DATA]) + ProtocolVersion.TLS12.wire
        return seq.to_bytes(8, "big") + header + len(plaintext).to_bytes(2, "big") + plaintext

    def protect(self, plaintext: bytes) -> TLSRecord:
        mac = hmac_sha256(self._write_mac, self._mac_input(self._write_seq, plaintext))
        iv = self._explicit_iv(self._write_iv, self._write_seq)
        ciphertext = cbc_encrypt(self._write_key, iv, plaintext + mac)
        self._write_seq += 1
        return TLSRecord(
            ContentType.APPLICATION_DATA, ProtocolVersion.TLS12, iv + ciphertext
        )

    def unprotect(self, record: TLSRecord) -> bytes:
        if record.content_type is not ContentType.APPLICATION_DATA:
            raise DecodeError("not an application-data record")
        if len(record.payload) < 16 + 16:
            raise DecodeError("CBC record too short")
        iv, ciphertext = record.payload[:16], record.payload[16:]
        try:
            padded = cbc_decrypt(self._read_key, iv, ciphertext)
        except PaddingError as exc:
            raise DecodeError("bad record padding") from exc
        if len(padded) < self.MAC_LENGTH:
            raise DecodeError("CBC record shorter than its MAC")
        plaintext, mac = padded[: -self.MAC_LENGTH], padded[-self.MAC_LENGTH :]
        expected = hmac_sha256(self._read_mac, self._mac_input(self._read_seq, plaintext))
        if not constant_time_equal(mac, expected):
            raise DecodeError("bad record MAC")
        self._read_seq += 1
        return plaintext


def new_record_cipher(
    keys: ConnectionKeys, is_client: bool, suite: Optional[CipherSuite] = None
):
    """Pick the record protection for a negotiated suite.

    CBC suites get TLS 1.2's MAC-then-encrypt CBC construction; GCM
    (and unknown) suites get the CTR+HMAC stand-in documented above.
    """
    if suite is not None and "_CBC_" in suite.name:
        return CBCRecordCipher(keys, is_client)
    return RecordCipher(keys, is_client)


def decrypt_recorded_record(
    keys: ConnectionKeys,
    record: TLSRecord,
    sequence: int,
    from_client: bool,
    suite: Optional[CipherSuite] = None,
) -> bytes:
    """Offline decryption of a *captured* record given recovered keys.

    This is the attacker's code path: a passive observer who later
    recovers the session's master secret derives the connection keys
    and decrypts traffic in either direction.  ``suite`` selects the
    record protection the connection negotiated (CBC vs CTR/GCM).
    """
    if from_client:
        key, iv, mac = keys.client_write_key, keys.client_write_iv, keys.client_mac_key
    else:
        key, iv, mac = keys.server_write_key, keys.server_write_iv, keys.server_mac_key
    if suite is not None and "_CBC_" in suite.name:
        explicit_iv, ciphertext = record.payload[:16], record.payload[16:]
        try:
            padded = cbc_decrypt(key, explicit_iv, ciphertext)
        except PaddingError as exc:
            raise DecodeError("recovered keys do not decrypt this record") from exc
        if len(padded) < CBCRecordCipher.MAC_LENGTH:
            raise DecodeError("CBC record shorter than its MAC")
        plaintext = padded[: -CBCRecordCipher.MAC_LENGTH]
        tag = padded[-CBCRecordCipher.MAC_LENGTH :]
        expected = hmac_sha256(mac, CBCRecordCipher._mac_input(sequence, plaintext))
        if not constant_time_equal(tag, expected):
            raise DecodeError("recovered keys do not authenticate this record")
        return plaintext
    ciphertext = record.payload[: -RecordCipher.TAG_LENGTH]
    tag = record.payload[-RecordCipher.TAG_LENGTH :]
    expected = hmac_sha256(mac, sequence.to_bytes(8, "big") + ciphertext)[
        : RecordCipher.TAG_LENGTH
    ]
    if not constant_time_equal(tag, expected):
        raise DecodeError("recovered keys do not authenticate this record")
    nonce = RecordCipher._nonce(iv, sequence)
    return ctr_xor(key, nonce, ciphertext)


__all__ = [
    "TLSRecord",
    "MAX_FRAGMENT_LENGTH",
    "serialize_records",
    "parse_records",
    "handshake_record",
    "RecordCipher",
    "CBCRecordCipher",
    "new_record_cipher",
    "decrypt_recorded_record",
]
