"""The TLS 1.2 server state machine.

One :class:`TLSServer` models one server *process* (or one SSL
terminator worker): it owns an ephemeral-key cache, points at a session
cache and a STEK store (both of which may be shared with other servers
— that sharing is the paper's §5 subject), and serves whatever
certificate its operator configured.

The exchange API is synchronous and flight-oriented, matching how the
scanner drives connections:

    flight, conn = server.accept(client_hello_bytes)
    # full handshake:
    flight2 = server.finish_full(conn, client_flight_bytes)
    # abbreviated handshake:
    server.finish_abbreviated(conn, client_finished_bytes)
    # then, optionally:
    reply = server.handle_application_record(conn, record_bytes)

All handshake bytes are real serialized TLS records; Finished values
are PRF-derived from the running transcript, and resumption semantics
(RFC 5077 ticket-over-session-ID precedence, ticket reissue, cache
expiry) follow the behaviors the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..crypto import dh, ec
from ..crypto.mac import sha256, constant_time_equal
from ..crypto.prf import derive_master_secret, verify_data
from ..crypto.rng import DeterministicRandom
from ..crypto.rsa import RSAPrivateKey
from ..obs.metrics import METRICS
from ..x509 import X509Certificate
from .ciphers import CipherSuite, KeyExchangeKind, select_suite
from .constants import (
    AlertDescription,
    ExtensionType,
    HandshakeType,
    ProtocolVersion,
    SESSION_ID_LENGTH,
)
from .errors import HandshakeFailure
from .extensions import (
    decode_server_name,
    encode_session_ticket,
    find_extension,
    has_extension,
)
from .keyexchange import (
    EphemeralKeyCache,
    KexReusePolicy,
    build_dhe_kex,
    build_ecdhe_kex,
)
from .messages import (
    Certificate,
    ClientHello,
    ClientKeyExchange,
    Finished,
    NewSessionTicket,
    ServerHello,
    ServerHelloDone,
    parse_handshake,
    serialize_handshake,
)
from .record import RecordCipher, handshake_record, new_record_cipher, parse_records, serialize_records
from .session import SessionCache, SessionState, derive_connection_keys
from .ticket import STEKStore, TicketFormat
from .wire import DecodeError

# Per-server static flight parts.  ServerHelloDone is always the same
# four bytes, and the serialized Certificate message depends only on
# the certificate presented — both are recomputed per full handshake
# in a naive implementation, which a scan performs millions of times.
_SERVER_HELLO_DONE_BYTES = serialize_handshake(ServerHelloDone())
_CERT_MSG_CACHE: dict[X509Certificate, bytes] = {}
_CERT_MSG_CACHE_MAX = 8192


def _certificate_message_bytes(certificate: X509Certificate) -> bytes:
    encoded = _CERT_MSG_CACHE.get(certificate)
    if encoded is None:
        encoded = serialize_handshake(Certificate(chain=[certificate.serialize()]))
        if len(_CERT_MSG_CACHE) >= _CERT_MSG_CACHE_MAX:
            _CERT_MSG_CACHE.clear()
        _CERT_MSG_CACHE[certificate] = encoded
    return encoded


@dataclass
class TicketPolicy:
    """Session-ticket issuance and acceptance policy.

    ``lifetime_hint_seconds`` is the advertised hint (0 means
    "unspecified", which RFC 5077 leaves to client policy — 14,663 of
    the paper's domains did this).  ``accept_window_seconds`` is how
    long the server actually honors a ticket after issuance; the paper
    measures these independently because they routinely disagree.
    """

    lifetime_hint_seconds: int = 300
    accept_window_seconds: float = 300.0
    reissue_on_resume: bool = True
    ticket_format: TicketFormat = TicketFormat.RFC5077


@dataclass
class ServerConfig:
    """Operator-visible configuration of one TLS server."""

    certificate: X509Certificate
    private_key: RSAPrivateKey
    supported_suites: tuple[CipherSuite, ...]
    # Session-ID resumption: a server may issue IDs without caching
    # (Nginx's default), cache with a lifetime (Apache: 300 s), or not
    # issue at all.
    session_cache: Optional[SessionCache] = None
    issue_session_ids: bool = True
    # Ticket resumption: None disables the extension entirely.
    stek_store: Optional[STEKStore] = None
    ticket_policy: TicketPolicy = field(default_factory=TicketPolicy)
    # Key exchange parameters and reuse policy.
    dh_group: dh.DHGroup = dh.TEST_GROUP
    curve: ec.Curve = ec.P256
    kex_policy: KexReusePolicy = field(default_factory=KexReusePolicy)
    # Independent ECDHE reuse policy; None means "same as kex_policy".
    kex_policy_ec: Optional[KexReusePolicy] = None
    server_cipher_preference: bool = True
    # Whether this endpoint requires SNI to match its certificate.
    strict_sni: bool = False
    # SSL-terminator style virtual hosting: per-hostname certificates
    # tried before the default ``certificate``.  Keys may be exact names
    # or wildcard patterns; all domains still share this process's
    # session cache, STEK store, and ephemeral values — the paper's §5
    # cross-domain exposure.
    sni_certificates: dict[str, tuple[X509Certificate, RSAPrivateKey]] = field(
        default_factory=dict
    )

    def certificate_for(self, sni: str) -> tuple[X509Certificate, RSAPrivateKey]:
        """Select the certificate/key pair to present for an SNI value."""
        if sni:
            exact = self.sni_certificates.get(sni.lower())
            if exact is not None:
                return exact
            for cert, key in self.sni_certificates.values():
                if cert.matches_hostname(sni):
                    return cert, key
        return self.certificate, self.private_key


@dataclass
class ServerConnection:
    """Per-connection server state between flights."""

    client_hello: ClientHello
    server_random: bytes
    cipher_suite: CipherSuite
    session_id: bytes
    sni: str
    transcript: bytes
    resumed: bool
    certificate: Optional[X509Certificate] = None
    private_key: Optional[RSAPrivateKey] = None
    resumed_via: Optional[str] = None
    session: Optional[SessionState] = None
    kex_dh: Optional[dh.DHKeyPair] = None
    kex_ec: Optional[ec.ECKeyPair] = None
    will_issue_ticket: bool = False
    record_cipher: Optional[RecordCipher] = None
    completed: bool = False


class TLSServer:
    """A single TLS server process with configurable crypto shortcuts."""

    def __init__(
        self,
        config: ServerConfig,
        rng: DeterministicRandom,
        now_fn: Callable[[], float],
        kex_cache: Optional[EphemeralKeyCache] = None,
    ) -> None:
        self.config = config
        self._rng = rng
        self._now = now_fn
        # A shared cache models SSL terminators presenting one (EC)DHE
        # value across many server processes/domains (paper §5.3).
        self.kex_cache = kex_cache or EphemeralKeyCache(
            config.kex_policy, config.kex_policy_ec
        )
        # Counters used by tests and the hosting layer.
        self.full_handshakes = 0
        self.resumptions = 0
        self.failed_handshakes = 0

    # -- lifecycle -----------------------------------------------------

    def restart(self) -> None:
        """Simulate a process restart.

        Ephemeral KEX values are dropped, the in-memory session cache is
        cleared, and — if the STEK was randomly generated rather than
        loaded from a key file — the hosting layer is responsible for
        installing a fresh STEK (it owns rotation policy).
        """
        self.kex_cache.restart()
        if self.config.session_cache is not None:
            self.config.session_cache.clear()

    # -- handshake: first flight ----------------------------------------

    def accept(self, client_hello_bytes: bytes) -> tuple[bytes, ServerConnection]:
        """Process a ClientHello record; return our flight and the context.

        Raises :class:`HandshakeFailure` on negotiation failure (the
        scanner records these as handshake errors, like a fatal alert).
        """
        now = self._now()
        records = parse_records(client_hello_bytes)
        if len(records) != 1:
            raise HandshakeFailure("expected exactly one ClientHello record",
                                   AlertDescription.UNEXPECTED_MESSAGE)
        try:
            message, remainder = parse_handshake(records[0].payload)
        except DecodeError as exc:
            raise HandshakeFailure(str(exc), AlertDescription.DECODE_ERROR) from exc
        if remainder or not isinstance(message, ClientHello):
            raise HandshakeFailure("first message must be ClientHello",
                                   AlertDescription.UNEXPECTED_MESSAGE)
        client_hello = message
        if client_hello.version < ProtocolVersion.TLS10:
            raise HandshakeFailure("client version too old")

        sni = ""
        sni_data = find_extension(client_hello.extensions, ExtensionType.SERVER_NAME)
        if sni_data is not None:
            sni = decode_server_name(sni_data)
        certificate, private_key = self.config.certificate_for(sni)
        if self.config.strict_sni and sni and not certificate.matches_hostname(sni):
            self.failed_handshakes += 1
            METRICS.counter("tls.server.handshake_failure", reason="sni").inc()
            raise HandshakeFailure(f"unrecognized server name {sni!r}",
                                   AlertDescription.UNRECOGNIZED_NAME)

        suite = select_suite(
            client_hello.cipher_suites,
            self.config.supported_suites,
            self.config.server_cipher_preference,
        )
        if suite is None:
            self.failed_handshakes += 1
            METRICS.counter("tls.server.handshake_failure", reason="no_cipher").inc()
            raise HandshakeFailure("no mutually supported cipher suite")

        server_random = self._rng.random_bytes(32)
        transcript = serialize_handshake(client_hello)

        resumed_session, resumed_via = self._try_resume(client_hello, now)
        if resumed_session is not None:
            return self._accept_abbreviated(
                client_hello, resumed_session, resumed_via, server_random, transcript, now, sni
            )
        return self._accept_full(
            client_hello, suite, server_random, transcript, now, sni,
            certificate, private_key,
        )

    def _client_offers_tickets(self, client_hello: ClientHello) -> bool:
        return has_extension(client_hello.extensions, ExtensionType.SESSION_TICKET)

    def _try_resume(
        self, client_hello: ClientHello, now: float
    ) -> tuple[Optional[SessionState], Optional[str]]:
        ticket = find_extension(client_hello.extensions, ExtensionType.SESSION_TICKET)
        return self.resume_lookup(ticket or b"", client_hello.session_id, now)

    def resume_lookup(
        self, ticket: bytes, session_id: bytes, now: float
    ) -> tuple[Optional[SessionState], Optional[str]]:
        """RFC 5077 §3.4: a non-empty ticket takes precedence over the ID.

        Shared resumption decision: :meth:`accept` calls it with the
        decoded ClientHello offers, and the draw-identical fast path
        (:mod:`repro.tls.fastpath`) with the client's raw offers —
        both must see the same cache/STEK side effects and metrics.
        """
        if ticket and self.config.stek_store is not None:
            contents = self.config.stek_store.open(ticket)
            if contents is not None:
                window = self.config.ticket_policy.accept_window_seconds
                if now - contents.issued_at <= window:
                    METRICS.counter("tls.server.resumption_accepted", via="ticket").inc()
                    return contents.session, "ticket"
            METRICS.counter("tls.server.resumption_rejected", via="ticket").inc()
            return None, None  # bad/expired ticket: fall through to full handshake
        if session_id and self.config.session_cache is not None:
            session = self.config.session_cache.lookup(session_id, now)
            if session is not None:
                METRICS.counter(
                    "tls.server.resumption_accepted", via="session_id"
                ).inc()
                return session, "session_id"
            METRICS.counter("tls.server.resumption_rejected", via="session_id").inc()
        return None, None

    def _accept_abbreviated(
        self,
        client_hello: ClientHello,
        session: SessionState,
        resumed_via: str,
        server_random: bytes,
        transcript: bytes,
        now: float,
        sni: str,
    ) -> tuple[bytes, ServerConnection]:
        policy = self.config.ticket_policy
        reissue = (
            resumed_via == "ticket"
            and self.config.stek_store is not None
            and policy.reissue_on_resume
            and self._client_offers_tickets(client_hello)
        )
        extensions = []
        if reissue:
            extensions.append(encode_session_ticket(b""))
        # On session-ID resumption the server echoes the ID; on ticket
        # resumption OpenSSL-style stacks send a fresh (uncached) ID.
        if resumed_via == "session_id":
            session_id = client_hello.session_id
        elif self.config.issue_session_ids:
            session_id = self._rng.random_bytes(SESSION_ID_LENGTH)
        else:
            session_id = b""
        server_hello = ServerHello(
            version=ProtocolVersion.TLS12,
            random=server_random,
            session_id=session_id,
            cipher_suite=session.cipher_suite,
            extensions=extensions,
        )
        parts = [serialize_handshake(server_hello)]
        if reissue:
            assert self.config.stek_store is not None
            fresh = self.config.stek_store.issue(session, self._rng, now=now)
            parts.append(
                serialize_handshake(
                    NewSessionTicket(
                        lifetime_hint_seconds=policy.lifetime_hint_seconds, ticket=fresh
                    )
                )
            )
        transcript += b"".join(parts)
        finished = Finished(
            verify_data=verify_data(
                session.master_secret, b"server finished", sha256(transcript)
            )
        )
        finished_bytes = serialize_handshake(finished)
        parts.append(finished_bytes)
        transcript += finished_bytes

        conn = ServerConnection(
            client_hello=client_hello,
            server_random=server_random,
            cipher_suite=session.cipher_suite,
            session_id=session_id,
            sni=sni,
            transcript=transcript,
            resumed=True,
            resumed_via=resumed_via,
            session=session,
        )
        flight = serialize_records([handshake_record(b"".join(parts))])
        return flight, conn

    def _accept_full(
        self,
        client_hello: ClientHello,
        suite: CipherSuite,
        server_random: bytes,
        transcript: bytes,
        now: float,
        sni: str,
        certificate: X509Certificate,
        private_key: RSAPrivateKey,
    ) -> tuple[bytes, ServerConnection]:
        will_issue_ticket = (
            self.config.stek_store is not None
            and self._client_offers_tickets(client_hello)
        )
        extensions = []
        if will_issue_ticket:
            extensions.append(encode_session_ticket(b""))
        session_id = (
            self._rng.random_bytes(SESSION_ID_LENGTH)
            if self.config.issue_session_ids
            else b""
        )
        server_hello = ServerHello(
            version=ProtocolVersion.TLS12,
            random=server_random,
            session_id=session_id,
            cipher_suite=suite,
            extensions=extensions,
        )
        parts = [
            serialize_handshake(server_hello),
            _certificate_message_bytes(certificate),
        ]

        conn = ServerConnection(
            client_hello=client_hello,
            server_random=server_random,
            cipher_suite=suite,
            session_id=session_id,
            sni=sni,
            transcript=transcript,
            resumed=False,
            certificate=certificate,
            private_key=private_key,
            will_issue_ticket=will_issue_ticket,
        )
        if suite.kex == KeyExchangeKind.DHE:
            keypair = self.kex_cache.get_dh(self.config.dh_group, self._rng, now)
            conn.kex_dh = keypair
            parts.append(serialize_handshake(
                build_dhe_kex(keypair, private_key, client_hello.random, server_random)
            ))
        elif suite.kex == KeyExchangeKind.ECDHE:
            keypair = self.kex_cache.get_ec(self.config.curve, self._rng, now)
            conn.kex_ec = keypair
            parts.append(serialize_handshake(
                build_ecdhe_kex(keypair, private_key, client_hello.random, server_random)
            ))
        parts.append(_SERVER_HELLO_DONE_BYTES)
        payload = b"".join(parts)
        conn.transcript += payload
        flight = serialize_records([handshake_record(payload)])
        return flight, conn

    # -- handshake: second flight ----------------------------------------

    def finish_full(self, conn: ServerConnection, client_flight: bytes) -> bytes:
        """Process ClientKeyExchange + Finished; return NST? + Finished."""
        if conn.resumed or conn.completed:
            raise HandshakeFailure("connection not awaiting a full-handshake flight",
                                   AlertDescription.UNEXPECTED_MESSAGE)
        now = self._now()
        records = parse_records(client_flight)
        payload = b"".join(r.payload for r in records)
        try:
            cke, remainder = parse_handshake(payload)
        except DecodeError as exc:
            raise HandshakeFailure(str(exc), AlertDescription.DECODE_ERROR) from exc
        if not isinstance(cke, ClientKeyExchange):
            raise HandshakeFailure("expected ClientKeyExchange",
                                   AlertDescription.UNEXPECTED_MESSAGE)
        premaster = self._compute_premaster(conn, cke)
        master = derive_master_secret(
            premaster, conn.client_hello.random, conn.server_random
        )
        conn.transcript += serialize_handshake(cke)

        try:
            client_finished, remainder = parse_handshake(remainder)
        except DecodeError as exc:
            raise HandshakeFailure(str(exc), AlertDescription.DECODE_ERROR) from exc
        if remainder or not isinstance(client_finished, Finished):
            raise HandshakeFailure("expected Finished after ClientKeyExchange",
                                   AlertDescription.UNEXPECTED_MESSAGE)
        expected = verify_data(master, b"client finished", sha256(conn.transcript))
        if not constant_time_equal(client_finished.verify_data, expected):
            self.failed_handshakes += 1
            METRICS.counter(
                "tls.server.handshake_failure", reason="finished_verify"
            ).inc()
            raise HandshakeFailure("client Finished verification failed",
                                   AlertDescription.DECRYPT_ERROR)
        conn.transcript += serialize_handshake(client_finished)

        session = SessionState(
            master_secret=master,
            cipher_suite=conn.cipher_suite,
            version=ProtocolVersion.TLS12,
            created_at=now,
            domain=conn.sni,
        )
        conn.session = session

        if self.config.session_cache is not None and conn.session_id:
            self.config.session_cache.store(conn.session_id, session, now)

        parts = []
        if conn.will_issue_ticket:
            assert self.config.stek_store is not None
            ticket = self.config.stek_store.issue(session, self._rng, now=now)
            parts.append(
                serialize_handshake(
                    NewSessionTicket(
                        lifetime_hint_seconds=self.config.ticket_policy.lifetime_hint_seconds,
                        ticket=ticket,
                    )
                )
            )
        conn.transcript += b"".join(parts)
        finished = Finished(
            verify_data=verify_data(master, b"server finished", sha256(conn.transcript))
        )
        finished_bytes = serialize_handshake(finished)
        parts.append(finished_bytes)
        conn.transcript += finished_bytes
        conn.completed = True
        self.full_handshakes += 1
        METRICS.counter(
            "tls.server.handshake",
            kind="full",
            kex=conn.cipher_suite.kex.name.lower(),
        ).inc()

        keys = derive_connection_keys(session, conn.client_hello.random, conn.server_random)
        conn.record_cipher = new_record_cipher(keys, is_client=False, suite=conn.cipher_suite)

        return serialize_records([handshake_record(b"".join(parts))])

    def finish_abbreviated(self, conn: ServerConnection, client_finished_bytes: bytes) -> None:
        """Verify the client Finished that closes an abbreviated handshake."""
        if not conn.resumed or conn.completed or conn.session is None:
            raise HandshakeFailure("connection not awaiting an abbreviated Finished",
                                   AlertDescription.UNEXPECTED_MESSAGE)
        records = parse_records(client_finished_bytes)
        payload = b"".join(r.payload for r in records)
        try:
            message, remainder = parse_handshake(payload)
        except DecodeError as exc:
            raise HandshakeFailure(str(exc), AlertDescription.DECODE_ERROR) from exc
        if remainder or not isinstance(message, Finished):
            raise HandshakeFailure("expected Finished",
                                   AlertDescription.UNEXPECTED_MESSAGE)
        expected = verify_data(
            conn.session.master_secret, b"client finished", sha256(conn.transcript)
        )
        if not constant_time_equal(message.verify_data, expected):
            self.failed_handshakes += 1
            METRICS.counter(
                "tls.server.handshake_failure", reason="finished_verify"
            ).inc()
            raise HandshakeFailure("client Finished verification failed",
                                   AlertDescription.DECRYPT_ERROR)
        conn.transcript += serialize_handshake(message)
        conn.completed = True
        self.resumptions += 1
        METRICS.counter(
            "tls.server.handshake",
            kind="abbreviated",
            kex=conn.cipher_suite.kex.name.lower(),
        ).inc()
        keys = derive_connection_keys(
            conn.session, conn.client_hello.random, conn.server_random
        )
        conn.record_cipher = new_record_cipher(keys, is_client=False, suite=conn.cipher_suite)

    def _compute_premaster(self, conn: ServerConnection, cke: ClientKeyExchange) -> bytes:
        kex = conn.cipher_suite.kex
        if kex == KeyExchangeKind.DHE:
            assert conn.kex_dh is not None
            client_public = int.from_bytes(cke.exchange_data, "big")
            try:
                return conn.kex_dh.shared_secret_bytes(client_public)
            except dh.InvalidPublicValue as exc:
                raise HandshakeFailure(str(exc), AlertDescription.ILLEGAL_PARAMETER) from exc
        if kex == KeyExchangeKind.ECDHE:
            assert conn.kex_ec is not None
            try:
                point = ec.decode_point(conn.kex_ec.curve, cke.exchange_data)
                return conn.kex_ec.shared_secret_bytes(point)
            except (ValueError, ec.NotOnCurveError) as exc:
                raise HandshakeFailure(str(exc), AlertDescription.ILLEGAL_PARAMETER) from exc
        # Static RSA: the client encrypted the premaster to our public key.
        ciphertext = int.from_bytes(cke.exchange_data, "big")
        private_key = conn.private_key or self.config.private_key
        try:
            plain = private_key.decrypt_raw(ciphertext)
        except ValueError as exc:
            raise HandshakeFailure(str(exc), AlertDescription.DECODE_ERROR) from exc
        premaster = plain.to_bytes(48, "big")
        return premaster

    # -- application data -------------------------------------------------

    def handle_application_record(self, conn: ServerConnection, record_bytes: bytes) -> bytes:
        """Decrypt a request record and return an encrypted echo response.

        The simulated application protocol is a trivial HTTP-ish echo;
        its purpose is to give the passive-adversary model real
        ciphertext to capture and later decrypt.
        """
        if not conn.completed or conn.record_cipher is None:
            raise HandshakeFailure("handshake not complete",
                                   AlertDescription.UNEXPECTED_MESSAGE)
        records = parse_records(record_bytes)
        if len(records) != 1:
            raise HandshakeFailure("expected one application record",
                                   AlertDescription.UNEXPECTED_MESSAGE)
        request = conn.record_cipher.unprotect(records[0])
        body = b"HTTP/1.1 200 OK\r\nServer: repro\r\n\r\nechoed:" + request
        response = conn.record_cipher.protect(body)
        return serialize_records([response])


__all__ = ["TLSServer", "ServerConfig", "ServerConnection", "TicketPolicy"]
