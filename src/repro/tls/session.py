"""Session state, session caches, and connection key derivation.

A *session* is the resumable secret state (master secret + cipher
suite); a *connection* is one TLS exchange with its own randoms and
derived keys.  Session-ID resumption stores sessions server-side in a
:class:`SessionCache`; ticket resumption serializes them into the
ticket itself (:mod:`repro.tls.ticket`).

The cache object is deliberately shareable: pointing several simulated
servers (or several domains behind one SSL terminator) at the same
cache is exactly the cross-domain state sharing the paper measures in
§5.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..crypto.prf import derive_key_block
from .ciphers import CipherSuite
from .constants import ProtocolVersion


@dataclass(frozen=True)
class SessionState:
    """The resumable secret state of a TLS session."""

    master_secret: bytes
    cipher_suite: CipherSuite
    version: ProtocolVersion
    created_at: float  # simulation epoch seconds of the full handshake
    domain: str = ""   # SNI the session was established for (may be "")

    def __post_init__(self) -> None:
        if len(self.master_secret) != 48:
            raise ValueError("master secret must be 48 bytes")


@dataclass(frozen=True)
class ConnectionKeys:
    """Per-connection keys derived from the session master secret."""

    client_write_key: bytes
    server_write_key: bytes
    client_write_iv: bytes
    server_write_iv: bytes
    client_mac_key: bytes
    server_mac_key: bytes


def derive_connection_keys(
    session: SessionState, client_random: bytes, server_random: bytes
) -> ConnectionKeys:
    """RFC 5246 §6.3 key expansion for the negotiated suite."""
    suite = session.cipher_suite
    mac_len = suite.mac_key_bytes
    key_len = suite.key_bytes
    iv_len = 16
    block = derive_key_block(
        session.master_secret,
        client_random,
        server_random,
        2 * mac_len + 2 * key_len + 2 * iv_len,
    )
    offset = 0

    def take(n: int) -> bytes:
        nonlocal offset
        chunk = block[offset : offset + n]
        offset += n
        return chunk

    client_mac = take(mac_len)
    server_mac = take(mac_len)
    client_key = take(key_len)
    server_key = take(key_len)
    client_iv = take(iv_len)
    server_iv = take(iv_len)
    return ConnectionKeys(
        client_write_key=client_key,
        server_write_key=server_key,
        client_write_iv=client_iv,
        server_write_iv=server_iv,
        client_mac_key=client_mac,
        server_mac_key=server_mac,
    )


class SessionCache:
    """A server-side session-ID cache with a fixed entry lifetime.

    Mirrors the behavior the paper infers from popular servers: Apache
    defaults to 5 minutes, IIS to 10 hours, Google's infrastructure to
    over 24 hours.  Entries expire ``lifetime_seconds`` after insertion;
    an explicit ``capacity`` models bounded shared-memory caches (oldest
    entries are evicted first).
    """

    def __init__(self, lifetime_seconds: float, capacity: int = 100_000) -> None:
        if lifetime_seconds < 0:
            raise ValueError("lifetime must be non-negative")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.lifetime_seconds = lifetime_seconds
        self.capacity = capacity
        self._entries: dict[bytes, tuple[SessionState, float]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def store(self, session_id: bytes, session: SessionState, now: float) -> None:
        """Insert a session, evicting the oldest entry if at capacity."""
        if len(self._entries) >= self.capacity and session_id not in self._entries:
            oldest = min(self._entries, key=lambda k: self._entries[k][1])
            del self._entries[oldest]
        self._entries[session_id] = (session, now)

    def lookup(self, session_id: bytes, now: float) -> Optional[SessionState]:
        """Return the session if present and unexpired, else None."""
        entry = self._entries.get(session_id)
        if entry is None:
            self.misses += 1
            return None
        session, stored_at = entry
        if now - stored_at > self.lifetime_seconds:
            del self._entries[session_id]
            self.misses += 1
            return None
        self.hits += 1
        return session

    def expire(self, now: float) -> int:
        """Drop all expired entries; returns how many were removed."""
        stale = [
            sid
            for sid, (_, stored_at) in self._entries.items()
            if now - stored_at > self.lifetime_seconds
        ]
        for sid in stale:
            del self._entries[sid]
        return len(stale)

    def clear(self) -> None:
        """Drop everything (models a server process restart)."""
        self._entries.clear()

    def live_sessions(self, now: float) -> list[SessionState]:
        """All currently resumable sessions — the attacker's haul if the
        cache memory is compromised at time ``now``."""
        return [
            session
            for session, stored_at in self._entries.values()
            if now - stored_at <= self.lifetime_seconds
        ]


__all__ = [
    "SessionState",
    "ConnectionKeys",
    "derive_connection_keys",
    "SessionCache",
]
