"""RFC 5077 session tickets and session-ticket encryption keys (STEKs).

The ticket construction follows RFC 5077 §4's recommended structure:

    struct {
        opaque key_name[16];
        opaque iv[16];
        opaque encrypted_state<0..2^16-1>;   // AES-128-CBC
        opaque mac[32];                       // HMAC-SHA-256
    } ticket;

The 16-byte ``key_name`` is the *STEK identifier* the paper's scanner
extracts to infer STEK lifetimes (§4.3): it is visible in the clear,
stable for as long as the server keeps using the same STEK, and rotates
exactly when the key does.  mbedTLS's 4-byte identifier and SChannel's
DPAPI-GUID framing are modeled as alternative formats so the scanner's
format sniffing is exercised.

Crucially, tickets here are *really encrypted*: an attacker object that
steals the STEK decrypts recorded tickets and recovers master secrets,
which is the paper's §6.1/§7 threat made executable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..crypto.aes import AES
from ..crypto.mac import constant_time_equal, hmac_sha256
from ..crypto.modes import PaddingError, cbc_decrypt_with, cbc_encrypt_with
from ..crypto.rng import DeterministicRandom
from ..obs.metrics import METRICS, register_process_cache
from .ciphers import SUITES_BY_CODE
from .constants import ProtocolVersion
from .session import SessionState
from .wire import ByteReader, DecodeError


class TicketFormat(Enum):
    """On-the-wire ticket framings seen across implementations."""

    RFC5077 = "rfc5077"      # 16-byte key_name (OpenSSL, NSS, GnuTLS, LibreSSL)
    MBEDTLS = "mbedtls"      # 4-byte key_name
    SCHANNEL = "schannel"    # DPAPI-wrapped blob with a 16-byte master-key GUID


_KEY_NAME_LENGTH = {
    TicketFormat.RFC5077: 16,
    TicketFormat.MBEDTLS: 4,
    TicketFormat.SCHANNEL: 16,
}

_SCHANNEL_HEADER = b"\x30\x82DPAPI"  # stand-in for the ASN.1 DPAPI wrapper

# Seal/open volume is the paper's headline workload.  Opens split three
# ways: authenticated (``open``), sealed under a different key
# (``open_wrong_key`` — the routine case when a STEKStore tries its
# retained keys in order), and structurally/cryptographically rejected
# (``open_reject`` — truncation, bad MAC, bad padding).
_SEAL = METRICS.counter("tls.ticket.seal")
_OPEN_OK = METRICS.counter("tls.ticket.open")
_OPEN_WRONG_KEY = METRICS.counter("tls.ticket.open_wrong_key")
_OPEN_REJECT = METRICS.counter("tls.ticket.open_reject")

# The per-STEK key-schedule cache (see ``STEK.cipher``): a hit reuses
# the expanded schedule, a miss pays the one-time AES key expansion.
# The cache lives on STEK objects, so the per-shard cold-cache reset
# (``reset_process_caches``) can't clear it by reference; a generation
# stamp invalidates every cached schedule instead, keeping the counters
# a function of the shard alone (workers=1 reuses one process).
_CIPHER_HIT = METRICS.counter("crypto.aes.stek_cipher.hit")
_CIPHER_MISS = METRICS.counter("crypto.aes.stek_cipher.miss")
_CIPHER_GENERATION = 0


def _bump_cipher_generation() -> None:
    global _CIPHER_GENERATION
    _CIPHER_GENERATION += 1


register_process_cache(_bump_cipher_generation)


@dataclass(frozen=True)
class STEK:
    """A session-ticket encryption key bundle.

    Real deployments either read 48 bytes from a key file (Apache 2.4 /
    Nginx 1.5.7 ``ssl_session_ticket_key``: 16-byte name + 16-byte AES
    key + 16-byte HMAC key, which we widen to 32 for HMAC-SHA-256) or
    generate one at process start.
    """

    key_name: bytes
    aes_key: bytes
    hmac_key: bytes
    created_at: float

    def __post_init__(self) -> None:
        if len(self.aes_key) != 16:
            raise ValueError("STEK AES key must be 16 bytes (AES-128)")
        if len(self.hmac_key) != 32:
            raise ValueError("STEK HMAC key must be 32 bytes")

    @property
    def cipher(self) -> AES:
        """The expanded AES key schedule for ``aes_key``, built once.

        Keeping the schedule on the STEK ties its lifetime to the key's
        own: the process-wide ``aes_for_key`` LRU is sized for a handful
        of hot keys, and a full-ecosystem scan touching one STEK per
        domain per pass would cycle it (every lookup a miss).  Cached in
        ``__dict__`` because the dataclass is frozen; this is identity
        state, not value state, so it stays out of ``==``/``repr``.
        """
        cached = self.__dict__.get("_cipher")
        if cached is not None and self.__dict__.get("_cipher_gen") == _CIPHER_GENERATION:
            _CIPHER_HIT.inc()
            return cached
        _CIPHER_MISS.inc()
        cached = AES(self.aes_key)
        self.__dict__["_cipher"] = cached
        self.__dict__["_cipher_gen"] = _CIPHER_GENERATION
        return cached


def generate_stek(
    rng: DeterministicRandom,
    now: float,
    key_name_length: int = 16,
) -> STEK:
    """Generate a random STEK (what servers do at process start)."""
    return STEK(
        key_name=rng.random_bytes(key_name_length),
        aes_key=rng.random_bytes(16),
        hmac_key=rng.random_bytes(32),
        created_at=now,
    )


@dataclass(frozen=True)
class TicketContents:
    """What a ticket decrypts to: the session plus issuance metadata."""

    session: SessionState
    issued_at: float


# The state codec is a scanner-side hot path (every seal and every open
# runs it), so it assembles/slices bytes directly instead of going
# through ByteWriter/ByteReader.  The layout is unchanged:
#   u16 version | u16 cipher | 48B master | u32 created | u32 issued |
#   u16 domain_len | domain
_STATE_FIXED_LEN = 2 + 2 + 48 + 4 + 4 + 2  # everything before the domain


def _encode_state(session: SessionState, issued_at: float) -> bytes:
    domain = session.domain.encode("ascii")
    return b"".join(
        (
            int(session.version).to_bytes(2, "big"),
            session.cipher_suite.code.to_bytes(2, "big"),
            session.master_secret,
            int(session.created_at).to_bytes(4, "big"),
            int(issued_at).to_bytes(4, "big"),
            len(domain).to_bytes(2, "big"),
            domain,
        )
    )


def _decode_state(plaintext: bytes) -> TicketContents:
    if len(plaintext) < _STATE_FIXED_LEN:
        raise DecodeError("ticket state truncated")
    version = ProtocolVersion(int.from_bytes(plaintext[0:2], "big"))
    code = int.from_bytes(plaintext[2:4], "big")
    suite = SUITES_BY_CODE.get(code)
    if suite is None:
        raise DecodeError(f"ticket references unknown cipher {code:#06x}")
    domain_len = int.from_bytes(plaintext[60:62], "big")
    if len(plaintext) != _STATE_FIXED_LEN + domain_len:
        raise DecodeError("ticket state has wrong length")
    session = SessionState(
        master_secret=plaintext[4:52],
        cipher_suite=suite,
        version=version,
        created_at=float(int.from_bytes(plaintext[52:56], "big")),
        domain=plaintext[62:].decode("ascii"),
    )
    issued_at = float(int.from_bytes(plaintext[56:60], "big"))
    return TicketContents(session=session, issued_at=issued_at)


def seal_ticket(
    stek: STEK,
    session: SessionState,
    rng: DeterministicRandom,
    ticket_format: TicketFormat = TicketFormat.RFC5077,
    issued_at: float | None = None,
) -> bytes:
    """Encrypt session state into a ticket under ``stek``."""
    expected_name_len = _KEY_NAME_LENGTH[ticket_format]
    if len(stek.key_name) != expected_name_len:
        raise ValueError(
            f"{ticket_format.value} tickets need a {expected_name_len}-byte key name"
        )
    if issued_at is None:
        issued_at = session.created_at
    _SEAL.value += 1
    iv = rng.random_bytes(16)
    encrypted = cbc_encrypt_with(stek.cipher, iv, _encode_state(session, issued_at))
    mac = hmac_sha256(stek.hmac_key, stek.key_name + iv + encrypted)
    header = _SCHANNEL_HEADER if ticket_format is TicketFormat.SCHANNEL else b""
    return b"".join(
        (header, stek.key_name, iv, len(encrypted).to_bytes(2, "big"), encrypted, mac)
    )


def extract_key_name(ticket: bytes, ticket_format: TicketFormat) -> bytes:
    """Read the cleartext STEK identifier out of a ticket.

    This is the scanner-side primitive behind the paper's §4.3 STEK
    lifetime measurement: no keys are needed, only the framing.
    """
    reader = ByteReader(ticket)
    if ticket_format is TicketFormat.SCHANNEL:
        header = reader.raw(len(_SCHANNEL_HEADER))
        if header != _SCHANNEL_HEADER:
            raise DecodeError("missing SChannel DPAPI header")
    return reader.raw(_KEY_NAME_LENGTH[ticket_format])


def sniff_ticket_format(ticket: bytes) -> TicketFormat:
    """Guess a ticket's framing from its structure.

    SChannel blobs carry a distinctive header; otherwise we try the
    RFC 5077 16-byte layout and fall back to mbedTLS's 4-byte one by
    checking which layout's length bookkeeping is self-consistent.
    """
    if ticket.startswith(_SCHANNEL_HEADER):
        return TicketFormat.SCHANNEL
    for candidate in (TicketFormat.RFC5077, TicketFormat.MBEDTLS):
        name_len = _KEY_NAME_LENGTH[candidate]
        # layout: name | iv(16) | len(2) | enc | mac(32)
        if len(ticket) < name_len + 16 + 2 + 32:
            continue
        enc_len = int.from_bytes(ticket[name_len + 16 : name_len + 18], "big")
        if name_len + 16 + 2 + enc_len + 32 == len(ticket) and enc_len % 16 == 0:
            return candidate
    raise DecodeError("unrecognized ticket format")


def open_ticket(
    stek: STEK,
    ticket: bytes,
    ticket_format: TicketFormat = TicketFormat.RFC5077,
) -> Optional[TicketContents]:
    """Authenticate and decrypt a ticket; None if not sealed by ``stek``.

    Verifies the key name, the HMAC, and the padding before returning
    state — the same checks a careful server performs, and the same
    operation an attacker performs with a *stolen* STEK.
    """
    offset = 0
    if ticket_format is TicketFormat.SCHANNEL:
        if not ticket.startswith(_SCHANNEL_HEADER):
            _OPEN_REJECT.value += 1
            return None
        offset = len(_SCHANNEL_HEADER)
    name_len = _KEY_NAME_LENGTH[ticket_format]
    iv_end = offset + name_len + 16
    if len(ticket) < iv_end + 2 + 32:
        _OPEN_REJECT.value += 1
        return None
    key_name = ticket[offset : offset + name_len]
    if key_name != stek.key_name:
        _OPEN_WRONG_KEY.value += 1
        return None
    iv = ticket[offset + name_len : iv_end]
    enc_len = int.from_bytes(ticket[iv_end : iv_end + 2], "big")
    enc_end = iv_end + 2 + enc_len
    if len(ticket) != enc_end + 32:  # exactly the MAC must remain
        _OPEN_REJECT.value += 1
        return None
    encrypted = ticket[iv_end + 2 : enc_end]
    mac = ticket[enc_end:]
    expected = hmac_sha256(stek.hmac_key, key_name + iv + encrypted)
    if not constant_time_equal(mac, expected):
        _OPEN_REJECT.value += 1
        return None
    try:
        plaintext = cbc_decrypt_with(stek.cipher, iv, encrypted)
        contents = _decode_state(plaintext)
    except (PaddingError, DecodeError, ValueError):
        _OPEN_REJECT.value += 1
        return None
    _OPEN_OK.value += 1
    return contents


class STEKStore:
    """Holds the issuing STEK plus previously issued keys still accepted.

    ``retain`` previous keys are kept so tickets sealed shortly before a
    rotation still resume (Google's observed 14-hour rotation with a
    28-hour acceptance window corresponds to ``retain=1``).  The store
    is shareable across servers/domains, which is the §5.2 cross-domain
    STEK sharing mechanism.
    """

    def __init__(
        self,
        initial: STEK,
        ticket_format: TicketFormat = TicketFormat.RFC5077,
        retain: int = 1,
    ) -> None:
        if retain < 0:
            raise ValueError("retain must be non-negative")
        self.ticket_format = ticket_format
        self.retain = retain
        self._current = initial
        self._previous: list[STEK] = []
        self.issued_count = 0
        self.opened_count = 0

    @property
    def current(self) -> STEK:
        return self._current

    @property
    def all_keys(self) -> list[STEK]:
        """Current plus retained previous keys — the full theft surface."""
        return [self._current] + list(self._previous)

    def rotate(self, new_stek: STEK) -> None:
        """Install a new issuing key, retiring the old one into history."""
        self._previous.insert(0, self._current)
        del self._previous[self.retain :]
        self._current = new_stek

    def issue(
        self, session: SessionState, rng: DeterministicRandom, now: float | None = None
    ) -> bytes:
        """Seal a ticket under the current issuing key."""
        self.issued_count += 1
        return seal_ticket(self._current, session, rng, self.ticket_format, issued_at=now)

    def open(self, ticket: bytes) -> Optional[TicketContents]:
        """Try current and retained keys in order."""
        for stek in self.all_keys:
            contents = open_ticket(stek, ticket, self.ticket_format)
            if contents is not None:
                self.opened_count += 1
                return contents
        return None


__all__ = [
    "STEK",
    "STEKStore",
    "TicketContents",
    "TicketFormat",
    "generate_stek",
    "seal_ticket",
    "open_ticket",
    "extract_key_name",
    "sniff_ticket_format",
]
