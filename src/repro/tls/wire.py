"""Byte-level TLS encoding — re-exported from :mod:`repro.wireformat`.

The codec lives at the package root so both :mod:`repro.tls` and
:mod:`repro.x509` can use it without a circular import.
"""

from ..wireformat import ByteReader, ByteWriter, DecodeError

__all__ = ["ByteWriter", "ByteReader", "DecodeError"]
