"""TLS 1.3 (draft-15) PSK resumption and 0-RTT exposure model (§2.4, §8.1)."""

from .psk import (
    DRAFT15_MAX_PSK_LIFETIME,
    Psk,
    PskIssuer,
    PskMode,
    ResumedConnectionKeys,
    attacker_recover_keys,
    derive_resumption_secret,
    resume,
)

__all__ = [
    "DRAFT15_MAX_PSK_LIFETIME",
    "Psk",
    "PskIssuer",
    "PskMode",
    "ResumedConnectionKeys",
    "attacker_recover_keys",
    "derive_resumption_secret",
    "resume",
]
