"""TLS 1.3 pre-shared-key resumption model (paper §2.4 and §8.1).

Draft-15 TLS 1.3 (the version the paper discusses) nominally obsoletes
session IDs and session tickets, but both mechanisms persist as PSKs:
the server issues a NewSessionTicket whose identity is either a
database lookup key (session-ID-like) or a self-encrypted blob
(ticket-like), and the client returns it in a later ClientHello.
TLS 1.3 *does* improve on 1.2 in one structural way the paper notes:
the resumption secret is derived separately from the traffic secrets,
so a stolen resumption secret alone does not decrypt the *original*
connection — only connections resumed from it.

Two resumption modes are modeled:

* ``psk_ke`` — resumption keys derive from the PSK alone.  Anyone who
  later obtains the PSK (via the ticket-encryption key or the session
  database) can decrypt the resumed connection: the 1.2 story again.
* ``psk_dhe_ke`` — an (EC)DHE exchange is mixed into the key schedule,
  so the resumed connection keeps forward secrecy against PSK theft
  (but not against theft of a *reused* DHE value).

0-RTT early data is keyed by the PSK directly, so it is decryptable by
any later PSK holder in *both* modes — the sharpest edge the paper's
§8.1 warns about, together with the draft's blanket 7-day ceiling on
PSK lifetimes ("PSKs honored for 7 days ... may be a significant risk
for high-value domains").

Key-schedule shapes follow the draft's HKDF-style derivations in
simplified labeled-PRF form; the measurement-relevant structure (what
secret decrypts what, and for how long it exists) is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..crypto import ec
from ..crypto.mac import hmac_sha256
from ..crypto.rng import DeterministicRandom
from ..netsim.clock import DAY

#: Draft-15's maximum PSK lifetime (§8.1: "simply sets a 7 day maximum
#: for PSK lifetimes without discussion").
DRAFT15_MAX_PSK_LIFETIME = 7 * DAY


class PskMode(Enum):
    """TLS 1.3 resumption key-exchange modes."""

    PSK_KE = "psk_ke"          # PSK only — no forward secrecy vs PSK theft
    PSK_DHE_KE = "psk_dhe_ke"  # PSK + fresh (EC)DHE — forward secret


def _derive(secret: bytes, label: bytes, context: bytes = b"") -> bytes:
    """A labeled one-step KDF standing in for HKDF-Expand-Label."""
    return hmac_sha256(secret, b"tls13 " + label + b"\x00" + context)


@dataclass(frozen=True)
class Psk:
    """An issued pre-shared key: identity + secret + issuance metadata."""

    identity: bytes             # what the client sends in ClientHello
    secret: bytes               # the resumption secret (server-side too)
    issued_at: float
    max_age_seconds: float = DRAFT15_MAX_PSK_LIFETIME
    origin_domain: str = ""

    def expired(self, now: float) -> bool:
        return now - self.issued_at > self.max_age_seconds


@dataclass
class ResumedConnectionKeys:
    """Keys of one resumed TLS 1.3 connection plus its 0-RTT secret."""

    mode: PskMode
    early_data_secret: bytes     # protects 0-RTT; PSK-derived in all modes
    traffic_secret: bytes        # protects 1-RTT application data
    new_resumption_secret: bytes # chains into the next ticket


def derive_resumption_secret(master_secret: bytes, connection_nonce: bytes) -> bytes:
    """TLS 1.3's separate resumption secret (unlike 1.2, not the master
    secret itself — the structural improvement the paper credits)."""
    return _derive(master_secret, b"resumption", connection_nonce)


def resume(
    psk: Psk,
    client_random: bytes,
    server_random: bytes,
    mode: PskMode,
    rng: DeterministicRandom,
    curve: ec.Curve = ec.SECP128R1,
    server_keypair: Optional[ec.ECKeyPair] = None,
) -> tuple[ResumedConnectionKeys, Optional[ec.ECKeyPair], Optional[tuple[int, int]]]:
    """Derive a resumed connection's keys.

    Returns ``(keys, server_keypair, client_public)``; the DH parts are
    None in ``psk_ke`` mode.  ``server_keypair`` may be supplied to
    model servers that *reuse* their TLS 1.3 ephemeral value — the same
    §4.4 shortcut, alive and well in 1.3.
    """
    transcript = client_random + server_random
    early_secret = _derive(psk.secret, b"early", transcript)
    if mode is PskMode.PSK_KE:
        handshake_input = psk.secret
        keypair, client_public = None, None
    else:
        if server_keypair is None:
            keypair = ec.generate_keypair(curve, rng)
        else:
            keypair = server_keypair
        client_keypair = ec.generate_keypair(curve, rng)
        shared = keypair.shared_secret_bytes(client_keypair.public)
        handshake_input = hmac_sha256(psk.secret, shared)
        client_public = client_keypair.public
    traffic = _derive(handshake_input, b"traffic", transcript)
    resumption = _derive(handshake_input, b"next-resumption", transcript)
    return (
        ResumedConnectionKeys(
            mode=mode,
            early_data_secret=early_secret,
            traffic_secret=traffic,
            new_resumption_secret=resumption,
        ),
        keypair if mode is PskMode.PSK_DHE_KE else None,
        client_public,
    )


def attacker_recover_keys(
    stolen_psk_secret: bytes,
    client_random: bytes,
    server_random: bytes,
    mode: PskMode,
    observed_client_public: Optional[tuple[int, int]] = None,
    stolen_server_keypair: Optional[ec.ECKeyPair] = None,
) -> Optional[ResumedConnectionKeys]:
    """What a PSK thief can reconstruct from a recorded resumption.

    * ``psk_ke``: everything — the PSK determines all keys.
    * ``psk_dhe_ke``: only the 0-RTT secret, unless the attacker *also*
      holds the server's (reused) DHE private value.
    """
    transcript = client_random + server_random
    early_secret = _derive(stolen_psk_secret, b"early", transcript)
    if mode is PskMode.PSK_KE:
        handshake_input = stolen_psk_secret
    else:
        if stolen_server_keypair is None or observed_client_public is None:
            return ResumedConnectionKeys(
                mode=mode,
                early_data_secret=early_secret,
                traffic_secret=b"",       # unrecoverable
                new_resumption_secret=b"",
            )
        try:
            shared = stolen_server_keypair.shared_secret_bytes(observed_client_public)
        except ec.NotOnCurveError:
            return None
        handshake_input = hmac_sha256(stolen_psk_secret, shared)
    return ResumedConnectionKeys(
        mode=mode,
        early_data_secret=early_secret,
        traffic_secret=_derive(handshake_input, b"traffic", transcript),
        new_resumption_secret=_derive(handshake_input, b"next-resumption", transcript),
    )


class PskIssuer:
    """Server-side PSK issuance: the TLS 1.3 analogue of a STEK store.

    ``database_mode=True`` stores secrets server-side under a lookup
    key (session-cache-like exposure: compromise the database, decrypt
    everything still stored).  ``database_mode=False`` self-encrypts the
    secret into the identity under ``encryption_key`` (STEK-like
    exposure: compromise one key, decrypt every ticket it sealed).
    """

    def __init__(
        self,
        rng: DeterministicRandom,
        database_mode: bool = False,
        max_age_seconds: float = DRAFT15_MAX_PSK_LIFETIME,
    ) -> None:
        self._rng = rng
        self.database_mode = database_mode
        self.max_age_seconds = max_age_seconds
        self.encryption_key = rng.random_bytes(32)
        self._database: dict[bytes, Psk] = {}
        self.issued = 0

    def issue(self, resumption_secret: bytes, now: float, domain: str = "") -> Psk:
        """Issue a PSK for a completed connection's resumption secret."""
        self.issued += 1
        if self.database_mode:
            identity = self._rng.random_bytes(16)
            psk = Psk(identity=identity, secret=resumption_secret,
                      issued_at=now, max_age_seconds=self.max_age_seconds,
                      origin_domain=domain)
            self._database[identity] = psk
            return psk
        # Self-encrypted: identity = "sealed" secret + MAC (simplified
        # seal with the issuer's long-lived key — the 1.3 STEK).
        body = resumption_secret + int(now).to_bytes(8, "big")
        keystream = hmac_sha256(self.encryption_key, b"seal" + body[:0])
        sealed = bytes(a ^ b for a, b in zip(body, (keystream * 2)[: len(body)]))
        tag = hmac_sha256(self.encryption_key, sealed)[:16]
        return Psk(identity=sealed + tag, secret=resumption_secret,
                   issued_at=now, max_age_seconds=self.max_age_seconds,
                   origin_domain=domain)

    def accept(self, identity: bytes, now: float) -> Optional[Psk]:
        """Server-side validation of an offered PSK identity."""
        if self.database_mode:
            psk = self._database.get(identity)
            if psk is None or psk.expired(now):
                return None
            return psk
        if len(identity) < 16 + 40:
            return None
        sealed, tag = identity[:-16], identity[-16:]
        if hmac_sha256(self.encryption_key, sealed)[:16] != tag:
            return None
        keystream = hmac_sha256(self.encryption_key, b"seal")
        body = bytes(a ^ b for a, b in zip(sealed, (keystream * 2)[: len(sealed)]))
        secret, issued_at = body[:-8], float(int.from_bytes(body[-8:], "big"))
        psk = Psk(identity=identity, secret=secret, issued_at=issued_at,
                  max_age_seconds=self.max_age_seconds)
        return None if psk.expired(now) else psk

    def attacker_open_identity(self, identity: bytes) -> Optional[bytes]:
        """With the stolen encryption key: recover the PSK secret from a
        recorded identity (self-encrypted mode only).

        Note there is no expiry check — *policy* expiry does not protect
        a recorded identity once the key leaks, exactly like RFC 5077
        tickets (§6.1)."""
        if self.database_mode or len(identity) < 56:
            return None
        sealed, tag = identity[:-16], identity[-16:]
        if hmac_sha256(self.encryption_key, sealed)[:16] != tag:
            return None
        keystream = hmac_sha256(self.encryption_key, b"seal")
        body = bytes(a ^ b for a, b in zip(sealed, (keystream * 2)[: len(sealed)]))
        return body[:-8]

    def attacker_dump_database(self) -> list[Psk]:
        """With database access: every still-stored PSK (database mode)."""
        return list(self._database.values())

    def expire(self, now: float) -> int:
        """Drop expired database entries; returns how many were removed."""
        stale = [k for k, psk in self._database.items() if psk.expired(now)]
        for key in stale:
            del self._database[key]
        return len(stale)


__all__ = [
    "DRAFT15_MAX_PSK_LIFETIME",
    "PskMode",
    "Psk",
    "PskIssuer",
    "ResumedConnectionKeys",
    "derive_resumption_secret",
    "resume",
    "attacker_recover_keys",
]
