"""Byte-level encoding helpers for TLS and certificate structures.

TLS (RFC 5246 §4) encodes integers big-endian and length-prefixes
variable vectors with 1-, 2-, or 3-byte lengths.  :class:`ByteWriter`
and :class:`ByteReader` implement exactly those primitives; every
handshake message in :mod:`repro.tls.messages` round-trips through
them, so the scanner parses real bytes rather than passing Python
objects around.
"""

from __future__ import annotations


class DecodeError(ValueError):
    """Raised when a TLS structure cannot be parsed."""


class ByteWriter:
    """Accumulates big-endian TLS wire data."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def u8(self, value: int) -> "ByteWriter":
        if not 0 <= value < 1 << 8:
            raise ValueError("u8 out of range")
        self._buf.append(value)
        return self

    def u16(self, value: int) -> "ByteWriter":
        if not 0 <= value < 1 << 16:
            raise ValueError("u16 out of range")
        self._buf.extend(value.to_bytes(2, "big"))
        return self

    def u24(self, value: int) -> "ByteWriter":
        if not 0 <= value < 1 << 24:
            raise ValueError("u24 out of range")
        self._buf.extend(value.to_bytes(3, "big"))
        return self

    def u32(self, value: int) -> "ByteWriter":
        if not 0 <= value < 1 << 32:
            raise ValueError("u32 out of range")
        self._buf.extend(value.to_bytes(4, "big"))
        return self

    def raw(self, data: bytes) -> "ByteWriter":
        self._buf.extend(data)
        return self

    def vec8(self, data: bytes) -> "ByteWriter":
        """opaque data<0..2^8-1>"""
        self.u8(len(data))
        return self.raw(data)

    def vec16(self, data: bytes) -> "ByteWriter":
        """opaque data<0..2^16-1>"""
        self.u16(len(data))
        return self.raw(data)

    def vec24(self, data: bytes) -> "ByteWriter":
        """opaque data<0..2^24-1>"""
        self.u24(len(data))
        return self.raw(data)

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)


class ByteReader:
    """Consumes big-endian TLS wire data with strict bounds checking."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def _take(self, n: int) -> bytes:
        if n < 0 or self.remaining < n:
            raise DecodeError(f"truncated: wanted {n} bytes, have {self.remaining}")
        chunk = self._data[self._pos : self._pos + n]
        self._pos += n
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return int.from_bytes(self._take(2), "big")

    def u24(self) -> int:
        return int.from_bytes(self._take(3), "big")

    def u32(self) -> int:
        return int.from_bytes(self._take(4), "big")

    def raw(self, n: int) -> bytes:
        return self._take(n)

    def vec8(self) -> bytes:
        return self._take(self.u8())

    def vec16(self) -> bytes:
        return self._take(self.u16())

    def vec24(self) -> bytes:
        return self._take(self.u24())

    def rest(self) -> bytes:
        return self._take(self.remaining)

    def expect_end(self) -> None:
        """Raise unless the whole input was consumed (strict parsing)."""
        if self.remaining:
            raise DecodeError(f"{self.remaining} trailing bytes")


__all__ = ["ByteWriter", "ByteReader", "DecodeError"]
