"""Simplified X.509 certificate model and NSS-like trust store."""

from .certificate import (
    CertificateAuthority,
    CertificateData,
    TrustStore,
    ValidationResult,
    X509Certificate,
)

__all__ = [
    "CertificateAuthority",
    "CertificateData",
    "TrustStore",
    "ValidationResult",
    "X509Certificate",
]
