"""Simplified X.509-like certificates for the simulated PKI.

The study restricts analysis to domains presenting *browser-trusted*
certificates (chaining to the NSS root store).  To preserve that
filtering step the simulated servers present certificates signed by
simulated CAs, and the scanner verifies signatures, validity windows,
and hostname matches against a root store.

Certificates use a compact TLV serialization rather than ASN.1 DER —
nothing here interoperates with external tooling, and the structure
(subject names, issuer, serial, validity, key, signature) is what the
measurement logic consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional, Sequence

from ..crypto.mac import sha256
from ..crypto.rsa import RSAPrivateKey, RSAPublicKey
from ..obs.metrics import METRICS, register_process_cache
from ..wireformat import ByteReader, ByteWriter, DecodeError

_MAGIC = b"RCRT"


@dataclass(frozen=True)
class CertificateData:
    """The to-be-signed portion of a certificate."""

    subject_names: tuple[str, ...]  # CN + SANs; supports "*.example.com"
    issuer: str
    serial: int
    not_before: float  # epoch seconds (simulation time)
    not_after: float
    public_key: RSAPublicKey

    # cached_property works on a frozen dataclass (it writes straight
    # into the instance __dict__, bypassing the frozen __setattr__) and
    # is safe here because every field is immutable.  Servers present
    # the same certificate on every full handshake, so the TBS and DER
    # encodings are one-time costs per certificate rather than per
    # handshake.
    @cached_property
    def _tbs(self) -> bytes:
        writer = ByteWriter()
        writer.raw(_MAGIC)
        names = ByteWriter()
        for name in self.subject_names:
            names.vec8(name.encode("ascii"))
        writer.vec16(names.getvalue())
        writer.vec8(self.issuer.encode("ascii"))
        writer.u32(self.serial)
        writer.u32(int(self.not_before))
        writer.u32(int(self.not_after))
        writer.vec16(self.public_key.n.to_bytes(self.public_key.byte_length, "big"))
        writer.u32(self.public_key.e)
        return writer.getvalue()

    def tbs_bytes(self) -> bytes:
        """Serialize the signed portion (computed once per certificate)."""
        return self._tbs


@dataclass(frozen=True)
class X509Certificate:
    """A signed certificate: TBS data plus the issuer's signature."""

    data: CertificateData
    signature: int

    @property
    def subject_names(self) -> tuple[str, ...]:
        return self.data.subject_names

    @property
    def issuer(self) -> str:
        return self.data.issuer

    @property
    def public_key(self) -> RSAPublicKey:
        return self.data.public_key

    @cached_property
    def _serialized(self) -> bytes:
        tbs = self.data.tbs_bytes()
        sig_bytes = self.signature.to_bytes((self.signature.bit_length() + 7) // 8 or 1, "big")
        return ByteWriter().vec16(tbs).vec16(sig_bytes).getvalue()

    def serialize(self) -> bytes:
        return self._serialized

    @classmethod
    def parse(cls, blob: bytes) -> "X509Certificate":
        outer = ByteReader(blob)
        tbs = outer.vec16()
        sig_bytes = outer.vec16()
        outer.expect_end()
        reader = ByteReader(tbs)
        if reader.raw(4) != _MAGIC:
            raise DecodeError("not a repro certificate")
        names_block = ByteReader(reader.vec16())
        names = []
        while names_block.remaining:
            names.append(names_block.vec8().decode("ascii"))
        issuer = reader.vec8().decode("ascii")
        serial = reader.u32()
        not_before = float(reader.u32())
        not_after = float(reader.u32())
        n = int.from_bytes(reader.vec16(), "big")
        e = reader.u32()
        reader.expect_end()
        data = CertificateData(
            subject_names=tuple(names),
            issuer=issuer,
            serial=serial,
            not_before=not_before,
            not_after=not_after,
            public_key=RSAPublicKey(n=n, e=e),
        )
        return cls(data=data, signature=int.from_bytes(sig_bytes, "big"))

    @cached_property
    def _fingerprint(self) -> bytes:
        return sha256(self.serialize())

    def fingerprint(self) -> bytes:
        """SHA-256 fingerprint of the serialized certificate."""
        return self._fingerprint

    def matches_hostname(self, hostname: str) -> bool:
        """RFC 6125-style name matching with single-label wildcards."""
        hostname = hostname.lower().rstrip(".")
        for name in self.subject_names:
            name = name.lower()
            if name == hostname:
                return True
            if name.startswith("*."):
                suffix = name[1:]  # ".example.com"
                if hostname.endswith(suffix) and "." not in hostname[: -len(suffix)]:
                    if hostname[: -len(suffix)]:
                        return True
        return False

    def valid_at(self, now: float) -> bool:
        return self.data.not_before <= now <= self.data.not_after


@dataclass
class CertificateAuthority:
    """A simulated CA that mints leaf certificates."""

    name: str
    private_key: RSAPrivateKey
    next_serial: int = field(default=1)

    @property
    def public_key(self) -> RSAPublicKey:
        return self.private_key.public

    def issue(
        self,
        subject_names: Sequence[str],
        subject_key: RSAPublicKey,
        not_before: float,
        not_after: float,
    ) -> X509Certificate:
        """Sign a leaf certificate for ``subject_names``."""
        if not subject_names:
            raise ValueError("certificate needs at least one subject name")
        if not_after <= not_before:
            raise ValueError("certificate validity window is empty")
        data = CertificateData(
            subject_names=tuple(subject_names),
            issuer=self.name,
            serial=self.next_serial,
            not_before=not_before,
            not_after=not_after,
            public_key=subject_key,
        )
        self.next_serial += 1
        return X509Certificate(data=data, signature=self.private_key.sign(data.tbs_bytes()))


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of chain validation, with the failure reason if any."""

    valid: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.valid


class TrustStore:
    """An NSS-like root store: trusted CA names and their public keys."""

    # Signature checks memoized across all stores: an RSA verify is a
    # modular exponentiation, and a scanner validates the *same* leaf
    # certificate against the same root on every full handshake with a
    # domain.  Keyed by (root key, certificate) value — both frozen
    # dataclasses — so a different root or a tampered certificate can
    # never alias a cached verdict.  Validity-window and hostname
    # checks stay uncached (they depend on per-call time/name).
    _SIG_MEMO: dict[tuple, bool] = {}
    _SIG_MEMO_MAX = 65536

    _MEMO_HIT = METRICS.counter("x509.sig_memo.hit")
    _MEMO_MISS = METRICS.counter("x509.sig_memo.miss")

    def __init__(self) -> None:
        self._roots: dict[str, RSAPublicKey] = {}

    def add_root(self, name: str, public_key: RSAPublicKey) -> None:
        self._roots[name] = public_key

    def trusts(self, issuer: str) -> bool:
        return issuer in self._roots

    def root_names(self) -> list[str]:
        return sorted(self._roots)

    def validate(
        self,
        certificate: X509Certificate,
        hostname: Optional[str],
        now: float,
    ) -> ValidationResult:
        """Validate a leaf certificate: issuer trust, signature, time, name."""
        root = self._roots.get(certificate.issuer)
        if root is None:
            return ValidationResult(False, f"untrusted issuer {certificate.issuer!r}")
        memo_key = (root, certificate)
        signature_ok = self._SIG_MEMO.get(memo_key)
        if signature_ok is None:
            self._MEMO_MISS.value += 1
            signature_ok = root.verify(certificate.data.tbs_bytes(), certificate.signature)
            if len(self._SIG_MEMO) >= self._SIG_MEMO_MAX:
                self._SIG_MEMO.clear()
            self._SIG_MEMO[memo_key] = signature_ok
        else:
            self._MEMO_HIT.value += 1
        if not signature_ok:
            return ValidationResult(False, "bad signature")
        if not certificate.valid_at(now):
            return ValidationResult(False, "certificate expired or not yet valid")
        if hostname is not None and not certificate.matches_hostname(hostname):
            return ValidationResult(False, f"hostname {hostname!r} not in subject names")
        return ValidationResult(True)


register_process_cache(TrustStore._SIG_MEMO.clear)


__all__ = [
    "CertificateData",
    "X509Certificate",
    "CertificateAuthority",
    "TrustStore",
    "ValidationResult",
]
