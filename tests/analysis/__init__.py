"""Streaming-analysis tests."""
