"""Merge-algebra property tests for every ShardAggregate.

The streaming engine's byte-identity guarantee reduces to three
properties per aggregate, checked here against a corpus that exercises
skip paths (failures, absent identifiers, untrusted certs):

* **associativity** — ``merge(merge(a, b), c)`` and
  ``merge(a, merge(b, c))`` finalize identically, for arbitrary chunk
  boundaries;
* **zero identity** — ``merge(zero(), s)`` and ``merge(s, zero())``
  both finalize like ``s``;
* **cache round-trip** — a partial state survives JSON serialization
  (the ``.analysis/`` cache) with dict insertion order intact.

Comparisons run through :func:`canon`, which makes dict *order*
significant — plain ``==`` would accept reordered states that then
render different report bytes.
"""

import copy
import json
from dataclasses import asdict

import pytest

from repro.analysis.aggregates import default_aggregates
from repro.scanner.records import (
    CrossDomainEdge,
    ResumptionProbeResult,
    ScanObservation,
)


def canon(obj):
    """Order-sensitive canonical form (dict order becomes list order)."""
    if isinstance(obj, dict):
        return [(key, canon(value)) for key, value in obj.items()]
    if isinstance(obj, (list, tuple)):
        return [canon(value) for value in obj]
    return repr(obj)


def _obs(i, day, kind, identifier, conn=0):
    ok = (i + day + conn) % 5 != 0
    is_ticket = kind == "stek"
    return asdict(ScanObservation(
        domain=f"d{i:03d}.test",
        day=day,
        timestamp=day * 86400.0 + conn,
        rank=i + 1,
        success=ok,
        kex_kind="ecdhe" if is_ticket else kind,
        cert_trusted=ok and i % 3 != 0,
        ticket_issued=ok and is_ticket and i % 7 != 0,
        stek_id=identifier if ok and is_ticket else None,
        kex_public=identifier if ok and not is_ticket else None,
    ))


def make_corpus():
    corpus = {name: [] for name in (
        "ticket_daily", "dhe_daily", "ecdhe_daily",
        "ticket_support", "dhe_support", "ecdhe_support",
        "ticket_30min", "session_probes", "cache_edges",
    )}
    for i in range(12):
        for day in range(9):
            corpus["ticket_daily"].append(
                _obs(i, day, "stek", f"stek-{i % 5}-{day // (1 + i % 3)}"))
            corpus["dhe_daily"].append(
                _obs(i, day, "dhe", f"dhe-{i}-{day // 2}"))
            corpus["ecdhe_daily"].append(
                _obs(i, day, "ecdhe", f"ec-{i}-{day}"))
        for conn in range(6):
            shared = f"stek-c{i // 4}" if i % 2 == 0 else f"stek-{i}"
            corpus["ticket_support"].append(_obs(i, 1, "stek", shared, conn))
            corpus["dhe_support"].append(
                _obs(i, 1, "dhe", f"dhe-{i}-s{conn % (1 + i % 2)}", conn))
            corpus["ecdhe_support"].append(
                _obs(i, 1, "ecdhe", f"ec-{i}-s", conn))
        corpus["ticket_30min"].append(_obs(i, 1, "stek", f"stek-{i % 5}-0"))
        corpus["session_probes"].append(asdict(ResumptionProbeResult(
            domain=f"d{i:03d}.test",
            rank=i + 1,
            handshake_ok=True,
            issued=i % 4 != 0,
            max_success_delay=None if i % 4 == 0 else i * 900.0,
            hit_probe_ceiling=i % 5 == 0,
        )))
    for i in range(0, 10, 2):
        corpus["cache_edges"].append(asdict(CrossDomainEdge(
            origin=f"d{i:03d}.test", acceptor=f"d{i + 1:03d}.test",
            via_same_ip=i % 4 == 0, via_same_as=True)))
    return corpus


CORPUS = make_corpus()
META = {
    "always_present": sorted({row["domain"] for row in CORPUS["ticket_daily"]}),
    "crossdomain_targets": [f"d{i:03d}.test" for i in range(12)],
    "domain_asn": {f"d{i:03d}.test": 64500 + i % 3 for i in range(12)},
    "as_names": {str(64500 + k): f"AS {k}" for k in range(3)},
}


def segments(agg, cuts=(1, 2)):
    """The corpus as stream-ordered (channel, rows) chunks."""
    segs = []
    for channel in agg.channels:
        rows = CORPUS[channel]
        a, b = (len(rows) * cuts[0] // 3), (len(rows) * cuts[1] // 3)
        for part in (rows[:a], rows[a:b], rows[b:]):
            segs.append((channel, part))
    return segs


def partials(agg, segs):
    return [agg.fold(agg.zero(), channel, copy.deepcopy(rows))
            for channel, rows in segs]


def finalized(agg, state):
    return canon(agg.finalize(copy.deepcopy(state), META))


@pytest.mark.parametrize("agg", default_aggregates(), ids=lambda a: a.name)
@pytest.mark.parametrize("cuts", [(1, 2), (0, 1), (2, 3), (0, 3)])
def test_merge_is_associative_and_matches_single_pass(agg, cuts):
    segs = segments(agg, cuts)
    parts = partials(agg, segs)

    left = copy.deepcopy(parts[0])
    for part in parts[1:]:
        left = agg.merge(left, copy.deepcopy(part))

    right = copy.deepcopy(parts[-1])
    for part in reversed(parts[:-1]):
        right = agg.merge(copy.deepcopy(part), right)

    whole = agg.zero()
    for channel, rows in segs:
        whole = agg.fold(whole, channel, copy.deepcopy(rows))

    assert finalized(agg, left) == finalized(agg, whole)
    assert finalized(agg, right) == finalized(agg, whole)


@pytest.mark.parametrize("agg", default_aggregates(), ids=lambda a: a.name)
def test_zero_is_a_merge_identity(agg):
    state = agg.zero()
    for channel, rows in segments(agg):
        state = agg.fold(state, channel, copy.deepcopy(rows))
    reference = finalized(agg, state)
    assert finalized(
        agg, agg.merge(agg.zero(), copy.deepcopy(state))) == reference
    assert finalized(
        agg, agg.merge(copy.deepcopy(state), agg.zero())) == reference


@pytest.mark.parametrize("agg", default_aggregates(), ids=lambda a: a.name)
def test_states_survive_the_json_cache_round_trip(agg):
    state = agg.zero()
    for channel, rows in segments(agg):
        state = agg.fold(state, channel, copy.deepcopy(rows))
    # No sort_keys, like the cache writer: key order is load-bearing.
    revived = json.loads(json.dumps(state))
    assert finalized(agg, revived) == finalized(agg, state)


def test_default_aggregates_have_unique_names_and_specs():
    aggs = default_aggregates()
    names = [agg.name for agg in aggs]
    assert len(set(names)) == len(names)
    specs = [json.dumps(agg.spec(), sort_keys=True) for agg in aggs]
    assert len(set(specs)) == len(specs)
