"""Chunk-planning tests: the partition must be exact.

Every line of a channel file belongs to exactly one chunk, for any
chunk size — including sizes smaller than a single line.  The engine's
byte-identity guarantee rests on this.
"""

import json

import pytest

from repro.analysis.chunks import (
    DEFAULT_CHUNK_BYTES,
    channels_in_order,
    iter_channel_rows,
    parse_chunk,
    plan_chunks,
    read_chunk,
)
from repro.scanner.datastore import channel_path


def write_channel(directory, channel, rows):
    path = channel_path(str(directory), channel)
    with open(path, "w", encoding="utf-8") as fh:
        for row in rows:
            fh.write(json.dumps(row))
            fh.write("\n")
    return path


@pytest.fixture()
def corpus_dir(tmp_path):
    # Variable-length lines so chunk boundaries land mid-line.
    rows = [{"n": i, "pad": "x" * (i * 7 % 41)} for i in range(200)]
    write_channel(tmp_path, "ticket_daily", rows)
    return tmp_path, rows


@pytest.mark.parametrize("chunk_bytes", [1, 7, 64, 1000, 1 << 30])
def test_partition_is_exact_for_any_chunk_size(corpus_dir, chunk_bytes):
    directory, rows = corpus_dir
    path = channel_path(str(directory), "ticket_daily")
    plan = plan_chunks(str(directory), ["ticket_daily"], chunk_bytes)
    recovered = [
        row for chunk in plan
        for row in parse_chunk(read_chunk(path, chunk.start, chunk.end))
    ]
    assert recovered == rows  # no gaps, no duplicates, stream order


def test_plan_covers_the_file_without_gaps(corpus_dir):
    directory, _ = corpus_dir
    plan = plan_chunks(str(directory), ["ticket_daily"], 100)
    assert plan[0].start == 0
    for before, after in zip(plan, plan[1:]):
        assert before.end == after.start
    import os
    assert plan[-1].end == os.path.getsize(
        channel_path(str(directory), "ticket_daily"))


def test_chunks_follow_channel_order(tmp_path):
    write_channel(tmp_path, "dhe_daily", [{"n": 1}])
    write_channel(tmp_path, "ticket_daily", [{"n": 2}])
    plan = plan_chunks(str(tmp_path), ["ticket_daily", "dhe_daily"])
    assert [c.channel for c in plan] == ["ticket_daily", "dhe_daily"]


def test_missing_and_empty_channels_yield_no_chunks(tmp_path):
    write_channel(tmp_path, "ticket_daily", [])
    plan = plan_chunks(str(tmp_path), ["ticket_daily", "dhe_daily"])
    assert plan == []


def test_chunk_bytes_must_be_positive(tmp_path):
    with pytest.raises(ValueError):
        plan_chunks(str(tmp_path), ["ticket_daily"], 0)


def test_oversized_line_owned_by_its_starting_chunk(tmp_path):
    rows = [{"n": 0}, {"n": 1, "pad": "y" * 500}, {"n": 2}]
    path = write_channel(tmp_path, "ticket_daily", rows)
    plan = plan_chunks(str(tmp_path), ["ticket_daily"], 16)
    recovered = [
        row["n"] for chunk in plan
        for row in parse_chunk(read_chunk(path, chunk.start, chunk.end))
    ]
    assert recovered == [0, 1, 2]
    # Chunks that land entirely inside the long line own nothing.
    assert any(
        read_chunk(path, c.start, c.end) == b"" for c in plan
    )


def test_iter_channel_rows_matches_chunked_reads(corpus_dir):
    directory, rows = corpus_dir
    assert list(iter_channel_rows(str(directory), "ticket_daily")) == rows
    assert list(iter_channel_rows(str(directory), "cache_edges")) == []


def test_channels_in_order_dedups_first_seen():
    assert channels_in_order(
        ["b", "a", "b", "c", "a"]) == ["b", "a", "c"]


def test_default_chunk_bytes_is_sane():
    assert DEFAULT_CHUNK_BYTES >= 1 << 16
