"""The analysis package's docstring examples must stay runnable.

docs-check CI runs these via ``--doctest-modules``; this keeps them in
tier 1 too, so a drifting docstring fails fast locally.
"""

import doctest

import pytest

import repro.analysis.aggregates
import repro.analysis.chunks
import repro.analysis.engine
import repro.analysis.reports


@pytest.mark.parametrize("module", [
    repro.analysis.chunks,
    repro.analysis.aggregates,
    repro.analysis.engine,
    repro.analysis.reports,
], ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, _ = doctest.testmod(module, verbose=False)
    assert failures == 0
