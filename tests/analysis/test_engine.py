"""Engine golden tests: streamed output is byte-identical to legacy.

The shared small-study dataset is saved to disk once, then rendered
through both input builders.  The chunk size is forced small so the
plan spans many chunks per channel — worker count, chunk boundaries,
and the partial cache must all be invisible in the output bytes.
"""

import os

import pytest

from repro.analysis import (
    CACHE_DIR_NAME,
    analyze,
    audit_inputs_from_analysis,
    audit_inputs_from_dataset,
    render_audit,
    render_report,
    report_inputs_from_analysis,
    report_inputs_from_dataset,
)
from repro.scanner import load_dataset, save_dataset

CHUNK = 1 << 16  # small enough for several chunks per daily channel


@pytest.fixture(scope="module")
def saved_dataset(small_study, tmp_path_factory):
    _, dataset = small_study
    directory = str(tmp_path_factory.mktemp("analysis-golden"))
    save_dataset(dataset, directory)
    return directory


@pytest.fixture(scope="module")
def legacy_text(saved_dataset):
    dataset = load_dataset(saved_dataset)
    report = render_report(report_inputs_from_dataset(dataset), min_days=2)
    audit = render_audit(audit_inputs_from_dataset(dataset), worst=7)
    return report, audit


def streamed_text(directory, **kwargs):
    result = analyze(directory, chunk_bytes=CHUNK, **kwargs)
    report = render_report(report_inputs_from_analysis(result), min_days=2)
    audit = render_audit(audit_inputs_from_analysis(result), worst=7)
    return result, report, audit


def test_cold_run_matches_legacy_and_misses_cache(saved_dataset, legacy_text):
    result, report, audit = streamed_text(saved_dataset, use_cache=True)
    assert result.chunks > 12  # the small chunk size actually split files
    assert result.cache_hits == 0
    assert result.cache_misses == result.chunks
    assert (report, audit) == legacy_text


def test_warm_run_hits_cache_and_stays_identical(saved_dataset, legacy_text):
    result, report, audit = streamed_text(saved_dataset, use_cache=True)
    assert result.cache_hits == result.chunks
    assert result.cache_misses == 0
    assert (report, audit) == legacy_text


def test_parallel_run_is_identical(saved_dataset, legacy_text):
    _, report, audit = streamed_text(
        saved_dataset, workers=2, use_cache=False)
    assert (report, audit) == legacy_text


def test_cache_lives_under_the_dataset(saved_dataset):
    cache_dir = os.path.join(saved_dataset, CACHE_DIR_NAME)
    assert os.path.isdir(cache_dir)
    assert all(name.endswith(".json") for name in os.listdir(cache_dir))


def test_stale_cache_entries_are_refolded(saved_dataset, legacy_text):
    cache_dir = os.path.join(saved_dataset, CACHE_DIR_NAME)
    victim = sorted(os.listdir(cache_dir))[0]
    with open(os.path.join(cache_dir, victim), "w", encoding="utf-8") as fh:
        fh.write('{"schema": "repro-analysis/0"}')
    result, report, audit = streamed_text(saved_dataset, use_cache=True)
    assert result.cache_misses == 1
    assert result.cache_hits == result.chunks - 1
    assert (report, audit) == legacy_text


def test_row_counts_match_the_dataset(saved_dataset, small_study):
    _, dataset = small_study
    result = analyze(saved_dataset, chunk_bytes=CHUNK)
    for channel in ("ticket_daily", "dhe_daily", "session_probes",
                    "cache_edges"):
        assert result.rows(channel) == len(getattr(dataset, channel))


def test_empty_dataset_renders_without_sections(tmp_path):
    from repro.scanner.datastore import write_meta

    directory = str(tmp_path / "empty")
    os.makedirs(directory)
    write_meta(directory, {"days": 0, "always_present": [], "ranks": {}})
    result = analyze(directory)
    assert result.chunks == 0
    report = render_report(report_inputs_from_analysis(result))
    audit = render_audit(audit_inputs_from_analysis(result))
    assert "prolonged STEK reuse" in report
    assert "Table 1" not in report  # no support scans -> no waterfalls
    assert "domains considered" in audit
