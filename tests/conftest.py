"""Session-scoped fixtures: a small ecosystem and one shared study run.

The ecosystem/study fixtures are deliberately small (a few hundred
domains, eight days) so the whole suite stays fast while still
exercising every experiment the paper runs.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.hosting import EcosystemConfig, build_ecosystem
from repro.scanner import StudyConfig, run_study

SMALL_POPULATION = 460
SMALL_SEED = 7
SMALL_DAYS = 8


def small_study_config() -> StudyConfig:
    return StudyConfig(
        days=SMALL_DAYS,
        seed=101,
        probe_domain_count=140,
        dhe_support_day=2,
        ecdhe_support_day=3,
        ticket_support_day=4,
        crossdomain_day=5,
        session_probe_day=5,
        ticket_probe_day=6,
    )


@pytest.fixture(scope="session")
def small_ecosystem_factory():
    """Factory for fresh small ecosystems (per-test mutation safe)."""

    def build(population: int = SMALL_POPULATION, seed: int = SMALL_SEED, **kwargs):
        return build_ecosystem(
            EcosystemConfig(population=population, seed=seed, **kwargs)
        )

    return build


@pytest.fixture(scope="session")
def small_study():
    """One shared (ecosystem, dataset) pair for analysis-layer tests.

    Session-scoped because the scan itself is the expensive part; tests
    must treat both objects as read-only.
    """
    ecosystem = build_ecosystem(
        EcosystemConfig(population=SMALL_POPULATION, seed=SMALL_SEED)
    )
    dataset = run_study(ecosystem, small_study_config())
    return ecosystem, dataset
