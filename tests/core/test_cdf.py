"""Empirical CDF tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cdf import CDF, survival_points


def test_fractions_basic():
    cdf = CDF([1, 2, 2, 3, 10])
    assert cdf.fraction_at_most(2) == 3 / 5
    assert cdf.fraction_less(2) == 1 / 5
    assert cdf.fraction_at_least(2) == 4 / 5
    assert cdf.fraction_greater(3) == pytest.approx(1 / 5)
    assert cdf.fraction_at_most(0) == 0.0
    assert cdf.fraction_at_most(10) == 1.0


def test_empty_cdf():
    cdf = CDF([])
    assert len(cdf) == 0
    assert cdf.fraction_at_most(5) == 0.0
    assert cdf.fraction_at_least(5) == 1.0
    with pytest.raises(ValueError):
        cdf.quantile(0.5)


def test_median_and_quantiles():
    cdf = CDF([1, 2, 3, 4, 5])
    assert cdf.median() == 3
    assert cdf.quantile(0.0) == 1
    assert cdf.quantile(1.0) == 5
    assert cdf.quantile(0.2) == 1


def test_quantile_bounds():
    cdf = CDF([1])
    with pytest.raises(ValueError):
        cdf.quantile(-0.1)
    with pytest.raises(ValueError):
        cdf.quantile(1.1)


def test_step_points():
    cdf = CDF([1, 1, 2, 5])
    assert cdf.step_points() == [(1.0, 0.5), (2.0, 0.75), (5.0, 1.0)]


def test_step_points_single_value():
    assert CDF([7, 7, 7]).step_points() == [(7.0, 1.0)]


def test_survival_points():
    cdf = CDF([1, 2])
    assert survival_points(cdf) == [(1.0, 0.5), (2.0, 0.0)]


def test_values_sorted():
    assert CDF([3, 1, 2]).values == (1.0, 2.0, 3.0)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False), min_size=1))
@settings(max_examples=60, deadline=None)
def test_cdf_monotone_and_bounded(values):
    cdf = CDF(values)
    points = cdf.step_points()
    fractions = [p for _, p in points]
    assert fractions == sorted(fractions)
    assert fractions[-1] == pytest.approx(1.0)
    for x, _ in points:
        assert 0.0 <= cdf.fraction_at_most(x) <= 1.0
        assert cdf.fraction_at_most(x) + cdf.fraction_greater(x) == pytest.approx(1.0)


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1),
       st.floats(min_value=0.01, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_quantile_is_attained_value(values, q):
    cdf = CDF(values)
    assert cdf.quantile(q) in cdf.values
