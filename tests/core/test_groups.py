"""Union-find and service-group construction tests."""

from hypothesis import given, settings, strategies as st

from repro.core.groups import (
    UnionFind,
    groups_from_edges,
    groups_from_shared_identifiers,
)
from repro.scanner.records import CrossDomainEdge, ScanObservation


def obs(domain, stek=None, kex=None):
    return ScanObservation(
        domain=domain, day=0, timestamp=0.0, success=True,
        ticket_issued=stek is not None, stek_id=stek, kex_public=kex,
    )


def test_union_find_basic():
    uf = UnionFind()
    uf.union("a", "b")
    uf.union("c", "d")
    assert uf.find("a") == uf.find("b")
    assert uf.find("a") != uf.find("c")
    uf.union("b", "c")
    assert uf.find("a") == uf.find("d")


def test_union_find_groups_sorted_by_size():
    uf = UnionFind()
    uf.union("a", "b")
    uf.union("b", "c")
    uf.add("lonely")
    groups = uf.groups()
    assert groups[0] == {"a", "b", "c"}
    assert groups[1] == {"lonely"}


def test_union_find_idempotent():
    uf = UnionFind()
    uf.union("a", "b")
    uf.union("a", "b")
    uf.union("b", "a")
    assert len(uf.groups()) == 1


@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=50))
@settings(max_examples=50, deadline=None)
def test_union_find_partition_property(pairs):
    """Union-find must agree with naive graph connected components."""
    uf = UnionFind()
    adjacency = {}
    for a, b in pairs:
        uf.union(a, b)
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    # Naive BFS components.
    seen = set()
    components = []
    for node in adjacency:
        if node in seen:
            continue
        stack, component = [node], set()
        while stack:
            current = stack.pop()
            if current in component:
                continue
            component.add(current)
            stack.extend(adjacency.get(current, ()))
        seen |= component
        components.append(component)
    expected = sorted(map(sorted, components))
    actual = sorted(map(sorted, uf.groups()))
    assert actual == expected


def test_groups_from_edges_transitive():
    """§5.1: id_a valid on b and id_b valid on c groups all three."""
    edges = [
        CrossDomainEdge(origin="a", acceptor="b"),
        CrossDomainEdge(origin="b", acceptor="c"),
    ]
    result = groups_from_edges(edges, ["a", "b", "c", "d"])
    assert result.group_count == 2
    assert {"a", "b", "c"} in [set(g.domains) for g in result.groups]
    assert result.singleton_count == 1


def test_groups_from_edges_all_probed_become_groups():
    result = groups_from_edges([], ["x", "y"])
    assert result.group_count == 2
    assert result.singleton_count == 2
    assert result.multi_domain_count == 0


def test_groups_labeled_by_dominant_as():
    edges = [CrossDomainEdge(origin="a", acceptor="b")]
    result = groups_from_edges(
        edges, ["a", "b"],
        domain_asn={"a": 13335, "b": 13335},
        as_names={13335: "cloudflare"},
    )
    assert result.groups[0].label == "cloudflare"


def test_groups_sorted_largest_first():
    edges = [
        CrossDomainEdge(origin="a", acceptor="b"),
        CrossDomainEdge(origin="x", acceptor="y"),
        CrossDomainEdge(origin="y", acceptor="z"),
    ]
    result = groups_from_edges(edges, ["a", "b", "x", "y", "z"])
    assert len(result.groups[0]) == 3
    assert len(result.groups[1]) == 2


def test_stek_groups_from_shared_ids():
    observations = [
        obs("a", stek="k1"), obs("b", stek="k1"),
        obs("c", stek="k2"),
    ]
    result = groups_from_shared_identifiers([observations], "stek")
    assert result.group_count == 2
    assert set(result.groups[0].domains) == {"a", "b"}
    assert result.mechanism == "stek"


def test_stek_groups_join_across_scans():
    """The paper merges the 6-hour and 30-minute scans before grouping."""
    scan1 = [obs("a", stek="k1"), obs("b", stek="k2")]
    scan2 = [obs("a", stek="k3"), obs("b", stek="k3")]  # rotated, shared
    result = groups_from_shared_identifiers([scan1, scan2], "stek")
    assert result.group_count == 1
    assert set(result.groups[0].domains) == {"a", "b"}


def test_dh_groups():
    observations = [
        obs("a", kex="v"), obs("b", kex="v"), obs("c", kex="w"), obs("d", kex="x"),
    ]
    result = groups_from_shared_identifiers([observations], "dh")
    assert result.group_count == 3
    assert result.domains_in_shared_groups() == 2


def test_unknown_identifier_kind():
    import pytest

    with pytest.raises(ValueError):
        groups_from_shared_identifiers([[]], "bogus")


def test_failed_observations_ignored():
    bad = ScanObservation(domain="a", day=0, timestamp=0.0, success=False,
                          ticket_issued=True, stek_id="k")
    result = groups_from_shared_identifiers([[bad]], "stek")
    assert result.group_count == 0


def test_grouping_result_statistics():
    observations = [obs("a", stek="k"), obs("b", stek="k"), obs("c", stek="z")]
    result = groups_from_shared_identifiers([observations], "stek")
    assert result.multi_domain_count == 1
    assert result.singleton_count == 1
    assert result.largest(1)[0].domains == frozenset({"a", "b"})
