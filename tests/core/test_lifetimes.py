"""Resumption-lifetime analysis tests."""

import pytest

from repro.core.lifetimes import (
    hint_cdf,
    honored_lifetime_cdf,
    lifetime_buckets,
    session_lifetime_by_domain,
    support_summary,
    unspecified_hint_count,
)
from repro.netsim.clock import HOUR, MINUTE
from repro.scanner.records import ResumptionProbeResult


def probe(domain="d.com", ok=True, issued=True, at_1s=True, delay=60.0,
          ceiling=False, hint=None, mechanism="session_id"):
    return ResumptionProbeResult(
        domain=domain,
        mechanism=mechanism,
        handshake_ok=ok,
        issued=issued,
        resumed_at_1s=at_1s,
        max_success_delay=delay,
        hit_probe_ceiling=ceiling,
        ticket_hint=hint,
    )


def test_support_summary_counts():
    probes = [
        probe(ok=True, issued=True, at_1s=True),
        probe(ok=True, issued=True, at_1s=False, delay=None),
        probe(ok=True, issued=False, at_1s=False, delay=None),
        probe(ok=False, issued=False, at_1s=False, delay=None),
    ]
    summary = support_summary(probes, "session_id")
    assert summary.probed == 4
    assert summary.handshake_ok == 3
    assert summary.issued == 2
    assert summary.resumed_at_1s == 1
    assert summary.honored_any == 1
    assert summary.issue_rate == 2 / 3
    assert summary.resume_rate == 1 / 3


def test_support_summary_empty():
    summary = support_summary([], "ticket")
    assert summary.issue_rate == 0.0 and summary.resume_rate == 0.0


def test_honored_lifetime_cdf_excludes_non_resuming():
    probes = [probe(delay=300.0), probe(delay=None)]
    cdf = honored_lifetime_cdf(probes)
    assert len(cdf) == 1


def test_ceiling_contributes_max_value():
    probes = [probe(delay=23 * HOUR, ceiling=True)]
    cdf = honored_lifetime_cdf(probes)
    assert cdf.values[0] == 24 * HOUR


def test_lifetime_buckets_match_distribution():
    probes = (
        [probe(domain=f"a{i}", delay=60.0) for i in range(61)]        # < 5 min
        + [probe(domain=f"b{i}", delay=30 * MINUTE) for i in range(21)]  # <= 1 h
        + [probe(domain=f"c{i}", delay=10 * HOUR) for i in range(17)]
        + [probe(domain=f"d{i}", delay=24 * HOUR, ceiling=True) for i in range(1)]
    )
    buckets = lifetime_buckets(probes)
    assert buckets.resuming_domains == 100
    assert buckets.under_5_minutes == 0.61
    assert buckets.at_most_1_hour == 0.82
    assert buckets.at_least_24_hours == pytest.approx(0.01)


def test_hint_cdf_only_specified():
    probes = [probe(hint=300), probe(hint=0), probe(hint=None), probe(hint=64800)]
    cdf = hint_cdf(probes)
    assert len(cdf) == 2
    assert cdf.fraction_at_most(300) == 0.5


def test_unspecified_hint_count():
    probes = [probe(hint=0), probe(hint=300), probe(hint=0, issued=False)]
    assert unspecified_hint_count(probes) == 1


def test_session_lifetime_by_domain():
    probes = [
        probe(domain="a.com", delay=300.0),
        probe(domain="b.com", delay=None),
        probe(domain="c.com", delay=10.0, ceiling=True),
    ]
    lifetimes = session_lifetime_by_domain(probes)
    assert lifetimes["a.com"] == 300.0
    assert "b.com" not in lifetimes
    assert lifetimes["c.com"] == 24 * HOUR


def test_session_lifetime_takes_max_of_duplicates():
    probes = [probe(domain="a.com", delay=60.0), probe(domain="a.com", delay=600.0)]
    assert session_lifetime_by_domain(probes)["a.com"] == 600.0
