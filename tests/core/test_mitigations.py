"""Mitigation counterfactual tests (§8.2)."""

import pytest

from repro.core.mitigations import (
    ALL_RECOMMENDATIONS,
    CAP_SESSION_CACHES,
    DISABLE_RESUMPTION,
    FRESH_DH_VALUES,
    ROTATE_STEKS_DAILY,
    MitigationPolicy,
    apply_policy,
    evaluate_mitigations,
    render_mitigation_report,
)
from repro.core.windows import VulnerabilityWindow
from repro.netsim.clock import DAY, HOUR


def sample_windows():
    return {
        "ticket-heavy.com": VulnerabilityWindow(
            "ticket-heavy.com", ticket_window=40 * DAY, session_cache_window=300.0
        ),
        "cache-heavy.com": VulnerabilityWindow(
            "cache-heavy.com", session_cache_window=10 * HOUR
        ),
        "dh-heavy.com": VulnerabilityWindow("dh-heavy.com", dh_window=20 * DAY),
        "tidy.com": VulnerabilityWindow("tidy.com", session_cache_window=60.0),
    }


def test_rotate_steks_caps_ticket_window():
    mitigated = apply_policy(sample_windows(), ROTATE_STEKS_DAILY)
    assert mitigated["ticket-heavy.com"].ticket_window == DAY
    # Other mechanisms untouched.
    assert mitigated["dh-heavy.com"].dh_window == 20 * DAY


def test_cap_session_caches():
    mitigated = apply_policy(sample_windows(), CAP_SESSION_CACHES)
    assert mitigated["cache-heavy.com"].session_cache_window == HOUR
    assert mitigated["tidy.com"].session_cache_window == 60.0  # already below


def test_fresh_dh_values_zeroes_dh():
    mitigated = apply_policy(sample_windows(), FRESH_DH_VALUES)
    assert mitigated["dh-heavy.com"].dh_window == 0.0
    assert mitigated["dh-heavy.com"].combined == 0.0


def test_disable_resumption_collapses_everything():
    mitigated = apply_policy(sample_windows(), DISABLE_RESUMPTION)
    assert all(w.combined == 0.0 for w in mitigated.values())


def test_all_recommendations_bound_combined_window():
    mitigated = apply_policy(sample_windows(), ALL_RECOMMENDATIONS)
    assert all(w.combined <= DAY for w in mitigated.values())


def test_policies_never_increase_windows():
    windows = sample_windows()
    for policy in (ROTATE_STEKS_DAILY, CAP_SESSION_CACHES, FRESH_DH_VALUES,
                   ALL_RECOMMENDATIONS, DISABLE_RESUMPTION):
        mitigated = apply_policy(windows, policy)
        for name in windows:
            assert mitigated[name].combined <= windows[name].combined


def test_evaluate_mitigations_report():
    report = evaluate_mitigations(sample_windows())
    assert report.baseline.over_24_hours == 2
    assert report.by_policy["all §8.2 recommendations"].over_24_hours == 0
    assert report.improvement_over_24h("all §8.2 recommendations") == 1.0
    # STEK rotation alone still leaves the DH-heavy domain exposed.
    assert report.by_policy["rotate STEKs daily"].over_24_hours == 1
    assert report.improvement_over_24h("rotate STEKs daily") == pytest.approx(0.5)


def test_improvement_with_zero_baseline():
    report = evaluate_mitigations(
        {"a": VulnerabilityWindow("a", session_cache_window=10.0)}
    )
    assert report.improvement_over_24h("rotate STEKs daily") == 0.0


def test_render_report():
    text = render_mitigation_report(evaluate_mitigations(sample_windows()))
    assert "baseline" in text
    assert "rotate STEKs daily" in text
    assert ">24h" in text


def test_custom_policy():
    policy = MitigationPolicy(name="weekly STEKs", max_ticket_window=7 * DAY)
    mitigated = apply_policy(sample_windows(), policy)
    assert mitigated["ticket-heavy.com"].ticket_window == 7 * DAY
