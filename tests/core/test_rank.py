"""Rank-tier tests (Figure 4 support)."""

from repro.core.rank import spans_by_tier, tier_counts, tiers_for_population
from repro.core.spans import DomainSpans, IdentifierSpan


def spans_map(entries):
    result = {}
    for domain, days in entries:
        ds = DomainSpans(domain=domain)
        ds.spans.append(IdentifierSpan(domain, "k", 0, days, days + 1))
        result[domain] = ds
    return result


def test_full_scale_tiers():
    tiers = tiers_for_population(1_000_000)
    assert [t.label for t in tiers] == [
        "Top 100", "Top 1K", "Top 10K", "Top 100K", "Top 1M",
    ]
    assert tiers[0].max_rank == 100
    assert tiers[3].max_rank == 100_000


def test_scaled_tiers_proportional():
    tiers = tiers_for_population(10_000)
    assert tiers[0].max_rank == 1       # Top 100 -> 1
    assert tiers[1].max_rank == 10      # Top 1K -> 10
    assert tiers[2].max_rank == 100
    assert tiers[3].max_rank == 1000


def test_outermost_tier_unbounded():
    tiers = tiers_for_population(500)
    # Pinned notable ranks can exceed the population; the Top-1M tier
    # must still include them.
    assert tiers[-1].max_rank > 1_000_000


def test_tiers_nested():
    tiers = tiers_for_population(5000)
    ranks = [t.max_rank for t in tiers]
    assert ranks == sorted(ranks)


def test_spans_by_tier_nesting():
    spans = spans_map([("top.com", 30), ("mid.com", 5), ("tail.com", 0)])
    ranks = {"top.com": 1, "mid.com": 50, "tail.com": 900}
    tiers = tiers_for_population(1000)
    result = spans_by_tier(spans, ranks, tiers)
    assert len(result["Top 1M"]) == 3
    # Top 100 at population 1000 scales to rank <= 0.1 -> max(1) = 1.
    assert len(result[tiers[0].label]) >= 1
    # Every tier is a subset of the next.
    sizes = [len(result[t.label]) for t in tiers]
    assert sizes == sorted(sizes)


def test_unranked_domains_fall_outside_small_tiers():
    spans = spans_map([("mystery.com", 10)])
    tiers = tiers_for_population(1000)
    result = spans_by_tier(spans, {}, tiers)
    # An unranked domain (sentinel rank 2^30) is excluded from the
    # inner tiers but still lands in the unbounded outermost one.
    assert len(result[tiers[0].label]) == 0
    assert len(result[tiers[3].label]) == 0
    assert len(result["Top 1M"]) == 1


def test_tier_counts():
    spans = spans_map([("a", 1), ("b", 2), ("c", 3)])
    ranks = {"a": 1, "b": 2, "c": 600}
    tiers = tiers_for_population(1000)
    counts = tier_counts(spans, ranks, tiers)
    assert counts["Top 1M"] == 3
    # Population 1000: "Top 1K" scales to rank <= 1, "Top 10K" to <= 10.
    assert counts[tiers[1].label] == 1
    assert counts[tiers[2].label] == 2
    assert counts[tiers[3].label] == 2
