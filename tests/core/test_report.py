"""Report rendering tests."""

from repro.core.groups import GroupingResult, ServiceGroup
from repro.core.report import (
    TopReuseRow,
    describe_window,
    largest_group_rows,
    render_exposure_summary,
    render_largest_groups,
    render_lifetime_buckets,
    render_top_reuse,
    render_waterfalls,
    top_reuse_rows,
)
from repro.core.lifetimes import lifetime_buckets
from repro.core.spans import DomainSpans, IdentifierSpan
from repro.core.support import SupportWaterfall
from repro.core.windows import VulnerabilityWindow, summarize_exposure
from repro.netsim.clock import DAY, HOUR
from repro.scanner.records import ResumptionProbeResult


def spans_map(entries):
    result = {}
    for domain, days in entries:
        ds = DomainSpans(domain=domain)
        ds.spans.append(IdentifierSpan(domain, "k", 0, days, 1))
        result[domain] = ds
    return result


def test_top_reuse_rows_filter_and_order():
    spans = spans_map([("popular.com", 10), ("tail.com", 40), ("short.com", 2)])
    ranks = {"popular.com": 5, "tail.com": 900, "short.com": 1}
    rows = top_reuse_rows(spans, ranks, min_days=7, top_n=10)
    # Days are inclusive (paper convention): gap 10 reads as 11 days.
    assert [(r.domain, r.days) for r in rows] == [
        ("popular.com", 11), ("tail.com", 41),
    ]
    assert rows[0].rank == 5


def test_top_reuse_rows_top_n():
    spans = spans_map([(f"d{i}.com", 10) for i in range(20)])
    ranks = {f"d{i}.com": i + 1 for i in range(20)}
    rows = top_reuse_rows(spans, ranks, min_days=7, top_n=10)
    assert len(rows) == 10
    assert rows[0].rank == 1


def test_render_top_reuse_contains_rows():
    spans = spans_map([("yahoo.com", 62)])  # inclusive 63, like the paper
    text = render_top_reuse(
        top_reuse_rows(spans, {"yahoo.com": 5}), "Table 2: STEK reuse"
    )
    assert "Table 2" in text
    assert "yahoo.com" in text
    assert "63" in text


def test_largest_group_rows_numbering():
    grouping = GroupingResult(
        groups=[
            ServiceGroup(frozenset({"a", "b", "c"}), label="cloudflare"),
            ServiceGroup(frozenset({"d", "e"}), label="cloudflare"),
            ServiceGroup(frozenset({"f"}), label="shopify"),
        ],
        mechanism="stek",
    )
    rows = largest_group_rows(grouping, top_n=3)
    assert rows == [("cloudflare #1", 3), ("cloudflare #2", 2), ("shopify", 1)]


def test_largest_group_rows_unlabeled():
    grouping = GroupingResult(groups=[ServiceGroup(frozenset({"x"}))])
    assert largest_group_rows(grouping)[0][0] == "(unlabeled)"


def test_render_largest_groups():
    grouping = GroupingResult(
        groups=[ServiceGroup(frozenset({"a", "b"}), label="google")],
        mechanism="stek",
    )
    text = render_largest_groups(grouping, "Table 6")
    assert "google" in text and "Table 6" in text
    assert "groups=1" in text


def test_render_exposure_summary():
    summary = summarize_exposure(
        {"a": VulnerabilityWindow("a", ticket_window=40 * DAY)}
    )
    text = render_exposure_summary(summary)
    assert "window > 30 days" in text
    assert "(100%)" in text


def test_render_lifetime_buckets():
    probes = [
        ResumptionProbeResult(domain="a", handshake_ok=True, issued=True,
                              resumed_at_1s=True, max_success_delay=60.0)
    ]
    text = render_lifetime_buckets(lifetime_buckets(probes), "Session ID")
    assert "Session ID" in text
    assert "100%" in text


def test_render_waterfalls():
    waterfall = SupportWaterfall(
        label="ticket", list_size=100, non_blacklisted=99, browser_trusted=80,
        supporting=60, repeated_value=58, always_same_value=50,
    )
    text = render_waterfalls([waterfall])
    assert "Session Tickets" in text
    assert "99" in text and "50" in text


def test_describe_window():
    assert describe_window(0) == "none observed"
    assert describe_window(300) == "5 min"
    assert describe_window(63 * DAY) == "63 d"


def test_describe_window_edge_durations():
    # Negative or zero exposure reads as "none observed", never "-5 s".
    assert describe_window(-1) == "none observed"
    # Unit boundaries: just under a minute stays in seconds, exactly a
    # minute switches units, and so on up the ladder.
    assert describe_window(59) == "59 s"
    assert describe_window(60) == "1 min"
    assert describe_window(HOUR) == "1 h"
    assert describe_window(DAY - 1) == "24.0 h"
    assert describe_window(DAY) == "1 d"
    # Fractional days keep one decimal (the audit table's "1.5 d").
    assert describe_window(36 * HOUR) == "1.5 d"


def test_top_reuse_row_fields_and_unranked_sentinel():
    spans = spans_map([("unranked.example", 30)])
    rows = top_reuse_rows(spans, ranks={}, min_days=7)
    assert len(rows) == 1
    row = rows[0]
    assert isinstance(row, TopReuseRow)
    assert (row.domain, row.days) == ("unranked.example", 31)
    # Domains missing from the rank map sort last, not first.
    assert row.rank == 1 << 30


def test_top_reuse_rows_tie_break_preserves_span_order():
    # Equal ranks: sort() is stable, so first-seen span order survives —
    # the property the streaming path's merge rules must preserve.
    spans = spans_map([("b.example", 20), ("a.example", 20)])
    ranks = {"b.example": 7, "a.example": 7}
    rows = top_reuse_rows(spans, ranks, min_days=7)
    assert [r.domain for r in rows] == ["b.example", "a.example"]


def test_render_top_reuse_empty_rows_is_header_only():
    text = render_top_reuse([], "Table 3: DHE reuse")
    lines = text.splitlines()
    assert lines[0] == "Table 3: DHE reuse"
    assert lines[1] == ""
    assert "Rank" in lines[2] and "Domain" in lines[2]
    assert len(lines) == 3


def test_render_top_reuse_row_formatting():
    row = TopReuseRow(rank=12, domain="example.org", days=63)
    text = render_top_reuse([row], "t")
    assert text.splitlines()[-1] == f"{12:>6}  {'example.org':<28} {63:>6}"
