"""Offline rotation-estimation tests."""

from repro.core.rotation import (
    consistent_with_spans,
    estimate_rotation,
    rotation_policy_histogram,
)
from repro.core.spans import stek_spans
from repro.scanner.records import ScanObservation


def obs(domain, day, stek, success=True):
    return ScanObservation(
        domain=domain, day=day, timestamp=day * 86400.0, success=success,
        ticket_issued=True, stek_id=stek,
    )


def daily_rotator(domain, days):
    return [obs(domain, d, f"{domain}-key-{d}") for d in range(days)]


def static_domain(domain, days):
    return [obs(domain, d, f"{domain}-key") for d in range(days)]


def weekly_rotator(domain, days, interval=7):
    return [obs(domain, d, f"{domain}-key-{d // interval}") for d in range(days)]


def test_static_domain_detected():
    estimates = estimate_rotation(static_domain("a.com", 20))
    estimate = estimates["a.com"]
    assert estimate.policy == "static"
    assert not estimate.rotates
    assert estimate.observed_keys == 1


def test_daily_rotator_detected():
    estimates = estimate_rotation(daily_rotator("a.com", 20))
    estimate = estimates["a.com"]
    assert estimate.policy == "daily"
    assert estimate.estimated_interval_days == 1.0
    assert estimate.observed_keys == 20


def test_weekly_rotator_detected():
    estimates = estimate_rotation(weekly_rotator("a.com", 35))
    estimate = estimates["a.com"]
    assert estimate.policy == "multi-day"
    assert estimate.estimated_interval_days == 7.0


def test_single_change_uses_stable_stretch():
    observations = (
        [obs("a.com", d, "k1") for d in range(0, 20)]
        + [obs("a.com", d, "k2") for d in range(20, 26)]
    )
    estimate = estimate_rotation(observations)["a.com"]
    assert estimate.rotates
    assert estimate.estimated_interval_days >= 18


def test_failed_and_ticketless_observations_ignored():
    observations = daily_rotator("a.com", 5) + [
        obs("a.com", 9, "ignored", success=False),
        ScanObservation(domain="a.com", day=10, timestamp=0.0, success=True),
    ]
    estimate = estimate_rotation(observations)["a.com"]
    assert estimate.observation_days == 5


def test_domain_filter():
    observations = daily_rotator("a.com", 5) + static_domain("b.com", 5)
    estimates = estimate_rotation(observations, domains={"b.com"})
    assert set(estimates) == {"b.com"}


def test_policy_histogram():
    observations = (
        daily_rotator("daily.com", 10)
        + static_domain("static.com", 10)
        + weekly_rotator("weekly.com", 30)
    )
    histogram = rotation_policy_histogram(estimate_rotation(observations))
    assert histogram == {"daily": 1, "static": 1, "multi-day": 1}


def test_estimates_consistent_with_spans():
    observations = (
        daily_rotator("daily.com", 15)
        + static_domain("static.com", 15)
        + weekly_rotator("weekly.com", 30)
    )
    estimates = estimate_rotation(observations)
    spans = stek_spans(observations)
    assert consistent_with_spans(estimates, spans)


def test_inconsistency_detected():
    from repro.core.rotation import RotationEstimate

    observations = static_domain("a.com", 30)
    spans = stek_spans(observations)  # span 29 days
    fake = {
        "a.com": RotationEstimate(
            domain="a.com", observed_keys=5, observation_days=30,
            estimated_interval_days=2.0, policy="multi-day",
        )
    }
    assert not consistent_with_spans(fake, spans)


def test_jitter_between_backends_still_estimates():
    """Alternating unsynchronized backends must not produce a bogus
    sub-daily estimate for multi-day keys."""
    observations = []
    for day in range(24):
        backend = day % 2
        key_index = day // 8  # both backends rotate every 8 days
        observations.append(obs("a.com", day, f"b{backend}-k{key_index}"))
    estimate = estimate_rotation(observations)["a.com"]
    # Changes happen every day due to backend flipping; the estimator is
    # day-granular and conservative: it reports the fastest apparent
    # rotation, a *lower bound* on key lifetime.
    assert estimate.rotates
    assert estimate.estimated_interval_days >= 1.0
