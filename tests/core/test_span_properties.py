"""Property-based tests for the span estimator against simulated
rotation schedules (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.spans import consecutive_spans, stek_spans
from repro.scanner.records import ScanObservation


def observations_for_schedule(rotation_days, study_days, missed_days=frozenset()):
    """Daily observations of a domain rotating every ``rotation_days``."""
    result = []
    for day in range(study_days):
        if day in missed_days:
            continue
        key_index = day // rotation_days
        result.append(ScanObservation(
            domain="x.com", day=day, timestamp=day * 86400.0, success=True,
            ticket_issued=True, stek_id=f"key-{key_index}",
        ))
    return result


@given(rotation=st.integers(min_value=1, max_value=20),
       study=st.integers(min_value=2, max_value=63))
@settings(max_examples=80, deadline=None)
def test_span_bounded_by_rotation_interval(rotation, study):
    observations = observations_for_schedule(rotation, study)
    spans = stek_spans(observations)
    entry = spans["x.com"]
    # A key rotated every R days is observed on at most R distinct days:
    # max gap span <= R-1.
    assert entry.max_span_days <= rotation - 1 + 0


@given(rotation=st.integers(min_value=2, max_value=15),
       study=st.integers(min_value=30, max_value=63))
@settings(max_examples=50, deadline=None)
def test_full_keys_span_exactly_interval(rotation, study):
    observations = observations_for_schedule(rotation, study)
    spans = stek_spans(observations)
    complete_keys = [s for s in spans["x.com"].spans
                     if s.first_day > 0 and s.last_day < study - 1]
    for span in complete_keys:
        assert span.span_days == rotation - 1


@given(rotation=st.integers(min_value=3, max_value=20),
       study=st.integers(min_value=25, max_value=63),
       data=st.data())
@settings(max_examples=60, deadline=None)
def test_missed_days_never_grow_spans(rotation, study, data):
    missed = data.draw(st.sets(st.integers(min_value=0, max_value=study - 1),
                               max_size=study // 3))
    full = stek_spans(observations_for_schedule(rotation, study))
    sparse = stek_spans(observations_for_schedule(rotation, study,
                                                  frozenset(missed)))
    if "x.com" not in sparse:
        return  # everything missed
    assert sparse["x.com"].max_span_days <= full["x.com"].max_span_days


@given(rotation=st.integers(min_value=4, max_value=20),
       study=st.integers(min_value=25, max_value=63),
       data=st.data())
@settings(max_examples=60, deadline=None)
def test_first_last_dominates_consecutive(rotation, study, data):
    missed = data.draw(st.sets(st.integers(min_value=1, max_value=study - 2),
                               max_size=study // 4))
    observations = observations_for_schedule(rotation, study, frozenset(missed))
    if not observations:
        return
    fl = stek_spans(observations)
    co = consecutive_spans(observations)
    assert fl["x.com"].max_span_days >= co["x.com"].max_span_days


@given(study=st.integers(min_value=1, max_value=63))
@settings(max_examples=30, deadline=None)
def test_static_key_spans_whole_study(study):
    observations = observations_for_schedule(10**6, study)
    spans = stek_spans(observations)
    assert spans["x.com"].max_span_days == study - 1
    assert spans["x.com"].max_days_inclusive == study
