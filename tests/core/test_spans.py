"""Span-estimator tests (synthetic observations, no ecosystem needed)."""

import pytest

from repro.core.spans import (
    collect_spans,
    consecutive_spans,
    kex_spans,
    max_span_cdf,
    reuse_within_scan,
    span_fractions,
    stek_spans,
)
from repro.scanner.records import ScanObservation


def obs(domain, day, stek=None, kex=None, kex_kind="ecdhe", success=True):
    return ScanObservation(
        domain=domain,
        day=day,
        timestamp=day * 86400.0,
        success=success,
        ticket_issued=stek is not None,
        stek_id=stek,
        kex_public=kex,
        kex_kind=kex_kind if kex else None,
    )


def test_single_day_span_is_zero():
    spans = stek_spans([obs("a.com", 3, stek="k1")])
    assert spans["a.com"].max_span_days == 0


def test_first_last_seen_span():
    spans = stek_spans([
        obs("a.com", 0, stek="k1"),
        obs("a.com", 5, stek="k1"),
    ])
    assert spans["a.com"].max_span_days == 5


def test_jitter_does_not_split_span():
    """An interleaved other key (LB flip) must not break the span."""
    spans = stek_spans([
        obs("a.com", 0, stek="k1"),
        obs("a.com", 1, stek="OTHER"),
        obs("a.com", 2, stek="k1"),
        obs("a.com", 3, stek="OTHER"),
        obs("a.com", 9, stek="k1"),
    ])
    assert spans["a.com"].max_span_days == 9


def test_missed_day_does_not_split_span():
    spans = stek_spans([
        obs("a.com", 0, stek="k1"),
        # day 1: scan failed
        obs("a.com", 2, stek="k1"),
    ])
    assert spans["a.com"].max_span_days == 2


def test_consecutive_estimator_splits_on_gap():
    observations = [
        obs("a.com", 0, stek="k1"),
        obs("a.com", 2, stek="k1"),
    ]
    spans = consecutive_spans(observations)
    assert spans["a.com"].max_span_days == 0  # split into two 1-day runs
    assert len(spans["a.com"].spans) == 2


def test_consecutive_estimator_keeps_unbroken_run():
    observations = [obs("a.com", d, stek="k1") for d in range(5)]
    spans = consecutive_spans(observations)
    assert spans["a.com"].max_span_days == 4


def test_rotation_yields_multiple_spans():
    observations = (
        [obs("a.com", d, stek="k1") for d in range(0, 3)]
        + [obs("a.com", d, stek="k2") for d in range(3, 9)]
    )
    spans = stek_spans(observations)
    assert len(spans["a.com"].spans) == 2
    assert spans["a.com"].max_span_days == 5  # k2: days 3..8


def test_failed_observations_ignored():
    spans = stek_spans([
        obs("a.com", 0, stek="k1"),
        obs("a.com", 9, stek="k1", success=False),
    ])
    assert spans["a.com"].max_span_days == 0


def test_domain_filter():
    observations = [obs("a.com", 0, stek="k1"), obs("b.com", 0, stek="k2")]
    spans = stek_spans(observations, domains={"a.com"})
    assert set(spans) == {"a.com"}


def test_non_ticket_observations_excluded_from_stek_spans():
    spans = stek_spans([obs("a.com", 0, kex="aabb")])
    assert "a.com" not in spans


def test_kex_spans_by_kind():
    observations = [
        obs("a.com", 0, kex="dd", kex_kind="dhe"),
        obs("a.com", 4, kex="dd", kex_kind="dhe"),
        obs("a.com", 0, kex="ee", kex_kind="ecdhe"),
    ]
    dhe = kex_spans(observations, kind="dhe")
    assert dhe["a.com"].max_span_days == 4
    ecdhe = kex_spans(observations, kind="ecdhe")
    assert ecdhe["a.com"].max_span_days == 0


def test_span_fractions():
    observations = []
    for index, span_days in enumerate([0, 0, 2, 10, 40]):
        domain = f"d{index}.com"
        observations.append(obs(domain, 0, stek="k"))
        if span_days:
            observations.append(obs(domain, span_days, stek="k"))
    fractions = span_fractions(stek_spans(observations))
    assert fractions[1] == pytest.approx(3 / 5)
    assert fractions[7] == pytest.approx(2 / 5)
    assert fractions[30] == pytest.approx(1 / 5)


def test_max_span_cdf():
    observations = [obs("a.com", 0, stek="k"), obs("a.com", 7, stek="k"),
                    obs("b.com", 1, stek="j")]
    cdf = max_span_cdf(stek_spans(observations))
    assert len(cdf) == 2
    assert cdf.fraction_at_least(7) == 0.5


def test_observation_counts_tracked():
    observations = [obs("a.com", d, stek="k") for d in (0, 0, 1, 5)]
    spans = stek_spans(observations)
    assert spans["a.com"].spans[0].observations == 4


def test_reuse_within_scan():
    observations = [
        obs("a.com", 0, kex="v1"), obs("a.com", 0, kex="v1"), obs("a.com", 0, kex="v2"),
        obs("b.com", 0, kex="w1"), obs("b.com", 0, kex="w2"),
    ]
    tallies = reuse_within_scan(observations)
    assert tallies["a.com"]["v1"] == 2
    assert max(tallies["b.com"].values()) == 1


def test_identifier_spans_independent_per_domain():
    """The same STEK id on two domains is two (domain, id) spans."""
    observations = [
        obs("a.com", 0, stek="shared"), obs("a.com", 3, stek="shared"),
        obs("b.com", 1, stek="shared"),
    ]
    spans = stek_spans(observations)
    assert spans["a.com"].max_span_days == 3
    assert spans["b.com"].max_span_days == 0
