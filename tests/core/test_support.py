"""Table 1 support-waterfall tests."""

import pytest

from repro.core.support import support_waterfall
from repro.scanner.records import ScanObservation


def obs(domain, success=True, trusted=True, stek=None, kex=None, kex_kind="ecdhe"):
    return ScanObservation(
        domain=domain, day=0, timestamp=0.0, success=success,
        cert_trusted=trusted, ticket_issued=stek is not None, stek_id=stek,
        kex_public=kex, kex_kind=kex_kind if kex else None,
    )


def test_ticket_waterfall_counts():
    observations = (
        # a: trusted, always same STEK across 3 connections
        [obs("a", stek="k1")] * 3
        # b: trusted, STEK rotated mid-scan (repeats but not all-same)
        + [obs("b", stek="x"), obs("b", stek="x"), obs("b", stek="y")]
        # c: trusted, no tickets
        + [obs("c")] * 3
        # d: untrusted cert
        + [obs("d", trusted=False, stek="z")] * 3
        # e: never connected
        + [obs("e", success=False)] * 3
    )
    waterfall = support_waterfall(observations, "ticket", list_size=10, non_blacklisted=9)
    assert waterfall.list_size == 10
    assert waterfall.non_blacklisted == 9
    assert waterfall.browser_trusted == 3   # a, b, c
    assert waterfall.supporting == 2        # a, b issue tickets
    assert waterfall.repeated_value == 2    # both repeated a value
    assert waterfall.always_same_value == 1 # only a


def test_kex_waterfall_counts():
    observations = (
        [obs("a", kex="v", kex_kind="dhe")] * 2
        + [obs("b", kex="v1", kex_kind="dhe"), obs("b", kex="v2", kex_kind="dhe")]
        + [obs("c", kex="w", kex_kind="ecdhe")] * 2  # wrong family
    )
    waterfall = support_waterfall(observations, "dhe", list_size=5, non_blacklisted=5)
    assert waterfall.supporting == 2
    assert waterfall.repeated_value == 1     # a only
    assert waterfall.always_same_value == 1


def test_single_connection_cannot_count_as_all_same():
    observations = [obs("a", stek="k")]
    waterfall = support_waterfall(observations, "ticket", 1, 1)
    assert waterfall.supporting == 1
    assert waterfall.repeated_value == 0
    assert waterfall.always_same_value == 0


def test_trust_is_any_connection():
    observations = [obs("a", trusted=False), obs("a", trusted=True)]
    waterfall = support_waterfall(observations, "ticket", 1, 1)
    assert waterfall.browser_trusted == 1


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        support_waterfall([], "tls13", 0, 0)


def test_rows_rendering_labels():
    waterfall = support_waterfall([obs("a", stek="k")] * 2, "ticket", 5, 5)
    rows = dict(waterfall.rows())
    assert rows["Alexa 1M domains"] == 5
    assert rows["Issue session tickets"] == 1
    assert rows[">= 2x same STEK ID"] == 1

    dhe_waterfall = support_waterfall([], "dhe", 5, 5)
    labels = [label for label, _ in dhe_waterfall.rows()]
    assert "Support DHE ciphers" in labels
    assert ">= 2x same server KEX value" in labels
