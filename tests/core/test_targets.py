"""Target-value (blast radius) ranking tests (§6)."""

import pytest

from repro.core.groups import GroupingResult, ServiceGroup
from repro.core.spans import DomainSpans, IdentifierSpan
from repro.core.targets import (
    rank_targets,
    render_target_ranking,
    spans_to_window_seconds,
)
from repro.netsim.clock import DAY, HOUR


def grouping(groups):
    return GroupingResult(
        groups=[ServiceGroup(frozenset(domains), label=label, mechanism="stek")
                for label, domains in groups],
        mechanism="stek",
    )


def test_blast_radius_is_members_times_window():
    g = grouping([("cdn", {"a", "b", "c"})])
    windows = {"a": 2 * DAY, "b": 2 * DAY, "c": 2 * DAY}
    targets = rank_targets(g, windows)
    assert targets[0].blast_radius_domain_days == pytest.approx(6.0)
    assert targets[0].member_domains == 3


def test_big_short_lived_vs_small_long_lived():
    """A huge fast-rotating group can be worth less than a small static
    one — the paper's CloudFlare-vs-Fastly contrast."""
    g = grouping([
        ("cloudflare", {f"c{i}" for i in range(100)}),
        ("fastly", {f"f{i}" for i in range(5)}),
    ])
    windows = {f"c{i}": 12 * HOUR for i in range(100)}
    windows.update({f"f{i}": 63 * DAY for i in range(5)})
    targets = rank_targets(g, windows)
    by_label = {t.label: t for t in targets}
    assert by_label["fastly"].blast_radius_domain_days == pytest.approx(315.0)
    assert by_label["cloudflare"].blast_radius_domain_days == pytest.approx(50.0)
    assert targets[0].label == "fastly"


def test_median_window_used():
    g = grouping([("mixed", {"a", "b", "c"})])
    windows = {"a": 1 * DAY, "b": 3 * DAY, "c": 100 * DAY}
    targets = rank_targets(g, windows)
    assert targets[0].median_window_seconds == 3 * DAY


def test_unmeasured_domains_skipped():
    g = grouping([("partial", {"a", "b"}), ("dark", {"x"})])
    targets = rank_targets(g, {"a": DAY})
    labels = [t.label for t in targets]
    assert "partial" in labels and "dark" not in labels


def test_min_members_filter():
    g = grouping([("big", {"a", "b"}), ("solo", {"c"})])
    windows = {"a": DAY, "b": DAY, "c": 100 * DAY}
    targets = rank_targets(g, windows, min_members=2)
    assert [t.label for t in targets] == ["big"]


def test_top_n_limit():
    g = grouping([(f"g{i}", {f"d{i}"}) for i in range(10)])
    windows = {f"d{i}": (i + 1) * DAY for i in range(10)}
    targets = rank_targets(g, windows, top_n=3)
    assert len(targets) == 3
    assert targets[0].label == "g9"


def test_spans_to_window_seconds():
    entry = DomainSpans(domain="a")
    entry.spans.append(IdentifierSpan("a", "k", 0, 5, 6))
    assert spans_to_window_seconds({"a": entry}) == {"a": 5 * DAY}


def test_render_ranking():
    g = grouping([("yandex", {"y1", "y2"})])
    text = render_target_ranking(
        rank_targets(g, {"y1": 63 * DAY, "y2": 63 * DAY}),
        "Targeting brief",
    )
    assert "Targeting brief" in text
    assert "yandex" in text
    assert "domain-days" in text


def test_render_empty():
    text = render_target_ranking([], "Nothing")
    assert "no shared secrets" in text
