"""Vulnerability-window computation tests (§6)."""

from repro.core.spans import DomainSpans, IdentifierSpan
from repro.core.windows import (
    VulnerabilityWindow,
    combine_windows,
    combined_window_cdf,
    per_mechanism_cdfs,
    summarize_exposure,
)
from repro.netsim.clock import DAY, HOUR


def spans(domain, days):
    entry = DomainSpans(domain=domain)
    entry.spans.append(
        IdentifierSpan(domain=domain, identifier="k", first_day=0,
                       last_day=days, observations=days + 1)
    )
    return {domain: entry}


def test_combined_is_max_of_mechanisms():
    window = VulnerabilityWindow(
        domain="a", ticket_window=3 * DAY,
        session_cache_window=300.0, dh_window=10 * DAY,
    )
    assert window.combined == 10 * DAY
    assert window.dominant_mechanism == "dh"


def test_dominant_mechanism_labels():
    assert VulnerabilityWindow("a").dominant_mechanism == "none"
    assert VulnerabilityWindow("a", ticket_window=1.0).dominant_mechanism == "ticket"
    assert VulnerabilityWindow(
        "a", session_cache_window=2.0
    ).dominant_mechanism == "session_cache"


def test_combine_windows_merges_sources():
    windows = combine_windows(
        stek_spans_by_domain=spans("a.com", 10),
        session_lifetimes={"a.com": 600.0, "b.com": 36000.0},
        dhe_spans_by_domain=spans("c.com", 40),
    )
    assert windows["a.com"].ticket_window == 10 * DAY
    assert windows["a.com"].session_cache_window == 600.0
    assert windows["b.com"].combined == 36000.0
    assert windows["c.com"].dh_window == 40 * DAY
    assert set(windows) == {"a.com", "b.com", "c.com"}


def test_combine_windows_dh_takes_max_family():
    windows = combine_windows(
        dhe_spans_by_domain=spans("a.com", 5),
        ecdhe_spans_by_domain=spans("a.com", 9),
    )
    assert windows["a.com"].dh_window == 9 * DAY


def test_combine_windows_domain_universe():
    windows = combine_windows(
        session_lifetimes={"a.com": 10.0},
        domains=["a.com", "quiet.com"],
    )
    assert windows["quiet.com"].combined == 0.0
    assert len(windows) == 2


def test_single_day_span_counts_zero():
    windows = combine_windows(stek_spans_by_domain=spans("a.com", 0))
    assert windows["a.com"].ticket_window == 0.0


def test_summarize_exposure_thresholds():
    windows = {
        "h": VulnerabilityWindow("h", session_cache_window=2 * HOUR),
        "d": VulnerabilityWindow("d", ticket_window=2 * DAY),
        "w": VulnerabilityWindow("w", ticket_window=10 * DAY),
        "m": VulnerabilityWindow("m", dh_window=40 * DAY),
    }
    summary = summarize_exposure(windows)
    assert summary.domains == 4
    assert summary.over_24_hours == 3
    assert summary.over_7_days == 2
    assert summary.over_30_days == 1
    assert summary.fraction_over_30_days == 0.25


def test_boundary_is_strictly_greater():
    windows = {"x": VulnerabilityWindow("x", ticket_window=24 * HOUR)}
    summary = summarize_exposure(windows)
    assert summary.over_24_hours == 0


def test_combined_window_cdf():
    windows = {
        "a": VulnerabilityWindow("a", ticket_window=DAY),
        "b": VulnerabilityWindow("b"),
    }
    cdf = combined_window_cdf(windows)
    assert cdf.fraction_at_most(0) == 0.5
    assert cdf.fraction_at_most(DAY) == 1.0


def test_per_mechanism_cdfs():
    windows = {
        "a": VulnerabilityWindow("a", ticket_window=DAY, dh_window=2 * DAY),
    }
    cdfs = per_mechanism_cdfs(windows)
    assert cdfs["ticket"].values == (float(DAY),)
    assert cdfs["dh"].values == (float(2 * DAY),)
    assert cdfs["session_cache"].values == (0.0,)


def test_empty_exposure_summary():
    summary = summarize_exposure({})
    assert summary.domains == 0
    assert summary.fraction_over_24_hours == 0.0
