"""AES correctness against FIPS 197 / NIST vectors."""

import pytest

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.rng import DeterministicRandom

FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")


def test_fips197_aes128():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
    assert AES(key).encrypt_block(FIPS_PLAINTEXT) == expected


def test_fips197_aes192():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
    expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
    assert AES(key).encrypt_block(FIPS_PLAINTEXT) == expected


def test_fips197_aes256():
    key = bytes.fromhex(
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
    )
    expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
    assert AES(key).encrypt_block(FIPS_PLAINTEXT) == expected


def test_nist_ecb_kat_aes128():
    # NIST SP 800-38A F.1.1 (ECB-AES128) first block.
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
    expected = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
    assert AES(key).encrypt_block(plaintext) == expected


@pytest.mark.parametrize("key_len", [16, 24, 32])
def test_decrypt_inverts_encrypt(key_len):
    rng = DeterministicRandom(key_len)
    cipher = AES(rng.random_bytes(key_len))
    for _ in range(25):
        block = rng.random_bytes(BLOCK_SIZE)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_invalid_key_length_rejected():
    for bad in (0, 15, 17, 31, 33):
        with pytest.raises(ValueError):
            AES(bytes(bad))


def test_invalid_block_length_rejected():
    cipher = AES(bytes(16))
    with pytest.raises(ValueError):
        cipher.encrypt_block(b"short")
    with pytest.raises(ValueError):
        cipher.decrypt_block(bytes(17))


def test_different_keys_different_ciphertexts():
    block = bytes(16)
    assert AES(bytes(16)).encrypt_block(block) != AES(b"\x01" * 16).encrypt_block(block)


def test_encryption_is_deterministic():
    key = bytes(range(16))
    assert AES(key).encrypt_block(FIPS_PLAINTEXT) == AES(key).encrypt_block(FIPS_PLAINTEXT)


def test_avalanche_one_bit_flip():
    key = bytes(range(16))
    cipher = AES(key)
    base = cipher.encrypt_block(FIPS_PLAINTEXT)
    flipped_input = bytes([FIPS_PLAINTEXT[0] ^ 1]) + FIPS_PLAINTEXT[1:]
    other = cipher.encrypt_block(flipped_input)
    differing_bits = sum(bin(a ^ b).count("1") for a, b in zip(base, other))
    assert differing_bits > 30  # ~64 expected for a good block cipher
