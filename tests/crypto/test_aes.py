"""AES correctness against FIPS 197 / NIST vectors."""

import pytest

from repro.crypto.aes import AES, BLOCK_SIZE, aes_for_key
from repro.crypto import aes as aes_module
from repro.crypto.rng import DeterministicRandom

FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")


def test_fips197_aes128():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
    assert AES(key).encrypt_block(FIPS_PLAINTEXT) == expected


def test_fips197_aes192():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
    expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
    assert AES(key).encrypt_block(FIPS_PLAINTEXT) == expected


def test_fips197_aes256():
    key = bytes.fromhex(
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
    )
    expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
    assert AES(key).encrypt_block(FIPS_PLAINTEXT) == expected


def test_nist_ecb_kat_aes128():
    # NIST SP 800-38A F.1.1 (ECB-AES128) first block.
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
    expected = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
    assert AES(key).encrypt_block(plaintext) == expected


@pytest.mark.parametrize("key_len", [16, 24, 32])
def test_decrypt_inverts_encrypt(key_len):
    rng = DeterministicRandom(key_len)
    cipher = AES(rng.random_bytes(key_len))
    for _ in range(25):
        block = rng.random_bytes(BLOCK_SIZE)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_invalid_key_length_rejected():
    for bad in (0, 15, 17, 31, 33):
        with pytest.raises(ValueError):
            AES(bytes(bad))


def test_invalid_block_length_rejected():
    cipher = AES(bytes(16))
    with pytest.raises(ValueError):
        cipher.encrypt_block(b"short")
    with pytest.raises(ValueError):
        cipher.decrypt_block(bytes(17))


def test_different_keys_different_ciphertexts():
    block = bytes(16)
    assert AES(bytes(16)).encrypt_block(block) != AES(b"\x01" * 16).encrypt_block(block)


def test_encryption_is_deterministic():
    key = bytes(range(16))
    assert AES(key).encrypt_block(FIPS_PLAINTEXT) == AES(key).encrypt_block(FIPS_PLAINTEXT)


def test_avalanche_one_bit_flip():
    key = bytes(range(16))
    cipher = AES(key)
    base = cipher.encrypt_block(FIPS_PLAINTEXT)
    flipped_input = bytes([FIPS_PLAINTEXT[0] ^ 1]) + FIPS_PLAINTEXT[1:]
    other = cipher.encrypt_block(flipped_input)
    differing_bits = sum(bin(a ^ b).count("1") for a, b in zip(base, other))
    assert differing_bits > 30  # ~64 expected for a good block cipher


# FIPS 197 appendix C vectors driven through the *decrypt* direction —
# the inverse cipher has its own T-tables and key schedule, so the
# encrypt vectors alone don't cover it.
@pytest.mark.parametrize(
    "key_hex, ciphertext_hex",
    [
        ("000102030405060708090a0b0c0d0e0f",
         "69c4e0d86a7b0430d8cdb78070b4c55a"),
        ("000102030405060708090a0b0c0d0e0f1011121314151617",
         "dda97ca4864cdfe06eaf70a0ec0d7191"),
        ("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
         "8ea2b7ca516745bfeafc49904b496089"),
    ],
    ids=["aes128", "aes192", "aes256"],
)
def test_fips197_decrypt_direction(key_hex, ciphertext_hex):
    key = bytes.fromhex(key_hex)
    ciphertext = bytes.fromhex(ciphertext_hex)
    assert AES(key).decrypt_block(ciphertext) == FIPS_PLAINTEXT


def test_int_block_api_matches_bytes_api():
    rng = DeterministicRandom(42)
    cipher = AES(rng.random_bytes(16))
    for _ in range(10):
        block = rng.random_bytes(BLOCK_SIZE)
        as_int = int.from_bytes(block, "big")
        assert cipher.encrypt_int(as_int).to_bytes(BLOCK_SIZE, "big") == \
            cipher.encrypt_block(block)
        assert cipher.decrypt_int(as_int).to_bytes(BLOCK_SIZE, "big") == \
            cipher.decrypt_block(block)


def test_aes_for_key_returns_same_instance():
    key = bytes(range(16))
    assert aes_for_key(key) is aes_for_key(key)


def test_aes_for_key_distinct_keys_distinct_ciphers():
    a = aes_for_key(bytes(16))
    b = aes_for_key(b"\x01" * 16)
    assert a is not b
    assert a.encrypt_block(FIPS_PLAINTEXT) != b.encrypt_block(FIPS_PLAINTEXT)


def test_aes_for_key_matches_direct_construction():
    rng = DeterministicRandom(99)
    for key_len in (16, 24, 32):
        key = rng.random_bytes(key_len)
        block = rng.random_bytes(BLOCK_SIZE)
        assert aes_for_key(key).encrypt_block(block) == AES(key).encrypt_block(block)


def test_aes_for_key_cache_eviction_preserves_correctness():
    rng = DeterministicRandom(7)
    key = rng.random_bytes(16)
    block = rng.random_bytes(BLOCK_SIZE)
    expected = aes_for_key(key).encrypt_block(block)
    # Flood the LRU past its bound so `key` is evicted, then re-fetch.
    for i in range(aes_module._INSTANCE_CACHE_MAX + 8):
        aes_for_key(i.to_bytes(16, "big"))
    assert len(aes_module._INSTANCE_CACHE) <= aes_module._INSTANCE_CACHE_MAX
    assert aes_for_key(key).encrypt_block(block) == expected
