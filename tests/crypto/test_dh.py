"""Finite-field Diffie-Hellman tests."""

import pytest

from repro.crypto import dh
from repro.crypto.rng import DeterministicRandom


def test_shared_secret_agreement():
    rng = DeterministicRandom(1)
    alice = dh.generate_keypair(dh.TEST_GROUP, rng)
    bob = dh.generate_keypair(dh.TEST_GROUP, rng)
    assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)


def test_shared_secret_bytes_fixed_width():
    rng = DeterministicRandom(2)
    alice = dh.generate_keypair(dh.TEST_GROUP, rng)
    bob = dh.generate_keypair(dh.TEST_GROUP, rng)
    secret = alice.shared_secret_bytes(bob.public)
    assert len(secret) == dh.TEST_GROUP.element_bytes()


def test_fresh_keypairs_differ():
    rng = DeterministicRandom(3)
    a = dh.generate_keypair(dh.TEST_GROUP, rng)
    b = dh.generate_keypair(dh.TEST_GROUP, rng)
    assert a.private != b.private
    assert a.public != b.public


def test_public_value_consistency():
    rng = DeterministicRandom(4)
    pair = dh.generate_keypair(dh.TEST_GROUP, rng)
    assert pair.public == pow(dh.TEST_GROUP.generator, pair.private, dh.TEST_GROUP.prime)


@pytest.mark.parametrize("bad", [0, 1])
def test_degenerate_public_values_rejected(bad):
    with pytest.raises(dh.InvalidPublicValue):
        dh.validate_public_value(dh.TEST_GROUP, bad)


def test_p_minus_one_rejected():
    with pytest.raises(dh.InvalidPublicValue):
        dh.validate_public_value(dh.TEST_GROUP, dh.TEST_GROUP.prime - 1)


def test_out_of_range_public_rejected():
    with pytest.raises(dh.InvalidPublicValue):
        dh.validate_public_value(dh.TEST_GROUP, dh.TEST_GROUP.prime + 5)


def test_shared_secret_validates_peer():
    rng = DeterministicRandom(5)
    pair = dh.generate_keypair(dh.TEST_GROUP, rng)
    with pytest.raises(dh.InvalidPublicValue):
        pair.shared_secret(1)


def test_test_group_prime_is_safe_prime():
    p = dh.TEST_GROUP.prime
    q = (p - 1) // 2
    # Fermat tests with several bases — cheap and adequate here.
    for base in (2, 3, 5, 7, 11):
        assert pow(base, p - 1, p) == 1
        assert pow(base, q - 1, q) == 1


def test_standard_groups_are_registered():
    assert dh.GROUPS_BY_NAME["modp-2048"].bits == 2048
    assert dh.GROUPS_BY_NAME["oakley-group-2"].bits == 1024
    assert dh.GROUPS_BY_NAME["test-256"].bits == 256


def test_modp2048_known_prime_properties():
    p = dh.MODP_2048.prime
    # RFC 3526 primes are ≡ 7 mod 8 and start/end with 64 one-bits.
    assert p % 2 == 1
    assert p >> (2048 - 64) == (1 << 64) - 1
    assert p & ((1 << 64) - 1) == (1 << 64) - 1


def test_element_bytes():
    assert dh.MODP_2048.element_bytes() == 256
    assert dh.TEST_GROUP.element_bytes() == 32


def test_int_encoding_roundtrip():
    value = 0x1234567890ABCDEF
    encoded = dh.int_to_group_bytes(dh.TEST_GROUP, value)
    assert len(encoded) == 32
    assert dh.bytes_to_int(encoded) == value


def test_agreement_on_modp2048():
    rng = DeterministicRandom(6)
    alice = dh.generate_keypair(dh.MODP_2048, rng)
    bob = dh.generate_keypair(dh.MODP_2048, rng)
    assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)
