"""Elliptic-curve group law and ECDHE tests."""

import pytest

from repro.crypto import ec
from repro.crypto.rng import DeterministicRandom

ALL_CURVES = [ec.P256, ec.P224, ec.SECP128R1, ec.SECP160R1, ec.TINY]


@pytest.mark.parametrize("curve", ALL_CURVES, ids=lambda c: c.name)
def test_base_point_on_curve(curve):
    assert ec.is_on_curve(curve, ec.base_point(curve))


@pytest.mark.parametrize("curve", ALL_CURVES, ids=lambda c: c.name)
def test_order_annihilates_base_point(curve):
    assert ec.scalar_mult(curve, curve.n, ec.base_point(curve)) is None


def test_point_addition_identity():
    g = ec.base_point(ec.TINY)
    assert ec.point_add(ec.TINY, g, None) == g
    assert ec.point_add(ec.TINY, None, g) == g
    assert ec.point_add(ec.TINY, None, None) is None


def test_point_plus_negation_is_infinity():
    g = ec.base_point(ec.TINY)
    assert ec.point_add(ec.TINY, g, ec.point_neg(ec.TINY, g)) is None


def test_addition_commutes():
    g = ec.base_point(ec.TINY)
    g2 = ec.point_double(ec.TINY, g)
    assert ec.point_add(ec.TINY, g, g2) == ec.point_add(ec.TINY, g2, g)


def test_addition_associates():
    curve = ec.TINY
    g = ec.base_point(curve)
    p2 = ec.scalar_mult(curve, 2, g)
    p3 = ec.scalar_mult(curve, 3, g)
    left = ec.point_add(curve, ec.point_add(curve, g, p2), p3)
    right = ec.point_add(curve, g, ec.point_add(curve, p2, p3))
    assert left == right


def test_double_equals_add_to_self():
    g = ec.base_point(ec.TINY)
    assert ec.point_double(ec.TINY, g) == ec.point_add(ec.TINY, g, g)


def test_scalar_mult_matches_repeated_addition():
    curve = ec.TINY
    g = ec.base_point(curve)
    acc = None
    for k in range(1, 40):
        acc = ec.point_add(curve, acc, g)
        assert ec.scalar_mult(curve, k, g) == acc


def test_scalar_mult_distributes():
    curve = ec.TINY
    g = ec.base_point(curve)
    for a, b in [(2, 3), (17, 900), (curve.n - 1, 1), (123, 456)]:
        lhs = ec.scalar_mult(curve, a + b, g)
        rhs = ec.point_add(
            curve, ec.scalar_mult(curve, a, g), ec.scalar_mult(curve, b, g)
        )
        assert lhs == rhs


@pytest.mark.parametrize("curve", [ec.SECP128R1, ec.P256, ec.TINY], ids=lambda c: c.name)
def test_fixed_base_matches_generic(curve):
    rng = DeterministicRandom(77)
    for _ in range(10):
        k = rng.randrange(1, curve.n)
        assert ec.scalar_mult_base(curve, k) == ec.scalar_mult(
            curve, k, ec.base_point(curve)
        )


def test_scalar_mult_zero_and_infinity():
    assert ec.scalar_mult(ec.TINY, 0, ec.base_point(ec.TINY)) is None
    assert ec.scalar_mult(ec.TINY, 5, None) is None
    assert ec.scalar_mult_base(ec.TINY, 0) is None


def test_scalar_mult_rejects_off_curve_point():
    with pytest.raises(ec.NotOnCurveError):
        ec.scalar_mult(ec.TINY, 3, (1, 1))


@pytest.mark.parametrize("curve", [ec.SECP128R1, ec.P256], ids=lambda c: c.name)
def test_ecdh_agreement(curve):
    rng = DeterministicRandom(5)
    alice = ec.generate_keypair(curve, rng)
    bob = ec.generate_keypair(curve, rng)
    assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)
    assert alice.shared_secret_bytes(bob.public) == bob.shared_secret_bytes(alice.public)


def test_shared_secret_bytes_width():
    rng = DeterministicRandom(6)
    alice = ec.generate_keypair(ec.SECP128R1, rng)
    bob = ec.generate_keypair(ec.SECP128R1, rng)
    assert len(alice.shared_secret_bytes(bob.public)) == ec.SECP128R1.coordinate_bytes


def test_shared_secret_rejects_off_curve_peer():
    rng = DeterministicRandom(7)
    alice = ec.generate_keypair(ec.SECP128R1, rng)
    with pytest.raises(ec.NotOnCurveError):
        alice.shared_secret((1, 1))


def test_point_encoding_roundtrip():
    rng = DeterministicRandom(8)
    pair = ec.generate_keypair(ec.P256, rng)
    encoded = ec.encode_point(ec.P256, pair.public)
    assert encoded[0] == 0x04
    assert len(encoded) == 65
    assert ec.decode_point(ec.P256, encoded) == pair.public


def test_decode_point_rejects_malformed():
    with pytest.raises(ValueError):
        ec.decode_point(ec.P256, b"\x04" + bytes(10))
    with pytest.raises(ValueError):
        ec.decode_point(ec.P256, b"\x02" + bytes(64))  # compressed unsupported


def test_decode_point_rejects_off_curve():
    bad = b"\x04" + bytes(31) + b"\x01" + bytes(31) + b"\x01"
    with pytest.raises(ec.NotOnCurveError):
        ec.decode_point(ec.P256, bad)


def test_named_curve_registry_roundtrip():
    for name, curve_id in ec.NAMED_CURVE_IDS.items():
        assert ec.NAMED_CURVE_BY_ID[curve_id] == name
        assert name in ec.CURVES_BY_NAME


def test_tiny_curve_exhaustive_group_order():
    """Every non-identity point of the tiny curve has prime order n."""
    curve = ec.TINY
    g = ec.base_point(curve)
    # Walk a handful of points; multiply each by n.
    for k in (1, 2, 3, 100, 9850):
        point = ec.scalar_mult(curve, k, g)
        assert ec.scalar_mult(curve, curve.n, point) is None


# --- windowed-NAF scalar_mult edge cases -------------------------------

def _double_and_add(curve, k, point):
    """Reference scalar multiplication for cross-checking wNAF."""
    k %= curve.n
    result = None
    addend = point
    while k:
        if k & 1:
            result = ec.point_add(curve, result, addend)
        addend = ec.point_add(curve, addend, addend)
        k >>= 1
    return result


@pytest.mark.parametrize("curve", [ec.SECP128R1, ec.P256, ec.TINY], ids=lambda c: c.name)
def test_wnaf_matches_double_and_add(curve):
    rng = DeterministicRandom(314)
    g = ec.base_point(curve)
    point = ec.scalar_mult(curve, rng.randrange(1, curve.n), g)
    for _ in range(8):
        k = rng.randrange(1, curve.n)
        assert ec.scalar_mult(curve, k, point) == _double_and_add(curve, k, point)


@pytest.mark.parametrize("curve", [ec.SECP128R1, ec.P256, ec.TINY], ids=lambda c: c.name)
def test_scalar_n_minus_one_is_negation(curve):
    g = ec.base_point(curve)
    assert ec.scalar_mult(curve, curve.n - 1, g) == ec.point_neg(curve, g)


@pytest.mark.parametrize("curve", [ec.SECP128R1, ec.TINY], ids=lambda c: c.name)
def test_scalar_at_least_n_reduces_mod_n(curve):
    g = ec.base_point(curve)
    assert ec.scalar_mult(curve, curve.n, g) is None
    assert ec.scalar_mult(curve, curve.n + 1, g) == g
    assert ec.scalar_mult(curve, 2 * curve.n + 5, g) == ec.scalar_mult(curve, 5, g)


def test_wnaf_small_scalars_exhaustive():
    """Every small scalar on the tiny curve, against repeated addition."""
    curve = ec.TINY
    g = ec.base_point(curve)
    acc = None
    for k in range(1, 130):  # crosses several window widths
        acc = ec.point_add(curve, acc, g)
        assert ec.scalar_mult(curve, k, g) == acc


def test_wnaf_digit_expansion_reconstructs_scalar():
    rng = DeterministicRandom(2021)
    for _ in range(25):
        k = rng.randrange(1, 1 << 256)
        digits = ec._wnaf_digits(k, ec._WNAF_WIDTH)
        assert sum(d << i for i, d in enumerate(digits)) == k
        half = 1 << (ec._WNAF_WIDTH - 1)
        for digit in digits:
            assert digit == 0 or (digit % 2 == 1 and -half < digit < half)


def test_coordinate_bytes_precomputed():
    for curve in ALL_CURVES:
        assert curve.coordinate_bytes == (curve.p.bit_length() + 7) // 8
    assert ec.P256.a_is_minus_3
    assert not ec.TINY.a_is_minus_3


def test_shared_secret_memo_consistency():
    """Memoized shared secrets must equal fresh computations."""
    rng = DeterministicRandom(9)
    alice = ec.generate_keypair(ec.SECP128R1, rng)
    bob = ec.generate_keypair(ec.SECP128R1, rng)
    first = alice.shared_secret(bob.public)
    second = alice.shared_secret(bob.public)  # memo hit
    assert first == second
    direct = ec.scalar_mult(ec.SECP128R1, alice.private, bob.public)
    assert first == direct
