"""CBC mode, PKCS#7 padding, and the CTR helper."""

import pytest

from repro.crypto.modes import (
    PaddingError,
    cbc_decrypt,
    cbc_encrypt,
    ctr_keystream,
    ctr_xor,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.crypto.rng import DeterministicRandom

KEY = bytes(range(16))
IV = bytes(range(16, 32))


def test_pkcs7_pad_lengths():
    for n in range(0, 48):
        padded = pkcs7_pad(bytes(n))
        assert len(padded) % 16 == 0
        assert len(padded) > n  # always at least one padding byte


def test_pkcs7_roundtrip():
    for n in range(0, 40):
        data = bytes(range(n % 256))[:n]
        assert pkcs7_unpad(pkcs7_pad(data)) == data


def test_pkcs7_full_block_of_padding():
    padded = pkcs7_pad(bytes(16))
    assert len(padded) == 32
    assert padded[-16:] == bytes([16] * 16)


def test_pkcs7_unpad_rejects_bad_length_byte():
    with pytest.raises(PaddingError):
        pkcs7_unpad(bytes(15) + b"\x00")
    with pytest.raises(PaddingError):
        pkcs7_unpad(bytes(15) + b"\x11")  # 17 > block size


def test_pkcs7_unpad_rejects_inconsistent_padding():
    block = bytes(12) + b"\x01\x02\x04\x04"
    with pytest.raises(PaddingError):
        pkcs7_unpad(block[:12] + b"\x03\x01\x04\x04")


def test_pkcs7_unpad_rejects_non_block_multiple():
    with pytest.raises(PaddingError):
        pkcs7_unpad(bytes(15))
    with pytest.raises(PaddingError):
        pkcs7_unpad(b"")


def test_pkcs7_pad_invalid_block_size():
    with pytest.raises(ValueError):
        pkcs7_pad(b"x", block_size=0)
    with pytest.raises(ValueError):
        pkcs7_pad(b"x", block_size=256)


def test_cbc_roundtrip_various_lengths():
    rng = DeterministicRandom(3)
    for n in (0, 1, 15, 16, 17, 100, 1000):
        data = rng.random_bytes(n)
        assert cbc_decrypt(KEY, IV, cbc_encrypt(KEY, IV, data)) == data


def test_cbc_nist_vector():
    # NIST SP 800-38A F.2.1 CBC-AES128.Encrypt, first block (unpadded
    # comparison: we check the first ciphertext block only).
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
    expected_first = bytes.fromhex("7649abac8119b246cee98e9b12e9197d")
    assert cbc_encrypt(key, iv, plaintext)[:16] == expected_first


def test_cbc_same_plaintext_different_iv():
    data = b"attack at dawn!!"
    other_iv = bytes(16)
    assert cbc_encrypt(KEY, IV, data) != cbc_encrypt(KEY, other_iv, data)


def test_cbc_wrong_key_fails_or_garbage():
    data = b"some secret session state bytes"
    ciphertext = cbc_encrypt(KEY, IV, data)
    wrong = bytes(16)
    try:
        plaintext = cbc_decrypt(wrong, IV, ciphertext)
    except PaddingError:
        return  # overwhelmingly likely outcome
    assert plaintext != data


def test_cbc_tampered_ciphertext_detected_or_garbled():
    data = b"twelve bytes" * 4
    ciphertext = bytearray(cbc_encrypt(KEY, IV, data))
    ciphertext[0] ^= 0xFF
    try:
        plaintext = cbc_decrypt(KEY, IV, bytes(ciphertext))
    except PaddingError:
        return
    assert plaintext != data


def test_cbc_rejects_bad_iv_and_empty_ciphertext():
    with pytest.raises(ValueError):
        cbc_encrypt(KEY, b"short", b"data")
    with pytest.raises(PaddingError):
        cbc_decrypt(KEY, IV, b"")
    with pytest.raises(PaddingError):
        cbc_decrypt(KEY, IV, bytes(20))


def test_ctr_xor_is_an_involution():
    rng = DeterministicRandom(4)
    nonce = rng.random_bytes(16)
    data = rng.random_bytes(333)
    assert ctr_xor(KEY, nonce, ctr_xor(KEY, nonce, data)) == data


def test_ctr_keystream_is_prefix_consistent():
    nonce = bytes(16)
    assert ctr_keystream(KEY, nonce, 100) == ctr_keystream(KEY, nonce, 200)[:100]


def test_ctr_different_nonces_differ():
    assert ctr_keystream(KEY, bytes(16), 64) != ctr_keystream(KEY, b"\x01" + bytes(15), 64)


def test_ctr_counter_wraps_across_blocks():
    # nonce at the top of the counter space must wrap, not overflow
    nonce = b"\xff" * 16
    stream = ctr_keystream(KEY, nonce, 48)
    assert len(stream) == 48


def test_ctr_rejects_bad_nonce():
    with pytest.raises(ValueError):
        ctr_keystream(KEY, b"short", 16)


def test_cbc_boundary_lengths_across_interleaved_keys():
    """Round-trips at padding boundaries while alternating keys.

    Exercises the key-schedule LRU under interleaved access: a cached
    AES instance must never leak state between keys or calls.
    """
    rng = DeterministicRandom(11)
    keys = [rng.random_bytes(16) for _ in range(4)]
    for n in (0, 15, 16, 17):
        data = rng.random_bytes(n)
        sealed = [cbc_encrypt(key, IV, data) for key in keys]
        assert len(set(sealed)) == len(keys)  # distinct keys, distinct bytes
        for key, ciphertext in zip(keys, sealed):
            assert cbc_decrypt(key, IV, ciphertext) == data


def test_cbc_repeat_encrypt_is_stable_under_caching():
    """The instance cache must not make encryption stateful."""
    data = b"ticket state " * 7
    first = cbc_encrypt(KEY, IV, data)
    for _ in range(5):
        assert cbc_encrypt(KEY, IV, data) == first


def test_ctr_xor_empty_message():
    assert ctr_xor(KEY, bytes(16), b"") == b""
