"""TLS 1.2 PRF and key-derivation tests."""

import pytest

from repro.crypto.prf import (
    MASTER_SECRET_LENGTH,
    derive_key_block,
    derive_master_secret,
    p_sha256,
    prf,
    verify_data,
)


def test_p_sha256_known_vector():
    # Widely used community test vector for TLS 1.2 P_SHA256.
    secret = bytes.fromhex("9bbe436ba940f017b17652849a71db35")
    seed = bytes.fromhex("a0ba9f936cda311827a6f796ffd5198c")
    label = b"test label"
    expected = bytes.fromhex(
        "e3f229ba727be17b8d122620557cd453c2aab21d07c3d495329b52d4e61edb5a"
        "6b301791e90d35c9c9a46b4e14baf9af0fa022f7077def17abfd3797c0564bab"
        "4fbc91666e9def9b97fce34f796789baa48082d122ee42c5a72e5a5110fff701"
        "87347b66"
    )
    assert prf(secret, label, seed, 100) == expected


def test_p_sha256_lengths():
    for n in (0, 1, 31, 32, 33, 100):
        assert len(p_sha256(b"secret", b"seed", n)) == n


def test_p_sha256_negative_length():
    with pytest.raises(ValueError):
        p_sha256(b"s", b"x", -1)


def test_prf_label_separation():
    secret, seed = b"secret", b"seed"
    assert prf(secret, b"label one", seed, 32) != prf(secret, b"label two", seed, 32)


def test_master_secret_is_48_bytes_and_deterministic():
    premaster = bytes(48)
    cr, sr = bytes(32), bytes(range(32))
    master = derive_master_secret(premaster, cr, sr)
    assert len(master) == MASTER_SECRET_LENGTH == 48
    assert master == derive_master_secret(premaster, cr, sr)


def test_master_secret_depends_on_randoms():
    premaster = bytes(48)
    a = derive_master_secret(premaster, bytes(32), bytes(32))
    b = derive_master_secret(premaster, b"\x01" + bytes(31), bytes(32))
    assert a != b


def test_master_secret_random_order_matters():
    premaster = bytes(48)
    cr, sr = bytes([1] * 32), bytes([2] * 32)
    assert derive_master_secret(premaster, cr, sr) != derive_master_secret(
        premaster, sr, cr
    )


def test_key_block_uses_flipped_random_order():
    # RFC 5246: key expansion seeds server_random first.  With
    # symmetric randoms the outputs would coincide; with asymmetric
    # ones they must not equal a same-order expansion.
    master = bytes(48)
    cr, sr = bytes([1] * 32), bytes([2] * 32)
    block = derive_key_block(master, cr, sr, 64)
    flipped = derive_key_block(master, sr, cr, 64)
    assert block != flipped


def test_verify_data_is_12_bytes():
    vd = verify_data(bytes(48), b"client finished", bytes(32))
    assert len(vd) == 12


def test_verify_data_depends_on_label_and_hash():
    master = bytes(48)
    h = bytes(32)
    assert verify_data(master, b"client finished", h) != verify_data(
        master, b"server finished", h
    )
    assert verify_data(master, b"client finished", h) != verify_data(
        master, b"client finished", b"\x01" + bytes(31)
    )
