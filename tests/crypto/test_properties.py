"""Property-based tests (hypothesis) for the crypto substrate."""

from hypothesis import given, settings, strategies as st

from repro.crypto import ec
from repro.crypto.aes import AES
from repro.crypto.modes import cbc_decrypt, cbc_encrypt, ctr_xor, pkcs7_pad, pkcs7_unpad
from repro.crypto.prf import p_sha256
from repro.crypto.rng import DeterministicRandom

KEY16 = st.binary(min_size=16, max_size=16)
BLOCK = st.binary(min_size=16, max_size=16)


@given(key=KEY16, block=BLOCK)
@settings(max_examples=60, deadline=None)
def test_aes_decrypt_inverts_encrypt(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(key=KEY16, block=BLOCK)
@settings(max_examples=40, deadline=None)
def test_aes_encrypt_is_a_permutation(key, block):
    cipher = AES(key)
    out = cipher.encrypt_block(block)
    assert len(out) == 16
    # A permutation never maps two inputs to one output; spot-check by
    # flipping one bit of the input.
    flipped = bytes([block[0] ^ 1]) + block[1:]
    assert cipher.encrypt_block(flipped) != out


@given(data=st.binary(max_size=200))
@settings(max_examples=80, deadline=None)
def test_pkcs7_roundtrip(data):
    assert pkcs7_unpad(pkcs7_pad(data)) == data


@given(key=KEY16, iv=KEY16, data=st.binary(max_size=300))
@settings(max_examples=50, deadline=None)
def test_cbc_roundtrip(key, iv, data):
    assert cbc_decrypt(key, iv, cbc_encrypt(key, iv, data)) == data


@given(key=KEY16, nonce=KEY16, data=st.binary(max_size=300))
@settings(max_examples=50, deadline=None)
def test_ctr_involution(key, nonce, data):
    assert ctr_xor(key, nonce, ctr_xor(key, nonce, data)) == data


@given(secret=st.binary(min_size=1, max_size=48), seed=st.binary(max_size=32),
       n=st.integers(min_value=0, max_value=200))
@settings(max_examples=50, deadline=None)
def test_prf_length_and_determinism(secret, seed, n):
    a = p_sha256(secret, seed, n)
    b = p_sha256(secret, seed, n)
    assert len(a) == n and a == b


@given(k=st.integers(min_value=1, max_value=ec.TINY.n - 1))
@settings(max_examples=80, deadline=None)
def test_tiny_curve_scalar_mult_closure(k):
    point = ec.scalar_mult(ec.TINY, k, ec.base_point(ec.TINY))
    assert ec.is_on_curve(ec.TINY, point)
    assert point is not None  # k < n so never the identity


@given(a=st.integers(min_value=1, max_value=ec.TINY.n - 1),
       b=st.integers(min_value=1, max_value=ec.TINY.n - 1))
@settings(max_examples=60, deadline=None)
def test_tiny_curve_scalar_homomorphism(a, b):
    g = ec.base_point(ec.TINY)
    lhs = ec.scalar_mult(ec.TINY, (a * b) % ec.TINY.n, g)
    rhs = ec.scalar_mult(ec.TINY, a, ec.scalar_mult(ec.TINY, b, g))
    assert lhs == rhs


@given(seed=st.integers(min_value=0, max_value=2**32), n=st.integers(min_value=0, max_value=128))
@settings(max_examples=40, deadline=None)
def test_rng_reproducibility(seed, n):
    assert DeterministicRandom(seed).random_bytes(n) == DeterministicRandom(seed).random_bytes(n)


@given(seed=st.integers(min_value=0, max_value=2**32),
       upper=st.integers(min_value=1, max_value=10**9))
@settings(max_examples=60, deadline=None)
def test_rng_randbelow_in_range(seed, upper):
    value = DeterministicRandom(seed).randbelow(upper)
    assert 0 <= value < upper
